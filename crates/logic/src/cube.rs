//! Bit-packed multi-output cubes in espresso's positional notation.
//!
//! A [`Cube`] is a product term over `n` Boolean inputs together with the set
//! of outputs it drives. Each input variable occupies two bits:
//!
//! | bits (hi, lo) | meaning                         | literal |
//! |---------------|---------------------------------|---------|
//! | `01`          | variable must be 0              | `x̄`    |
//! | `10`          | variable must be 1              | `x`     |
//! | `11`          | variable unconstrained          | —       |
//! | `00`          | contradiction (empty cube)      | —       |
//!
//! The output part is a plain bitset: bit `j` set means the cube is part of
//! the sum-of-products for output `j`. This mirrors the function-matrix rows
//! of the paper (Fig. 8a): literal columns plus output-membership columns.

use std::fmt;

/// Phase of a literal inside a cube.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Phase {
    /// The variable appears complemented (`x̄`, variable must be 0).
    Negative,
    /// The variable appears uncomplemented (`x`, variable must be 1).
    Positive,
}

impl Phase {
    /// Phase corresponding to a required Boolean value.
    #[must_use]
    pub fn from_bool(value: bool) -> Self {
        if value {
            Phase::Positive
        } else {
            Phase::Negative
        }
    }

    /// The Boolean value this phase requires of its variable.
    #[must_use]
    pub fn as_bool(self) -> bool {
        matches!(self, Phase::Positive)
    }

    /// The opposite phase.
    #[must_use]
    pub fn inverted(self) -> Self {
        match self {
            Phase::Negative => Phase::Positive,
            Phase::Positive => Phase::Negative,
        }
    }
}

/// State of one input variable inside a cube.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum VarState {
    /// Variable is absent from the product term (both phases allowed).
    DontCare,
    /// Variable appears as a literal with the given phase.
    Literal(Phase),
    /// Both phases forbidden; the cube is empty.
    Empty,
}

const BITS_PER_VAR: usize = 2;
const VARS_PER_WORD: usize = 64 / BITS_PER_VAR;

/// A product term over `num_inputs` variables driving a subset of
/// `num_outputs` outputs.
///
/// # Examples
///
/// ```
/// use xbar_logic::{Cube, Phase};
///
/// // x0 · x̄2, driving output 0 of a 3-input, 2-output function.
/// let cube = Cube::universe(3, 2)
///     .with_literal(0, Phase::Positive)
///     .with_literal(2, Phase::Negative)
///     .with_output(0, true)
///     .with_output(1, false);
/// assert_eq!(cube.literal_count(), 2);
/// assert!(cube.evaluate(0b001)); // x0=1, x1=0, x2=0
/// assert!(!cube.evaluate(0b101)); // x2=1 violates x̄2
/// ```
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct Cube {
    num_inputs: u16,
    num_outputs: u16,
    /// Positional-notation input part, 2 bits per variable.
    inputs: Vec<u64>,
    /// Output membership bitset, 1 bit per output.
    outputs: Vec<u64>,
}

impl Cube {
    /// The cube with no literals (full don't-care input part) driving every
    /// output: the universal product term.
    ///
    /// # Panics
    ///
    /// Panics if `num_inputs` or `num_outputs` exceeds `u16::MAX`.
    #[must_use]
    pub fn universe(num_inputs: usize, num_outputs: usize) -> Self {
        assert!(num_inputs <= u16::MAX as usize, "too many inputs");
        assert!(num_outputs <= u16::MAX as usize, "too many outputs");
        let input_words = num_inputs.div_ceil(VARS_PER_WORD).max(1);
        let output_words = num_outputs.div_ceil(64).max(1);
        let mut inputs = vec![u64::MAX; input_words];
        // Clear padding above the last variable so Eq/Hash are canonical.
        let used = num_inputs * BITS_PER_VAR;
        mask_tail(&mut inputs, used);
        let mut outputs = vec![u64::MAX; output_words];
        mask_tail(&mut outputs, num_outputs);
        Self {
            num_inputs: num_inputs as u16,
            num_outputs: num_outputs as u16,
            inputs,
            outputs,
        }
    }

    /// A minterm cube: every variable is a literal matching the bits of
    /// `assignment` (bit `i` of `assignment` gives the value of variable `i`),
    /// driving the outputs whose bits are set in `outputs`.
    #[must_use]
    pub fn minterm(
        num_inputs: usize,
        assignment: u64,
        outputs: &[usize],
        num_outputs: usize,
    ) -> Self {
        let mut cube = Self::universe(num_inputs, num_outputs);
        for var in 0..num_inputs {
            cube.set_literal(var, Phase::from_bool(assignment >> var & 1 == 1));
        }
        for word in &mut cube.outputs {
            *word = 0;
        }
        for &out in outputs {
            cube.set_output(out, true);
        }
        cube
    }

    /// Number of input variables.
    #[must_use]
    pub fn num_inputs(&self) -> usize {
        self.num_inputs as usize
    }

    /// Number of outputs of the enclosing function.
    #[must_use]
    pub fn num_outputs(&self) -> usize {
        self.num_outputs as usize
    }

    /// State of variable `var`.
    ///
    /// # Panics
    ///
    /// Panics if `var >= self.num_inputs()`.
    #[must_use]
    pub fn var_state(&self, var: usize) -> VarState {
        assert!(var < self.num_inputs(), "variable index out of range");
        let word = var / VARS_PER_WORD;
        let shift = (var % VARS_PER_WORD) * BITS_PER_VAR;
        match self.inputs[word] >> shift & 0b11 {
            0b00 => VarState::Empty,
            0b01 => VarState::Literal(Phase::Negative),
            0b10 => VarState::Literal(Phase::Positive),
            _ => VarState::DontCare,
        }
    }

    /// Sets variable `var` to a literal of the given phase.
    ///
    /// # Panics
    ///
    /// Panics if `var >= self.num_inputs()`.
    pub fn set_literal(&mut self, var: usize, phase: Phase) {
        self.set_var_bits(var, if phase.as_bool() { 0b10 } else { 0b01 });
    }

    /// Removes any literal on `var`, making it don't-care.
    ///
    /// # Panics
    ///
    /// Panics if `var >= self.num_inputs()`.
    pub fn clear_literal(&mut self, var: usize) {
        self.set_var_bits(var, 0b11);
    }

    fn set_var_bits(&mut self, var: usize, bits: u64) {
        assert!(var < self.num_inputs(), "variable index out of range");
        let word = var / VARS_PER_WORD;
        let shift = (var % VARS_PER_WORD) * BITS_PER_VAR;
        self.inputs[word] = (self.inputs[word] & !(0b11 << shift)) | (bits << shift);
    }

    /// Builder-style [`set_literal`](Self::set_literal).
    #[must_use]
    pub fn with_literal(mut self, var: usize, phase: Phase) -> Self {
        self.set_literal(var, phase);
        self
    }

    /// Whether output `out` is driven by this cube.
    ///
    /// # Panics
    ///
    /// Panics if `out >= self.num_outputs()`.
    #[must_use]
    pub fn output(&self, out: usize) -> bool {
        assert!(out < self.num_outputs(), "output index out of range");
        self.outputs[out / 64] >> (out % 64) & 1 == 1
    }

    /// Adds or removes output `out` from the cube's output set.
    ///
    /// # Panics
    ///
    /// Panics if `out >= self.num_outputs()`.
    pub fn set_output(&mut self, out: usize, member: bool) {
        assert!(out < self.num_outputs(), "output index out of range");
        let word = out / 64;
        let bit = 1u64 << (out % 64);
        if member {
            self.outputs[word] |= bit;
        } else {
            self.outputs[word] &= !bit;
        }
    }

    /// Builder-style [`set_output`](Self::set_output).
    #[must_use]
    pub fn with_output(mut self, out: usize, member: bool) -> Self {
        self.set_output(out, member);
        self
    }

    /// Restricts the output set to exactly output `out`.
    #[must_use]
    pub fn restricted_to_output(&self, out: usize) -> Self {
        let mut cube = self.clone();
        for word in &mut cube.outputs {
            *word = 0;
        }
        cube.set_output(out, true);
        cube
    }

    /// Number of literals (constrained variables) in the input part.
    #[must_use]
    pub fn literal_count(&self) -> usize {
        // A variable contributes a literal when exactly one of its two bits
        // is set; full-DC contributes 0 and empty also has specific pattern.
        let mut count = 0usize;
        for var in 0..self.num_inputs() {
            if matches!(self.var_state(var), VarState::Literal(_)) {
                count += 1;
            }
        }
        count
    }

    /// Number of outputs driven by the cube.
    #[must_use]
    pub fn output_count(&self) -> usize {
        self.outputs.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Iterator over `(variable, phase)` pairs of the cube's literals.
    pub fn literals(&self) -> impl Iterator<Item = (usize, Phase)> + '_ {
        (0..self.num_inputs()).filter_map(|v| match self.var_state(v) {
            VarState::Literal(p) => Some((v, p)),
            _ => None,
        })
    }

    /// Iterator over the indices of outputs driven by the cube.
    pub fn outputs(&self) -> impl Iterator<Item = usize> + '_ {
        (0..self.num_outputs()).filter(|&o| self.output(o))
    }

    /// True if the input part contains a contradiction (some variable has
    /// both phases forbidden) or the cube drives no output.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.has_empty_input_part() || self.outputs.iter().all(|&w| w == 0)
    }

    /// True if some variable of the input part is `00` (contradiction).
    #[must_use]
    pub fn has_empty_input_part(&self) -> bool {
        for var in 0..self.num_inputs() {
            if matches!(self.var_state(var), VarState::Empty) {
                return true;
            }
        }
        false
    }

    /// True if the input part has no literals at all.
    #[must_use]
    pub fn is_input_universe(&self) -> bool {
        self.literal_count() == 0 && !self.has_empty_input_part()
    }

    /// Cube intersection: literals of both cubes, outputs in common.
    ///
    /// Returns `None` when the intersection is empty (contradicting literals
    /// or disjoint output sets).
    #[must_use]
    pub fn intersection(&self, other: &Self) -> Option<Self> {
        debug_assert_eq!(self.num_inputs, other.num_inputs);
        debug_assert_eq!(self.num_outputs, other.num_outputs);
        let mut result = self.clone();
        for (a, b) in result.inputs.iter_mut().zip(&other.inputs) {
            *a &= b;
        }
        for (a, b) in result.outputs.iter_mut().zip(&other.outputs) {
            *a &= b;
        }
        if result.is_empty() {
            None
        } else {
            Some(result)
        }
    }

    /// Whether `self` contains `other` as a cube (every minterm/output pair
    /// of `other` is also in `self`).
    #[must_use]
    pub fn contains(&self, other: &Self) -> bool {
        debug_assert_eq!(self.num_inputs, other.num_inputs);
        debug_assert_eq!(self.num_outputs, other.num_outputs);
        self.inputs
            .iter()
            .zip(&other.inputs)
            .all(|(a, b)| a & b == *b)
            && self
                .outputs
                .iter()
                .zip(&other.outputs)
                .all(|(a, b)| a & b == *b)
    }

    /// Whether the *input parts* intersect (ignoring outputs).
    ///
    /// Two input parts intersect when no variable ends up with both phases
    /// forbidden after ANDing the positional bit pairs.
    #[must_use]
    pub fn input_intersects(&self, other: &Self) -> bool {
        debug_assert_eq!(self.num_inputs, other.num_inputs);
        let mut remaining = self.num_inputs();
        for (a, b) in self.inputs.iter().zip(&other.inputs) {
            let merged = a & b;
            // A variable is dead when both of its bits are clear.
            let live = (merged >> 1 | merged) & LO_MASK;
            let vars_here = remaining.min(VARS_PER_WORD);
            let want = if vars_here == VARS_PER_WORD {
                LO_MASK
            } else {
                LO_MASK & ((1u64 << (vars_here * BITS_PER_VAR)) - 1)
            };
            if live & want != want {
                return false;
            }
            remaining -= vars_here;
        }
        true
    }

    pub(crate) fn var_bits(&self, var: usize) -> u64 {
        let word = var / VARS_PER_WORD;
        let shift = (var % VARS_PER_WORD) * BITS_PER_VAR;
        self.inputs[word] >> shift & 0b11
    }

    /// Whether both output sets share at least one output.
    #[must_use]
    pub fn outputs_intersect(&self, other: &Self) -> bool {
        self.outputs
            .iter()
            .zip(&other.outputs)
            .any(|(a, b)| a & b != 0)
    }

    /// The input-part distance: number of variables on which the two cubes
    /// have disjoint literal requirements.
    #[must_use]
    pub fn input_distance(&self, other: &Self) -> usize {
        (0..self.num_inputs())
            .filter(|&v| self.var_bits(v) & other.var_bits(v) == 0)
            .count()
    }

    /// The smallest cube containing both cubes (supercube): union of the
    /// per-variable allowed sets and of the output sets.
    #[must_use]
    pub fn supercube(&self, other: &Self) -> Self {
        debug_assert_eq!(self.num_inputs, other.num_inputs);
        let mut result = self.clone();
        for (a, b) in result.inputs.iter_mut().zip(&other.inputs) {
            *a |= b;
        }
        for (a, b) in result.outputs.iter_mut().zip(&other.outputs) {
            *a |= b;
        }
        result
    }

    /// Cofactor of the cube with respect to a literal `var = phase`
    /// (Shannon cofactor). Returns `None` when the cube requires the
    /// opposite phase (the cofactor is empty).
    #[must_use]
    pub fn cofactor_literal(&self, var: usize, phase: Phase) -> Option<Self> {
        match self.var_state(var) {
            VarState::Empty => None,
            VarState::Literal(p) if p != phase => None,
            _ => {
                let mut cube = self.clone();
                cube.clear_literal(var);
                Some(cube)
            }
        }
    }

    /// Cofactor with respect to another cube (the generalized cofactor used
    /// by the unate-recursive paradigm). `None` when the parts are disjoint.
    #[must_use]
    pub fn cofactor_cube(&self, other: &Self) -> Option<Self> {
        if !self.input_intersects(other) || !self.outputs_intersect(other) {
            return None;
        }
        let mut result = self.clone();
        for var in 0..self.num_inputs() {
            if matches!(other.var_state(var), VarState::Literal(_)) {
                result.clear_literal(var);
            }
        }
        for (a, b) in result.outputs.iter_mut().zip(&other.outputs) {
            // Outputs outside `other`'s scope are dropped.
            *a &= b;
        }
        Some(result)
    }

    /// Evaluates the input part on a complete assignment (bit `i` of
    /// `assignment` = value of variable `i`).
    #[must_use]
    pub fn evaluate(&self, assignment: u64) -> bool {
        for (var, phase) in self.literals() {
            if (assignment >> var & 1 == 1) != phase.as_bool() {
                return false;
            }
        }
        true
    }

    /// Number of minterms of the input part (2^(free variables)).
    #[must_use]
    pub fn input_minterm_count(&self) -> u128 {
        1u128 << (self.num_inputs() - self.literal_count()) as u32
    }
}

const LO_MASK: u64 = 0x5555_5555_5555_5555;

/// Clears all bits at positions `>= used_bits` across the word vector.
fn mask_tail(words: &mut [u64], used_bits: usize) {
    let full_words = used_bits / 64;
    let rem = used_bits % 64;
    if full_words < words.len() {
        if rem > 0 {
            words[full_words] &= (1u64 << rem) - 1;
            for w in &mut words[full_words + 1..] {
                *w = 0;
            }
        } else {
            for w in &mut words[full_words..] {
                *w = 0;
            }
        }
    }
}

impl fmt::Debug for Cube {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Cube(")?;
        fmt::Display::fmt(self, f)?;
        write!(f, ")")
    }
}

impl fmt::Display for Cube {
    /// Espresso-style textual form: one character per variable
    /// (`0`, `1` or `-`), a space, then one character per output
    /// (`1` = member, `0` = not).
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for var in 0..self.num_inputs() {
            let c = match self.var_state(var) {
                VarState::DontCare => '-',
                VarState::Literal(Phase::Positive) => '1',
                VarState::Literal(Phase::Negative) => '0',
                VarState::Empty => '#',
            };
            write!(f, "{c}")?;
        }
        if self.num_outputs() > 0 {
            write!(f, " ")?;
            for out in 0..self.num_outputs() {
                write!(f, "{}", if self.output(out) { '1' } else { '0' })?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn universe_has_no_literals_and_all_outputs() {
        let u = Cube::universe(5, 3);
        assert_eq!(u.literal_count(), 0);
        assert_eq!(u.output_count(), 3);
        assert!(!u.is_empty());
        assert!(u.is_input_universe());
    }

    #[test]
    fn literal_roundtrip() {
        let mut c = Cube::universe(40, 1);
        c.set_literal(0, Phase::Positive);
        c.set_literal(33, Phase::Negative);
        assert_eq!(c.var_state(0), VarState::Literal(Phase::Positive));
        assert_eq!(c.var_state(33), VarState::Literal(Phase::Negative));
        assert_eq!(c.var_state(5), VarState::DontCare);
        assert_eq!(c.literal_count(), 2);
        c.clear_literal(0);
        assert_eq!(c.literal_count(), 1);
    }

    #[test]
    fn minterm_evaluates_only_its_assignment() {
        let m = Cube::minterm(4, 0b1010, &[0], 1);
        assert!(m.evaluate(0b1010));
        for a in 0..16u64 {
            if a != 0b1010 {
                assert!(!m.evaluate(a), "assignment {a:04b} should not match");
            }
        }
    }

    #[test]
    fn intersection_of_conflicting_literals_is_empty() {
        let a = Cube::universe(3, 1).with_literal(1, Phase::Positive);
        let b = Cube::universe(3, 1).with_literal(1, Phase::Negative);
        assert!(a.intersection(&b).is_none());
        assert_eq!(a.input_distance(&b), 1);
        assert!(!a.input_intersects(&b));
    }

    #[test]
    fn intersection_merges_literals() {
        let a = Cube::universe(3, 2).with_literal(0, Phase::Positive);
        let b = Cube::universe(3, 2).with_literal(2, Phase::Negative);
        let c = a.intersection(&b).expect("non-empty");
        assert_eq!(c.literal_count(), 2);
        assert!(c.evaluate(0b001));
        assert!(!c.evaluate(0b000));
    }

    #[test]
    fn containment_is_reflexive_and_respects_literals() {
        let big = Cube::universe(4, 1).with_literal(0, Phase::Positive);
        let small = big.clone().with_literal(2, Phase::Negative);
        assert!(big.contains(&big));
        assert!(big.contains(&small));
        assert!(!small.contains(&big));
    }

    #[test]
    fn output_containment_matters() {
        let both = Cube::universe(2, 2);
        let one = Cube::universe(2, 2).with_output(1, false);
        assert!(both.contains(&one));
        assert!(!one.contains(&both));
    }

    #[test]
    fn supercube_removes_conflicting_literal() {
        let a = Cube::universe(3, 1).with_literal(1, Phase::Positive);
        let b = Cube::universe(3, 1).with_literal(1, Phase::Negative);
        let s = a.supercube(&b);
        assert_eq!(s.literal_count(), 0);
    }

    #[test]
    fn cofactor_literal_drops_matching_literal() {
        let c = Cube::universe(3, 1)
            .with_literal(0, Phase::Positive)
            .with_literal(1, Phase::Negative);
        let cof = c.cofactor_literal(0, Phase::Positive).expect("compatible");
        assert_eq!(cof.literal_count(), 1);
        assert!(c.cofactor_literal(0, Phase::Negative).is_none());
    }

    #[test]
    fn display_matches_espresso_convention() {
        let c = Cube::universe(4, 2)
            .with_literal(0, Phase::Positive)
            .with_literal(3, Phase::Negative)
            .with_output(1, false);
        assert_eq!(c.to_string(), "1--0 10");
    }

    #[test]
    fn minterm_count() {
        let c = Cube::universe(5, 1).with_literal(0, Phase::Positive);
        assert_eq!(c.input_minterm_count(), 16);
    }
}
