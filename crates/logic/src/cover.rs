//! Multi-output covers (sums of products) built from [`Cube`]s.

use crate::cube::{Cube, Phase, VarState};
use crate::error::LogicError;
use std::fmt;

/// A multi-output sum-of-products: a list of [`Cube`]s over a common number
/// of inputs and outputs.
///
/// This is the object the paper calls the *function matrix* source: each
/// cube becomes a minterm (product) row with 1s at its literal columns and at
/// the membership column of every output it drives.
///
/// # Examples
///
/// ```
/// use xbar_logic::{Cover, Cube, Phase};
///
/// // f = x0·x1 + x̄2  (3 inputs, 1 output)
/// let mut cover = Cover::new(3, 1);
/// cover.push(
///     Cube::universe(3, 1)
///         .with_literal(0, Phase::Positive)
///         .with_literal(1, Phase::Positive),
/// );
/// cover.push(Cube::universe(3, 1).with_literal(2, Phase::Negative));
/// assert_eq!(cover.evaluate(0b011), vec![true]);
/// assert_eq!(cover.evaluate(0b100), vec![false]);
/// ```
#[derive(Clone, PartialEq, Eq)]
pub struct Cover {
    num_inputs: usize,
    num_outputs: usize,
    cubes: Vec<Cube>,
}

impl Cover {
    /// An empty cover (constant-0 for every output).
    #[must_use]
    pub fn new(num_inputs: usize, num_outputs: usize) -> Self {
        Self {
            num_inputs,
            num_outputs,
            cubes: Vec::new(),
        }
    }

    /// Builds a cover from cubes, validating that each cube has matching
    /// dimensions.
    ///
    /// # Errors
    ///
    /// Returns [`LogicError::DimensionMismatch`] if any cube disagrees on
    /// input/output counts.
    pub fn from_cubes(
        num_inputs: usize,
        num_outputs: usize,
        cubes: impl IntoIterator<Item = Cube>,
    ) -> Result<Self, LogicError> {
        let mut cover = Self::new(num_inputs, num_outputs);
        for cube in cubes {
            if cube.num_inputs() != num_inputs || cube.num_outputs() != num_outputs {
                return Err(LogicError::DimensionMismatch {
                    expected_inputs: num_inputs,
                    expected_outputs: num_outputs,
                    got_inputs: cube.num_inputs(),
                    got_outputs: cube.num_outputs(),
                });
            }
            cover.cubes.push(cube);
        }
        Ok(cover)
    }

    /// Parses a cover from espresso-style cube lines, e.g. `"1-0 1"`.
    ///
    /// Each line is `num_inputs` characters of `{0,1,-}`, optional
    /// whitespace, then `num_outputs` characters of `{0,1,~,4}` (espresso
    /// treats `1` as ON-set membership; everything else is ignored here).
    ///
    /// # Errors
    ///
    /// Returns [`LogicError::ParsePla`] on malformed lines.
    pub fn parse_cubes(
        num_inputs: usize,
        num_outputs: usize,
        lines: &str,
    ) -> Result<Self, LogicError> {
        let mut cover = Self::new(num_inputs, num_outputs);
        for (lineno, line) in lines.lines().enumerate() {
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            let cube =
                crate::pla::parse_cube_line(line, num_inputs, num_outputs).map_err(|message| {
                    LogicError::ParsePla {
                        line: lineno + 1,
                        message,
                    }
                })?;
            cover.cubes.push(cube);
        }
        Ok(cover)
    }

    /// Number of input variables.
    #[must_use]
    pub fn num_inputs(&self) -> usize {
        self.num_inputs
    }

    /// Number of outputs.
    #[must_use]
    pub fn num_outputs(&self) -> usize {
        self.num_outputs
    }

    /// Number of cubes (the paper's `P`, product count, when the cover is a
    /// minimized multi-output SOP).
    #[must_use]
    pub fn len(&self) -> usize {
        self.cubes.len()
    }

    /// True when the cover holds no cubes.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.cubes.is_empty()
    }

    /// The cubes of the cover.
    #[must_use]
    pub fn cubes(&self) -> &[Cube] {
        &self.cubes
    }

    /// Iterates over the cubes.
    pub fn iter(&self) -> std::slice::Iter<'_, Cube> {
        self.cubes.iter()
    }

    /// Appends a cube.
    ///
    /// # Panics
    ///
    /// Panics if the cube's dimensions disagree with the cover's.
    pub fn push(&mut self, cube: Cube) {
        assert_eq!(cube.num_inputs(), self.num_inputs, "cube input arity");
        assert_eq!(cube.num_outputs(), self.num_outputs, "cube output arity");
        self.cubes.push(cube);
    }

    /// Removes and returns the cube at `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of bounds.
    pub fn remove(&mut self, index: usize) -> Cube {
        self.cubes.remove(index)
    }

    /// Retains only cubes matching the predicate.
    pub fn retain(&mut self, f: impl FnMut(&Cube) -> bool) {
        self.cubes.retain(f);
    }

    /// Evaluates all outputs on a complete input assignment.
    #[must_use]
    pub fn evaluate(&self, assignment: u64) -> Vec<bool> {
        let mut out = vec![false; self.num_outputs];
        for cube in &self.cubes {
            if cube.evaluate(assignment) {
                for o in cube.outputs() {
                    out[o] = true;
                }
            }
        }
        out
    }

    /// Evaluates a single output on a complete input assignment.
    #[must_use]
    pub fn evaluate_output(&self, assignment: u64, output: usize) -> bool {
        self.cubes
            .iter()
            .any(|c| c.output(output) && c.evaluate(assignment))
    }

    /// The single-output restriction of the cover to `output`: cubes driving
    /// that output, with a 1-output output part.
    #[must_use]
    pub fn output_cover(&self, output: usize) -> Cover {
        let mut cover = Cover::new(self.num_inputs, 1);
        for cube in &self.cubes {
            if cube.output(output) {
                let mut c = Cube::universe(self.num_inputs, 1);
                for (var, phase) in cube.literals() {
                    c.set_literal(var, phase);
                }
                cover.cubes.push(c);
            }
        }
        cover
    }

    /// Re-targets a single-output cover onto output `output` of a
    /// `num_outputs`-output function.
    ///
    /// # Panics
    ///
    /// Panics if `self` is not single-output or `output >= num_outputs`.
    #[must_use]
    pub fn into_output_of(self, output: usize, num_outputs: usize) -> Cover {
        assert_eq!(self.num_outputs, 1, "expected a single-output cover");
        assert!(output < num_outputs, "output index out of range");
        let mut cover = Cover::new(self.num_inputs, num_outputs);
        for cube in self.cubes {
            let mut c = Cube::universe(self.num_inputs, num_outputs);
            for (var, phase) in cube.literals() {
                c.set_literal(var, phase);
            }
            for o in 0..num_outputs {
                c.set_output(o, o == output);
            }
            cover.cubes.push(c);
        }
        cover
    }

    /// Merges several single-output covers into one multi-output cover
    /// (no cube sharing; cubes are concatenated).
    ///
    /// # Panics
    ///
    /// Panics if any cover is not single-output or input arities disagree.
    #[must_use]
    pub fn from_single_outputs(covers: &[Cover]) -> Cover {
        assert!(!covers.is_empty(), "need at least one cover");
        let num_inputs = covers[0].num_inputs;
        let num_outputs = covers.len();
        let mut merged = Cover::new(num_inputs, num_outputs);
        for (o, cover) in covers.iter().enumerate() {
            assert_eq!(cover.num_inputs, num_inputs, "input arity mismatch");
            assert_eq!(cover.num_outputs, 1, "expected single-output covers");
            for cube in &cover.cubes {
                let mut c = Cube::universe(num_inputs, num_outputs);
                for (var, phase) in cube.literals() {
                    c.set_literal(var, phase);
                }
                for oo in 0..num_outputs {
                    c.set_output(oo, oo == o);
                }
                merged.cubes.push(c);
            }
        }
        merged
    }

    /// Merges identical input parts driving different outputs into shared
    /// multi-output cubes (the inverse of naive concatenation; reduces `P`).
    #[must_use]
    pub fn share_identical_products(&self) -> Cover {
        let mut merged: Vec<Cube> = Vec::with_capacity(self.cubes.len());
        'outer: for cube in &self.cubes {
            for existing in &mut merged {
                if same_input_part(existing, cube) {
                    for o in cube.outputs() {
                        existing.set_output(o, true);
                    }
                    continue 'outer;
                }
            }
            merged.push(cube.clone());
        }
        let mut cover = Cover::new(self.num_inputs, self.num_outputs);
        cover.cubes = merged;
        cover
    }

    /// Removes cubes whose input part is empty or which drive no output.
    pub fn drop_empty_cubes(&mut self) {
        self.cubes.retain(|c| !c.is_empty());
    }

    /// Removes cubes single-cube-contained in another cube of the cover.
    pub fn drop_contained_cubes(&mut self) {
        let mut keep = vec![true; self.cubes.len()];
        for i in 0..self.cubes.len() {
            if !keep[i] {
                continue;
            }
            for j in 0..self.cubes.len() {
                if i == j || !keep[j] {
                    continue;
                }
                if self.cubes[j].contains(&self.cubes[i])
                    && (i > j || !self.cubes[i].contains(&self.cubes[j]))
                {
                    keep[i] = false;
                    break;
                }
            }
        }
        let mut idx = 0;
        self.cubes.retain(|_| {
            let k = keep[idx];
            idx += 1;
            k
        });
    }

    /// Total literal count across all cubes (the NAND-plane switch count of
    /// the two-level crossbar implementation).
    #[must_use]
    pub fn total_literals(&self) -> usize {
        self.cubes.iter().map(Cube::literal_count).sum()
    }

    /// Total number of (cube, output) membership pairs (the AND-plane switch
    /// count of the two-level crossbar implementation).
    #[must_use]
    pub fn total_output_memberships(&self) -> usize {
        self.cubes.iter().map(Cube::output_count).sum()
    }

    /// Returns the set of variables that actually appear as literals.
    #[must_use]
    pub fn support(&self) -> Vec<usize> {
        let mut used = vec![false; self.num_inputs];
        for cube in &self.cubes {
            for (var, _) in cube.literals() {
                used[var] = true;
            }
        }
        (0..self.num_inputs).filter(|&v| used[v]).collect()
    }

    /// Truth-table equivalence against another cover (exhaustive over all
    /// `2^n` assignments).
    ///
    /// # Panics
    ///
    /// Panics if dimensions disagree or `num_inputs > 24` (exhaustive check
    /// would be too large).
    #[must_use]
    pub fn equivalent(&self, other: &Cover) -> bool {
        assert_eq!(self.num_inputs, other.num_inputs);
        assert_eq!(self.num_outputs, other.num_outputs);
        assert!(
            self.num_inputs <= 24,
            "exhaustive equivalence limited to 24 inputs"
        );
        for a in 0..1u64 << self.num_inputs {
            if self.evaluate(a) != other.evaluate(a) {
                return false;
            }
        }
        true
    }
}

/// True when both cubes constrain their input variables identically.
fn same_input_part(a: &Cube, b: &Cube) -> bool {
    debug_assert_eq!(a.num_inputs(), b.num_inputs());
    (0..a.num_inputs()).all(|v| match (a.var_state(v), b.var_state(v)) {
        (VarState::DontCare, VarState::DontCare) => true,
        (VarState::Literal(p), VarState::Literal(q)) => p == q,
        (VarState::Empty, VarState::Empty) => true,
        _ => false,
    })
}

impl fmt::Debug for Cover {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Cover(inputs={}, outputs={}, cubes={})",
            self.num_inputs,
            self.num_outputs,
            self.cubes.len()
        )?;
        for cube in &self.cubes {
            writeln!(f, "  {cube}")?;
        }
        Ok(())
    }
}

impl fmt::Display for Cover {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for cube in &self.cubes {
            writeln!(f, "{cube}")?;
        }
        Ok(())
    }
}

impl<'a> IntoIterator for &'a Cover {
    type Item = &'a Cube;
    type IntoIter = std::slice::Iter<'a, Cube>;

    fn into_iter(self) -> Self::IntoIter {
        self.cubes.iter()
    }
}

impl IntoIterator for Cover {
    type Item = Cube;
    type IntoIter = std::vec::IntoIter<Cube>;

    fn into_iter(self) -> Self::IntoIter {
        self.cubes.into_iter()
    }
}

/// Convenience constructor used pervasively in tests: builds a cube from an
/// espresso-style string such as `"1-0 01"`.
///
/// # Panics
///
/// Panics on malformed input (tests only; library code uses
/// [`Cover::parse_cubes`]).
#[must_use]
pub fn cube(spec: &str) -> Cube {
    let (inp, out) = match spec.split_once(' ') {
        Some((i, o)) => (i, o),
        None => (spec, ""),
    };
    let num_inputs = inp.chars().count();
    let num_outputs = out.chars().count().max(1);
    let mut c = Cube::universe(num_inputs, num_outputs);
    for (i, ch) in inp.chars().enumerate() {
        match ch {
            '1' => c.set_literal(i, Phase::Positive),
            '0' => c.set_literal(i, Phase::Negative),
            '-' | '2' => {}
            _ => panic!("bad input char {ch:?} in cube spec"),
        }
    }
    if out.is_empty() {
        c.set_output(0, true);
    } else {
        for (o, ch) in out.chars().enumerate() {
            c.set_output(o, ch == '1');
        }
    }
    c
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn evaluate_multi_output() {
        let cover = Cover::from_cubes(3, 2, [cube("11- 10"), cube("--0 01")]).expect("dims");
        assert_eq!(cover.evaluate(0b011), vec![true, true]);
        assert_eq!(cover.evaluate(0b111), vec![true, false]);
        assert_eq!(cover.evaluate(0b010), vec![false, true]);
    }

    #[test]
    fn output_cover_extracts_single_function() {
        let cover = Cover::from_cubes(3, 2, [cube("11- 10"), cube("--0 01"), cube("1-1 11")])
            .expect("dims");
        let f0 = cover.output_cover(0);
        assert_eq!(f0.len(), 2);
        assert_eq!(f0.num_outputs(), 1);
        assert!(f0.evaluate_output(0b011, 0));
    }

    #[test]
    fn share_identical_products_merges() {
        let cover = Cover::from_cubes(3, 2, [cube("11- 10"), cube("11- 01"), cube("0-- 10")])
            .expect("dims");
        let shared = cover.share_identical_products();
        assert_eq!(shared.len(), 2);
        assert!(shared.equivalent(&cover));
    }

    #[test]
    fn drop_contained_cubes_removes_redundant() {
        let mut cover =
            Cover::from_cubes(3, 1, [cube("1-- 1"), cube("11- 1"), cube("0-- 1")]).expect("dims");
        cover.drop_contained_cubes();
        assert_eq!(cover.len(), 2);
    }

    #[test]
    fn drop_contained_keeps_one_of_duplicates() {
        let mut cover = Cover::from_cubes(3, 1, [cube("1-- 1"), cube("1-- 1")]).expect("dims");
        cover.drop_contained_cubes();
        assert_eq!(cover.len(), 1);
    }

    #[test]
    fn from_single_outputs_concatenates() {
        let f0 = Cover::from_cubes(2, 1, [cube("1- 1")]).expect("dims");
        let f1 = Cover::from_cubes(2, 1, [cube("-1 1"), cube("00 1")]).expect("dims");
        let merged = Cover::from_single_outputs(&[f0, f1]);
        assert_eq!(merged.num_outputs(), 2);
        assert_eq!(merged.len(), 3);
        assert_eq!(merged.evaluate(0b00), vec![false, true]);
    }

    #[test]
    fn dimension_mismatch_is_an_error() {
        let err = Cover::from_cubes(3, 1, [Cube::universe(2, 1)]).unwrap_err();
        assert!(err.to_string().contains("dimension"));
    }

    #[test]
    fn literal_and_membership_totals() {
        let cover = Cover::from_cubes(3, 2, [cube("11- 10"), cube("--0 11")]).expect("dims");
        assert_eq!(cover.total_literals(), 3);
        assert_eq!(cover.total_output_memberships(), 3);
    }

    #[test]
    fn support_lists_used_variables() {
        let cover = Cover::from_cubes(4, 1, [cube("1--- 1"), cube("--0- 1")]).expect("dims");
        assert_eq!(cover.support(), vec![0, 2]);
    }
}
