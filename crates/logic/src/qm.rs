//! Exact two-level minimization (Quine–McCluskey + branch-and-bound cover)
//! for small single-output functions.
//!
//! Used as the exactness oracle for the heuristic minimizer in tests and for
//! synthesizing the mathematically defined benchmarks where the paper's
//! product counts correspond to minimum covers.

use crate::cover::Cover;
use crate::cube::{Cube, Phase};
use crate::error::LogicError;
use crate::truth::TruthTable;
use std::collections::HashSet;

/// An implicant over `n ≤ 32` variables: `values` gives the literal phases,
/// `mask` has a 1 for every *don't-care* position.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
struct Implicant {
    values: u32,
    mask: u32,
}

impl Implicant {
    fn to_cube(self, num_inputs: usize) -> Cube {
        let mut cube = Cube::universe(num_inputs, 1);
        for var in 0..num_inputs {
            if self.mask >> var & 1 == 0 {
                cube.set_literal(var, Phase::from_bool(self.values >> var & 1 == 1));
            }
        }
        cube
    }
}

/// Maximum inputs accepted by the exact minimizer.
pub const MAX_QM_INPUTS: usize = 14;

/// All prime implicants of output `out` of the table (ON minterms only; no
/// don't-care support — the exact path is used on completely specified
/// functions).
///
/// # Errors
///
/// Returns [`LogicError::TooManyInputs`] above [`MAX_QM_INPUTS`] inputs.
pub fn prime_implicants(table: &TruthTable, out: usize) -> Result<Cover, LogicError> {
    let n = table.num_inputs();
    if n > MAX_QM_INPUTS {
        return Err(LogicError::TooManyInputs {
            inputs: n,
            limit: MAX_QM_INPUTS,
        });
    }
    let minterms: Vec<u32> = (0..1u64 << n)
        .filter(|&a| table.value(a, out))
        .map(|a| a as u32)
        .collect();

    let mut current: HashSet<Implicant> = minterms
        .iter()
        .map(|&m| Implicant { values: m, mask: 0 })
        .collect();
    let mut primes: HashSet<Implicant> = HashSet::new();

    while !current.is_empty() {
        let list: Vec<Implicant> = current.iter().copied().collect();
        let mut merged_flags = vec![false; list.len()];
        let mut next: HashSet<Implicant> = HashSet::new();
        for i in 0..list.len() {
            for j in i + 1..list.len() {
                let (a, b) = (list[i], list[j]);
                if a.mask != b.mask {
                    continue;
                }
                let diff = a.values ^ b.values;
                if diff.count_ones() == 1 {
                    merged_flags[i] = true;
                    merged_flags[j] = true;
                    next.insert(Implicant {
                        values: a.values & !diff,
                        mask: a.mask | diff,
                    });
                }
            }
        }
        for (i, &imp) in list.iter().enumerate() {
            if !merged_flags[i] {
                primes.insert(imp);
            }
        }
        current = next;
    }

    let mut sorted: Vec<Implicant> = primes.into_iter().collect();
    sorted.sort();
    Cover::from_cubes(n, 1, sorted.into_iter().map(|p| p.to_cube(n)))
}

/// Exact minimum single-output cover via prime implicants + essential-prime
/// extraction + branch-and-bound set cover. `node_limit` bounds the search;
/// when exceeded, the best cover found so far is returned (still correct,
/// possibly non-minimum).
///
/// # Errors
///
/// Returns [`LogicError::TooManyInputs`] above [`MAX_QM_INPUTS`] inputs.
pub fn minimize_exact(
    table: &TruthTable,
    out: usize,
    node_limit: usize,
) -> Result<Cover, LogicError> {
    let n = table.num_inputs();
    let primes_cover = prime_implicants(table, out)?;
    let primes: Vec<Cube> = primes_cover.iter().cloned().collect();
    let minterms: Vec<u64> = (0..1u64 << n).filter(|&a| table.value(a, out)).collect();
    if minterms.is_empty() {
        return Ok(Cover::new(n, 1));
    }

    // covers[p] = bitset of minterm indices covered by prime p.
    let covers: Vec<Vec<usize>> = primes
        .iter()
        .map(|p| {
            minterms
                .iter()
                .enumerate()
                .filter(|&(_, &m)| p.evaluate(m))
                .map(|(i, _)| i)
                .collect()
        })
        .collect();
    // For each minterm, which primes cover it.
    let mut covered_by: Vec<Vec<usize>> = vec![Vec::new(); minterms.len()];
    for (p, list) in covers.iter().enumerate() {
        for &m in list {
            covered_by[m].push(p);
        }
    }

    // Essential primes: sole cover of some minterm.
    let mut chosen: Vec<usize> = Vec::new();
    let mut covered = vec![false; minterms.len()];
    for primes in &covered_by {
        if primes.len() == 1 {
            let p = primes[0];
            if !chosen.contains(&p) {
                chosen.push(p);
                for &mm in &covers[p] {
                    covered[mm] = true;
                }
            }
        }
    }

    // Branch and bound over the remaining minterms.
    struct Search<'a> {
        covers: &'a [Vec<usize>],
        covered_by: &'a [Vec<usize>],
        best: Vec<usize>,
        nodes: usize,
        node_limit: usize,
    }
    impl Search<'_> {
        fn run(&mut self, covered: &mut [bool], chosen: &mut Vec<usize>) {
            self.nodes += 1;
            if self.nodes > self.node_limit {
                return;
            }
            let Some(first_uncovered) = covered.iter().position(|&c| !c) else {
                if self.best.is_empty() || chosen.len() < self.best.len() {
                    self.best = chosen.clone();
                }
                return;
            };
            // Prune: adding at least one more prime cannot beat the best.
            if !self.best.is_empty() && chosen.len() + 1 >= self.best.len() {
                return;
            }
            // Branch on each prime covering the first uncovered minterm,
            // preferring primes that cover the most uncovered minterms.
            let mut candidates: Vec<usize> = self.covered_by[first_uncovered].clone();
            candidates.sort_by_key(|&p| {
                std::cmp::Reverse(self.covers[p].iter().filter(|&&m| !covered[m]).count())
            });
            for p in candidates {
                let newly: Vec<usize> = self.covers[p]
                    .iter()
                    .copied()
                    .filter(|&m| !covered[m])
                    .collect();
                for &m in &newly {
                    covered[m] = true;
                }
                chosen.push(p);
                self.run(covered, chosen);
                chosen.pop();
                for &m in &newly {
                    covered[m] = false;
                }
            }
        }
    }

    let mut search = Search {
        covers: &covers,
        covered_by: &covered_by,
        best: Vec::new(),
        nodes: 0,
        node_limit,
    };
    let mut chosen_work = chosen.clone();
    let mut covered_work = covered.clone();
    search.run(&mut covered_work, &mut chosen_work);

    let selected: Vec<usize> = if search.best.is_empty() {
        // Node limit hit before any complete cover: greedy fallback.
        let mut sel = chosen;
        let mut cov = covered;
        while let Some(_m) = cov.iter().position(|&c| !c) {
            let p = (0..primes.len())
                .max_by_key(|&p| covers[p].iter().filter(|&&mm| !cov[mm]).count())
                .expect("primes cover all minterms");
            sel.push(p);
            for &mm in &covers[p] {
                cov[mm] = true;
            }
        }
        sel
    } else {
        search.best
    };

    Cover::from_cubes(n, 1, selected.into_iter().map(|p| primes[p].clone()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primes_of_majority() {
        let table = TruthTable::from_fn(3, 1, |a| vec![a.count_ones() >= 2]).expect("small");
        let primes = prime_implicants(&table, 0).expect("small");
        // Majority-of-3 has exactly 3 primes: ab, ac, bc.
        assert_eq!(primes.len(), 3);
        for cube in primes.iter() {
            assert_eq!(cube.literal_count(), 2);
        }
    }

    #[test]
    fn exact_cover_of_majority() {
        let table = TruthTable::from_fn(3, 1, |a| vec![a.count_ones() >= 2]).expect("small");
        let min = minimize_exact(&table, 0, 100_000).expect("small");
        assert_eq!(min.len(), 3);
        assert!(table.matches_cover(&min));
    }

    #[test]
    fn exact_cover_of_parity_uses_all_minterms() {
        let table = TruthTable::from_fn(4, 1, |a| vec![a.count_ones() % 2 == 1]).expect("small");
        let min = minimize_exact(&table, 0, 100_000).expect("small");
        assert_eq!(min.len(), 8);
        assert!(table.matches_cover(&min));
    }

    #[test]
    fn exact_cover_of_constant_zero_is_empty() {
        let table = TruthTable::new(3, 1).expect("small");
        let min = minimize_exact(&table, 0, 1000).expect("small");
        assert!(min.is_empty());
    }

    #[test]
    fn exact_cover_of_constant_one_is_universe() {
        let table = TruthTable::from_fn(3, 1, |_| vec![true]).expect("small");
        let min = minimize_exact(&table, 0, 1000).expect("small");
        assert_eq!(min.len(), 1);
        assert_eq!(min.cubes()[0].literal_count(), 0);
    }

    #[test]
    fn exact_never_worse_than_heuristic() {
        use crate::minimize::{minimize, MinimizeOptions};
        for seed in 0..6u64 {
            let table = TruthTable::from_fn(4, 1, |a| {
                vec![(a.wrapping_mul(2654435761 + seed * 97) >> 3) & 1 == 1]
            })
            .expect("small");
            let exact = minimize_exact(&table, 0, 1_000_000).expect("small");
            let on = table.minterm_cover();
            let dc = Cover::new(4, 1);
            let heur = minimize(&on, &dc, MinimizeOptions::default());
            assert!(table.matches_cover(&exact));
            assert!(table.matches_cover(&heur));
            assert!(
                exact.len() <= heur.len(),
                "seed {seed}: exact {} > heuristic {}",
                exact.len(),
                heur.len()
            );
        }
    }

    #[test]
    fn too_many_inputs_is_error() {
        let table = TruthTable::new(15, 1);
        // TruthTable allows 15; QM does not.
        let table = table.expect("truth table ok");
        assert!(prime_implicants(&table, 0).is_err());
    }
}
