//! Cover analysis utilities: cofactors, unateness and essential primes —
//! the standard two-level analysis toolbox a downstream user of an
//! espresso-style library expects.

use crate::calculus::cover_contains_input_cube;
use crate::cover::Cover;
use crate::cube::{Cube, Phase, VarState};
use crate::error::LogicError;
use crate::qm::{minimize_exact, prime_implicants};
use crate::truth::TruthTable;

/// Shannon cofactor of a single-output cover with respect to `var = phase`.
///
/// # Panics
///
/// Panics when the cover is not single-output or `var` is out of range.
#[must_use]
pub fn cofactor(cover: &Cover, var: usize, phase: Phase) -> Cover {
    assert_eq!(
        cover.num_outputs(),
        1,
        "cofactor expects single-output covers"
    );
    assert!(var < cover.num_inputs(), "variable out of range");
    let mut out = Cover::new(cover.num_inputs(), 1);
    for cube in cover.iter() {
        if let Some(c) = cube.cofactor_literal(var, phase) {
            out.push(c);
        }
    }
    out
}

/// Polarity of a variable across a cover.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VarPolarity {
    /// The variable never appears.
    Unused,
    /// Appears only positively (the cover is positive unate in it).
    PositiveUnate,
    /// Appears only negatively (negative unate).
    NegativeUnate,
    /// Appears in both phases (binate).
    Binate,
}

/// Syntactic polarity of `var` in the cover.
///
/// # Panics
///
/// Panics when `var` is out of range.
#[must_use]
pub fn var_polarity(cover: &Cover, var: usize) -> VarPolarity {
    assert!(var < cover.num_inputs(), "variable out of range");
    let mut pos = false;
    let mut neg = false;
    for cube in cover.iter() {
        match cube.var_state(var) {
            VarState::Literal(Phase::Positive) => pos = true,
            VarState::Literal(Phase::Negative) => neg = true,
            _ => {}
        }
    }
    match (pos, neg) {
        (false, false) => VarPolarity::Unused,
        (true, false) => VarPolarity::PositiveUnate,
        (false, true) => VarPolarity::NegativeUnate,
        (true, true) => VarPolarity::Binate,
    }
}

/// Whether the cover is (syntactically) unate: no variable appears in both
/// phases.
#[must_use]
pub fn is_unate(cover: &Cover) -> bool {
    (0..cover.num_inputs()).all(|v| var_polarity(cover, v) != VarPolarity::Binate)
}

/// The essential prime implicants of output `out`: primes covering at
/// least one minterm no other prime covers. Every minimum cover must
/// contain all of them.
///
/// # Errors
///
/// Returns [`LogicError::TooManyInputs`] when the function exceeds the
/// exact-minimization input limit.
pub fn essential_primes(table: &TruthTable, out: usize) -> Result<Cover, LogicError> {
    let primes = prime_implicants(table, out)?;
    let n = table.num_inputs();
    let mut essential = Cover::new(n, 1);
    for (i, prime) in primes.iter().enumerate() {
        // Is there a minterm covered by `prime` and by no other prime?
        let mut found_private = false;
        'minterms: for a in 0..1u64 << n {
            if !table.value(a, out) || !prime.evaluate(a) {
                continue;
            }
            for (j, other) in primes.iter().enumerate() {
                if j != i && other.evaluate(a) {
                    continue 'minterms;
                }
            }
            found_private = true;
            break;
        }
        if found_private {
            essential.push(prime.clone());
        }
    }
    Ok(essential)
}

/// Checks two single-output covers for functional equivalence via the
/// containment test in both directions (no truth table; works beyond the
/// exhaustive input limit).
#[must_use]
pub fn covers_equivalent(a: &Cover, b: &Cover) -> bool {
    assert_eq!(a.num_inputs(), b.num_inputs());
    assert_eq!(
        a.num_outputs(),
        1,
        "containment equivalence is single-output"
    );
    assert_eq!(
        b.num_outputs(),
        1,
        "containment equivalence is single-output"
    );
    a.iter().all(|c| cover_contains_input_cube(b, &strip(c)))
        && b.iter().all(|c| cover_contains_input_cube(a, &strip(c)))
}

fn strip(cube: &Cube) -> Cube {
    let mut c = Cube::universe(cube.num_inputs(), 1);
    for (var, phase) in cube.literals() {
        c.set_literal(var, phase);
    }
    c
}

/// Exact minimum cover size of output `out` (QM + branch-and-bound); a
/// quality oracle for the heuristic minimizer.
///
/// # Errors
///
/// Returns [`LogicError::TooManyInputs`] beyond the exact limit.
pub fn minimum_cover_size(table: &TruthTable, out: usize) -> Result<usize, LogicError> {
    Ok(minimize_exact(table, out, 2_000_000)?.len())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cover::cube;

    #[test]
    fn cofactor_drops_and_filters() {
        let f = Cover::from_cubes(3, 1, [cube("11- 1"), cube("0-1 1")]).expect("dims");
        let f_x0 = cofactor(&f, 0, Phase::Positive);
        assert_eq!(f_x0.len(), 1);
        assert_eq!(f_x0.cubes()[0].literal_count(), 1);
        let f_nx0 = cofactor(&f, 0, Phase::Negative);
        assert_eq!(f_nx0.len(), 1);
    }

    #[test]
    fn shannon_expansion_identity() {
        // f = x·f_x + x̄·f_x̄ for all assignments.
        let f = Cover::from_cubes(4, 1, [cube("1-0- 1"), cube("-11- 1"), cube("0--1 1")])
            .expect("dims");
        for var in 0..4 {
            let fp = cofactor(&f, var, Phase::Positive);
            let fn_ = cofactor(&f, var, Phase::Negative);
            for a in 0..16u64 {
                let expected = f.evaluate_output(a, 0);
                let branch = if a >> var & 1 == 1 { &fp } else { &fn_ };
                assert_eq!(
                    branch.evaluate_output(a, 0),
                    expected,
                    "var {var}, a {a:04b}"
                );
            }
        }
    }

    #[test]
    fn polarity_detection() {
        let f = Cover::from_cubes(3, 1, [cube("1-0 1"), cube("1-- 1")]).expect("dims");
        assert_eq!(var_polarity(&f, 0), VarPolarity::PositiveUnate);
        assert_eq!(var_polarity(&f, 1), VarPolarity::Unused);
        assert_eq!(var_polarity(&f, 2), VarPolarity::NegativeUnate);
        assert!(is_unate(&f));
        let g = Cover::from_cubes(2, 1, [cube("1- 1"), cube("0- 1")]).expect("dims");
        assert_eq!(var_polarity(&g, 0), VarPolarity::Binate);
        assert!(!is_unate(&g));
    }

    #[test]
    fn essential_primes_of_majority_are_all_three() {
        let table = TruthTable::from_fn(3, 1, |a| vec![a.count_ones() >= 2]).expect("small");
        let essential = essential_primes(&table, 0).expect("small");
        assert_eq!(essential.len(), 3, "all majority primes are essential");
    }

    #[test]
    fn cyclic_cover_has_no_essential_primes() {
        // The classic cyclic function: f = x̄1x̄2 + x2x̄3 + x1x3 +
        // (cyclic complement chain); simplest: f with minterms arranged so
        // every prime's minterms are shared. Use f = parity's complement of
        // ... easier: verify a function where essentials ⊂ primes.
        let table =
            TruthTable::from_fn(3, 1, |a| vec![[1u64, 2, 3, 4, 5, 6].contains(&a)]).expect("small");
        let primes = prime_implicants(&table, 0).expect("small");
        let essential = essential_primes(&table, 0).expect("small");
        assert!(essential.len() <= primes.len());
        // Every essential prime is a prime.
        for e in essential.iter() {
            assert!(primes.iter().any(|p| p == e));
        }
    }

    #[test]
    fn containment_equivalence_matches_truth_tables() {
        let a = Cover::from_cubes(3, 1, [cube("11- 1"), cube("--0 1")]).expect("dims");
        // Same function, different cover: x0x1x2 + x̄2.
        let b = Cover::from_cubes(3, 1, [cube("111 1"), cube("--0 1")]).expect("dims");
        assert!(covers_equivalent(&a, &b));
        let c = Cover::from_cubes(3, 1, [cube("11- 1")]).expect("dims");
        assert!(!covers_equivalent(&a, &c));
    }

    #[test]
    fn minimum_cover_size_oracle() {
        let table = TruthTable::from_fn(4, 1, |a| vec![a.count_ones() >= 3]).expect("small");
        // Threshold-3-of-4: minimum cover is the 4 three-literal primes.
        assert_eq!(minimum_cover_size(&table, 0).expect("small"), 4);
    }
}
