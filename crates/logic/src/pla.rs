//! Reader and writer for the Berkeley/espresso PLA format, the container of
//! the IWLS93/MCNC benchmark circuits the paper maps onto crossbars.
//!
//! Supported directives: `.i`, `.o`, `.p`, `.ilb`, `.ob`, `.type`, `.e`/
//! `.end`. Cube lines follow espresso's conventions: `{0,1,-,2}` for inputs,
//! `{0,1,-,~,2,3,4}` for outputs (with `1`/`4` meaning ON-set membership,
//! `-`/`2` don't-care, everything else OFF).

use crate::cover::Cover;
use crate::cube::{Cube, Phase};
use crate::error::LogicError;
use std::fmt::Write as _;

/// A parsed PLA file: the ON-set cover, the optional DC-set cover, and
/// signal names when present.
#[derive(Debug, Clone, PartialEq)]
pub struct Pla {
    /// ON-set cover.
    pub on_set: Cover,
    /// Don't-care cover (cubes flagged with output `-`/`2`); empty when the
    /// file declares none.
    pub dc_set: Cover,
    /// `.ilb` input labels (empty if absent).
    pub input_labels: Vec<String>,
    /// `.ob` output labels (empty if absent).
    pub output_labels: Vec<String>,
}

impl Pla {
    /// Wraps an ON-set cover with no don't-cares or labels.
    #[must_use]
    pub fn from_cover(on_set: Cover) -> Self {
        let dc_set = Cover::new(on_set.num_inputs(), on_set.num_outputs());
        Self {
            on_set,
            dc_set,
            input_labels: Vec::new(),
            output_labels: Vec::new(),
        }
    }

    /// Parses PLA text.
    ///
    /// # Errors
    ///
    /// Returns [`LogicError::ParsePla`] on malformed directives or cube
    /// lines, or when `.i`/`.o` are missing before the first cube.
    pub fn parse(text: &str) -> Result<Self, LogicError> {
        let mut num_inputs: Option<usize> = None;
        let mut num_outputs: Option<usize> = None;
        let mut input_labels = Vec::new();
        let mut output_labels = Vec::new();
        let mut on_cubes: Vec<Cube> = Vec::new();
        let mut dc_cubes: Vec<Cube> = Vec::new();

        for (lineno, raw) in text.lines().enumerate() {
            let line = raw.split('#').next().unwrap_or("").trim();
            if line.is_empty() {
                continue;
            }
            let err = |message: String| LogicError::ParsePla {
                line: lineno + 1,
                message,
            };
            if let Some(rest) = line.strip_prefix('.') {
                let mut parts = rest.split_whitespace();
                let keyword = parts.next().unwrap_or("");
                match keyword {
                    "i" => {
                        num_inputs = Some(
                            parts
                                .next()
                                .ok_or_else(|| err(".i needs a count".into()))?
                                .parse()
                                .map_err(|_| err(".i count not a number".into()))?,
                        );
                    }
                    "o" => {
                        num_outputs = Some(
                            parts
                                .next()
                                .ok_or_else(|| err(".o needs a count".into()))?
                                .parse()
                                .map_err(|_| err(".o count not a number".into()))?,
                        );
                    }
                    "p" => { /* product count is advisory */ }
                    "ilb" => input_labels = parts.map(str::to_owned).collect(),
                    "ob" => output_labels = parts.map(str::to_owned).collect(),
                    "type" => { /* fr / fd / f: we treat all as ON + DC */ }
                    "e" | "end" => break,
                    other => {
                        return Err(err(format!("unsupported directive .{other}")));
                    }
                }
                continue;
            }
            let ni = num_inputs.ok_or_else(|| err("cube before .i".into()))?;
            let no = num_outputs.ok_or_else(|| err("cube before .o".into()))?;
            let (cube, is_dc) = parse_cube_line_dc(line, ni, no).map_err(err)?;
            if is_dc {
                dc_cubes.push(cube);
            } else if !cube.is_empty() {
                on_cubes.push(cube);
            }
        }

        let ni = num_inputs.ok_or(LogicError::ParsePla {
            line: 0,
            message: "missing .i directive".into(),
        })?;
        let no = num_outputs.ok_or(LogicError::ParsePla {
            line: 0,
            message: "missing .o directive".into(),
        })?;
        Ok(Self {
            on_set: Cover::from_cubes(ni, no, on_cubes)?,
            dc_set: Cover::from_cubes(ni, no, dc_cubes)?,
            input_labels,
            output_labels,
        })
    }

    /// Serializes to PLA text.
    #[must_use]
    pub fn to_pla_string(&self) -> String {
        let mut s = String::new();
        let _ = writeln!(s, ".i {}", self.on_set.num_inputs());
        let _ = writeln!(s, ".o {}", self.on_set.num_outputs());
        if !self.input_labels.is_empty() {
            let _ = writeln!(s, ".ilb {}", self.input_labels.join(" "));
        }
        if !self.output_labels.is_empty() {
            let _ = writeln!(s, ".ob {}", self.output_labels.join(" "));
        }
        let _ = writeln!(s, ".p {}", self.on_set.len() + self.dc_set.len());
        for cube in self.on_set.iter() {
            let _ = writeln!(s, "{}", format_cube(cube, false));
        }
        for cube in self.dc_set.iter() {
            let _ = writeln!(s, "{}", format_cube(cube, true));
        }
        s.push_str(".e\n");
        s
    }
}

/// Formats one cube as a PLA line.
fn format_cube(cube: &Cube, dc: bool) -> String {
    let mut s = String::with_capacity(cube.num_inputs() + cube.num_outputs() + 1);
    for var in 0..cube.num_inputs() {
        s.push(match cube.var_state(var) {
            crate::cube::VarState::DontCare => '-',
            crate::cube::VarState::Literal(Phase::Positive) => '1',
            crate::cube::VarState::Literal(Phase::Negative) => '0',
            crate::cube::VarState::Empty => '#',
        });
    }
    s.push(' ');
    for out in 0..cube.num_outputs() {
        s.push(if cube.output(out) {
            if dc {
                '-'
            } else {
                '1'
            }
        } else {
            '0'
        });
    }
    s
}

/// Parses one cube line of a PLA body, mapping output `-`/`2` to don't-care.
/// Returns the cube plus whether any output position was a don't-care marker
/// (in which case the cube belongs in the DC set, with its DC outputs set).
fn parse_cube_line_dc(
    line: &str,
    num_inputs: usize,
    num_outputs: usize,
) -> Result<(Cube, bool), String> {
    let compact: Vec<char> = line.chars().filter(|c| !c.is_whitespace()).collect();
    if compact.len() != num_inputs + num_outputs {
        return Err(format!(
            "expected {} characters ({} inputs + {} outputs), found {}",
            num_inputs + num_outputs,
            num_inputs,
            num_outputs,
            compact.len()
        ));
    }
    let mut cube = Cube::universe(num_inputs, num_outputs);
    for (i, &ch) in compact[..num_inputs].iter().enumerate() {
        match ch {
            '1' => cube.set_literal(i, Phase::Positive),
            '0' => cube.set_literal(i, Phase::Negative),
            '-' | '2' | 'x' | 'X' => {}
            other => return Err(format!("bad input character {other:?}")),
        }
    }
    let mut any_dc = false;
    for (o, &ch) in compact[num_inputs..].iter().enumerate() {
        let member = match ch {
            '1' | '4' => true,
            '0' | '~' | '3' => false,
            '-' | '2' => {
                any_dc = true;
                true
            }
            other => return Err(format!("bad output character {other:?}")),
        };
        cube.set_output(o, member);
    }
    Ok((cube, any_dc))
}

/// Parses one cube line, treating output don't-cares as ON (used by
/// [`Cover::parse_cubes`], which has no DC notion).
pub(crate) fn parse_cube_line(
    line: &str,
    num_inputs: usize,
    num_outputs: usize,
) -> Result<Cube, String> {
    parse_cube_line_dc(line, num_inputs, num_outputs).map(|(cube, _)| cube)
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = "\
# a comment
.i 3
.o 2
.ilb a b c
.ob f g
.p 3
1-0 10
011 01
--- 0-
.e
";

    #[test]
    fn parse_sample() {
        let pla = Pla::parse(SAMPLE).expect("valid pla");
        assert_eq!(pla.on_set.num_inputs(), 3);
        assert_eq!(pla.on_set.num_outputs(), 2);
        assert_eq!(pla.on_set.len(), 2);
        assert_eq!(pla.dc_set.len(), 1);
        assert_eq!(pla.input_labels, vec!["a", "b", "c"]);
        assert_eq!(pla.output_labels, vec!["f", "g"]);
    }

    #[test]
    fn roundtrip() {
        let pla = Pla::parse(SAMPLE).expect("valid pla");
        let text = pla.to_pla_string();
        let again = Pla::parse(&text).expect("roundtrip parses");
        assert_eq!(pla.on_set, again.on_set);
        assert_eq!(pla.dc_set, again.dc_set);
    }

    #[test]
    fn cube_before_header_is_error() {
        let err = Pla::parse("1-0 1\n").unwrap_err();
        assert!(err.to_string().contains("before .i"));
    }

    #[test]
    fn bad_length_is_error() {
        let err = Pla::parse(".i 3\n.o 1\n1- 1\n").unwrap_err();
        assert!(err.to_string().contains("expected 4 characters"));
    }

    #[test]
    fn bad_character_is_error() {
        let err = Pla::parse(".i 2\n.o 1\n1z 1\n").unwrap_err();
        assert!(err.to_string().contains("bad input character"));
    }

    #[test]
    fn unknown_directive_is_error() {
        let err = Pla::parse(".i 2\n.o 1\n.frobnicate\n").unwrap_err();
        assert!(err.to_string().contains("unsupported directive"));
    }

    #[test]
    fn whitespace_in_cube_lines_is_tolerated() {
        let pla = Pla::parse(".i 4\n.o 1\n1 0 - 1  1\n.e\n").expect("valid");
        assert_eq!(pla.on_set.len(), 1);
        assert_eq!(pla.on_set.cubes()[0].literal_count(), 3);
    }

    #[test]
    fn all_zero_output_cube_is_dropped() {
        let pla = Pla::parse(".i 2\n.o 1\n11 0\n.e\n").expect("valid");
        assert!(pla.on_set.is_empty());
    }
}
