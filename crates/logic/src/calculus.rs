//! Cover calculus: tautology, containment and complement via the
//! unate-recursive paradigm (the machinery espresso builds on).
//!
//! These operations power the two-level minimizer in [`crate::minimize`] and
//! the dual (negated-circuit) optimization of the paper's Table I/II: the
//! negation of a circuit is obtained by complementing each output's cover.

use crate::cover::Cover;
use crate::cube::{Cube, Phase, VarState};

/// Maximum recursion depth guard (depth is bounded by the variable count, so
/// this only trips on internal errors).
const MAX_DEPTH: usize = 4096;

/// Whether a single-output cover is a tautology (evaluates to 1 on every
/// assignment).
///
/// Uses unate reduction + Shannon expansion on the most binate variable.
///
/// # Examples
///
/// ```
/// use xbar_logic::{Cover, cube, is_tautology};
///
/// let taut = Cover::from_cubes(2, 1, [cube("1- 1"), cube("0- 1")])?;
/// assert!(is_tautology(&taut));
/// let not = Cover::from_cubes(2, 1, [cube("1- 1")])?;
/// assert!(!is_tautology(&not));
/// # Ok::<(), xbar_logic::LogicError>(())
/// ```
#[must_use]
pub fn is_tautology(cover: &Cover) -> bool {
    let cubes: Vec<Cube> = cover.iter().cloned().collect();
    tautology_rec(&cubes, cover.num_inputs(), 0)
}

fn tautology_rec(cubes: &[Cube], num_inputs: usize, depth: usize) -> bool {
    assert!(depth < MAX_DEPTH, "tautology recursion too deep");
    if cubes.iter().any(Cube::is_input_universe) {
        return true;
    }
    if cubes.is_empty() {
        return false;
    }
    // Minterm-count upper bound: if the cubes cannot possibly cover the
    // space even when disjoint, the cover is not a tautology.
    let mut count: u128 = 0;
    let space = 1u128 << num_inputs.min(127);
    for cube in cubes {
        count = count.saturating_add(cube.input_minterm_count());
        if count >= space {
            break;
        }
    }
    if count < space {
        return false;
    }
    match select_binate_variable(cubes, num_inputs) {
        Some(var) => {
            let pos = cofactor_cubes(cubes, var, Phase::Positive);
            if !tautology_rec(&pos, num_inputs, depth + 1) {
                return false;
            }
            let neg = cofactor_cubes(cubes, var, Phase::Negative);
            tautology_rec(&neg, num_inputs, depth + 1)
        }
        None => {
            // Unate cover: tautology iff it contains the universal cube,
            // which was already checked above.
            false
        }
    }
}

/// Cofactors every cube by `var = phase`, dropping incompatible cubes.
fn cofactor_cubes(cubes: &[Cube], var: usize, phase: Phase) -> Vec<Cube> {
    cubes
        .iter()
        .filter_map(|c| c.cofactor_literal(var, phase))
        .collect()
}

/// Picks the "most binate" variable: the one appearing in both phases across
/// the most cubes (ties broken by total occurrence count). Returns `None`
/// when the cover is unate (no variable appears in both phases).
fn select_binate_variable(cubes: &[Cube], num_inputs: usize) -> Option<usize> {
    let mut pos = vec![0usize; num_inputs];
    let mut neg = vec![0usize; num_inputs];
    for cube in cubes {
        for (var, phase) in cube.literals() {
            match phase {
                Phase::Positive => pos[var] += 1,
                Phase::Negative => neg[var] += 1,
            }
        }
    }
    let mut best: Option<(usize, usize, usize)> = None; // (min(pos,neg), total, var)
    for var in 0..num_inputs {
        if pos[var] > 0 && neg[var] > 0 {
            let key = (pos[var].min(neg[var]), pos[var] + neg[var]);
            match best {
                Some((m, t, _)) if (key.0, key.1) <= (m, t) => {}
                _ => best = Some((key.0, key.1, var)),
            }
        }
    }
    best.map(|(_, _, var)| var)
}

/// Picks any variable with a literal (used when the cover is unate but we
/// still need to split, e.g. in complement).
fn select_any_literal_variable(cubes: &[Cube], num_inputs: usize) -> Option<usize> {
    let mut counts = vec![0usize; num_inputs];
    for cube in cubes {
        for (var, _) in cube.literals() {
            counts[var] += 1;
        }
    }
    counts
        .iter()
        .enumerate()
        .filter(|&(_, &c)| c > 0)
        .max_by_key(|&(_, &c)| c)
        .map(|(var, _)| var)
}

/// Whether the input part of `cube` is covered by the single-output `cover`
/// (i.e. every minterm of `cube` is in the cover).
///
/// Computed as tautology of the cover cofactored against the cube.
#[must_use]
pub fn cover_contains_input_cube(cover: &Cover, cube: &Cube) -> bool {
    let free: Vec<usize> = (0..cover.num_inputs())
        .filter(|&v| !matches!(cube.var_state(v), VarState::Literal(_)))
        .collect();
    let mut cofactored: Vec<Cube> = Vec::new();
    'cubes: for c in cover.iter() {
        // Cofactor c against cube's literals.
        let mut cc = c.clone();
        for (var, phase) in cube.literals() {
            match cc.var_state(var) {
                VarState::Literal(p) if p != phase => continue 'cubes,
                VarState::Empty => continue 'cubes,
                _ => cc.clear_literal(var),
            }
        }
        cofactored.push(cc);
    }
    // Tautology over the free variables only; bound literals are now DC in
    // every cofactored cube, so the recursion treats them as free too. The
    // minterm bound must therefore use the full input count, which is what
    // tautology_rec does. That is conservative but correct because bound
    // variables are DC everywhere.
    let _ = free;
    tautology_rec(&cofactored, cover.num_inputs(), 0)
}

/// Whether `cube` (a multi-output cube) is functionally covered by `cover`:
/// for every output the cube drives, the cube's input part lies inside that
/// output's cover.
#[must_use]
pub fn cover_contains_cube(cover: &Cover, cube: &Cube) -> bool {
    for out in cube.outputs() {
        let restricted = cover.output_cover(out);
        let single = single_output_input_part(cube);
        if !cover_contains_input_cube(&restricted, &single) {
            return false;
        }
    }
    true
}

fn single_output_input_part(cube: &Cube) -> Cube {
    let mut c = Cube::universe(cube.num_inputs(), 1);
    for (var, phase) in cube.literals() {
        c.set_literal(var, phase);
    }
    c
}

/// Complement of a single-output cover.
///
/// Recursively splits on the most binate variable; the base cases are the
/// empty cover (complement = universe), a cover containing the universal
/// cube (complement = empty) and the single-cube cover (De Morgan).
///
/// # Panics
///
/// Panics if `cover` is not single-output.
///
/// # Examples
///
/// ```
/// use xbar_logic::{complement, Cover, cube, is_tautology};
///
/// let f = Cover::from_cubes(3, 1, [cube("11- 1"), cube("--0 1")])?;
/// let g = complement(&f);
/// // f + f̄ is a tautology and f · f̄ is empty.
/// let mut union = f.clone();
/// for c in g.iter() { union.push(c.clone()); }
/// assert!(is_tautology(&union));
/// # Ok::<(), xbar_logic::LogicError>(())
/// ```
#[must_use]
pub fn complement(cover: &Cover) -> Cover {
    assert_eq!(
        cover.num_outputs(),
        1,
        "complement expects a single-output cover"
    );
    let cubes: Vec<Cube> = cover.iter().cloned().collect();
    let mut result_cubes = complement_rec(&cubes, cover.num_inputs(), 0);
    // Light cleanup: single-cube containment.
    let mut result = Cover::new(cover.num_inputs(), 1);
    for c in result_cubes.drain(..) {
        result.push(c);
    }
    result.drop_empty_cubes();
    result.drop_contained_cubes();
    result
}

fn complement_rec(cubes: &[Cube], num_inputs: usize, depth: usize) -> Vec<Cube> {
    assert!(depth < MAX_DEPTH, "complement recursion too deep");
    if cubes.is_empty() {
        return vec![Cube::universe(num_inputs, 1)];
    }
    if cubes.iter().any(Cube::is_input_universe) {
        return Vec::new();
    }
    if cubes.len() == 1 {
        return complement_single_cube(&cubes[0]);
    }
    let var = select_binate_variable(cubes, num_inputs)
        .or_else(|| select_any_literal_variable(cubes, num_inputs))
        .expect("non-universe cubes must have literals");

    let pos = cofactor_cubes(cubes, var, Phase::Positive);
    let neg = cofactor_cubes(cubes, var, Phase::Negative);
    let mut pos_comp = complement_rec(&pos, num_inputs, depth + 1);
    let neg_comp = complement_rec(&neg, num_inputs, depth + 1);

    for c in &mut pos_comp {
        c.set_literal(var, Phase::Positive);
    }
    let mut result = pos_comp;
    for mut c in neg_comp {
        c.set_literal(var, Phase::Negative);
        result.push(c);
    }
    // Merge pairs that differ only in the split variable (simple consensus
    // lift to keep the cover from exploding).
    merge_split_pairs(&mut result, var);
    result
}

/// De Morgan complement of one cube: one cube per literal, with the literal
/// inverted.
fn complement_single_cube(cube: &Cube) -> Vec<Cube> {
    cube.literals()
        .map(|(var, phase)| {
            Cube::universe(cube.num_inputs(), 1).with_literal(var, phase.inverted())
        })
        .collect()
}

/// After a Shannon split on `var`, cubes `x·c` and `x̄·c` merge back to `c`.
fn merge_split_pairs(cubes: &mut Vec<Cube>, var: usize) {
    loop {
        let mut merge: Option<(usize, usize)> = None;
        'scan: for i in 0..cubes.len() {
            if let VarState::Literal(p) = cubes[i].var_state(var) {
                let mut twin = cubes[i].clone();
                twin.set_literal(var, p.inverted());
                for (j, other) in cubes.iter().enumerate() {
                    if j != i && *other == twin {
                        merge = Some((i, j));
                        break 'scan;
                    }
                }
            }
        }
        match merge {
            Some((i, j)) => {
                cubes[i].clear_literal(var);
                cubes.remove(j);
            }
            None => break,
        }
    }
}

/// Complement of every output of a multi-output cover: the "negation of the
/// circuit" used for the paper's dual-implementation optimization.
///
/// Each output is complemented independently and the results are merged with
/// [`Cover::share_identical_products`] so shared products are counted once,
/// matching how a crossbar would implement them.
#[must_use]
pub fn complement_multi(cover: &Cover) -> Cover {
    let singles: Vec<Cover> = (0..cover.num_outputs())
        .map(|o| complement(&cover.output_cover(o)))
        .collect();
    Cover::from_single_outputs(&singles).share_identical_products()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cover::cube;

    fn cover_of(n: usize, specs: &[&str]) -> Cover {
        Cover::from_cubes(n, 1, specs.iter().map(|s| cube(s))).expect("valid cubes")
    }

    #[test]
    fn tautology_positive_and_negative_literal() {
        assert!(is_tautology(&cover_of(1, &["1 1", "0 1"])));
        assert!(!is_tautology(&cover_of(1, &["1 1"])));
    }

    #[test]
    fn tautology_empty_cover_is_false() {
        assert!(!is_tautology(&Cover::new(3, 1)));
    }

    #[test]
    fn tautology_universe_cube_is_true() {
        assert!(is_tautology(&cover_of(3, &["--- 1"])));
    }

    #[test]
    fn tautology_three_var_cover() {
        // x + x̄y + x̄ȳ is a tautology.
        assert!(is_tautology(&cover_of(3, &["1-- 1", "01- 1", "00- 1"])));
        // Remove one piece and it no longer is.
        assert!(!is_tautology(&cover_of(3, &["1-- 1", "01- 1"])));
    }

    #[test]
    fn exhaustive_tautology_matches_evaluation() {
        // All 3-variable covers over a fixed small cube set.
        let pool = ["1-- 1", "0-- 1", "-1- 1", "--0 1", "011 1", "10- 1"];
        for mask in 0u32..1 << pool.len() {
            let specs: Vec<&str> = pool
                .iter()
                .enumerate()
                .filter(|&(i, _)| mask >> i & 1 == 1)
                .map(|(_, s)| *s)
                .collect();
            let cover = cover_of(3, &specs);
            let brute = (0..8u64).all(|a| cover.evaluate_output(a, 0));
            assert_eq!(is_tautology(&cover), brute, "mask {mask:06b}");
        }
    }

    #[test]
    fn containment_of_input_cube() {
        let f = cover_of(3, &["1-- 1", "-1- 1"]);
        assert!(cover_contains_input_cube(&f, &cube("11- 1")));
        assert!(cover_contains_input_cube(&f, &cube("1-0 1")));
        assert!(!cover_contains_input_cube(&f, &cube("--1 1")));
    }

    #[test]
    fn complement_roundtrip_small() {
        let f = cover_of(3, &["11- 1", "--0 1"]);
        let g = complement(&f);
        for a in 0..8u64 {
            assert_eq!(
                g.evaluate_output(a, 0),
                !f.evaluate_output(a, 0),
                "assignment {a:03b}"
            );
        }
    }

    #[test]
    fn complement_of_empty_is_universe() {
        let g = complement(&Cover::new(4, 1));
        assert!(is_tautology(&g));
    }

    #[test]
    fn complement_of_universe_is_empty() {
        let g = complement(&cover_of(4, &["---- 1"]));
        assert!(g.is_empty());
    }

    #[test]
    fn complement_single_cube_de_morgan() {
        let f = cover_of(3, &["101 1"]);
        let g = complement(&f);
        for a in 0..8u64 {
            assert_eq!(g.evaluate_output(a, 0), a != 0b101);
        }
    }

    #[test]
    fn complement_multi_negates_every_output() {
        let f = Cover::from_cubes(3, 2, [cube("11- 10"), cube("--0 01")]).expect("dims");
        let g = complement_multi(&f);
        assert_eq!(g.num_outputs(), 2);
        for a in 0..8u64 {
            let fv = f.evaluate(a);
            let gv = g.evaluate(a);
            assert_eq!(gv[0], !fv[0]);
            assert_eq!(gv[1], !fv[1]);
        }
    }

    #[test]
    fn cover_contains_multi_output_cube() {
        let f = Cover::from_cubes(3, 2, [cube("1-- 11"), cube("-1- 01")]).expect("dims");
        // 11- drives output 1 in both covers.
        assert!(cover_contains_cube(&f, &cube("11- 01")));
        // Output 0 only covered by x0.
        assert!(!cover_contains_cube(&f, &cube("-1- 10")));
    }
}
