//! Espresso-style heuristic two-level minimization.
//!
//! The paper maps espresso-minimized MCNC PLAs onto crossbars; this module is
//! the stand-in for espresso. It implements the classic
//! EXPAND → IRREDUNDANT → REDUCE loop on multi-output covers:
//!
//! * **expand** raises literals (and output memberships) of each cube as long
//!   as the cube stays inside `ON ∪ DC` of every output it drives, then drops
//!   cubes swallowed by the expanded one;
//! * **irredundant** removes cubes (or output memberships) covered by the
//!   rest of the cover plus the DC set;
//! * **reduce** shrinks cubes to give the next expand pass freedom to escape
//!   local minima.
//!
//! The validity oracle — "is this candidate cube inside the function?" — is
//! the fixed per-output cover `ON(o) ∪ DC(o)`, queried through
//! [`cover_contains_input_cube`](crate::calculus::cover_contains_input_cube).

use crate::calculus::cover_contains_input_cube;
use crate::cover::Cover;
use crate::cube::{Cube, Phase, VarState};

/// Tuning knobs for [`minimize`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MinimizeOptions {
    /// Maximum number of EXPAND/IRREDUNDANT/REDUCE iterations.
    pub max_iterations: usize,
    /// Whether to run the REDUCE perturbation step (disable for speed).
    pub reduce: bool,
    /// Whether EXPAND may add output memberships (multi-output sharing).
    pub expand_outputs: bool,
}

impl Default for MinimizeOptions {
    fn default() -> Self {
        Self {
            max_iterations: 4,
            reduce: true,
            expand_outputs: true,
        }
    }
}

/// Cost of a cover in espresso's ordering: cube count first, then total
/// literal count, then output memberships.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct CoverCost {
    /// Number of cubes (crossbar product rows).
    pub cubes: usize,
    /// Total input literals (NAND-plane switches).
    pub literals: usize,
    /// Total output memberships (AND-plane switches).
    pub memberships: usize,
}

impl CoverCost {
    /// Cost of a cover.
    #[must_use]
    pub fn of(cover: &Cover) -> Self {
        Self {
            cubes: cover.len(),
            literals: cover.total_literals(),
            memberships: cover.total_output_memberships(),
        }
    }
}

/// Heuristically minimizes `on` against the don't-care set `dc` (which may
/// be empty). Returns an equivalent (modulo DC) cover, typically much
/// smaller.
///
/// # Examples
///
/// ```
/// use xbar_logic::{minimize, Cover, cube, MinimizeOptions};
///
/// // Four minterms of x0 ⊕ nothing: together they form the cube "1-".
/// let on = Cover::from_cubes(2, 1, [cube("10 1"), cube("11 1")])?;
/// let dc = Cover::new(2, 1);
/// let min = minimize(&on, &dc, MinimizeOptions::default());
/// assert_eq!(min.len(), 1);
/// # Ok::<(), xbar_logic::LogicError>(())
/// ```
///
/// # Panics
///
/// Panics if `on` and `dc` dimensions disagree.
#[must_use]
pub fn minimize(on: &Cover, dc: &Cover, options: MinimizeOptions) -> Cover {
    assert_eq!(on.num_inputs(), dc.num_inputs(), "ON/DC input arity");
    assert_eq!(on.num_outputs(), dc.num_outputs(), "ON/DC output arity");

    // Fixed validity oracle: per-output ON ∪ DC.
    let oracle = ValidityOracle::new(on, dc);

    let mut current = on.clone();
    current.drop_empty_cubes();
    current.drop_contained_cubes();

    let mut best = current.clone();
    let mut best_cost = CoverCost::of(&best);

    for iteration in 0..options.max_iterations {
        expand(&mut current, &oracle, options.expand_outputs);
        irredundant(&mut current, dc);
        let cost = CoverCost::of(&current);
        if cost < best_cost {
            best = current.clone();
            best_cost = cost;
        } else if iteration > 0 {
            break;
        }
        if !options.reduce || iteration + 1 == options.max_iterations {
            if !options.reduce {
                break;
            }
            continue;
        }
        reduce(&mut current, dc);
    }
    best
}

/// Per-output `ON ∪ DC` covers used as the expand validity oracle.
struct ValidityOracle {
    per_output: Vec<Cover>,
}

impl ValidityOracle {
    fn new(on: &Cover, dc: &Cover) -> Self {
        let per_output = (0..on.num_outputs())
            .map(|o| {
                let mut cover = on.output_cover(o);
                for cube in dc.output_cover(o).iter() {
                    cover.push(cube.clone());
                }
                cover
            })
            .collect();
        Self { per_output }
    }

    /// True when `input_part` (a 1-output cube) fits inside output `out`.
    fn admits(&self, input_part: &Cube, out: usize) -> bool {
        cover_contains_input_cube(&self.per_output[out], input_part)
    }

    /// True when the input part fits inside every output in `outs`.
    fn admits_all(&self, input_part: &Cube, outs: impl Iterator<Item = usize>) -> bool {
        for o in outs {
            if !self.admits(input_part, o) {
                return false;
            }
        }
        true
    }
}

fn single_output_input_part(cube: &Cube) -> Cube {
    let mut c = Cube::universe(cube.num_inputs(), 1);
    for (var, phase) in cube.literals() {
        c.set_literal(var, phase);
    }
    c
}

/// EXPAND: raise each cube maximally, then drop cubes contained in others.
fn expand(cover: &mut Cover, oracle: &ValidityOracle, expand_outputs: bool) {
    // Process cubes from most specific (most literals) to least; expanded
    // large cubes then swallow the rest.
    let mut order: Vec<usize> = (0..cover.len()).collect();
    let counts: Vec<usize> = cover.iter().map(Cube::literal_count).collect();
    order.sort_by_key(|&i| std::cmp::Reverse(counts[i]));

    let mut cubes: Vec<Option<Cube>> = cover.iter().cloned().map(Some).collect();
    for &idx in &order {
        let Some(mut cube) = cubes[idx].take() else {
            continue;
        };
        // Output expansion first: crossbar area is `(P+O)(2I+2O)`, so
        // sharing a product row across outputs (reducing P) beats raising
        // literals (which only lowers IR). Raising literals first would
        // often block the sharing.
        if expand_outputs {
            let input_part = single_output_input_part(&cube);
            for o in 0..cube.num_outputs() {
                if !cube.output(o) && oracle.admits(&input_part, o) {
                    cube.set_output(o, true);
                }
            }
        }
        // Then try clearing each literal, subject to every driven output.
        let literals: Vec<(usize, Phase)> = cube.literals().collect();
        for (var, _) in literals {
            let mut candidate = single_output_input_part(&cube);
            candidate.clear_literal(var);
            if oracle.admits_all(&candidate, cube.outputs()) {
                cube.clear_literal(var);
            }
        }
        // A raised input part may now fit additional outputs.
        if expand_outputs {
            let input_part = single_output_input_part(&cube);
            for o in 0..cube.num_outputs() {
                if !cube.output(o) && oracle.admits(&input_part, o) {
                    cube.set_output(o, true);
                }
            }
        }
        // Swallow other cubes fully contained in the expanded cube.
        for other in cubes.iter_mut() {
            if let Some(c) = other {
                if cube.contains(c) {
                    *other = None;
                }
            }
        }
        cubes[idx] = Some(cube);
    }

    let ni = cover.num_inputs();
    let no = cover.num_outputs();
    *cover = Cover::from_cubes(ni, no, cubes.into_iter().flatten())
        .expect("dimensions preserved by expand");
}

/// IRREDUNDANT: remove cubes, or individual output memberships, that the
/// rest of the cover (plus DC) already covers.
fn irredundant(cover: &mut Cover, dc: &Cover) {
    // Drop the most specific (least useful) cubes first.
    let mut order: Vec<usize> = (0..cover.len()).collect();
    let counts: Vec<usize> = cover.iter().map(Cube::literal_count).collect();
    order.sort_by_key(|&i| std::cmp::Reverse(counts[i]));

    let mut cubes: Vec<Option<Cube>> = cover.iter().cloned().map(Some).collect();
    for &idx in &order {
        let Some(cube) = cubes[idx].clone() else {
            continue;
        };
        let input_part = single_output_input_part(&cube);
        let mut kept = cube.clone();
        let mut changed = false;
        for o in cube.outputs() {
            // Cover of output o from all other live cubes + DC.
            let mut rest = Cover::new(cover.num_inputs(), 1);
            for (j, other) in cubes.iter().enumerate() {
                if j == idx {
                    continue;
                }
                if let Some(c) = other {
                    if c.output(o) {
                        rest.push(single_output_input_part(c));
                    }
                }
            }
            for c in dc.output_cover(o).iter() {
                rest.push(c.clone());
            }
            if cover_contains_input_cube(&rest, &input_part) {
                kept.set_output(o, false);
                changed = true;
            }
        }
        if changed {
            cubes[idx] = if kept.output_count() == 0 {
                None
            } else {
                Some(kept)
            };
        }
    }
    let ni = cover.num_inputs();
    let no = cover.num_outputs();
    *cover = Cover::from_cubes(ni, no, cubes.into_iter().flatten())
        .expect("dimensions preserved by irredundant");
}

/// REDUCE: shrink each cube to the smallest cube that still keeps the whole
/// cover covering the ON-set, giving the next EXPAND pass a different
/// starting point.
fn reduce(cover: &mut Cover, dc: &Cover) {
    let len = cover.len();
    for idx in 0..len {
        let cube = cover.cubes()[idx].clone();
        let mut shrunk = cube.clone();
        for var in 0..cover.num_inputs() {
            if !matches!(shrunk.var_state(var), VarState::DontCare) {
                continue;
            }
            for phase in [Phase::Positive, Phase::Negative] {
                // Candidate: restrict var to `phase`; the dropped half is
                // `shrunk` with var = !phase. Shrinking is safe when the
                // dropped half is covered by the rest of the cover + DC for
                // every output the cube drives.
                let mut dropped = single_output_input_part(&shrunk);
                dropped.set_literal(var, phase.inverted());
                let mut safe = true;
                for o in shrunk.outputs() {
                    let mut rest = Cover::new(cover.num_inputs(), 1);
                    for (j, other) in cover.iter().enumerate() {
                        if j != idx && other.output(o) {
                            rest.push(single_output_input_part(other));
                        }
                    }
                    for c in dc.output_cover(o).iter() {
                        rest.push(c.clone());
                    }
                    if !cover_contains_input_cube(&rest, &dropped) {
                        safe = false;
                        break;
                    }
                }
                if safe {
                    shrunk.set_literal(var, phase);
                    break;
                }
            }
        }
        if shrunk != cube {
            *cover = replace_cube(cover, idx, shrunk);
        }
    }
}

fn replace_cube(cover: &Cover, idx: usize, cube: Cube) -> Cover {
    let mut cubes: Vec<Cube> = cover.iter().cloned().collect();
    cubes[idx] = cube;
    Cover::from_cubes(cover.num_inputs(), cover.num_outputs(), cubes)
        .expect("dimensions preserved by replace")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cover::cube;
    use crate::truth::TruthTable;

    fn minimize_default(on: &Cover) -> Cover {
        let dc = Cover::new(on.num_inputs(), on.num_outputs());
        minimize(on, &dc, MinimizeOptions::default())
    }

    #[test]
    fn merges_adjacent_minterms() {
        let on = Cover::from_cubes(
            3,
            1,
            [cube("000 1"), cube("001 1"), cube("010 1"), cube("011 1")],
        )
        .expect("dims");
        let min = minimize_default(&on);
        assert_eq!(min.len(), 1);
        assert_eq!(min.cubes()[0].literal_count(), 1);
        assert!(min.equivalent(&on));
    }

    #[test]
    fn preserves_function_exactly() {
        let table = TruthTable::from_fn(4, 1, |a| vec![(a * 7 + 3) % 5 < 2]).expect("small");
        let on = table.minterm_cover();
        let min = minimize_default(&on);
        assert!(
            table.matches_cover(&min),
            "minimized cover changed the function"
        );
        assert!(min.len() <= on.len());
    }

    #[test]
    fn multi_output_sharing_reduces_products() {
        // Both outputs contain the cube 11-; expand should share it.
        let on = Cover::from_cubes(3, 2, [cube("11- 10"), cube("11- 01"), cube("0-- 10")])
            .expect("dims");
        let min = minimize_default(&on);
        assert!(min.equivalent(&on));
        assert!(min.len() <= 2, "expected sharing, got {} cubes", min.len());
    }

    #[test]
    fn uses_dont_cares() {
        // ON = {00}, DC = {01, 10, 11}: minimal cover is the universe.
        let on = Cover::from_cubes(2, 1, [cube("00 1")]).expect("dims");
        let dc = Cover::from_cubes(2, 1, [cube("01 1"), cube("10 1"), cube("11 1")]).expect("dims");
        let min = minimize(&on, &dc, MinimizeOptions::default());
        assert_eq!(min.len(), 1);
        assert_eq!(min.cubes()[0].literal_count(), 0);
    }

    #[test]
    fn xor_is_not_collapsed() {
        let table = TruthTable::from_fn(3, 1, |a| vec![a.count_ones() % 2 == 1]).expect("small");
        let on = table.minterm_cover();
        let min = minimize_default(&on);
        // Parity has no mergeable minterms.
        assert_eq!(min.len(), 4);
        assert!(table.matches_cover(&min));
    }

    #[test]
    fn irredundant_removes_absorbed_cube() {
        let on =
            Cover::from_cubes(3, 1, [cube("1-- 1"), cube("-1- 1"), cube("11- 1")]).expect("dims");
        let min = minimize_default(&on);
        assert_eq!(min.len(), 2);
        assert!(min.equivalent(&on));
    }

    #[test]
    fn majority_of_three() {
        let table = TruthTable::from_fn(3, 1, |a| vec![a.count_ones() >= 2]).expect("small");
        let min = minimize_default(&table.minterm_cover());
        // Known minimum: ab + ac + bc.
        assert_eq!(min.len(), 3);
        assert_eq!(min.total_literals(), 6);
        assert!(table.matches_cover(&min));
    }

    #[test]
    fn reduce_does_not_change_function() {
        let table = TruthTable::from_fn(4, 2, |a| vec![a.count_ones() >= 2, (a & 0b11) == 0b10])
            .expect("small");
        let on = table.minterm_cover();
        let mut cover = on.clone();
        let dc = Cover::new(4, 2);
        let oracle_opts = MinimizeOptions {
            reduce: true,
            ..MinimizeOptions::default()
        };
        let min = minimize(&cover, &dc, oracle_opts);
        assert!(table.matches_cover(&min));
        // Direct reduce on the raw cover must also preserve the function.
        reduce(&mut cover, &dc);
        assert!(table.matches_cover(&cover));
    }

    #[test]
    fn cost_ordering() {
        let a = CoverCost {
            cubes: 3,
            literals: 10,
            memberships: 3,
        };
        let b = CoverCost {
            cubes: 3,
            literals: 9,
            memberships: 9,
        };
        let c = CoverCost {
            cubes: 2,
            literals: 50,
            memberships: 9,
        };
        assert!(c < b && b < a);
    }
}
