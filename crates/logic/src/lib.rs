//! # xbar-logic
//!
//! Two-level Boolean logic substrate for the memristive-crossbar
//! reproduction of Tunali & Altun, *"Logic Synthesis and Defect Tolerance
//! for Memristive Crossbar Arrays"* (DATE 2018).
//!
//! The paper maps espresso-minimized sums-of-products onto crossbar arrays.
//! This crate supplies everything up to (and including) that minimized SOP:
//!
//! * [`Cube`] / [`Cover`] — bit-packed multi-output product terms and
//!   sums-of-products, the source of the paper's *function matrix*;
//! * [`is_tautology`] / [`complement`] / [`complement_multi`] — the cube
//!   calculus behind minimization and the paper's dual (negated-circuit)
//!   optimization;
//! * [`minimize`] — an espresso-style EXPAND/IRREDUNDANT/REDUCE minimizer
//!   (the stand-in for espresso itself), plus an exact Quine–McCluskey path
//!   in [`qm`] for small functions;
//! * [`Pla`] — reader/writer for the espresso PLA benchmark format;
//! * [`TruthTable`] — dense reference model for exhaustive checks;
//! * [`RandomSopSpec`] / [`CalibratedTwinSpec`] — the Monte Carlo workload
//!   generators of Fig. 6 and the statistical benchmark twins of Table II;
//! * [`bench_reg`] — the registry of the paper's benchmark circuits with all
//!   published statistics.
//!
//! ## Example
//!
//! ```
//! use xbar_logic::{Cover, cube, minimize, MinimizeOptions};
//!
//! // f = x̄0x̄1 + x̄0x1 collapses to x̄0.
//! let on = Cover::from_cubes(2, 1, [cube("00 1"), cube("01 1")])?;
//! let dc = Cover::new(2, 1);
//! let minimized = minimize(&on, &dc, MinimizeOptions::default());
//! assert_eq!(minimized.len(), 1);
//! # Ok::<(), xbar_logic::LogicError>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod analysis;
pub mod bench_reg;
mod calculus;
mod cover;
mod cube;
mod error;
mod minimize;
pub mod pla;
pub mod qm;
mod random;
mod truth;

pub use calculus::{
    complement, complement_multi, cover_contains_cube, cover_contains_input_cube, is_tautology,
};
pub use cover::{cube, Cover};
pub use cube::{Cube, Phase, VarState};
pub use error::LogicError;
pub use minimize::{minimize, CoverCost, MinimizeOptions};
pub use pla::Pla;
pub use random::{CalibratedTwinSpec, LiteralDistribution, RandomSopSpec, FIG6_LITERAL_PROB};
pub use truth::{TruthTable, MAX_TRUTH_INPUTS};

#[cfg(test)]
mod tests {
    #[test]
    fn public_types_are_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<crate::Cube>();
        assert_send_sync::<crate::Cover>();
        assert_send_sync::<crate::TruthTable>();
        assert_send_sync::<crate::LogicError>();
    }
}
