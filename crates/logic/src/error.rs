//! Error types for the logic substrate.

use std::error::Error;
use std::fmt;

/// Errors produced by the logic substrate.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum LogicError {
    /// A cube's dimensions disagreed with its cover's.
    DimensionMismatch {
        /// Inputs expected by the cover.
        expected_inputs: usize,
        /// Outputs expected by the cover.
        expected_outputs: usize,
        /// Inputs found on the offending cube.
        got_inputs: usize,
        /// Outputs found on the offending cube.
        got_outputs: usize,
    },
    /// A PLA file or cube line could not be parsed.
    ParsePla {
        /// 1-based line number.
        line: usize,
        /// Human-readable description.
        message: String,
    },
    /// A truth table was requested for a function with too many inputs.
    TooManyInputs {
        /// Number of inputs requested.
        inputs: usize,
        /// Maximum supported by the operation.
        limit: usize,
    },
    /// An unknown benchmark name was requested from the registry.
    UnknownBenchmark {
        /// The requested name.
        name: String,
    },
}

impl fmt::Display for LogicError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LogicError::DimensionMismatch {
                expected_inputs,
                expected_outputs,
                got_inputs,
                got_outputs,
            } => write!(
                f,
                "cube dimension mismatch: expected {expected_inputs} inputs / {expected_outputs} outputs, got {got_inputs} / {got_outputs}"
            ),
            LogicError::ParsePla { line, message } => {
                write!(f, "PLA parse error at line {line}: {message}")
            }
            LogicError::TooManyInputs { inputs, limit } => {
                write!(f, "function has {inputs} inputs but the operation supports at most {limit}")
            }
            LogicError::UnknownBenchmark { name } => {
                write!(f, "unknown benchmark {name:?}")
            }
        }
    }
}

impl Error for LogicError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_lowercase_and_informative() {
        let e = LogicError::ParsePla {
            line: 3,
            message: "bad char".into(),
        };
        let s = e.to_string();
        assert!(s.contains("line 3"));
        assert!(s.contains("bad char"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<LogicError>();
    }
}
