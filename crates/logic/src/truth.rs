//! Dense truth tables for exhaustively representable functions.
//!
//! Used to define the mathematically-specified MCNC benchmarks (`rd53`,
//! `sqrt8`, `squar5`, …) exactly, to cross-check the minimizer, and as the
//! reference model in property tests.

use crate::cover::Cover;
use crate::cube::Cube;
use crate::error::LogicError;

/// Hard cap on exhaustive truth tables (2^20 rows × outputs).
pub const MAX_TRUTH_INPUTS: usize = 20;

/// A dense multi-output truth table: one bitset of `2^n` entries per output.
///
/// # Examples
///
/// ```
/// use xbar_logic::TruthTable;
///
/// // 2-input XOR.
/// let xor = TruthTable::from_fn(2, 1, |a| vec![(a.count_ones() % 2) == 1])?;
/// assert!(xor.value(0b01, 0));
/// assert!(!xor.value(0b11, 0));
/// # Ok::<(), xbar_logic::LogicError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TruthTable {
    num_inputs: usize,
    num_outputs: usize,
    /// `bits[o]` holds 2^n bits for output `o`.
    bits: Vec<Vec<u64>>,
}

impl TruthTable {
    /// All-zero table.
    ///
    /// # Errors
    ///
    /// Returns [`LogicError::TooManyInputs`] when `num_inputs` exceeds
    /// [`MAX_TRUTH_INPUTS`].
    pub fn new(num_inputs: usize, num_outputs: usize) -> Result<Self, LogicError> {
        if num_inputs > MAX_TRUTH_INPUTS {
            return Err(LogicError::TooManyInputs {
                inputs: num_inputs,
                limit: MAX_TRUTH_INPUTS,
            });
        }
        let words = (1usize << num_inputs).div_ceil(64);
        Ok(Self {
            num_inputs,
            num_outputs,
            bits: vec![vec![0; words]; num_outputs],
        })
    }

    /// Builds a table by evaluating `f` on every assignment; `f` returns one
    /// bool per output.
    ///
    /// # Errors
    ///
    /// Returns [`LogicError::TooManyInputs`] when `num_inputs` exceeds
    /// [`MAX_TRUTH_INPUTS`].
    ///
    /// # Panics
    ///
    /// Panics if `f` returns the wrong number of outputs.
    pub fn from_fn(
        num_inputs: usize,
        num_outputs: usize,
        mut f: impl FnMut(u64) -> Vec<bool>,
    ) -> Result<Self, LogicError> {
        let mut table = Self::new(num_inputs, num_outputs)?;
        for a in 0..1u64 << num_inputs {
            let row = f(a);
            assert_eq!(row.len(), num_outputs, "wrong output arity from closure");
            for (o, &v) in row.iter().enumerate() {
                if v {
                    table.set(a, o, true);
                }
            }
        }
        Ok(table)
    }

    /// Builds the table of a cover by evaluation.
    ///
    /// # Errors
    ///
    /// Returns [`LogicError::TooManyInputs`] when the cover is too wide.
    pub fn from_cover(cover: &Cover) -> Result<Self, LogicError> {
        let mut table = Self::new(cover.num_inputs(), cover.num_outputs())?;
        for cube in cover.iter() {
            // Enumerate the cube's minterms instead of all assignments.
            let free: Vec<usize> = (0..cover.num_inputs())
                .filter(|&v| !matches!(cube.var_state(v), crate::cube::VarState::Literal(_)))
                .collect();
            let mut base = 0u64;
            for (var, phase) in cube.literals() {
                if phase.as_bool() {
                    base |= 1 << var;
                }
            }
            for combo in 0..1u64 << free.len() {
                let mut a = base;
                for (i, &var) in free.iter().enumerate() {
                    if combo >> i & 1 == 1 {
                        a |= 1 << var;
                    }
                }
                for o in cube.outputs() {
                    table.set(a, o, true);
                }
            }
        }
        Ok(table)
    }

    /// Number of input variables.
    #[must_use]
    pub fn num_inputs(&self) -> usize {
        self.num_inputs
    }

    /// Number of outputs.
    #[must_use]
    pub fn num_outputs(&self) -> usize {
        self.num_outputs
    }

    /// Value of output `out` on `assignment`.
    ///
    /// # Panics
    ///
    /// Panics when either index is out of range.
    #[must_use]
    pub fn value(&self, assignment: u64, out: usize) -> bool {
        assert!(assignment < 1 << self.num_inputs, "assignment out of range");
        self.bits[out][(assignment / 64) as usize] >> (assignment % 64) & 1 == 1
    }

    /// Sets output `out` on `assignment`.
    ///
    /// # Panics
    ///
    /// Panics when either index is out of range.
    pub fn set(&mut self, assignment: u64, out: usize, v: bool) {
        assert!(assignment < 1 << self.num_inputs, "assignment out of range");
        let word = (assignment / 64) as usize;
        let bit = 1u64 << (assignment % 64);
        if v {
            self.bits[out][word] |= bit;
        } else {
            self.bits[out][word] &= !bit;
        }
    }

    /// Number of ON minterms of output `out`.
    #[must_use]
    pub fn on_count(&self, out: usize) -> usize {
        self.bits[out].iter().map(|w| w.count_ones() as usize).sum()
    }

    /// The canonical (minterm) cover: one cube per ON minterm, sharing cubes
    /// across outputs that agree on the minterm.
    #[must_use]
    pub fn minterm_cover(&self) -> Cover {
        let mut cover = Cover::new(self.num_inputs, self.num_outputs);
        for a in 0..1u64 << self.num_inputs {
            let outs: Vec<usize> = (0..self.num_outputs)
                .filter(|&o| self.value(a, o))
                .collect();
            if !outs.is_empty() {
                cover.push(Cube::minterm(self.num_inputs, a, &outs, self.num_outputs));
            }
        }
        cover
    }

    /// Truth-table equivalence with a cover.
    #[must_use]
    pub fn matches_cover(&self, cover: &Cover) -> bool {
        if cover.num_inputs() != self.num_inputs || cover.num_outputs() != self.num_outputs {
            return false;
        }
        (0..1u64 << self.num_inputs).all(|a| {
            let got = cover.evaluate(a);
            (0..self.num_outputs).all(|o| got[o] == self.value(a, o))
        })
    }

    /// Per-output complement.
    #[must_use]
    pub fn complemented(&self) -> Self {
        let mut t = self.clone();
        let total = 1u64 << self.num_inputs;
        for o in 0..self.num_outputs {
            for a in 0..total {
                let v = self.value(a, o);
                t.set(a, o, !v);
            }
        }
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cover::cube;

    #[test]
    fn from_fn_and_value() {
        let maj = TruthTable::from_fn(3, 1, |a| vec![a.count_ones() >= 2]).expect("small");
        assert!(maj.value(0b011, 0));
        assert!(!maj.value(0b001, 0));
        assert_eq!(maj.on_count(0), 4);
    }

    #[test]
    fn from_cover_matches_evaluation() {
        let cover = Cover::from_cubes(4, 2, [cube("11-- 10"), cube("--01 01")]).expect("dims");
        let table = TruthTable::from_cover(&cover).expect("small");
        for a in 0..16u64 {
            let v = cover.evaluate(a);
            assert_eq!(table.value(a, 0), v[0]);
            assert_eq!(table.value(a, 1), v[1]);
        }
        assert!(table.matches_cover(&cover));
    }

    #[test]
    fn minterm_cover_is_equivalent() {
        let table = TruthTable::from_fn(4, 2, |a| vec![a % 3 == 0, a.count_ones() % 2 == 1])
            .expect("small");
        let cover = table.minterm_cover();
        assert!(table.matches_cover(&cover));
    }

    #[test]
    fn complement_flips_everything() {
        let t = TruthTable::from_fn(3, 1, |a| vec![a == 5]).expect("small");
        let c = t.complemented();
        for a in 0..8u64 {
            assert_eq!(c.value(a, 0), a != 5);
        }
    }

    #[test]
    fn too_many_inputs_is_error() {
        assert!(TruthTable::new(MAX_TRUTH_INPUTS + 1, 1).is_err());
    }
}
