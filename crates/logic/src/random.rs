//! Seeded random Boolean-function generators.
//!
//! Two generators back the paper's Monte Carlo studies:
//!
//! * [`RandomSopSpec`] — the Fig. 6 workload: random single-/multi-output
//!   SOPs with a controlled product count and literal distribution;
//! * [`CalibratedTwinSpec`] — *statistical twins* of MCNC benchmarks whose
//!   functional definitions are not public: random multi-output SOPs matching
//!   the published inputs `I`, outputs `O`, products `P` and inclusion ratio
//!   `IR` of the original circuit (see DESIGN.md §4 for why this preserves
//!   the mapping-difficulty regime of Table II).

use crate::cover::Cover;
use crate::cube::{Cube, Phase};
use rand::prelude::*;
use rand::rngs::StdRng;

/// Distribution of the literal count per product term.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum LiteralDistribution {
    /// Uniform on `[min, max]` (inclusive).
    Uniform {
        /// Minimum literal count (≥ 1).
        min: usize,
        /// Maximum literal count.
        max: usize,
    },
    /// `1 + Binomial(num_inputs − 1, prob)`: one guaranteed literal plus an
    /// independent chance per remaining variable. This is the Fig. 6
    /// calibration (see DESIGN.md): with `prob = 0.07` the measured
    /// two-/multi-level success rates land on the paper's 65/60/54/33%
    /// trend across input sizes 8/9/10/15.
    OnePlusBinomial {
        /// Per-variable inclusion probability.
        prob: f64,
    },
}

impl LiteralDistribution {
    fn sample(&self, num_inputs: usize, rng: &mut StdRng) -> usize {
        match *self {
            LiteralDistribution::Uniform { min, max } => {
                assert!(min >= 1, "cubes need at least one literal");
                assert!(min <= max, "bad literal range");
                assert!(max <= num_inputs, "more literals than inputs");
                rng.random_range(min..=max)
            }
            LiteralDistribution::OnePlusBinomial { prob } => {
                let mut k = 1usize;
                for _ in 0..num_inputs.saturating_sub(1) {
                    if rng.random_bool(prob.clamp(0.0, 1.0)) {
                        k += 1;
                    }
                }
                k
            }
        }
    }
}

/// Literal-inclusion probability calibrated against the paper's Fig. 6
/// success rates (see [`LiteralDistribution::OnePlusBinomial`]).
pub const FIG6_LITERAL_PROB: f64 = 0.07;

/// Specification of a random sum-of-products.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RandomSopSpec {
    /// Number of input variables.
    pub num_inputs: usize,
    /// Number of outputs.
    pub num_outputs: usize,
    /// Number of product terms to generate.
    pub products: usize,
    /// Literal-count distribution per product term.
    pub literals: LiteralDistribution,
    /// Probability that a product drives each additional output beyond its
    /// first (multi-output sharing density). Ignored for single-output.
    pub extra_output_prob: f64,
}

impl RandomSopSpec {
    /// The Fig. 6 workload: single-output functions with `products` terms
    /// and the calibrated [`LiteralDistribution::OnePlusBinomial`] literal
    /// density.
    #[must_use]
    pub fn figure6(num_inputs: usize, products: usize) -> Self {
        Self {
            num_inputs,
            num_outputs: 1,
            products,
            literals: LiteralDistribution::OnePlusBinomial {
                prob: FIG6_LITERAL_PROB,
            },
            extra_output_prob: 0.0,
        }
    }

    /// Generates a cover from the spec with a dedicated RNG.
    ///
    /// Duplicate input parts are retried a bounded number of times so the
    /// product count is exact whenever the space allows it.
    ///
    /// # Panics
    ///
    /// Panics on an invalid [`LiteralDistribution::Uniform`] range.
    #[must_use]
    pub fn generate(&self, rng: &mut StdRng) -> Cover {
        let mut cover = Cover::new(self.num_inputs, self.num_outputs);
        let mut attempts = 0usize;
        while cover.len() < self.products && attempts < self.products * 50 {
            attempts += 1;
            let k = self
                .literals
                .sample(self.num_inputs, rng)
                .min(self.num_inputs);
            let cube = random_cube(
                rng,
                self.num_inputs,
                self.num_outputs,
                k,
                self.extra_output_prob,
            );
            // Avoid duplicate or contained products: they would silently
            // shrink the effective product count.
            if cover.iter().any(|c| c.contains(&cube) || cube.contains(c)) {
                continue;
            }
            cover.push(cube);
        }
        cover
    }

    /// Convenience wrapper seeding a [`StdRng`] from `seed`.
    #[must_use]
    pub fn generate_seeded(&self, seed: u64) -> Cover {
        let mut rng = StdRng::seed_from_u64(seed);
        self.generate(&mut rng)
    }
}

/// One random cube with exactly `literal_count` literals on distinct
/// variables and at least one output.
fn random_cube(
    rng: &mut StdRng,
    num_inputs: usize,
    num_outputs: usize,
    literal_count: usize,
    extra_output_prob: f64,
) -> Cube {
    let mut cube = Cube::universe(num_inputs, num_outputs);
    let mut vars: Vec<usize> = (0..num_inputs).collect();
    vars.shuffle(rng);
    for &var in vars.iter().take(literal_count) {
        cube.set_literal(var, Phase::from_bool(rng.random_bool(0.5)));
    }
    for o in 0..num_outputs {
        cube.set_output(o, false);
    }
    let first = rng.random_range(0..num_outputs);
    cube.set_output(first, true);
    if extra_output_prob > 0.0 {
        for o in 0..num_outputs {
            if o != first && rng.random_bool(extra_output_prob) {
                cube.set_output(o, true);
            }
        }
    }
    cube
}

/// Statistical twin of a published benchmark: exact `I`, `O`, `P` and a
/// literal density calibrated so the two-level crossbar's inclusion ratio
/// matches the published `IR`.
///
/// The two-level implementation programs `Σ literals + Σ output
/// memberships + 2·O` active crosspoints on a `(P+O) × (2I+2O)` crossbar,
/// so the target average literal count per product is solved from the
/// published IR.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CalibratedTwinSpec {
    /// Published input count.
    pub num_inputs: usize,
    /// Published output count.
    pub num_outputs: usize,
    /// Published product count.
    pub products: usize,
    /// Published inclusion ratio in percent (e.g. `33.0` for rd53).
    pub ir_percent: f64,
}

impl CalibratedTwinSpec {
    /// Average active crosspoints per product row implied by the published
    /// IR: literals per product plus output memberships per product.
    #[must_use]
    pub fn target_row_weight(&self) -> f64 {
        let area = ((self.products + self.num_outputs)
            * (2 * self.num_inputs + 2 * self.num_outputs)) as f64;
        let total_active = self.ir_percent / 100.0 * area;
        let output_row_switches = (2 * self.num_outputs) as f64;
        ((total_active - output_row_switches) / self.products as f64).max(1.0)
    }

    /// Maximum literals a twin product may carry: `min(I − 2, ⌊0.8·I⌋)`,
    /// at least 1.
    ///
    /// Full-support products (literals on *every* input) make optimum-size
    /// mapping structurally infeasible at 10% defects — a crossbar row with
    /// both phases of any single variable defective can host none of them,
    /// shrinking the array's capacity below `P`. The paper measures ~100%
    /// success on these circuits, so the real espresso covers cannot be
    /// full-support; the cap keeps twins in the same regime.
    #[must_use]
    pub fn literal_cap(&self) -> usize {
        self.num_inputs
            .saturating_sub(2)
            .min(self.num_inputs * 4 / 5)
            .max(1)
    }

    /// Generates the twin cover.
    ///
    /// The per-row active-switch weight implied by the published IR is
    /// split between input literals (up to [`literal_cap`](Self::literal_cap))
    /// and output memberships; membership-heavy circuits like `bw` and
    /// `exp5` (tiny input count, many outputs) get the remainder as
    /// multi-output sharing, exactly like their MCNC originals.
    #[must_use]
    pub fn generate(&self, rng: &mut StdRng) -> Cover {
        let weight = self.target_row_weight();
        let cap = self.literal_cap();
        let lit_mean = (weight - 1.0).min(cap as f64).max(1.0);
        let mem_mean = (weight - lit_mean).max(1.0);

        let mut cover = Cover::new(self.num_inputs, self.num_outputs);
        for _ in 0..self.products {
            // Literal count: Binomial(cap, lit_mean/cap) for natural spread.
            let p = (lit_mean / cap as f64).clamp(0.0, 1.0);
            let mut k = 0usize;
            for _ in 0..cap {
                if rng.random_bool(p) {
                    k += 1;
                }
            }
            let k = k.max(1);
            // Memberships: mean ± jitter proportional to the mean.
            let jitter_range = (mem_mean * 0.25).max(1.0);
            let jitter = rng.random_range(-jitter_range..=jitter_range);
            let memberships =
                ((mem_mean + jitter).round() as i64).clamp(1, self.num_outputs as i64) as usize;

            let mut cube = Cube::universe(self.num_inputs, self.num_outputs);
            let mut vars: Vec<usize> = (0..self.num_inputs).collect();
            vars.shuffle(rng);
            for &var in vars.iter().take(k) {
                cube.set_literal(var, Phase::from_bool(rng.random_bool(0.5)));
            }
            for o in 0..self.num_outputs {
                cube.set_output(o, false);
            }
            let mut outs: Vec<usize> = (0..self.num_outputs).collect();
            outs.shuffle(rng);
            for &o in outs.iter().take(memberships) {
                cube.set_output(o, true);
            }
            cover.push(cube);
        }
        cover
    }

    /// Convenience wrapper seeding a [`StdRng`] from `seed`.
    #[must_use]
    pub fn generate_seeded(&self, seed: u64) -> Cover {
        let mut rng = StdRng::seed_from_u64(seed);
        self.generate(&mut rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure6_spec_produces_exact_product_count() {
        let spec = RandomSopSpec::figure6(8, 6);
        let cover = spec.generate_seeded(42);
        assert_eq!(cover.len(), 6);
        assert_eq!(cover.num_inputs(), 8);
        assert_eq!(cover.num_outputs(), 1);
    }

    #[test]
    fn generated_cubes_have_literals_in_range() {
        let spec = RandomSopSpec {
            num_inputs: 10,
            num_outputs: 1,
            products: 20,
            literals: LiteralDistribution::Uniform { min: 3, max: 5 },
            extra_output_prob: 0.0,
        };
        let cover = spec.generate_seeded(7);
        for cube in cover.iter() {
            let k = cube.literal_count();
            assert!((3..=5).contains(&k), "literal count {k} out of range");
        }
    }

    #[test]
    fn no_contained_products() {
        let spec = RandomSopSpec::figure6(6, 10);
        let cover = spec.generate_seeded(3);
        for (i, a) in cover.iter().enumerate() {
            for (j, b) in cover.iter().enumerate() {
                if i != j {
                    assert!(!a.contains(b), "cube {j} contained in {i}");
                }
            }
        }
    }

    #[test]
    fn determinism_by_seed() {
        let spec = RandomSopSpec::figure6(8, 5);
        assert_eq!(spec.generate_seeded(9), spec.generate_seeded(9));
        assert_ne!(spec.generate_seeded(9), spec.generate_seeded(10));
    }

    #[test]
    fn twin_matches_published_dimensions() {
        // misex1: I=8, O=7, P=12, IR=19%.
        let spec = CalibratedTwinSpec {
            num_inputs: 8,
            num_outputs: 7,
            products: 12,
            ir_percent: 19.0,
        };
        let cover = spec.generate_seeded(1);
        assert_eq!(cover.len(), 12);
        assert_eq!(cover.num_inputs(), 8);
        assert_eq!(cover.num_outputs(), 7);
        // Every product drives at least one output.
        for cube in cover.iter() {
            assert!(cube.output_count() >= 1);
        }
    }

    #[test]
    fn twin_ir_close_to_published() {
        // rd73 twin: I=7, O=3, P=127, IR=34%.
        let spec = CalibratedTwinSpec {
            num_inputs: 7,
            num_outputs: 3,
            products: 127,
            ir_percent: 34.0,
        };
        let cover = spec.generate_seeded(5);
        let area = ((127 + 3) * (14 + 6)) as f64;
        let active = (cover.total_literals() + cover.total_output_memberships() + 2 * 3) as f64;
        let ir = active / area * 100.0;
        assert!(
            (ir - 34.0).abs() < 5.0,
            "calibrated IR {ir:.1}% too far from published 34%"
        );
    }

    #[test]
    fn twin_row_weight_positive() {
        let spec = CalibratedTwinSpec {
            num_inputs: 8,
            num_outputs: 63,
            products: 74,
            ir_percent: 10.0,
        };
        assert!(spec.target_row_weight() >= 1.0);
        let cover = spec.generate_seeded(11);
        assert_eq!(cover.len(), 74);
    }
}
