//! Registry of the MCNC/IWLS93 benchmark circuits used in the paper's
//! Tables I and II, with the published statistics and a synthesis path for
//! each.
//!
//! Three synthesis sources (see DESIGN.md §4):
//!
//! * [`BenchmarkSource::Exact`] — the function is mathematically defined
//!   (`rd53`, `rd73`, `rd84`, `sqrt8`, `squar5`, `clip`); we build its truth
//!   table and minimize with our espresso-style minimizer.
//! * [`BenchmarkSource::Statistical`] — no public functional definition; a
//!   seeded random SOP with the published `I`/`O`/`P`/`IR`
//!   (a *statistical twin*, [`crate::random::CalibratedTwinSpec`]).
//! * [`BenchmarkSource::StructuralAnalog`] — `t481`/`cordic`: highly
//!   factorable functions whose role in Table I is the multi-level-wins
//!   crossover; the area driver uses the published product counts, and the
//!   multi-level flow uses a compact network analog built in `xbar-netlist`.

use crate::cover::Cover;
use crate::error::LogicError;
use crate::minimize::{minimize, MinimizeOptions};
use crate::random::CalibratedTwinSpec;
use crate::truth::TruthTable;

/// How a benchmark's cover is synthesized.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BenchmarkSource {
    /// Mathematically defined; synthesized exactly from its truth table.
    Exact,
    /// Statistical twin calibrated to published I/O/P/IR.
    Statistical,
    /// Structural analog (compact factorable form); the SOP twin is used
    /// where a cover is needed.
    StructuralAnalog,
}

/// Published per-circuit data from the paper (Tables I and II), plus our
/// synthesis source.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BenchmarkInfo {
    /// Circuit name as in the paper.
    pub name: &'static str,
    /// Input count `I`.
    pub inputs: usize,
    /// Output count `O`.
    pub outputs: usize,
    /// Published product count `P` (espresso-minimized).
    pub products: usize,
    /// Published inclusion ratio (percent), Table II only.
    pub ir_percent: Option<f64>,
    /// Published two-level area cost.
    pub area: usize,
    /// Published product count of the negated circuit (derived from Table I
    /// areas via area = (P'+O)(2I+2O)), when the paper reports it.
    pub neg_products: Option<usize>,
    /// Paper's Table I multi-level areas `(original, negation)`.
    pub multilevel_area: Option<(usize, usize)>,
    /// Paper's Table I two-level areas `(original, negation)`.
    pub twolevel_area: Option<(usize, usize)>,
    /// Published Table II HBA `(success %, runtime s)`.
    pub hba: Option<(f64, f64)>,
    /// Published Table II EA `(success %, runtime s)`.
    pub ea: Option<(f64, f64)>,
    /// Synthesis source.
    pub source: BenchmarkSource,
}

impl BenchmarkInfo {
    /// The two-level area implied by the paper's formula
    /// `(P + O) · (2I + 2O)`.
    #[must_use]
    pub fn formula_area(&self) -> usize {
        (self.products + self.outputs) * (2 * self.inputs + 2 * self.outputs)
    }

    /// Synthesizes the circuit's cover.
    ///
    /// Exact circuits ignore `seed`; twins use it. The returned cover always
    /// has the published input/output counts; its product count equals the
    /// published `P` for twins and is the minimizer's result for exact
    /// circuits (asserted close to published in tests).
    #[must_use]
    pub fn cover(&self, seed: u64) -> Cover {
        match self.source {
            BenchmarkSource::Exact => {
                exact_cover(self.name).expect("registry exact entries are synthesizable")
            }
            BenchmarkSource::Statistical | BenchmarkSource::StructuralAnalog => {
                self.twin_spec().generate_seeded(seed)
            }
        }
    }

    /// The cover a mapper should implement: for exact circuits this applies
    /// the paper's dual optimization (synthesize the complement too and
    /// keep the smaller — Table II prints dual implementations in bold;
    /// `sqrt8`'s published area 792 is its complement's).
    #[must_use]
    pub fn mapping_cover(&self, seed: u64) -> Cover {
        let direct = self.cover(seed);
        if self.source == BenchmarkSource::Exact {
            let dc = Cover::new(direct.num_inputs(), direct.num_outputs());
            let neg = minimize(
                &crate::calculus::complement_multi(&direct),
                &dc,
                MinimizeOptions::default(),
            );
            if neg.len() < direct.len() {
                return neg;
            }
        }
        direct
    }

    /// Statistical-twin spec with the published statistics (IR defaults to
    /// 20% when the paper gives none).
    #[must_use]
    pub fn twin_spec(&self) -> CalibratedTwinSpec {
        CalibratedTwinSpec {
            num_inputs: self.inputs,
            num_outputs: self.outputs,
            products: self.products,
            ir_percent: self.ir_percent.unwrap_or(20.0),
        }
    }

    /// Twin spec for the negated circuit when the paper reports its size.
    #[must_use]
    pub fn neg_twin_spec(&self) -> Option<CalibratedTwinSpec> {
        self.neg_products.map(|p| CalibratedTwinSpec {
            num_inputs: self.inputs,
            num_outputs: self.outputs,
            products: p,
            ir_percent: self.ir_percent.unwrap_or(20.0),
        })
    }
}

/// The full registry, in the paper's Table II order followed by the
/// Table-I-only circuits.
#[must_use]
pub fn registry() -> &'static [BenchmarkInfo] {
    use BenchmarkSource::{Exact, Statistical, StructuralAnalog};
    const R: &[BenchmarkInfo] = &[
        BenchmarkInfo {
            name: "rd53",
            inputs: 5,
            outputs: 3,
            products: 31,
            ir_percent: Some(33.0),
            area: 544,
            neg_products: Some(32),
            multilevel_area: Some((3000, 2000)),
            twolevel_area: Some((544, 560)),
            hba: Some((98.0, 0.001)),
            ea: Some((98.0, 0.001)),
            source: Exact,
        },
        BenchmarkInfo {
            name: "squar5",
            inputs: 5,
            outputs: 8,
            products: 25,
            ir_percent: Some(16.0),
            area: 858,
            neg_products: None,
            multilevel_area: None,
            twolevel_area: None,
            hba: Some((100.0, 0.001)),
            ea: Some((100.0, 0.001)),
            source: Exact,
        },
        BenchmarkInfo {
            name: "bw",
            inputs: 5,
            outputs: 28,
            products: 22,
            ir_percent: Some(12.0),
            area: 3300,
            neg_products: Some(26),
            multilevel_area: Some((52875, 53110)),
            twolevel_area: Some((3300, 3564)),
            hba: Some((100.0, 0.002)),
            ea: Some((100.0, 0.003)),
            source: Statistical,
        },
        BenchmarkInfo {
            name: "inc",
            inputs: 7,
            outputs: 9,
            products: 30,
            ir_percent: Some(17.0),
            area: 1248,
            neg_products: None,
            multilevel_area: None,
            twolevel_area: None,
            hba: Some((100.0, 0.001)),
            ea: Some((100.0, 0.002)),
            source: Statistical,
        },
        BenchmarkInfo {
            name: "misex1",
            inputs: 8,
            outputs: 7,
            products: 12,
            ir_percent: Some(19.0),
            area: 570,
            neg_products: Some(46),
            multilevel_area: Some((4836, 4161)),
            twolevel_area: Some((570, 1590)),
            hba: Some((100.0, 0.001)),
            ea: Some((100.0, 0.001)),
            source: Statistical,
        },
        BenchmarkInfo {
            name: "sqrt8",
            inputs: 8,
            outputs: 4,
            products: 29,
            ir_percent: Some(21.0),
            area: 792,
            neg_products: Some(38),
            multilevel_area: Some((2745, 3300)),
            twolevel_area: Some((1008, 792)),
            hba: Some((100.0, 0.001)),
            ea: Some((100.0, 0.002)),
            source: Exact,
        },
        BenchmarkInfo {
            name: "sao2",
            inputs: 10,
            outputs: 4,
            products: 58,
            ir_percent: Some(29.0),
            area: 1736,
            neg_products: None,
            multilevel_area: None,
            twolevel_area: None,
            hba: Some((94.0, 0.001)),
            ea: Some((97.0, 0.003)),
            source: Statistical,
        },
        BenchmarkInfo {
            name: "rd73",
            inputs: 7,
            outputs: 3,
            products: 127,
            ir_percent: Some(34.0),
            area: 2600,
            neg_products: None,
            multilevel_area: None,
            twolevel_area: None,
            hba: Some((78.0, 0.002)),
            ea: Some((92.0, 0.013)),
            source: Exact,
        },
        // Note: the MCNC "clip" circuit is NOT a plain saturating clamp (a
        // clamp minimizes to ~13 products, the MCNC circuit to 120), so the
        // registry uses a statistical twin; `exact_truth_table("clip")`
        // still provides the clamp as a standalone function.
        BenchmarkInfo {
            name: "clip",
            inputs: 9,
            outputs: 5,
            products: 120,
            ir_percent: Some(23.0),
            area: 3500,
            neg_products: None,
            multilevel_area: None,
            twolevel_area: None,
            hba: Some((76.0, 0.005)),
            ea: Some((79.0, 0.082)),
            source: Statistical,
        },
        BenchmarkInfo {
            name: "rd84",
            inputs: 8,
            outputs: 4,
            products: 255,
            ir_percent: Some(33.0),
            area: 6216,
            neg_products: Some(293),
            multilevel_area: Some((48124, 20276)),
            twolevel_area: Some((6216, 7128)),
            hba: Some((82.0, 0.006)),
            ea: Some((89.0, 0.093)),
            source: Exact,
        },
        BenchmarkInfo {
            name: "ex1010",
            inputs: 10,
            outputs: 10,
            products: 284,
            ir_percent: Some(23.0),
            area: 11760,
            neg_products: None,
            multilevel_area: None,
            twolevel_area: None,
            hba: Some((100.0, 0.003)),
            ea: Some((100.0, 0.062)),
            source: Statistical,
        },
        BenchmarkInfo {
            name: "table3",
            inputs: 14,
            outputs: 14,
            products: 175,
            ir_percent: Some(25.0),
            area: 10584,
            neg_products: None,
            multilevel_area: None,
            twolevel_area: None,
            hba: Some((100.0, 0.004)),
            ea: Some((100.0, 0.032)),
            source: Statistical,
        },
        BenchmarkInfo {
            name: "misex3c",
            inputs: 14,
            outputs: 14,
            products: 197,
            ir_percent: Some(13.0),
            area: 11856,
            neg_products: None,
            multilevel_area: None,
            twolevel_area: None,
            hba: Some((100.0, 0.003)),
            ea: Some((100.0, 0.035)),
            source: Statistical,
        },
        BenchmarkInfo {
            name: "exp5",
            inputs: 8,
            outputs: 63,
            products: 74,
            ir_percent: Some(10.0),
            area: 19454,
            neg_products: None,
            multilevel_area: None,
            twolevel_area: None,
            hba: Some((65.0, 0.006)),
            ea: Some((80.0, 0.024)),
            source: Statistical,
        },
        BenchmarkInfo {
            name: "apex4",
            inputs: 9,
            outputs: 19,
            products: 436,
            ir_percent: Some(21.0),
            area: 25480,
            neg_products: None,
            multilevel_area: None,
            twolevel_area: None,
            hba: Some((100.0, 0.008)),
            ea: Some((100.0, 0.173)),
            source: Statistical,
        },
        BenchmarkInfo {
            name: "alu4",
            inputs: 14,
            outputs: 8,
            products: 575,
            ir_percent: Some(19.0),
            area: 25652,
            neg_products: None,
            multilevel_area: None,
            twolevel_area: None,
            hba: Some((100.0, 0.008)),
            ea: Some((100.0, 0.284)),
            source: Statistical,
        },
        // Table I only:
        BenchmarkInfo {
            name: "con1",
            inputs: 7,
            outputs: 2,
            products: 9,
            ir_percent: None,
            area: 198,
            neg_products: Some(9),
            multilevel_area: Some((480, 527)),
            twolevel_area: Some((198, 198)),
            hba: None,
            ea: None,
            source: Statistical,
        },
        BenchmarkInfo {
            name: "b12",
            inputs: 15,
            outputs: 9,
            products: 43,
            ir_percent: None,
            area: 2496,
            neg_products: Some(34),
            multilevel_area: Some((7800, 2691)),
            twolevel_area: Some((2496, 2064)),
            hba: None,
            ea: None,
            source: Statistical,
        },
        BenchmarkInfo {
            name: "t481",
            inputs: 16,
            outputs: 1,
            products: 481,
            ir_percent: None,
            area: 16388,
            neg_products: Some(360),
            multilevel_area: Some((5760, 8034)),
            twolevel_area: Some((16388, 12274)),
            hba: None,
            ea: None,
            source: StructuralAnalog,
        },
        BenchmarkInfo {
            name: "cordic",
            inputs: 23,
            outputs: 2,
            products: 914,
            ir_percent: None,
            area: 45800,
            neg_products: Some(1191),
            multilevel_area: Some((9594, 10668)),
            twolevel_area: Some((45800, 59650)),
            hba: None,
            ea: None,
            source: StructuralAnalog,
        },
    ];
    R
}

/// Looks up a benchmark by name.
///
/// # Errors
///
/// Returns [`LogicError::UnknownBenchmark`] when the name is not in the
/// registry.
pub fn find(name: &str) -> Result<&'static BenchmarkInfo, LogicError> {
    registry()
        .iter()
        .find(|b| b.name == name)
        .ok_or_else(|| LogicError::UnknownBenchmark { name: name.into() })
}

/// Truth table of a mathematically defined benchmark, or `None` when the
/// function has no public definition.
#[must_use]
pub fn exact_truth_table(name: &str) -> Option<TruthTable> {
    let table = match name {
        // rdXX: outputs are the binary digits of the input's popcount
        // ("rate detection" counters).
        "rd53" => popcount_table(5, 3),
        "rd73" => popcount_table(7, 3),
        "rd84" => popcount_table(8, 4),
        // sqrt8: floor of the square root of the 8-bit operand.
        "sqrt8" => TruthTable::from_fn(8, 4, |a| {
            let r = (a as f64).sqrt().floor() as u64;
            (0..4).map(|b| r >> b & 1 == 1).collect()
        })
        .expect("8 inputs fits"),
        // squar5: low 8 bits of the 5-bit square (the MCNC circuit exposes
        // 8 outputs; see DESIGN.md §4).
        "squar5" => TruthTable::from_fn(5, 8, |a| {
            let sq = a * a;
            (0..8).map(|b| sq >> b & 1 == 1).collect()
        })
        .expect("5 inputs fits"),
        // clip: saturate a signed 9-bit value to a signed 5-bit range.
        "clip" => TruthTable::from_fn(9, 5, |a| {
            let signed = if a >> 8 & 1 == 1 {
                a as i64 - 512
            } else {
                a as i64
            };
            let clipped = signed.clamp(-16, 15) as u64 & 0x1F;
            (0..5).map(|b| clipped >> b & 1 == 1).collect()
        })
        .expect("9 inputs fits"),
        _ => return None,
    };
    Some(table)
}

fn popcount_table(inputs: usize, outputs: usize) -> TruthTable {
    TruthTable::from_fn(inputs, outputs, |a| {
        let c = a.count_ones() as u64;
        (0..outputs).map(|b| c >> b & 1 == 1).collect()
    })
    .expect("small popcount table")
}

/// Synthesizes an exact benchmark: truth table → minterm cover → heuristic
/// multi-output minimization.
///
/// # Errors
///
/// Returns [`LogicError::UnknownBenchmark`] when the function has no exact
/// definition.
pub fn exact_cover(name: &str) -> Result<Cover, LogicError> {
    let table = exact_truth_table(name)
        .ok_or_else(|| LogicError::UnknownBenchmark { name: name.into() })?;
    let on = table.minterm_cover();
    let dc = Cover::new(table.num_inputs(), table.num_outputs());
    let minimized = minimize(&on, &dc, MinimizeOptions::default());
    debug_assert!(table.matches_cover(&minimized));
    Ok(minimized)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_formula_reproduces_published_areas() {
        for info in registry() {
            let formula = info.formula_area();
            // misex3c is the one known paper arithmetic slip (11856 vs 11816).
            if info.name == "misex3c" {
                assert_eq!(formula, 11816);
            } else {
                assert_eq!(
                    formula, info.area,
                    "{}: formula {} != published {}",
                    info.name, formula, info.area
                );
            }
        }
    }

    #[test]
    fn find_known_and_unknown() {
        assert_eq!(find("rd53").expect("present").inputs, 5);
        assert!(find("nonesuch").is_err());
    }

    #[test]
    fn rd53_truth_table_is_popcount() {
        let t = exact_truth_table("rd53").expect("defined");
        assert!(t.value(0b10101, 0)); // popcount 3 → bit0 set
        assert!(t.value(0b10101, 1)); // bit1 of 3 set
        assert!(!t.value(0b10101, 2));
        assert!(t.value(0b11111, 0)); // 5 = 101
        assert!(t.value(0b11111, 2));
    }

    #[test]
    fn rd53_exact_cover_is_correct_and_near_published_size() {
        let info = find("rd53").expect("present");
        let cover = info.cover(0);
        let table = exact_truth_table("rd53").expect("defined");
        assert!(table.matches_cover(&cover));
        // Published espresso size is 31 products; our heuristic minimizer
        // should land within a small margin.
        assert!(
            (28..=38).contains(&cover.len()),
            "rd53 cover has {} products, expected ≈31",
            cover.len()
        );
    }

    #[test]
    fn sqrt8_is_the_integer_square_root() {
        let t = exact_truth_table("sqrt8").expect("defined");
        for x in [0u64, 1, 4, 15, 16, 100, 255] {
            let expected = (x as f64).sqrt().floor() as u64;
            let got = (0..4).fold(0u64, |acc, b| acc | (u64::from(t.value(x, b)) << b));
            assert_eq!(got, expected, "sqrt({x})");
        }
    }

    #[test]
    fn clip_saturates() {
        let t = exact_truth_table("clip").expect("defined");
        // +100 clips to +15 (01111).
        let got = (0..5).fold(0u64, |acc, b| acc | (u64::from(t.value(100, b)) << b));
        assert_eq!(got, 0b01111);
        // -100 (512-100=412 unsigned) clips to -16 (10000).
        let got = (0..5).fold(0u64, |acc, b| acc | (u64::from(t.value(412, b)) << b));
        assert_eq!(got, 0b10000);
    }

    #[test]
    fn statistical_twin_has_published_dimensions() {
        let info = find("misex1").expect("present");
        let cover = info.cover(17);
        assert_eq!(cover.num_inputs(), 8);
        assert_eq!(cover.num_outputs(), 7);
        assert_eq!(cover.len(), 12);
    }

    #[test]
    fn sqrt8_mapping_cover_uses_the_dual() {
        let info = find("sqrt8").expect("present");
        let direct = info.cover(0);
        let mapping = info.mapping_cover(0);
        assert!(
            mapping.len() < direct.len(),
            "dual should be smaller: {} vs {}",
            mapping.len(),
            direct.len()
        );
    }

    #[test]
    fn rd53_mapping_cover_stays_direct() {
        let info = find("rd53").expect("present");
        assert_eq!(info.mapping_cover(0).len(), info.cover(0).len());
    }

    #[test]
    fn table2_entries_have_published_results() {
        let with_results = registry().iter().filter(|b| b.hba.is_some()).count();
        assert_eq!(with_results, 16, "Table II has 16 circuits");
    }
}
