//! BLIF (Berkeley Logic Interchange Format) export for NAND networks.
//!
//! The paper's multi-level flow runs through Berkeley ABC; exporting our
//! networks as BLIF closes the interoperability loop — a downstream user
//! can hand any `Network` produced here straight back to ABC (or any other
//! BLIF consumer) for comparison or further optimization.

use crate::network::{NetSignal, Network};
use std::fmt::Write as _;

/// Serializes a network as a BLIF model.
///
/// Each NAND gate becomes a `.names` block in the standard off-set-free
/// encoding: a `k`-input NAND is 1 unless all inputs are 1, expressed as
/// `k` single-literal ON-set rows (`0--…- 1`, `-0-…- 1`, …). Inverted
/// literals are routed through shared `inv_x*` nodes.
///
/// # Examples
///
/// ```
/// use xbar_netlist::{network_to_blif, Network, NetSignal};
///
/// let mut net = Network::new(2, 1);
/// let g = net.add_gate(vec![
///     NetSignal::Literal { var: 0, positive: true },
///     NetSignal::Literal { var: 1, positive: true },
/// ]);
/// net.set_output(0, g);
/// let blif = network_to_blif(&net, "nand2");
/// assert!(blif.contains(".model nand2"));
/// assert!(blif.contains(".names x0 x1 g0"));
/// ```
#[must_use]
pub fn network_to_blif(network: &Network, model_name: &str) -> String {
    let mut out = String::new();
    let _ = writeln!(out, ".model {model_name}");
    let inputs: Vec<String> = (0..network.num_inputs()).map(|v| format!("x{v}")).collect();
    let _ = writeln!(out, ".inputs {}", inputs.join(" "));
    let outputs: Vec<String> = (0..network.num_outputs())
        .map(|k| format!("o{k}"))
        .collect();
    let _ = writeln!(out, ".outputs {}", outputs.join(" "));

    // Which negative literals are consumed anywhere (gates or outputs)?
    let mut need_inverter = vec![false; network.num_inputs()];
    let mut mark = |s: NetSignal| {
        if let NetSignal::Literal {
            var,
            positive: false,
        } = s
        {
            need_inverter[var] = true;
        }
    };
    for gate in network.gates() {
        for &s in &gate.fanins {
            mark(s);
        }
    }
    for k in 0..network.num_outputs() {
        if let Some(s) = network.output(k) {
            mark(s);
        }
    }
    for (var, &needed) in need_inverter.iter().enumerate() {
        if needed {
            let _ = writeln!(out, ".names x{var} inv_x{var}");
            let _ = writeln!(out, "0 1");
        }
    }

    let signal_name = |s: NetSignal| -> String {
        match s {
            NetSignal::Literal {
                var,
                positive: true,
            } => format!("x{var}"),
            NetSignal::Literal {
                var,
                positive: false,
            } => format!("inv_x{var}"),
            NetSignal::Gate(id) => format!("g{id}"),
        }
    };

    for (id, gate) in network.gates().iter().enumerate() {
        let fanin_names: Vec<String> = gate.fanins.iter().map(|&s| signal_name(s)).collect();
        let _ = writeln!(out, ".names {} g{id}", fanin_names.join(" "));
        // NAND: output 1 whenever any input is 0.
        for i in 0..gate.fanins.len() {
            let mut row = String::with_capacity(gate.fanins.len() + 2);
            for j in 0..gate.fanins.len() {
                row.push(if i == j { '0' } else { '-' });
            }
            row.push_str(" 1");
            let _ = writeln!(out, "{row}");
        }
    }

    for k in 0..network.num_outputs() {
        let source = network
            .output(k)
            .expect("BLIF export requires connected outputs");
        // Output buffer: o_k = source.
        let _ = writeln!(out, ".names {} o{k}", signal_name(source));
        let _ = writeln!(out, "1 1");
    }
    out.push_str(".end\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::nand_map::{map_cover, MapOptions};
    use xbar_logic::{cube, Cover};

    /// A tiny BLIF interpreter for round-trip checking (supports only the
    /// subset the exporter emits: `.names` with ON-set rows).
    fn eval_blif(blif: &str, assignment: u64, num_inputs: usize, num_outputs: usize) -> Vec<bool> {
        use std::collections::HashMap;
        let mut values: HashMap<String, bool> = HashMap::new();
        for v in 0..num_inputs {
            values.insert(format!("x{v}"), assignment >> v & 1 == 1);
        }
        let mut lines = blif.lines().peekable();
        while let Some(line) = lines.next() {
            let line = line.trim();
            if let Some(rest) = line.strip_prefix(".names ") {
                let names: Vec<&str> = rest.split_whitespace().collect();
                let (inputs, target) = names.split_at(names.len() - 1);
                let mut result = false;
                while let Some(&row) = lines.peek() {
                    let row = row.trim();
                    if row.starts_with('.') || row.is_empty() {
                        break;
                    }
                    lines.next();
                    let (pattern, value) = row.split_once(' ').expect("row format");
                    assert_eq!(value, "1", "exporter emits ON-set rows only");
                    let matches = pattern.chars().zip(inputs).all(|(ch, name)| match ch {
                        '1' => values[*name],
                        '0' => !values[*name],
                        '-' => true,
                        other => panic!("bad pattern char {other}"),
                    });
                    result |= matches;
                }
                values.insert(target[0].to_owned(), result);
            }
        }
        (0..num_outputs).map(|k| values[&format!("o{k}")]).collect()
    }

    #[test]
    fn blif_roundtrip_matches_network() {
        let cover = Cover::from_cubes(4, 2, [cube("11-- 10"), cube("--01 11"), cube("0--- 01")])
            .expect("dims");
        let net = map_cover(&cover, &MapOptions::default());
        let blif = network_to_blif(&net, "roundtrip");
        for a in 0..16u64 {
            assert_eq!(
                eval_blif(&blif, a, 4, 2),
                net.evaluate(a),
                "input {a:04b}\n{blif}"
            );
        }
    }

    #[test]
    fn header_and_structure() {
        let mut net = Network::new(3, 1);
        let g = net.add_gate(vec![
            NetSignal::Literal {
                var: 0,
                positive: true,
            },
            NetSignal::Literal {
                var: 2,
                positive: false,
            },
        ]);
        net.set_output(0, g);
        let blif = network_to_blif(&net, "demo");
        assert!(blif.starts_with(".model demo\n"));
        assert!(blif.contains(".inputs x0 x1 x2"));
        assert!(blif.contains(".outputs o0"));
        assert!(blif.contains(".names x2 inv_x2"), "inverter node for x̄2");
        assert!(blif.contains(".names x0 inv_x2 g0"));
        assert!(blif.ends_with(".end\n"));
    }

    #[test]
    fn literal_output_gets_a_buffer() {
        let mut net = Network::new(2, 1);
        net.set_output(
            0,
            NetSignal::Literal {
                var: 1,
                positive: false,
            },
        );
        let blif = network_to_blif(&net, "buf");
        assert!(blif.contains(".names inv_x1 o0"));
        for a in 0..4u64 {
            assert_eq!(eval_blif(&blif, a, 2, 1), vec![a >> 1 & 1 == 0]);
        }
    }
}
