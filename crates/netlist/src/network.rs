//! NAND-only Boolean networks: the output of the multi-level technology
//! mapping flow and the input to the multi-level crossbar design.
//!
//! The paper forces Berkeley ABC to map onto NAND gates of fan-in 2..n so
//! the result is implementable on a crossbar (each gate = one horizontal
//! line computing a NAND). This module is the network container that flow
//! produces, together with the multi-level area-cost model derived from the
//! paper's Fig. 5 example.

use std::fmt;

/// A signal in a NAND network: a literal column or an earlier gate's value.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum NetSignal {
    /// Input literal `x_var` (positive) or `x̄_var` (negative). Both phases
    /// are free on a crossbar (dedicated columns).
    Literal {
        /// Variable index.
        var: usize,
        /// `true` = `x`, `false` = `x̄`.
        positive: bool,
    },
    /// Output of gate `id` (must precede the consumer topologically).
    Gate(usize),
}

/// One NAND gate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NandGate {
    /// Fan-in signals; the gate computes `NOT(AND(fanins))`.
    pub fanins: Vec<NetSignal>,
}

/// A NAND-only combinational network.
///
/// Gates are stored in topological order: gate `i` may only reference gates
/// `j < i`. Outputs may tap any signal.
///
/// # Examples
///
/// ```
/// use xbar_netlist::{Network, NetSignal};
///
/// // f = x0 AND x1 = NAND(NAND(x0, x1)).
/// let mut net = Network::new(2, 1);
/// let inner = net.add_gate(vec![
///     NetSignal::Literal { var: 0, positive: true },
///     NetSignal::Literal { var: 1, positive: true },
/// ]);
/// let outer = net.add_gate(vec![inner]);
/// net.set_output(0, outer);
/// assert_eq!(net.evaluate(0b11), vec![true]);
/// assert_eq!(net.evaluate(0b01), vec![false]);
/// ```
#[derive(Clone, PartialEq, Eq)]
pub struct Network {
    num_inputs: usize,
    num_outputs: usize,
    gates: Vec<NandGate>,
    outputs: Vec<Option<NetSignal>>,
}

impl Network {
    /// An empty network with unset outputs.
    #[must_use]
    pub fn new(num_inputs: usize, num_outputs: usize) -> Self {
        Self {
            num_inputs,
            num_outputs,
            gates: Vec::new(),
            outputs: vec![None; num_outputs],
        }
    }

    /// Number of primary inputs.
    #[must_use]
    pub fn num_inputs(&self) -> usize {
        self.num_inputs
    }

    /// Number of primary outputs.
    #[must_use]
    pub fn num_outputs(&self) -> usize {
        self.num_outputs
    }

    /// The gates in topological order.
    #[must_use]
    pub fn gates(&self) -> &[NandGate] {
        &self.gates
    }

    /// Number of NAND gates (`G` in the area model).
    #[must_use]
    pub fn gate_count(&self) -> usize {
        self.gates.len()
    }

    /// Appends a NAND gate and returns its output signal.
    ///
    /// # Panics
    ///
    /// Panics if a fan-in references an out-of-range variable, a not-yet-
    /// created gate (topological violation), or the fan-in list is empty.
    pub fn add_gate(&mut self, fanins: Vec<NetSignal>) -> NetSignal {
        assert!(!fanins.is_empty(), "NAND gate needs at least one fan-in");
        for &s in &fanins {
            match s {
                NetSignal::Literal { var, .. } => {
                    assert!(var < self.num_inputs, "literal variable out of range");
                }
                NetSignal::Gate(id) => {
                    assert!(id < self.gates.len(), "fan-in gate must already exist");
                }
            }
        }
        self.gates.push(NandGate { fanins });
        NetSignal::Gate(self.gates.len() - 1)
    }

    /// Connects output `k` to a signal.
    ///
    /// # Panics
    ///
    /// Panics on a bad output index or an out-of-range signal.
    pub fn set_output(&mut self, k: usize, signal: NetSignal) {
        assert!(k < self.num_outputs, "output index out of range");
        if let NetSignal::Gate(id) = signal {
            assert!(id < self.gates.len(), "output gate must exist");
        }
        self.outputs[k] = Some(signal);
    }

    /// The signal driving output `k`, if connected.
    #[must_use]
    pub fn output(&self, k: usize) -> Option<NetSignal> {
        self.outputs[k]
    }

    /// Evaluates all outputs on an input assignment (bit `i` = `x_i`).
    ///
    /// # Panics
    ///
    /// Panics if any output is unconnected.
    #[must_use]
    pub fn evaluate(&self, assignment: u64) -> Vec<bool> {
        let mut values = Vec::with_capacity(self.gates.len());
        for gate in &self.gates {
            let conj = gate
                .fanins
                .iter()
                .all(|&s| self.signal_value(s, assignment, &values));
            values.push(!conj);
        }
        (0..self.num_outputs)
            .map(|k| {
                let s = self.outputs[k].expect("output must be connected");
                self.signal_value(s, assignment, &values)
            })
            .collect()
    }

    fn signal_value(&self, signal: NetSignal, assignment: u64, gate_values: &[bool]) -> bool {
        match signal {
            NetSignal::Literal { var, positive } => (assignment >> var & 1 == 1) == positive,
            NetSignal::Gate(id) => gate_values[id],
        }
    }

    /// Maximum gate fan-in.
    #[must_use]
    pub fn max_fanin(&self) -> usize {
        self.gates.iter().map(|g| g.fanins.len()).max().unwrap_or(0)
    }

    /// The number of *multi-level connection* columns the crossbar needs:
    /// gates whose output feeds at least one other gate (`C` in the area
    /// model). Output taps use the output columns instead.
    #[must_use]
    pub fn connection_count(&self) -> usize {
        let mut feeds_gate = vec![false; self.gates.len()];
        for gate in &self.gates {
            for &s in &gate.fanins {
                if let NetSignal::Gate(id) = s {
                    feeds_gate[id] = true;
                }
            }
        }
        feeds_gate.iter().filter(|&&b| b).count()
    }

    /// Depth (levels) of the network: longest literal-to-output gate chain.
    #[must_use]
    pub fn depth(&self) -> usize {
        let mut level = vec![0usize; self.gates.len()];
        for (i, gate) in self.gates.iter().enumerate() {
            level[i] = 1 + gate
                .fanins
                .iter()
                .map(|&s| match s {
                    NetSignal::Gate(id) => level[id],
                    NetSignal::Literal { .. } => 0,
                })
                .max()
                .unwrap_or(0);
        }
        self.outputs
            .iter()
            .flatten()
            .map(|&s| match s {
                NetSignal::Gate(id) => level[id],
                NetSignal::Literal { .. } => 0,
            })
            .max()
            .unwrap_or(0)
    }
}

impl fmt::Debug for Network {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Network(inputs={}, outputs={}, gates={})",
            self.num_inputs,
            self.num_outputs,
            self.gates.len()
        )?;
        for (i, gate) in self.gates.iter().enumerate() {
            write!(f, "  g{i} = NAND(")?;
            for (j, s) in gate.fanins.iter().enumerate() {
                if j > 0 {
                    write!(f, ", ")?;
                }
                match s {
                    NetSignal::Literal { var, positive } => {
                        write!(f, "{}x{var}", if *positive { "" } else { "!" })?;
                    }
                    NetSignal::Gate(id) => write!(f, "g{id}")?,
                }
            }
            writeln!(f, ")")?;
        }
        for (k, o) in self.outputs.iter().enumerate() {
            writeln!(f, "  O{k} = {o:?}")?;
        }
        Ok(())
    }
}

/// The multi-level crossbar cost model derived from Fig. 5 (see DESIGN.md):
/// rows = `G + O`, cols = `2I + C + 2O`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MultiLevelCost {
    /// NAND gate count `G` (crossbar gate rows).
    pub gates: usize,
    /// Connection column count `C`.
    pub connections: usize,
    /// Horizontal lines: `G + O`.
    pub rows: usize,
    /// Vertical lines: `2I + C + 2O`.
    pub cols: usize,
}

impl MultiLevelCost {
    /// Computes the cost of a network.
    #[must_use]
    pub fn of(network: &Network) -> Self {
        let gates = network.gate_count();
        let connections = network.connection_count();
        let rows = gates + network.num_outputs();
        let cols = 2 * network.num_inputs() + connections + 2 * network.num_outputs();
        Self {
            gates,
            connections,
            rows,
            cols,
        }
    }

    /// Area cost: rows × cols.
    #[must_use]
    pub fn area(&self) -> usize {
        self.rows * self.cols
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lit(var: usize, positive: bool) -> NetSignal {
        NetSignal::Literal { var, positive }
    }

    /// The Fig. 5 network: f = x0+x1+x2+x3 + x4·x5·x6·x7.
    fn fig5_network() -> Network {
        let mut net = Network::new(8, 1);
        let g0 = net.add_gate((4..8).map(|v| lit(v, true)).collect());
        let g1 = net.add_gate((0..4).map(|v| lit(v, false)).chain([g0]).collect());
        net.set_output(0, g1);
        net
    }

    #[test]
    fn fig5_network_evaluates_correctly() {
        let net = fig5_network();
        for a in 0..256u64 {
            let expected = (a & 0b1111) != 0 || (a >> 4) & 0b1111 == 0b1111;
            assert_eq!(net.evaluate(a), vec![expected], "input {a:08b}");
        }
    }

    #[test]
    fn fig5_cost_is_3_by_19_equals_57() {
        let cost = MultiLevelCost::of(&fig5_network());
        assert_eq!(cost.gates, 2);
        assert_eq!(cost.connections, 1);
        assert_eq!(cost.rows, 3);
        assert_eq!(cost.cols, 19);
        assert_eq!(cost.area(), 57);
    }

    #[test]
    fn literal_output_is_allowed() {
        let mut net = Network::new(2, 1);
        net.set_output(0, lit(1, false));
        assert_eq!(net.evaluate(0b00), vec![true]);
        assert_eq!(net.evaluate(0b10), vec![false]);
    }

    #[test]
    fn depth_counts_levels() {
        let net = fig5_network();
        assert_eq!(net.depth(), 2);
    }

    #[test]
    fn connection_count_ignores_output_taps() {
        // Single gate feeding only an output: no connection column needed.
        let mut net = Network::new(2, 1);
        let g = net.add_gate(vec![lit(0, true), lit(1, true)]);
        net.set_output(0, g);
        assert_eq!(net.connection_count(), 0);
        // cols = 2I + C + 2O with C = 0.
        assert_eq!(MultiLevelCost::of(&net).cols, 6);
    }

    #[test]
    #[should_panic(expected = "fan-in gate must already exist")]
    fn forward_reference_is_rejected() {
        let mut net = Network::new(1, 1);
        net.add_gate(vec![NetSignal::Gate(5)]);
    }

    #[test]
    #[should_panic(expected = "output must be connected")]
    fn unconnected_output_panics_on_evaluate() {
        let net = Network::new(1, 1);
        let _ = net.evaluate(0);
    }
}
