//! Good-factor style algebraic factoring: SOP → factored expression tree.
//!
//! The paper's multi-level flow asks ABC for a NAND implementation; the area
//! win over two-level comes entirely from *sharing* — factoring common
//! subexpressions out of the SOP. This module is that optimization step.

use crate::kernels::{
    algebraic_divide, common_cube, cube_minus, decode_literal, divide_by_cube, kernels,
    sop_from_cover, AlgCube, AlgSop,
};
use std::fmt;
use xbar_logic::Cover;

/// A factored Boolean expression.
#[derive(Clone, PartialEq, Eq)]
pub enum Expr {
    /// A literal `x_var` or `x̄_var`.
    Lit {
        /// Variable index.
        var: usize,
        /// `true` = positive phase.
        positive: bool,
    },
    /// Conjunction of sub-expressions.
    And(Vec<Expr>),
    /// Disjunction of sub-expressions (empty = constant 0).
    Or(Vec<Expr>),
}

impl Expr {
    /// Evaluates the expression on an assignment (bit `i` = `x_i`).
    #[must_use]
    pub fn evaluate(&self, assignment: u64) -> bool {
        match self {
            Expr::Lit { var, positive } => (assignment >> var & 1 == 1) == *positive,
            Expr::And(children) => children.iter().all(|c| c.evaluate(assignment)),
            Expr::Or(children) => children.iter().any(|c| c.evaluate(assignment)),
        }
    }

    /// Number of literal leaves (the classic factored-form cost metric).
    #[must_use]
    pub fn literal_count(&self) -> usize {
        match self {
            Expr::Lit { .. } => 1,
            Expr::And(children) | Expr::Or(children) => {
                children.iter().map(Expr::literal_count).sum()
            }
        }
    }

    /// Constant-0 expression.
    #[must_use]
    pub fn zero() -> Self {
        Expr::Or(Vec::new())
    }

    /// True when this is the empty disjunction (constant 0).
    #[must_use]
    pub fn is_zero(&self) -> bool {
        matches!(self, Expr::Or(children) if children.is_empty())
    }
}

impl fmt::Debug for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::Lit { var, positive } => {
                write!(f, "{}x{var}", if *positive { "" } else { "!" })
            }
            Expr::And(children) => {
                write!(f, "(")?;
                for (i, c) in children.iter().enumerate() {
                    if i > 0 {
                        write!(f, " & ")?;
                    }
                    write!(f, "{c:?}")?;
                }
                write!(f, ")")
            }
            Expr::Or(children) => {
                if children.is_empty() {
                    return write!(f, "0");
                }
                write!(f, "(")?;
                for (i, c) in children.iter().enumerate() {
                    if i > 0 {
                        write!(f, " | ")?;
                    }
                    write!(f, "{c:?}")?;
                }
                write!(f, ")")
            }
        }
    }
}

fn cube_expr(cube: &AlgCube) -> Expr {
    let lits: Vec<Expr> = cube
        .iter()
        .map(|&id| {
            let (var, positive) = decode_literal(id);
            Expr::Lit { var, positive }
        })
        .collect();
    match lits.len() {
        1 => lits.into_iter().next().expect("one literal"),
        _ => Expr::And(lits),
    }
}

fn and2(a: Expr, b: Expr) -> Expr {
    let mut children = Vec::new();
    for e in [a, b] {
        match e {
            Expr::And(cs) => children.extend(cs),
            other => children.push(other),
        }
    }
    if children.len() == 1 {
        children.into_iter().next().expect("one child")
    } else {
        Expr::And(children)
    }
}

fn or2(a: Expr, b: Expr) -> Expr {
    let mut children = Vec::new();
    for e in [a, b] {
        match e {
            Expr::Or(cs) => children.extend(cs),
            other => children.push(other),
        }
    }
    if children.len() == 1 {
        children.into_iter().next().expect("one child")
    } else {
        Expr::Or(children)
    }
}

/// Factors a single-output cover into a (heuristically) minimal-literal
/// expression via kernel-based good factoring.
///
/// # Panics
///
/// Panics when the cover is not single-output.
///
/// # Examples
///
/// ```
/// use xbar_logic::{cube, Cover};
/// use xbar_netlist::factor_cover;
///
/// // ac + ad + bc + bd factors to (a+b)(c+d): 4 literals instead of 8.
/// let cover = Cover::from_cubes(4, 1,
///     [cube("1-1- 1"), cube("1--1 1"), cube("-11- 1"), cube("-1-1 1")])?;
/// let expr = factor_cover(&cover);
/// assert_eq!(expr.literal_count(), 4);
/// # Ok::<(), xbar_logic::LogicError>(())
/// ```
#[must_use]
pub fn factor_cover(cover: &Cover) -> Expr {
    let sop = sop_from_cover(cover);
    factor_sop(&sop)
}

/// Factors an algebraic SOP.
#[must_use]
pub fn factor_sop(sop: &AlgSop) -> Expr {
    if sop.is_empty() {
        return Expr::zero();
    }
    if sop.len() == 1 {
        return cube_expr(&sop[0]);
    }
    // Pull out the common cube first: F = c · F'.
    let common = common_cube(sop);
    if !common.is_empty() {
        let rest: AlgSop = sop.iter().map(|c| cube_minus(c, &common)).collect();
        if rest.iter().any(AlgCube::is_empty) {
            // The common cube IS one of the cubes: F = c·(1 + ...) = c.
            return cube_expr(&common);
        }
        return and2(cube_expr(&common), factor_sop(&rest));
    }

    // Kernel-based division: pick the kernel whose extraction saves the
    // most literals.
    let candidate = best_kernel(sop);
    if let Some(kernel) = candidate {
        let (quotient, remainder) = algebraic_divide(sop, &kernel);
        if !quotient.is_empty() && quotient.len() < sop.len() {
            let dq = and2(factor_sop(&kernel), factor_sop(&quotient));
            return if remainder.is_empty() {
                dq
            } else {
                or2(dq, factor_sop(&remainder))
            };
        }
    }

    // Literal factoring fallback: split on the most frequent literal.
    if let Some(l) = most_frequent_literal(sop) {
        let quotient = divide_by_cube(sop, &vec![l]);
        let remainder: AlgSop = sop.iter().filter(|c| !c.contains(&l)).cloned().collect();
        if quotient.len() >= 2 {
            let head = and2(cube_expr(&vec![l]), factor_sop(&quotient));
            return if remainder.is_empty() {
                head
            } else {
                or2(head, factor_sop(&remainder))
            };
        }
    }

    // Plain disjunction of cubes.
    Expr::Or(sop.iter().map(cube_expr).collect())
}

/// Above this cube count, kernel enumeration is skipped in favour of
/// literal factoring: parity-like covers have combinatorially many kernels
/// and would blow up the recursion (rd84's 128-cube parity output is the
/// canonical offender).
const KERNEL_CUBE_LIMIT: usize = 48;

/// Picks the kernel (other than the SOP itself) with the highest extraction
/// value `(|quotient| − 1) · literals(kernel)`.
fn best_kernel(sop: &AlgSop) -> Option<AlgSop> {
    if sop.len() > KERNEL_CUBE_LIMIT {
        return None;
    }
    let mut sorted_self: AlgSop = sop.clone();
    sorted_self.iter_mut().for_each(|c| c.sort_unstable());
    sorted_self.sort();

    let mut best: Option<(usize, AlgSop)> = None;
    for kernel in kernels(sop) {
        if kernel == sorted_self {
            continue;
        }
        let (quotient, _) = algebraic_divide(sop, &kernel);
        if quotient.is_empty() {
            continue;
        }
        let kernel_literals: usize = kernel.iter().map(Vec::len).sum();
        let value = quotient.len().saturating_sub(1) * kernel_literals;
        if value > 0 && best.as_ref().is_none_or(|(v, _)| value > *v) {
            best = Some((value, kernel));
        }
    }
    best.map(|(_, k)| k)
}

fn most_frequent_literal(sop: &AlgSop) -> Option<u32> {
    let mut counts: std::collections::HashMap<u32, usize> = std::collections::HashMap::new();
    for cube in sop {
        for &l in cube {
            *counts.entry(l).or_insert(0) += 1;
        }
    }
    counts
        .into_iter()
        .filter(|&(_, c)| c >= 2)
        .max_by_key(|&(l, c)| (c, std::cmp::Reverse(l)))
        .map(|(l, _)| l)
}

#[cfg(test)]
mod tests {
    use super::*;
    use xbar_logic::cube;

    fn check_equivalent(cover: &Cover, expr: &Expr) {
        for a in 0..1u64 << cover.num_inputs() {
            assert_eq!(
                expr.evaluate(a),
                cover.evaluate_output(a, 0),
                "mismatch at {a:b}"
            );
        }
    }

    #[test]
    fn single_cube_is_an_and() {
        let cover = Cover::from_cubes(3, 1, [cube("110 1")]).expect("dims");
        let expr = factor_cover(&cover);
        check_equivalent(&cover, &expr);
        assert_eq!(expr.literal_count(), 3);
    }

    #[test]
    fn distributive_factoring_saves_literals() {
        // ac + ad + bc + bd = (a+b)(c+d).
        let cover = Cover::from_cubes(
            4,
            1,
            [
                cube("1-1- 1"),
                cube("1--1 1"),
                cube("-11- 1"),
                cube("-1-1 1"),
            ],
        )
        .expect("dims");
        let expr = factor_cover(&cover);
        check_equivalent(&cover, &expr);
        assert_eq!(expr.literal_count(), 4, "expected (a+b)(c+d), got {expr:?}");
    }

    #[test]
    fn textbook_example_with_remainder() {
        // (a+b+c)(d+e)f + g: 7 literals factored (vs 19 flat).
        let cover = Cover::from_cubes(
            7,
            1,
            [
                cube("1--1-1- 1"),
                cube("1---11- 1"),
                cube("-1-1-1- 1"),
                cube("-1--11- 1"),
                cube("--11-1- 1"),
                cube("--1-11- 1"),
                cube("------1 1"),
            ],
        )
        .expect("dims");
        let expr = factor_cover(&cover);
        check_equivalent(&cover, &expr);
        assert!(
            expr.literal_count() <= 8,
            "expected ≈7 literals, got {} in {expr:?}",
            expr.literal_count()
        );
    }

    #[test]
    fn common_cube_is_pulled_out() {
        // abc + abd = ab(c+d).
        let cover = Cover::from_cubes(4, 1, [cube("111- 1"), cube("11-1 1")]).expect("dims");
        let expr = factor_cover(&cover);
        check_equivalent(&cover, &expr);
        assert_eq!(expr.literal_count(), 4);
    }

    #[test]
    fn absorbed_cube_collapses() {
        // ab + ab·c: algebraically ab(1 + c) = ab.
        let cover = Cover::from_cubes(3, 1, [cube("11- 1"), cube("111 1")]).expect("dims");
        let expr = factor_cover(&cover);
        check_equivalent(&cover, &expr);
        assert_eq!(expr.literal_count(), 2);
    }

    #[test]
    fn empty_cover_is_constant_zero() {
        let cover = Cover::new(3, 1);
        let expr = factor_cover(&cover);
        assert!(expr.is_zero());
        assert!(!expr.evaluate(0b101));
    }

    #[test]
    fn unfactorable_sop_stays_flat() {
        // ab + cd has no savings; literal count stays 4.
        let cover = Cover::from_cubes(4, 1, [cube("11-- 1"), cube("--11 1")]).expect("dims");
        let expr = factor_cover(&cover);
        check_equivalent(&cover, &expr);
        assert_eq!(expr.literal_count(), 4);
    }

    #[test]
    fn negative_literals_are_preserved() {
        let cover = Cover::from_cubes(3, 1, [cube("0-1 1"), cube("0-0 1")]).expect("dims");
        let expr = factor_cover(&cover);
        check_equivalent(&cover, &expr);
        // Algebraic factoring pulls out x̄0 but keeps (x2 + x̄2): Boolean
        // simplification is the minimizer's job, not the factorer's.
        assert!(expr.literal_count() <= 3);
    }

    #[test]
    fn random_covers_stay_equivalent_after_factoring() {
        use xbar_logic::RandomSopSpec;
        for seed in 0..20u64 {
            let spec = RandomSopSpec::figure6(6, 5);
            let cover = spec.generate_seeded(seed);
            let expr = factor_cover(&cover);
            check_equivalent(&cover, &expr);
        }
    }
}
