//! Algebraic division and kernel extraction — the machinery of multi-level
//! logic factoring (the stand-in for ABC's algebraic optimization passes).
//!
//! Internally a single-output SOP is a set of cubes, each cube a sorted set
//! of *literal ids* (`2·var + 1` for `x_var`, `2·var` for `x̄_var`).

use xbar_logic::{Cover, Phase};

/// A literal id: `2·var + 1` encodes `x_var`, `2·var` encodes `x̄_var`.
pub type LiteralId = u32;

/// A cube as a sorted vector of literal ids.
pub type AlgCube = Vec<LiteralId>;

/// A single-output SOP as a vector of cubes.
pub type AlgSop = Vec<AlgCube>;

/// Encodes a literal id.
#[must_use]
pub fn literal_id(var: usize, positive: bool) -> LiteralId {
    (2 * var + usize::from(positive)) as LiteralId
}

/// Decodes a literal id into `(var, positive)`.
#[must_use]
pub fn decode_literal(id: LiteralId) -> (usize, bool) {
    ((id / 2) as usize, id % 2 == 1)
}

/// Converts a *single-output* cover into the algebraic representation.
///
/// # Panics
///
/// Panics when the cover is not single-output.
#[must_use]
pub fn sop_from_cover(cover: &Cover) -> AlgSop {
    assert_eq!(
        cover.num_outputs(),
        1,
        "algebraic ops need single-output covers"
    );
    cover
        .iter()
        .map(|cube| {
            let mut lits: AlgCube = cube
                .literals()
                .map(|(var, phase)| literal_id(var, phase == Phase::Positive))
                .collect();
            lits.sort_unstable();
            lits
        })
        .collect()
}

/// Whether sorted cube `sup` contains all literals of sorted cube `sub`.
#[must_use]
pub fn cube_contains(sup: &AlgCube, sub: &AlgCube) -> bool {
    let mut it = sup.iter();
    sub.iter().all(|l| it.any(|s| s == l))
}

/// Set-difference of sorted cubes: literals of `cube` not in `remove`.
#[must_use]
pub fn cube_minus(cube: &AlgCube, remove: &AlgCube) -> AlgCube {
    cube.iter()
        .copied()
        .filter(|l| !remove.contains(l))
        .collect()
}

/// The largest cube dividing every cube of `sop` (intersection of literal
/// sets); empty when `sop` is cube-free or empty.
#[must_use]
pub fn common_cube(sop: &AlgSop) -> AlgCube {
    let Some(first) = sop.first() else {
        return Vec::new();
    };
    let mut common: AlgCube = first.clone();
    for cube in &sop[1..] {
        common.retain(|l| cube.contains(l));
        if common.is_empty() {
            break;
        }
    }
    common
}

/// Divides `sop` by a single cube: quotient = `{ f − d : f ∈ sop, f ⊇ d }`.
#[must_use]
pub fn divide_by_cube(sop: &AlgSop, divisor: &AlgCube) -> AlgSop {
    sop.iter()
        .filter(|f| cube_contains(f, divisor))
        .map(|f| cube_minus(f, divisor))
        .collect()
}

/// Weak (algebraic) division: `sop = divisor·quotient + remainder` with the
/// quotient maximal. Returns `(quotient, remainder)`.
#[must_use]
pub fn algebraic_divide(sop: &AlgSop, divisor: &AlgSop) -> (AlgSop, AlgSop) {
    if divisor.is_empty() {
        return (Vec::new(), sop.clone());
    }
    // Quotient = intersection over divisor cubes of the single-cube
    // quotients.
    let mut quotient: Option<AlgSop> = None;
    for d in divisor {
        let q = divide_by_cube(sop, d);
        quotient = Some(match quotient {
            None => q,
            Some(prev) => prev.into_iter().filter(|c| q.contains(c)).collect(),
        });
        if quotient.as_ref().is_some_and(Vec::is_empty) {
            break;
        }
    }
    let quotient = quotient.unwrap_or_default();
    // Remainder = sop minus the expanded product divisor × quotient.
    let mut product: Vec<AlgCube> = Vec::new();
    for d in divisor {
        for q in &quotient {
            let mut cube: AlgCube = d.iter().chain(q.iter()).copied().collect();
            cube.sort_unstable();
            cube.dedup();
            product.push(cube);
        }
    }
    let remainder: AlgSop = sop
        .iter()
        .filter(|f| {
            let mut sorted = (*f).clone();
            sorted.sort_unstable();
            !product.contains(&sorted)
        })
        .cloned()
        .collect();
    (quotient, remainder)
}

/// All kernels of `sop` (cube-free quotients by cubes), including the
/// cube-free version of `sop` itself. Duplicates removed.
#[must_use]
pub fn kernels(sop: &AlgSop) -> Vec<AlgSop> {
    let mut out: Vec<AlgSop> = Vec::new();
    let common = common_cube(sop);
    let cube_free: AlgSop = if common.is_empty() {
        sop.clone()
    } else {
        sop.iter().map(|c| cube_minus(c, &common)).collect()
    };
    kernels_rec(&cube_free, 0, &mut out);
    push_unique(&mut out, cube_free);
    out
}

fn kernels_rec(sop: &AlgSop, min_literal: LiteralId, out: &mut Vec<AlgSop>) {
    let max_literal = sop.iter().flatten().copied().max().unwrap_or(0);
    for l in min_literal..=max_literal {
        let count = sop.iter().filter(|c| c.contains(&l)).count();
        if count < 2 {
            continue;
        }
        let quotient = divide_by_cube(sop, &vec![l]);
        let common = common_cube(&quotient);
        // Skip if the co-kernel includes an already-processed literal
        // (that kernel was found from the smaller literal).
        if common.iter().any(|&c| c < l) {
            continue;
        }
        let kernel: AlgSop = quotient.iter().map(|c| cube_minus(c, &common)).collect();
        kernels_rec(&kernel, l + 1, out);
        push_unique(out, kernel);
    }
}

fn push_unique(out: &mut Vec<AlgSop>, mut kernel: AlgSop) {
    kernel.iter_mut().for_each(|c| c.sort_unstable());
    kernel.sort();
    if kernel.len() >= 2 && !out.contains(&kernel) {
        out.push(kernel);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lit(var: usize, pos: bool) -> LiteralId {
        literal_id(var, pos)
    }

    /// abc + abd + e → kernels should include {c + d} (co-kernel ab) and the
    /// whole cube-free SOP.
    fn sample_sop() -> AlgSop {
        let a = lit(0, true);
        let b = lit(1, true);
        let c = lit(2, true);
        let d = lit(3, true);
        let e = lit(4, true);
        vec![vec![a, b, c], vec![a, b, d], vec![e]]
    }

    #[test]
    fn literal_id_roundtrip() {
        for var in 0..10 {
            for pos in [false, true] {
                assert_eq!(decode_literal(literal_id(var, pos)), (var, pos));
            }
        }
    }

    #[test]
    fn common_cube_of_shared_prefix() {
        let a = lit(0, true);
        let b = lit(1, true);
        let sop = vec![vec![a, b, lit(2, true)], vec![a, b, lit(3, false)]];
        assert_eq!(common_cube(&sop), vec![a, b]);
    }

    #[test]
    fn divide_by_cube_extracts_quotient() {
        let sop = sample_sop();
        let ab = vec![lit(0, true), lit(1, true)];
        let q = divide_by_cube(&sop, &ab);
        assert_eq!(q, vec![vec![lit(2, true)], vec![lit(3, true)]]);
    }

    #[test]
    fn algebraic_divide_reconstructs() {
        // (c + d) divides abc + abd + e with quotient ab, remainder e.
        let sop = sample_sop();
        let divisor = vec![vec![lit(2, true)], vec![lit(3, true)]];
        let (q, r) = algebraic_divide(&sop, &divisor);
        assert_eq!(q, vec![vec![lit(0, true), lit(1, true)]]);
        assert_eq!(r, vec![vec![lit(4, true)]]);
    }

    #[test]
    fn kernels_include_c_plus_d() {
        let ks = kernels(&sample_sop());
        let c_plus_d: AlgSop = vec![vec![lit(2, true)], vec![lit(3, true)]];
        assert!(
            ks.contains(&c_plus_d),
            "kernels {ks:?} should include c + d"
        );
    }

    #[test]
    fn kernels_of_unfactorable_sop() {
        // ab + cd: kernels = only the SOP itself.
        let sop = vec![
            vec![lit(0, true), lit(1, true)],
            vec![lit(2, true), lit(3, true)],
        ];
        let ks = kernels(&sop);
        assert_eq!(ks.len(), 1);
    }

    #[test]
    fn classic_textbook_kernels() {
        // F = adf + aef + bdf + bef + cdf + cef + g
        //   = (a+b+c)(d+e)f + g.
        let a = lit(0, true);
        let b = lit(1, true);
        let c = lit(2, true);
        let d = lit(3, true);
        let e = lit(4, true);
        let f_ = lit(5, true);
        let g = lit(6, true);
        let sop: AlgSop = vec![
            vec![a, d, f_],
            vec![a, e, f_],
            vec![b, d, f_],
            vec![b, e, f_],
            vec![c, d, f_],
            vec![c, e, f_],
            vec![g],
        ];
        let ks = kernels(&sop);
        let abc: AlgSop = vec![vec![a], vec![b], vec![c]];
        let de: AlgSop = vec![vec![d], vec![e]];
        assert!(ks.contains(&abc), "a+b+c is a kernel");
        assert!(ks.contains(&de), "d+e is a kernel");
    }

    #[test]
    fn sop_from_cover_roundtrip() {
        use xbar_logic::{cube, Cover};
        let cover = Cover::from_cubes(3, 1, [cube("11- 1"), cube("0-1 1")]).expect("dims");
        let sop = sop_from_cover(&cover);
        assert_eq!(sop.len(), 2);
        assert_eq!(sop[0], vec![lit(0, true), lit(1, true)]);
        assert_eq!(sop[1], vec![lit(0, false), lit(2, true)]);
    }
}
