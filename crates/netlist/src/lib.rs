//! # xbar-netlist
//!
//! Multi-level Boolean network substrate — the stand-in for Berkeley ABC in
//! the reproduction of Tunali & Altun (DATE 2018).
//!
//! The paper's multi-level crossbar design consumes a NAND-only netlist
//! ("we force ABC to use a set of NAND gates which have fan-in sizes 2 to
//! n"). This crate produces such netlists from two-level covers:
//!
//! * [`Network`] — NAND-only DAG with evaluation, depth/fan-in statistics
//!   and the [`MultiLevelCost`] crossbar area model (`rows = G + O`,
//!   `cols = 2I + C + 2O`, calibrated on the paper's Fig. 5 example);
//! * [`kernels`](crate::kernels()) / [`algebraic_divide`] — algebraic
//!   division and kernel extraction;
//! * [`factor_cover`] — good-factor style factoring (SOP → [`Expr`]);
//! * [`map_cover`] — polarity-aware NAND mapping with structural hashing
//!   and bounded fan-in;
//! * [`t481_analog`] / [`cordic_analog`] — structural analogs of the two
//!   Table I circuits that demonstrate the multi-level-wins crossover.
//!
//! ## Example
//!
//! ```
//! use xbar_logic::{cube, Cover};
//! use xbar_netlist::{map_cover, MapOptions, MultiLevelCost};
//!
//! // ac + ad + bc + bd factors to (a+b)(c+d) and maps to 4 NAND gates
//! // (two ORs, the combining NAND, one inverter).
//! let cover = Cover::from_cubes(4, 1,
//!     [cube("1-1- 1"), cube("1--1 1"), cube("-11- 1"), cube("-1-1 1")])?;
//! let net = map_cover(&cover, &MapOptions::default());
//! assert!(net.gate_count() <= 4);
//! assert_eq!(net.evaluate(0b0101), vec![true]); // a·c
//! # Ok::<(), xbar_logic::LogicError>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod analogs;
mod blif;
mod factor;
pub mod kernels;
mod nand_map;
mod network;

pub use analogs::{cordic_analog, cordic_analog_reference, t481_analog, t481_analog_reference};
pub use blif::network_to_blif;
pub use factor::{factor_cover, factor_sop, Expr};
pub use kernels::{algebraic_divide, kernels, AlgCube, AlgSop, LiteralId};
pub use nand_map::{flat_expr, map_cover, map_exprs, MapOptions};
pub use network::{MultiLevelCost, NandGate, NetSignal, Network};
