//! Structural analogs of `t481` and `cordic` (see DESIGN.md §4).
//!
//! These two Table I benchmarks exist to demonstrate the multi-level-wins
//! crossover: circuits whose two-level covers are huge (481 and 914
//! products) but whose factored forms are tiny. Their MCNC netlists are not
//! redistributable, so we build functions with the same character: compact
//! NAND networks whose flattened SOPs blow up combinatorially.

use crate::network::{NetSignal, Network};

fn lit(var: usize, positive: bool) -> NetSignal {
    NetSignal::Literal { var, positive }
}

/// `t481` analog: 16 inputs, 1 output —
/// `f = ⋀_{i=0..7} (x_{2i} ⊕ x_{2i+1})`.
///
/// The AND-of-XORs structure factors to ~26 NAND gates while its minimal
/// SOP has `2^8 = 256` products of 16 literals each (the real t481's
/// espresso cover has 481 products; same regime).
#[must_use]
pub fn t481_analog() -> Network {
    let mut net = Network::new(16, 1);
    let mut xors = Vec::new();
    for i in 0..8 {
        let a = 2 * i;
        let b = 2 * i + 1;
        // XOR(a, b) = NAND(NAND(a, b̄), NAND(ā, b)).
        let g1 = net.add_gate(vec![lit(a, true), lit(b, false)]);
        let g2 = net.add_gate(vec![lit(a, false), lit(b, true)]);
        let x = net.add_gate(vec![g1, g2]);
        xors.push(x);
    }
    // AND of the 8 XORs = INV(NAND(xors)).
    let nand_all = net.add_gate(xors);
    let out = net.add_gate(vec![nand_all]);
    net.set_output(0, out);
    net
}

/// Reference model of the t481 analog.
#[must_use]
pub fn t481_analog_reference(assignment: u64) -> bool {
    (0..8).all(|i| (assignment >> (2 * i) & 1) != (assignment >> (2 * i + 1) & 1))
}

/// `cordic` analog: 23 inputs, 2 outputs — an 11-bit magnitude comparator
/// (`a > b` and `a == b`, gated by `x22`):
///
/// * `O0 = (a > b)` where `a = x[0..11]`, `b = x[11..22]`;
/// * `O1 = (a == b) ∧ x22`.
///
/// A ripple comparator needs ~5 gates/bit; the flat SOP of an 11-bit `>`
/// comparator has thousands of products (the real cordic's espresso cover
/// has 914).
#[must_use]
pub fn cordic_analog() -> Network {
    let bits = 11;
    let mut net = Network::new(23, 2);
    // Per-bit equality (XNOR) and a·b̄ ("a wins at this bit"), MSB = bit 10.
    let mut eqs = Vec::new();
    let mut wins = Vec::new();
    for i in 0..bits {
        let a = lit(i, true);
        let an = lit(i, false);
        let b = lit(bits + i, true);
        let bn = lit(bits + i, false);
        // XNOR(a,b) = NAND(NAND(a,b), NAND(ā,b̄)).
        let g1 = net.add_gate(vec![a, b]);
        let g2 = net.add_gate(vec![an, bn]);
        let xnor = net.add_gate(vec![g1, g2]);
        eqs.push(xnor);
        // win_i = a_i · b̄_i = INV(NAND(a, b̄)).
        let nw = net.add_gate(vec![a, bn]);
        let w = net.add_gate(vec![nw]);
        wins.push(w);
    }
    // gt = OR over i of (win_i AND eq_{i+1..MSB}).
    // term_i = AND(win_i, eq_{i+1}, ..., eq_{10}); OR via NAND of NANDs.
    let mut term_nands = Vec::new(); // NAND versions (inverted terms)
    for i in (0..bits).rev() {
        let mut fanins = vec![wins[i]];
        fanins.extend_from_slice(&eqs[i + 1..bits]);
        let t = net.add_gate(fanins); // = NOT(term_i)
        term_nands.push(t);
    }
    let gt = net.add_gate(term_nands); // NAND of inverted terms = OR of terms
    net.set_output(0, gt);
    // eq_all ∧ x22 = INV(NAND(eq_0..eq_10, x22)).
    let mut fanins: Vec<NetSignal> = eqs.clone();
    fanins.push(lit(22, true));
    let ne = net.add_gate(fanins);
    let eq_out = net.add_gate(vec![ne]);
    net.set_output(1, eq_out);
    net
}

/// Reference model of the cordic analog.
#[must_use]
pub fn cordic_analog_reference(assignment: u64) -> (bool, bool) {
    let a = assignment & 0x7FF;
    let b = assignment >> 11 & 0x7FF;
    let gate = assignment >> 22 & 1 == 1;
    (a > b, a == b && gate)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::network::MultiLevelCost;

    #[test]
    fn t481_analog_matches_reference_on_samples() {
        let net = t481_analog();
        let mut state = 0xDEAD_BEEFu64;
        for _ in 0..2000 {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            let a = state >> 20 & 0xFFFF;
            assert_eq!(
                net.evaluate(a),
                vec![t481_analog_reference(a)],
                "assignment {a:016b}"
            );
        }
    }

    #[test]
    fn t481_analog_is_compact() {
        let net = t481_analog();
        let cost = MultiLevelCost::of(&net);
        assert_eq!(net.num_inputs(), 16);
        assert!(cost.gates <= 30, "gates = {}", cost.gates);
        // Far below the published two-level area of 16388.
        assert!(cost.area() < 16388 / 4, "area = {}", cost.area());
    }

    #[test]
    fn cordic_analog_matches_reference_on_samples() {
        let net = cordic_analog();
        let mut state = 0x1234_5678u64;
        for _ in 0..2000 {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(99);
            let a = state >> 17 & 0x7F_FFFF;
            let (gt, eq) = cordic_analog_reference(a);
            assert_eq!(net.evaluate(a), vec![gt, eq], "assignment {a:023b}");
        }
    }

    #[test]
    fn cordic_analog_boundary_cases() {
        let net = cordic_analog();
        // a == b == 0, gate on: eq fires, gt does not.
        let gate_on = 1u64 << 22;
        assert_eq!(net.evaluate(gate_on), vec![false, true]);
        assert_eq!(net.evaluate(0), vec![false, false]);
        // a = 1, b = 0.
        assert_eq!(net.evaluate(1), vec![true, false]);
        // a = 0, b = 1.
        assert_eq!(net.evaluate(1 << 11), vec![false, false]);
    }

    #[test]
    fn cordic_analog_is_compact() {
        let net = cordic_analog();
        let cost = MultiLevelCost::of(&net);
        assert_eq!(net.num_inputs(), 23);
        // Far below the published two-level area of 45800.
        assert!(cost.area() < 45800 / 3, "area = {}", cost.area());
    }
}
