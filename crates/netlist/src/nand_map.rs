//! Technology mapping onto NAND-only networks with bounded fan-in — the
//! stand-in for the paper's ABC flow ("we force ABC to use a set of NAND
//! gates which have fan-in sizes 2 to n").
//!
//! Mapping is polarity-aware: complemented literals are free on a crossbar
//! (the `x̄` columns), so De Morgan transformations cost nothing at the
//! leaves, and inverters (1-input NANDs) are inserted only when a positive
//! AND/negative OR is genuinely required.

use crate::factor::{factor_cover, Expr};
use crate::network::{NetSignal, Network};
use std::collections::HashMap;
use xbar_logic::Cover;

/// Options of the SOP → NAND flow.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MapOptions {
    /// Maximum NAND fan-in (the paper uses the function's input count);
    /// `None` = unbounded.
    pub max_fanin: Option<usize>,
    /// Run kernel factoring before mapping (disable for the "flat"
    /// ablation, which translates the SOP directly).
    pub factoring: bool,
}

impl Default for MapOptions {
    fn default() -> Self {
        Self {
            max_fanin: None,
            factoring: true,
        }
    }
}

/// Incremental NAND network builder with structural hashing (identical
/// fan-in sets share one gate).
#[derive(Debug)]
struct Builder {
    network: Network,
    dedup: HashMap<Vec<NetSignal>, NetSignal>,
    max_fanin: usize,
}

impl Builder {
    fn new(num_inputs: usize, num_outputs: usize, max_fanin: Option<usize>) -> Self {
        Self {
            network: Network::new(num_inputs, num_outputs),
            dedup: HashMap::new(),
            max_fanin: max_fanin.unwrap_or(usize::MAX).max(2),
        }
    }

    /// A NAND gate over `fanins`, decomposed into an AND-tree when the
    /// fan-in bound is exceeded; structurally hashed.
    fn nand(&mut self, mut fanins: Vec<NetSignal>) -> NetSignal {
        fanins.sort_unstable();
        fanins.dedup();
        if fanins.len() > self.max_fanin {
            // Reduce groups of `max_fanin` signals into AND nodes
            // (NAND + inverter), then NAND the survivors.
            let mut reduced: Vec<NetSignal> = Vec::new();
            for chunk in fanins.chunks(self.max_fanin) {
                if chunk.len() == 1 {
                    reduced.push(chunk[0]);
                } else {
                    let n = self.nand(chunk.to_vec());
                    reduced.push(self.invert(n));
                }
            }
            return self.nand(reduced);
        }
        if let Some(&existing) = self.dedup.get(&fanins) {
            return existing;
        }
        let signal = self.network.add_gate(fanins.clone());
        self.dedup.insert(fanins, signal);
        signal
    }

    /// An inverter (1-input NAND); literals invert for free.
    fn invert(&mut self, signal: NetSignal) -> NetSignal {
        match signal {
            NetSignal::Literal { var, positive } => NetSignal::Literal {
                var,
                positive: !positive,
            },
            NetSignal::Gate(_) => self.nand(vec![signal]),
        }
    }

    /// Emits `expr` (or its complement when `inverted`).
    fn emit(&mut self, expr: &Expr, inverted: bool) -> NetSignal {
        match expr {
            Expr::Lit { var, positive } => NetSignal::Literal {
                var: *var,
                positive: *positive != inverted,
            },
            Expr::And(children) => {
                if children.is_empty() {
                    // Empty conjunction = constant 1.
                    return self.constant(!inverted);
                }
                if children.len() == 1 {
                    return self.emit(&children[0], inverted);
                }
                let fanins: Vec<NetSignal> = children.iter().map(|c| self.emit(c, false)).collect();
                let nand = self.nand(fanins);
                if inverted {
                    nand // NAND == inverted AND
                } else {
                    self.invert(nand)
                }
            }
            Expr::Or(children) => {
                if children.is_empty() {
                    return self.constant(inverted);
                }
                if children.len() == 1 {
                    return self.emit(&children[0], inverted);
                }
                // OR(c...) = NAND(c̄...).
                let fanins: Vec<NetSignal> = children.iter().map(|c| self.emit(c, true)).collect();
                let or = self.nand(fanins);
                if inverted {
                    self.invert(or)
                } else {
                    or
                }
            }
        }
    }

    /// A constant signal: `NAND(x0, x̄0)` is always 1; inverting gives 0.
    /// (Networks have no constant sources; this costs one or two gates and
    /// only appears for degenerate constant outputs.)
    fn constant(&mut self, value: bool) -> NetSignal {
        let one = self.nand(vec![
            NetSignal::Literal {
                var: 0,
                positive: true,
            },
            NetSignal::Literal {
                var: 0,
                positive: false,
            },
        ]);
        if value {
            one
        } else {
            self.invert(one)
        }
    }

    /// Guarantees the signal is produced by a gate (output columns must be
    /// written by a gate row): literals are wrapped in `NAND(x̄) = x`.
    fn as_gate(&mut self, signal: NetSignal) -> NetSignal {
        match signal {
            NetSignal::Gate(_) => signal,
            NetSignal::Literal { var, positive } => self.nand(vec![NetSignal::Literal {
                var,
                positive: !positive,
            }]),
        }
    }
}

/// Maps expressions (one per output) onto a NAND network.
///
/// # Panics
///
/// Panics if an expression references a variable `≥ num_inputs`.
#[must_use]
pub fn map_exprs(exprs: &[Expr], num_inputs: usize, options: &MapOptions) -> Network {
    let mut builder = Builder::new(num_inputs, exprs.len(), options.max_fanin);
    for (k, expr) in exprs.iter().enumerate() {
        let signal = builder.emit(expr, false);
        let gate = builder.as_gate(signal);
        builder.network.set_output(k, gate);
    }
    builder.network
}

/// Full SOP → NAND flow: per-output factoring (unless disabled) followed by
/// polarity-aware NAND mapping with structural hashing across outputs.
///
/// # Examples
///
/// ```
/// use xbar_logic::{cube, Cover};
/// use xbar_netlist::{map_cover, MapOptions, MultiLevelCost};
///
/// // Fig. 5 of the paper: f = x0+x1+x2+x3 + x4·x5·x6·x7.
/// let cover = Cover::from_cubes(8, 1, [
///     cube("1------- 1"), cube("-1------ 1"), cube("--1----- 1"),
///     cube("---1---- 1"), cube("----1111 1"),
/// ])?;
/// let net = map_cover(&cover, &MapOptions::default());
/// let cost = MultiLevelCost::of(&net);
/// assert_eq!((cost.rows, cost.cols, cost.area()), (3, 19, 57));
/// # Ok::<(), xbar_logic::LogicError>(())
/// ```
#[must_use]
pub fn map_cover(cover: &Cover, options: &MapOptions) -> Network {
    let exprs: Vec<Expr> = (0..cover.num_outputs())
        .map(|k| {
            let single = cover.output_cover(k);
            if options.factoring {
                factor_cover(&single)
            } else {
                flat_expr(&single)
            }
        })
        .collect();
    map_exprs(&exprs, cover.num_inputs(), options)
}

/// The unfactored Or-of-Ands expression of a single-output cover.
#[must_use]
pub fn flat_expr(cover: &Cover) -> Expr {
    let cubes: Vec<Expr> = cover
        .iter()
        .map(|cube| {
            let lits: Vec<Expr> = cube
                .literals()
                .map(|(var, phase)| Expr::Lit {
                    var,
                    positive: phase == xbar_logic::Phase::Positive,
                })
                .collect();
            match lits.len() {
                0 => Expr::And(Vec::new()),
                1 => lits.into_iter().next().expect("one"),
                _ => Expr::And(lits),
            }
        })
        .collect();
    Expr::Or(cubes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::network::MultiLevelCost;
    use xbar_logic::{cube, RandomSopSpec};

    fn check_equivalence(cover: &Cover, net: &Network) {
        for a in 0..1u64 << cover.num_inputs() {
            assert_eq!(net.evaluate(a), cover.evaluate(a), "input {a:b}");
        }
    }

    #[test]
    fn fig5_reproduces_paper_structure() {
        let cover = Cover::from_cubes(
            8,
            1,
            [
                cube("1------- 1"),
                cube("-1------ 1"),
                cube("--1----- 1"),
                cube("---1---- 1"),
                cube("----1111 1"),
            ],
        )
        .expect("dims");
        let net = map_cover(&cover, &MapOptions::default());
        check_equivalence(&cover, &net);
        let cost = MultiLevelCost::of(&net);
        assert_eq!(cost.gates, 2, "{net:?}");
        assert_eq!(cost.connections, 1);
        assert_eq!(cost.area(), 57);
    }

    #[test]
    fn random_covers_map_equivalently() {
        for seed in 0..25u64 {
            let spec = RandomSopSpec::figure6(7, 6);
            let cover = spec.generate_seeded(seed);
            for factoring in [false, true] {
                let net = map_cover(
                    &cover,
                    &MapOptions {
                        factoring,
                        max_fanin: None,
                    },
                );
                check_equivalence(&cover, &net);
            }
        }
    }

    #[test]
    fn fanin_bound_is_respected_and_preserves_function() {
        let spec = RandomSopSpec {
            num_inputs: 8,
            num_outputs: 1,
            products: 10,
            literals: xbar_logic::LiteralDistribution::Uniform { min: 4, max: 8 },
            extra_output_prob: 0.0,
        };
        let cover = spec.generate_seeded(3);
        for bound in [2, 3, 4] {
            let net = map_cover(
                &cover,
                &MapOptions {
                    factoring: true,
                    max_fanin: Some(bound),
                },
            );
            assert!(net.max_fanin() <= bound, "bound {bound} violated");
            check_equivalence(&cover, &net);
        }
    }

    #[test]
    fn structural_hashing_shares_gates_across_outputs() {
        // Two identical outputs must not double the gate count.
        let cover = Cover::from_cubes(3, 2, [cube("11- 11"), cube("--1 11")]).expect("dims");
        let net = map_cover(&cover, &MapOptions::default());
        check_equivalence(&cover, &net);
        let single = Cover::from_cubes(3, 1, [cube("11- 1"), cube("--1 1")]).expect("dims");
        let single_net = map_cover(&single, &MapOptions::default());
        assert_eq!(net.gate_count(), single_net.gate_count());
    }

    #[test]
    fn single_literal_output_gets_a_driver_gate() {
        let cover = Cover::from_cubes(2, 1, [cube("1- 1")]).expect("dims");
        let net = map_cover(&cover, &MapOptions::default());
        check_equivalence(&cover, &net);
        assert!(matches!(net.output(0), Some(NetSignal::Gate(_))));
        assert_eq!(net.gate_count(), 1, "one inverter NAND(x̄0) = x0");
    }

    #[test]
    fn constant_zero_output() {
        let cover = Cover::new(2, 1);
        let net = map_cover(&cover, &MapOptions::default());
        for a in 0..4u64 {
            assert_eq!(net.evaluate(a), vec![false]);
        }
    }

    #[test]
    fn universal_cube_output_is_constant_one() {
        let cover = Cover::from_cubes(2, 1, [cube("-- 1")]).expect("dims");
        let net = map_cover(&cover, &MapOptions::default());
        for a in 0..4u64 {
            assert_eq!(net.evaluate(a), vec![true]);
        }
    }

    #[test]
    fn factoring_never_hurts_gate_count_much_on_factorable_input() {
        // (a+b)(c+d) flat: 4 product NANDs + or = more gates than factored.
        let cover = Cover::from_cubes(
            4,
            1,
            [
                cube("1-1- 1"),
                cube("1--1 1"),
                cube("-11- 1"),
                cube("-1-1 1"),
            ],
        )
        .expect("dims");
        let flat = map_cover(
            &cover,
            &MapOptions {
                factoring: false,
                max_fanin: None,
            },
        );
        let factored = map_cover(
            &cover,
            &MapOptions {
                factoring: true,
                max_fanin: None,
            },
        );
        check_equivalence(&cover, &flat);
        check_equivalence(&cover, &factored);
        assert!(
            factored.gate_count() <= flat.gate_count(),
            "factored {} > flat {}",
            factored.gate_count(),
            flat.gate_count()
        );
    }
}
