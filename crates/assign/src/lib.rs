//! # xbar-assign
//!
//! Assignment-problem substrate for the memristive-crossbar reproduction of
//! Tunali & Altun (DATE 2018).
//!
//! The paper's defect-tolerant mapping reduces output-row placement to a
//! minimum-cost assignment over the *matching matrix* and solves it with
//! Munkres' algorithm (their reference \[21\]); the exact algorithm (EA) does
//! the same for all rows. This crate provides:
//!
//! * [`munkres`] — `O(n²m)` Hungarian method on rectangular [`CostMatrix`]
//!   instances (rows ≤ cols), exact minimum cost; [`munkres_with_scratch`]
//!   is the allocation-free variant for hot loops;
//! * [`hopcroft_karp`] — `O(E√V)` maximum bipartite matching on
//!   [`BipartiteGraph`], used as a feasibility oracle and ablation baseline;
//! * [`hopcroft_karp_bitset`] / [`BitsetMatching`] — the same algorithm
//!   over *packed* `u64` adjacency rows, the engine behind the zero-cost
//!   (pure feasibility) mapping queries of `xbar-core`;
//! * [`brute_force_assignment`] — factorial oracle for tests;
//! * [`bits`] — the shared packed-`u64` bitset primitives every
//!   bit-parallel hot path (including `xbar_core`'s matching engine and
//!   column bitplanes) builds on.
//!
//! ## Example
//!
//! ```
//! use xbar_assign::{munkres, CostMatrix};
//!
//! // A 0/1 matching matrix: zero-cost assignment == valid mapping.
//! let m = CostMatrix::from_rows(2, 2, vec![0, 1, 1, 0]);
//! let sol = munkres(&m)?;
//! assert_eq!(sol.cost, 0);
//! # Ok::<(), xbar_assign::SolveAssignmentError>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod bits;
mod hopcroft_karp;
mod matrix;
mod munkres;

pub use hopcroft_karp::{
    adjacency_words, hopcroft_karp, hopcroft_karp_bitset, BipartiteGraph, BitsetMatching, Matching,
};
pub use matrix::CostMatrix;
pub use munkres::{
    brute_force_assignment, munkres, munkres_with_scratch, Assignment, MunkresScratch,
    SolveAssignmentError,
};

#[cfg(test)]
mod tests {
    use super::*;

    /// Munkres on a 0/1 feasibility matrix finds cost 0 exactly when
    /// Hopcroft–Karp finds a perfect matching.
    #[test]
    fn munkres_and_hopcroft_karp_agree_on_feasibility() {
        let mut state = 0x9e3779b97f4a7c15_u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for _ in 0..100 {
            let rows = (next() % 6 + 1) as usize;
            let cols = rows + (next() % 3) as usize;
            let density = 40 + next() % 50;
            let mut edges = Vec::new();
            let m = CostMatrix::from_fn(rows, cols, |r, c| {
                if next() % 100 < density {
                    edges.push((r, c));
                    0
                } else {
                    1
                }
            });
            let mut g = BipartiteGraph::new(rows, cols);
            for (r, c) in edges {
                g.add_edge(r, c);
            }
            let assignment_feasible = munkres(&m).expect("rows <= cols").cost == 0;
            let matching_perfect = hopcroft_karp(&g).is_perfect_on_left();
            assert_eq!(assignment_feasible, matching_perfect);
        }
    }

    /// Seeded property check (500 cases): the bitset Hopcroft–Karp finds a
    /// perfect left matching exactly when Munkres finds a zero-cost
    /// assignment of the 0/1 matrix — the equivalence the mapping engine
    /// relies on when it routes feasibility queries away from Munkres.
    #[test]
    fn bitset_hopcroft_karp_agrees_with_munkres_zero_cost() {
        let mut state = 0x5EED_CA5E_u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let mut scratch = BitsetMatching::new();
        for case in 0..500 {
            // Push past one adjacency word every few cases.
            let cols = if case % 7 == 0 {
                64 + (next() % 30) as usize
            } else {
                1 + (next() % 10) as usize
            };
            let rows = 1 + (next() % cols.min(12) as u64) as usize;
            let density = 30 + next() % 65;
            let words = adjacency_words(cols);
            let mut adjacency = vec![0u64; rows * words];
            let m = CostMatrix::from_fn(rows, cols, |r, c| {
                if next() % 100 < density {
                    adjacency[r * words + c / 64] |= 1 << (c % 64);
                    0
                } else {
                    1
                }
            });
            let zero_cost = munkres(&m).expect("rows <= cols").cost == 0;
            let perfect = scratch.run(rows, cols, &adjacency) == rows;
            assert_eq!(zero_cost, perfect, "case {case}: {rows}x{cols}");
        }
    }
}
