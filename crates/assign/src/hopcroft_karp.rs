//! Hopcroft–Karp maximum bipartite matching.
//!
//! Used two ways in this reproduction:
//!
//! * as a *feasibility oracle* in tests — the exact algorithm (EA) of the
//!   paper succeeds iff a perfect matching of function-matrix rows into
//!   compatible crossbar rows exists, which Hopcroft–Karp decides directly;
//! * as an ablation baseline for the mapping benchmarks (it finds a maximum
//!   matching faster than Munkres finds a minimum-cost assignment).

use std::collections::VecDeque;

/// A bipartite graph between `left_count` left vertices and `right_count`
/// right vertices, stored as left-side adjacency lists.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BipartiteGraph {
    left_count: usize,
    right_count: usize,
    adjacency: Vec<Vec<usize>>,
}

impl BipartiteGraph {
    /// An edgeless graph.
    #[must_use]
    pub fn new(left_count: usize, right_count: usize) -> Self {
        Self {
            left_count,
            right_count,
            adjacency: vec![Vec::new(); left_count],
        }
    }

    /// Builds the graph from a predicate: an edge `(l, r)` exists when
    /// `compatible(l, r)` is true.
    #[must_use]
    pub fn from_fn(
        left_count: usize,
        right_count: usize,
        mut compatible: impl FnMut(usize, usize) -> bool,
    ) -> Self {
        let mut g = Self::new(left_count, right_count);
        for l in 0..left_count {
            for r in 0..right_count {
                if compatible(l, r) {
                    g.add_edge(l, r);
                }
            }
        }
        g
    }

    /// Adds edge `(left, right)`.
    ///
    /// # Panics
    ///
    /// Panics on out-of-range vertices.
    pub fn add_edge(&mut self, left: usize, right: usize) {
        assert!(left < self.left_count, "left vertex out of range");
        assert!(right < self.right_count, "right vertex out of range");
        self.adjacency[left].push(right);
    }

    /// Number of left vertices.
    #[must_use]
    pub fn left_count(&self) -> usize {
        self.left_count
    }

    /// Number of right vertices.
    #[must_use]
    pub fn right_count(&self) -> usize {
        self.right_count
    }

    /// Neighbors of a left vertex.
    #[must_use]
    pub fn neighbors(&self, left: usize) -> &[usize] {
        &self.adjacency[left]
    }
}

/// A maximum matching: `left_to_right[l]` is the right vertex matched to
/// `l`, if any.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Matching {
    /// Right partner of each left vertex.
    pub left_to_right: Vec<Option<usize>>,
    /// Left partner of each right vertex.
    pub right_to_left: Vec<Option<usize>>,
    /// Number of matched pairs.
    pub size: usize,
}

impl Matching {
    /// True when every left vertex is matched.
    #[must_use]
    pub fn is_perfect_on_left(&self) -> bool {
        self.size == self.left_to_right.len()
    }
}

const NIL: usize = usize::MAX;

/// Computes a maximum matching in `O(E √V)`.
///
/// # Examples
///
/// ```
/// use xbar_assign::{hopcroft_karp, BipartiteGraph};
///
/// let mut g = BipartiteGraph::new(2, 2);
/// g.add_edge(0, 0);
/// g.add_edge(0, 1);
/// g.add_edge(1, 0);
/// let m = hopcroft_karp(&g);
/// assert_eq!(m.size, 2);
/// assert!(m.is_perfect_on_left());
/// ```
#[must_use]
pub fn hopcroft_karp(graph: &BipartiteGraph) -> Matching {
    let n = graph.left_count;
    let mut match_left = vec![NIL; n];
    let mut match_right = vec![NIL; graph.right_count];
    let mut dist = vec![0u32; n];

    loop {
        // BFS layering from free left vertices.
        let mut queue = VecDeque::new();
        const UNREACHED: u32 = u32::MAX;
        let mut found_augmenting_layer = false;
        for l in 0..n {
            if match_left[l] == NIL {
                dist[l] = 0;
                queue.push_back(l);
            } else {
                dist[l] = UNREACHED;
            }
        }
        while let Some(l) = queue.pop_front() {
            for &r in graph.neighbors(l) {
                let next = match_right[r];
                if next == NIL {
                    found_augmenting_layer = true;
                } else if dist[next] == UNREACHED {
                    dist[next] = dist[l] + 1;
                    queue.push_back(next);
                }
            }
        }
        if !found_augmenting_layer {
            break;
        }
        // DFS augmentation along layered paths.
        fn try_augment(
            l: usize,
            graph: &BipartiteGraph,
            match_left: &mut [usize],
            match_right: &mut [usize],
            dist: &mut [u32],
        ) -> bool {
            for i in 0..graph.neighbors(l).len() {
                let r = graph.neighbors(l)[i];
                let next = match_right[r];
                let ok = if next == NIL {
                    true
                } else if dist[next] == dist[l] + 1 {
                    try_augment(next, graph, match_left, match_right, dist)
                } else {
                    false
                };
                if ok {
                    match_left[l] = r;
                    match_right[r] = l;
                    return true;
                }
            }
            dist[l] = u32::MAX;
            false
        }
        for l in 0..n {
            if match_left[l] == NIL {
                try_augment(l, graph, &mut match_left, &mut match_right, &mut dist);
            }
        }
    }

    let size = match_left.iter().filter(|&&r| r != NIL).count();
    Matching {
        left_to_right: match_left
            .into_iter()
            .map(|r| if r == NIL { None } else { Some(r) })
            .collect(),
        right_to_left: match_right
            .into_iter()
            .map(|l| if l == NIL { None } else { Some(l) })
            .collect(),
        size,
    }
}

/// Number of `u64` words a packed adjacency row over `right` vertices
/// occupies (at least one, matching `BitRow`'s layout). Alias of
/// [`crate::bits::words_for`], kept under the matching-flavoured name.
#[must_use]
pub fn adjacency_words(right: usize) -> usize {
    crate::bits::words_for(right)
}

/// Reusable scratch + result buffers for [`hopcroft_karp_bitset`]-style
/// matching over *packed* adjacency rows.
///
/// The adjacency is `left` rows of [`adjacency_words`]`(right)` words each,
/// bit `r` of a row marking an edge to right vertex `r` — exactly the
/// candidate bitsets the mapping engine precomputes. Repeated calls reuse
/// every buffer, so a Monte Carlo loop pays zero allocations per solve.
#[derive(Debug, Clone, Default)]
pub struct BitsetMatching {
    match_left: Vec<usize>,
    match_right: Vec<usize>,
    dist: Vec<u32>,
    queue: Vec<usize>,
    /// BFS word mask: rights that can still contribute to the current
    /// layering (free rights, plus matched rights whose left is
    /// unlabeled). A matched right is cleared the moment its left gets a
    /// layer, so each is expanded at most once per phase — BFS costs
    /// O(V · words) per phase instead of O(E) — without changing the
    /// labeling order (the first encounter labels, exactly as before).
    bfs_live: Vec<u64>,
    /// DFS word mask: rights whose matched left has not been proven dead
    /// (`dist = UNREACHED` after a failed augment) this phase. Skipping a
    /// dead left's right elides probes the plain scan would fail anyway,
    /// so the augmenting paths found are identical.
    dfs_live: Vec<u64>,
    size: usize,
}

const UNREACHED: u32 = u32::MAX;

impl BitsetMatching {
    /// An empty scratch; buffers grow on first use.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Computes a maximum matching over the packed adjacency and returns
    /// its size. `adjacency` must hold `left * adjacency_words(right)`
    /// words.
    ///
    /// # Panics
    ///
    /// Panics when `adjacency` is shorter than `left` packed rows.
    pub fn run(&mut self, left: usize, right: usize, adjacency: &[u64]) -> usize {
        let words = adjacency_words(right);
        assert!(
            adjacency.len() >= left * words,
            "adjacency needs {left} rows of {words} words"
        );
        self.match_left.clear();
        self.match_left.resize(left, NIL);
        self.match_right.clear();
        self.match_right.resize(right, NIL);
        self.dist.clear();
        self.dist.resize(left, 0);

        loop {
            // BFS layering from free left vertices. `bfs_live` starts as
            // every right and drops a matched right once its left is
            // labeled, so dense rows are not re-scanned bit by bit.
            self.queue.clear();
            self.bfs_live.clear();
            self.bfs_live.resize(words, 0);
            crate::bits::set_range(&mut self.bfs_live, right);
            let mut found_augmenting_layer = false;
            for l in 0..left {
                if self.match_left[l] == NIL {
                    self.dist[l] = 0;
                    self.queue.push(l);
                } else {
                    self.dist[l] = UNREACHED;
                }
            }
            let mut head = 0;
            while head < self.queue.len() {
                let l = self.queue[head];
                head += 1;
                let row = &adjacency[l * words..(l + 1) * words];
                for (w, &bits) in row.iter().enumerate() {
                    let mut x = bits & self.bfs_live[w];
                    while x != 0 {
                        let r = w * 64 + x.trailing_zeros() as usize;
                        x &= x - 1;
                        let next = self.match_right[r];
                        if next == NIL {
                            found_augmenting_layer = true;
                        } else {
                            // First encounter of an unlabeled left — its
                            // only in-edge is this right, so clearing the
                            // bit is exact, not heuristic.
                            self.dist[next] = self.dist[l] + 1;
                            self.queue.push(next);
                            self.bfs_live[w] &= !(1u64 << (r % 64));
                        }
                    }
                }
            }
            if !found_augmenting_layer {
                break;
            }
            // DFS augmentation along layered paths. `dfs_live` drops the
            // matched right of every left proven dead this phase.
            self.dfs_live.clear();
            self.dfs_live.resize(words, 0);
            crate::bits::set_range(&mut self.dfs_live, right);
            for l in 0..left {
                if self.match_left[l] == NIL {
                    augment_bitset(
                        l,
                        words,
                        adjacency,
                        &mut self.match_left,
                        &mut self.match_right,
                        &mut self.dist,
                        &mut self.dfs_live,
                    );
                }
            }
        }

        self.size = self.match_left.iter().filter(|&&r| r != NIL).count();
        self.size
    }

    /// Size of the most recent matching.
    #[must_use]
    pub fn size(&self) -> usize {
        self.size
    }

    /// Right partner of each left vertex after [`BitsetMatching::run`]
    /// (`usize::MAX` = unmatched).
    #[must_use]
    pub fn left_to_right(&self) -> &[usize] {
        &self.match_left
    }

    /// Left partner of each right vertex after [`BitsetMatching::run`]
    /// (`usize::MAX` = unmatched).
    #[must_use]
    pub fn right_to_left(&self) -> &[usize] {
        &self.match_right
    }
}

fn augment_bitset(
    l: usize,
    words: usize,
    adjacency: &[u64],
    match_left: &mut [usize],
    match_right: &mut [usize],
    dist: &mut [u32],
    dfs_live: &mut [u64],
) -> bool {
    for w in 0..words {
        // `dfs_live` may lose bits during recursion; the stale snapshot in
        // `x` only costs a probe that fails the `dist` check, exactly as
        // the unmasked scan would.
        let mut x = adjacency[l * words + w] & dfs_live[w];
        while x != 0 {
            let r = w * 64 + x.trailing_zeros() as usize;
            x &= x - 1;
            let next = match_right[r];
            let ok = if next == NIL {
                true
            } else if dist[next] == dist[l] + 1 {
                augment_bitset(
                    next,
                    words,
                    adjacency,
                    match_left,
                    match_right,
                    dist,
                    dfs_live,
                )
            } else {
                false
            };
            if ok {
                match_left[l] = r;
                match_right[r] = l;
                return true;
            }
        }
    }
    dist[l] = UNREACHED;
    // A dead left can only be entered through its matched right; skip it
    // for the rest of the phase.
    if match_left[l] != NIL {
        let r = match_left[l];
        dfs_live[r / 64] &= !(1u64 << (r % 64));
    }
    false
}

/// One-shot bitset Hopcroft–Karp over a packed adjacency (see
/// [`BitsetMatching`] for the layout), returning the same [`Matching`] type
/// as the adjacency-list solver.
///
/// # Examples
///
/// ```
/// use xbar_assign::hopcroft_karp_bitset;
///
/// // l0-{r0,r1}, l1-{r0}: the greedy l0→r0 must be undone.
/// let adjacency = [0b11u64, 0b01u64];
/// let m = hopcroft_karp_bitset(2, 2, &adjacency);
/// assert_eq!(m.size, 2);
/// assert!(m.is_perfect_on_left());
/// ```
#[must_use]
pub fn hopcroft_karp_bitset(left: usize, right: usize, adjacency: &[u64]) -> Matching {
    let mut scratch = BitsetMatching::new();
    scratch.run(left, right, adjacency);
    Matching {
        left_to_right: scratch
            .match_left
            .iter()
            .map(|&r| if r == NIL { None } else { Some(r) })
            .collect(),
        right_to_left: scratch
            .match_right
            .iter()
            .map(|&l| if l == NIL { None } else { Some(l) })
            .collect(),
        size: scratch.size,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_matching_on_identity() {
        let g = BipartiteGraph::from_fn(4, 4, |l, r| l == r);
        let m = hopcroft_karp(&g);
        assert_eq!(m.size, 4);
        for l in 0..4 {
            assert_eq!(m.left_to_right[l], Some(l));
        }
    }

    #[test]
    fn bottleneck_limits_matching() {
        // All three left vertices only reach right vertex 0.
        let g = BipartiteGraph::from_fn(3, 3, |_, r| r == 0);
        let m = hopcroft_karp(&g);
        assert_eq!(m.size, 1);
        assert!(!m.is_perfect_on_left());
    }

    #[test]
    fn augmenting_path_is_found() {
        // l0-{r0,r1}, l1-{r0}: greedy l0→r0 must be undone.
        let mut g = BipartiteGraph::new(2, 2);
        g.add_edge(0, 0);
        g.add_edge(0, 1);
        g.add_edge(1, 0);
        let m = hopcroft_karp(&g);
        assert_eq!(m.size, 2);
        assert_eq!(m.left_to_right[1], Some(0));
        assert_eq!(m.left_to_right[0], Some(1));
    }

    #[test]
    fn empty_graph() {
        let m = hopcroft_karp(&BipartiteGraph::new(3, 3));
        assert_eq!(m.size, 0);
    }

    #[test]
    fn rectangular_graph() {
        let g = BipartiteGraph::from_fn(2, 5, |l, r| r == l + 3);
        let m = hopcroft_karp(&g);
        assert_eq!(m.size, 2);
        assert_eq!(m.right_to_left[3], Some(0));
        assert_eq!(m.right_to_left[4], Some(1));
    }

    #[test]
    fn matching_consistency() {
        let g = BipartiteGraph::from_fn(6, 6, |l, r| (l + r) % 3 != 0);
        let m = hopcroft_karp(&g);
        for (l, &r) in m.left_to_right.iter().enumerate() {
            if let Some(r) = r {
                assert_eq!(m.right_to_left[r], Some(l));
            }
        }
    }

    /// Packs a predicate into adjacency words and a `BipartiteGraph` at
    /// once.
    fn packed_and_dense(
        left: usize,
        right: usize,
        mut edge: impl FnMut(usize, usize) -> bool,
    ) -> (Vec<u64>, BipartiteGraph) {
        let words = adjacency_words(right);
        let mut adjacency = vec![0u64; left * words];
        let mut g = BipartiteGraph::new(left, right);
        for l in 0..left {
            for r in 0..right {
                if edge(l, r) {
                    adjacency[l * words + r / 64] |= 1 << (r % 64);
                    g.add_edge(l, r);
                }
            }
        }
        (adjacency, g)
    }

    #[test]
    fn bitset_variant_matches_dense_sizes_on_random_graphs() {
        let mut state = 0xB17_5E7_u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let mut scratch = BitsetMatching::new();
        for round in 0..200 {
            // Cross the 64-bit word boundary on some rounds.
            let right = if round % 5 == 0 {
                65 + (next() % 40) as usize
            } else {
                1 + (next() % 12) as usize
            };
            let left = 1 + (next() % right as u64) as usize;
            let density = 20 + next() % 70;
            let (adjacency, g) = packed_and_dense(left, right, |_, _| next() % 100 < density);
            let dense = hopcroft_karp(&g);
            let packed = hopcroft_karp_bitset(left, right, &adjacency);
            assert_eq!(packed.size, dense.size, "left {left} right {right}");
            assert_eq!(scratch.run(left, right, &adjacency), dense.size);
            // The matching itself must be a consistent injection over edges.
            for (l, &r) in packed.left_to_right.iter().enumerate() {
                if let Some(r) = r {
                    assert_eq!(packed.right_to_left[r], Some(l));
                    assert!(adjacency[l * adjacency_words(right) + r / 64] >> (r % 64) & 1 == 1);
                }
            }
        }
    }

    #[test]
    fn bitset_scratch_reuse_shrinks_and_grows() {
        let mut scratch = BitsetMatching::new();
        let (big, _) = packed_and_dense(100, 130, |l, r| l == r);
        assert_eq!(scratch.run(100, 130, &big), 100);
        let (small, _) = packed_and_dense(2, 2, |l, r| l == r);
        assert_eq!(scratch.run(2, 2, &small), 2);
        assert_eq!(scratch.left_to_right(), &[0, 1]);
        assert_eq!(scratch.right_to_left(), &[0, 1]);
        assert_eq!(scratch.size(), 2);
    }

    #[test]
    fn bitset_empty_cases() {
        assert_eq!(hopcroft_karp_bitset(0, 0, &[]).size, 0);
        let adjacency = [0u64; 3];
        assert_eq!(hopcroft_karp_bitset(3, 3, &adjacency).size, 0);
    }
}
