//! Hopcroft–Karp maximum bipartite matching.
//!
//! Used two ways in this reproduction:
//!
//! * as a *feasibility oracle* in tests — the exact algorithm (EA) of the
//!   paper succeeds iff a perfect matching of function-matrix rows into
//!   compatible crossbar rows exists, which Hopcroft–Karp decides directly;
//! * as an ablation baseline for the mapping benchmarks (it finds a maximum
//!   matching faster than Munkres finds a minimum-cost assignment).

use std::collections::VecDeque;

/// A bipartite graph between `left_count` left vertices and `right_count`
/// right vertices, stored as left-side adjacency lists.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BipartiteGraph {
    left_count: usize,
    right_count: usize,
    adjacency: Vec<Vec<usize>>,
}

impl BipartiteGraph {
    /// An edgeless graph.
    #[must_use]
    pub fn new(left_count: usize, right_count: usize) -> Self {
        Self {
            left_count,
            right_count,
            adjacency: vec![Vec::new(); left_count],
        }
    }

    /// Builds the graph from a predicate: an edge `(l, r)` exists when
    /// `compatible(l, r)` is true.
    #[must_use]
    pub fn from_fn(
        left_count: usize,
        right_count: usize,
        mut compatible: impl FnMut(usize, usize) -> bool,
    ) -> Self {
        let mut g = Self::new(left_count, right_count);
        for l in 0..left_count {
            for r in 0..right_count {
                if compatible(l, r) {
                    g.add_edge(l, r);
                }
            }
        }
        g
    }

    /// Adds edge `(left, right)`.
    ///
    /// # Panics
    ///
    /// Panics on out-of-range vertices.
    pub fn add_edge(&mut self, left: usize, right: usize) {
        assert!(left < self.left_count, "left vertex out of range");
        assert!(right < self.right_count, "right vertex out of range");
        self.adjacency[left].push(right);
    }

    /// Number of left vertices.
    #[must_use]
    pub fn left_count(&self) -> usize {
        self.left_count
    }

    /// Number of right vertices.
    #[must_use]
    pub fn right_count(&self) -> usize {
        self.right_count
    }

    /// Neighbors of a left vertex.
    #[must_use]
    pub fn neighbors(&self, left: usize) -> &[usize] {
        &self.adjacency[left]
    }
}

/// A maximum matching: `left_to_right[l]` is the right vertex matched to
/// `l`, if any.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Matching {
    /// Right partner of each left vertex.
    pub left_to_right: Vec<Option<usize>>,
    /// Left partner of each right vertex.
    pub right_to_left: Vec<Option<usize>>,
    /// Number of matched pairs.
    pub size: usize,
}

impl Matching {
    /// True when every left vertex is matched.
    #[must_use]
    pub fn is_perfect_on_left(&self) -> bool {
        self.size == self.left_to_right.len()
    }
}

const NIL: usize = usize::MAX;

/// Computes a maximum matching in `O(E √V)`.
///
/// # Examples
///
/// ```
/// use xbar_assign::{hopcroft_karp, BipartiteGraph};
///
/// let mut g = BipartiteGraph::new(2, 2);
/// g.add_edge(0, 0);
/// g.add_edge(0, 1);
/// g.add_edge(1, 0);
/// let m = hopcroft_karp(&g);
/// assert_eq!(m.size, 2);
/// assert!(m.is_perfect_on_left());
/// ```
#[must_use]
pub fn hopcroft_karp(graph: &BipartiteGraph) -> Matching {
    let n = graph.left_count;
    let mut match_left = vec![NIL; n];
    let mut match_right = vec![NIL; graph.right_count];
    let mut dist = vec![0u32; n];

    loop {
        // BFS layering from free left vertices.
        let mut queue = VecDeque::new();
        const UNREACHED: u32 = u32::MAX;
        let mut found_augmenting_layer = false;
        for l in 0..n {
            if match_left[l] == NIL {
                dist[l] = 0;
                queue.push_back(l);
            } else {
                dist[l] = UNREACHED;
            }
        }
        while let Some(l) = queue.pop_front() {
            for &r in graph.neighbors(l) {
                let next = match_right[r];
                if next == NIL {
                    found_augmenting_layer = true;
                } else if dist[next] == UNREACHED {
                    dist[next] = dist[l] + 1;
                    queue.push_back(next);
                }
            }
        }
        if !found_augmenting_layer {
            break;
        }
        // DFS augmentation along layered paths.
        fn try_augment(
            l: usize,
            graph: &BipartiteGraph,
            match_left: &mut [usize],
            match_right: &mut [usize],
            dist: &mut [u32],
        ) -> bool {
            for i in 0..graph.neighbors(l).len() {
                let r = graph.neighbors(l)[i];
                let next = match_right[r];
                let ok = if next == NIL {
                    true
                } else if dist[next] == dist[l] + 1 {
                    try_augment(next, graph, match_left, match_right, dist)
                } else {
                    false
                };
                if ok {
                    match_left[l] = r;
                    match_right[r] = l;
                    return true;
                }
            }
            dist[l] = u32::MAX;
            false
        }
        for l in 0..n {
            if match_left[l] == NIL {
                try_augment(l, graph, &mut match_left, &mut match_right, &mut dist);
            }
        }
    }

    let size = match_left.iter().filter(|&&r| r != NIL).count();
    Matching {
        left_to_right: match_left
            .into_iter()
            .map(|r| if r == NIL { None } else { Some(r) })
            .collect(),
        right_to_left: match_right
            .into_iter()
            .map(|l| if l == NIL { None } else { Some(l) })
            .collect(),
        size,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_matching_on_identity() {
        let g = BipartiteGraph::from_fn(4, 4, |l, r| l == r);
        let m = hopcroft_karp(&g);
        assert_eq!(m.size, 4);
        for l in 0..4 {
            assert_eq!(m.left_to_right[l], Some(l));
        }
    }

    #[test]
    fn bottleneck_limits_matching() {
        // All three left vertices only reach right vertex 0.
        let g = BipartiteGraph::from_fn(3, 3, |_, r| r == 0);
        let m = hopcroft_karp(&g);
        assert_eq!(m.size, 1);
        assert!(!m.is_perfect_on_left());
    }

    #[test]
    fn augmenting_path_is_found() {
        // l0-{r0,r1}, l1-{r0}: greedy l0→r0 must be undone.
        let mut g = BipartiteGraph::new(2, 2);
        g.add_edge(0, 0);
        g.add_edge(0, 1);
        g.add_edge(1, 0);
        let m = hopcroft_karp(&g);
        assert_eq!(m.size, 2);
        assert_eq!(m.left_to_right[1], Some(0));
        assert_eq!(m.left_to_right[0], Some(1));
    }

    #[test]
    fn empty_graph() {
        let m = hopcroft_karp(&BipartiteGraph::new(3, 3));
        assert_eq!(m.size, 0);
    }

    #[test]
    fn rectangular_graph() {
        let g = BipartiteGraph::from_fn(2, 5, |l, r| r == l + 3);
        let m = hopcroft_karp(&g);
        assert_eq!(m.size, 2);
        assert_eq!(m.right_to_left[3], Some(0));
        assert_eq!(m.right_to_left[4], Some(1));
    }

    #[test]
    fn matching_consistency() {
        let g = BipartiteGraph::from_fn(6, 6, |l, r| (l + r) % 3 != 0);
        let m = hopcroft_karp(&g);
        for (l, &r) in m.left_to_right.iter().enumerate() {
            if let Some(r) = r {
                assert_eq!(m.right_to_left[r], Some(l));
            }
        }
    }
}
