//! Packed-`u64` bitset primitives shared by every bit-parallel hot path.
//!
//! One audited implementation of the word-level helpers that used to be
//! duplicated between `xbar_core::engine`'s free functions and the bitset
//! containers: LSB-first layout, bit `i` of a set lives at bit `i % 64` of
//! word `i / 64`, and a set over `len` bits occupies [`words_for`]`(len)`
//! words (always at least one, so empty sets still have a word to probe).
//!
//! All helpers keep the invariant that bits at index `>= len` are zero —
//! [`set_range`] masks the partial top word — so popcount-style queries
//! ([`count_all`], [`count_through`], [`matched_in`]) never see garbage.
//!
//! `xbar_core` re-exports this module as `xbar_core::bits` (the crate
//! dependency direction runs core → assign, so the canonical copy lives
//! here, underneath both users).

/// Number of `u64` words a packed bitset over `len` bits occupies (at
/// least one, matching `BitRow`'s layout).
#[must_use]
pub fn words_for(len: usize) -> usize {
    len.div_ceil(64).max(1)
}

/// Sets bits `0..len` and leaves bits `len..` of the touched words zero.
/// Words beyond the `len`-bit prefix are not written.
///
/// # Panics
///
/// Panics when `bits` is shorter than [`words_for`]`(len)` words (for
/// `len > 0`).
pub fn set_range(bits: &mut [u64], len: usize) {
    let full = len / 64;
    let rem = len % 64;
    bits[..full].fill(!0u64);
    if rem != 0 {
        bits[full] = (1u64 << rem) - 1;
    }
}

/// Bit at index `i`.
#[inline]
#[must_use]
pub fn get_bit(bits: &[u64], i: usize) -> bool {
    bits[i / 64] >> (i % 64) & 1 == 1
}

/// Sets bit `i`.
#[inline]
pub fn set_bit(bits: &mut [u64], i: usize) {
    bits[i / 64] |= 1u64 << (i % 64);
}

/// Clears bit `i`.
#[inline]
pub fn clear_bit(bits: &mut [u64], i: usize) {
    bits[i / 64] &= !(1u64 << (i % 64));
}

/// First index set in `a & b`, word-parallel.
#[inline]
#[must_use]
pub fn first_and(a: &[u64], b: &[u64]) -> Option<usize> {
    for (w, (&x, &y)) in a.iter().zip(b).enumerate() {
        let v = x & y;
        if v != 0 {
            return Some(w * 64 + v.trailing_zeros() as usize);
        }
    }
    None
}

/// Number of set bits with index `<= end`.
#[inline]
#[must_use]
pub fn count_through(bits: &[u64], end: usize) -> usize {
    let w = end / 64;
    let mut total = 0usize;
    for &word in &bits[..w] {
        total += word.count_ones() as usize;
    }
    let rem = end % 64;
    let mask = if rem == 63 {
        !0u64
    } else {
        (1u64 << (rem + 1)) - 1
    };
    total + (bits[w] & mask).count_ones() as usize
}

/// Total set bits.
#[inline]
#[must_use]
pub fn count_all(bits: &[u64]) -> usize {
    bits.iter().map(|w| w.count_ones() as usize).sum()
}

/// Number of *clear* bits in the half-open index range `start..end` — the
/// matched-row count when `bits` is a free-row set.
#[inline]
#[must_use]
pub fn matched_in(bits: &[u64], start: usize, end: usize) -> usize {
    if start >= end {
        return 0;
    }
    let set = count_through(bits, end - 1)
        - if start == 0 {
            0
        } else {
            count_through(bits, start - 1)
        };
    (end - start) - set
}

/// Whether every set bit of `a` is also set in `b` (`a & !b == 0`
/// word-parallel) — the paper's row-matching rule when `a` is an FM row
/// and `b` a CM row. Trailing words of the longer operand are ignored.
#[inline]
#[must_use]
pub fn is_subset(a: &[u64], b: &[u64]) -> bool {
    a.iter().zip(b).all(|(x, y)| x & !y == 0)
}

/// Whether no bit is set.
#[inline]
#[must_use]
pub fn is_empty(bits: &[u64]) -> bool {
    bits.iter().all(|&w| w == 0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn words_for_matches_layout() {
        assert_eq!(words_for(0), 1);
        assert_eq!(words_for(1), 1);
        assert_eq!(words_for(64), 1);
        assert_eq!(words_for(65), 2);
        assert_eq!(words_for(128), 2);
        assert_eq!(words_for(129), 3);
    }

    #[test]
    fn bit_helpers() {
        let bits = [0b1011_0100u64, 0b1u64];
        assert!(get_bit(&bits, 2) && get_bit(&bits, 64));
        assert!(!get_bit(&bits, 0));
        assert_eq!(first_and(&bits, &[0b1000_0000, 0]), Some(7));
        assert_eq!(first_and(&bits, &[0, 1]), Some(64));
        assert_eq!(first_and(&bits, &[0, 0]), None);
        assert_eq!(count_through(&bits, 2), 1);
        assert_eq!(count_through(&bits, 64), 5);
        assert_eq!(count_all(&bits), 5);
        // Indices 0..=3 hold one set bit (2) → 3 clear.
        assert_eq!(matched_in(&bits, 0, 4), 3);
        assert_eq!(matched_in(&bits, 4, 4), 0);
        let mut free = [0u64; 2];
        set_range(&mut free, 65);
        assert_eq!(count_all(&free), 65);
    }

    #[test]
    fn set_clear_roundtrip() {
        let mut bits = [0u64; 2];
        set_bit(&mut bits, 3);
        set_bit(&mut bits, 64);
        assert!(get_bit(&bits, 3) && get_bit(&bits, 64));
        clear_bit(&mut bits, 3);
        assert!(!get_bit(&bits, 3) && get_bit(&bits, 64));
        assert_eq!(count_all(&bits), 1);
    }

    #[test]
    fn set_range_masks_the_top_word() {
        for len in [0usize, 1, 10, 63, 64, 65, 127, 128, 130] {
            let mut bits = vec![0u64; words_for(len)];
            set_range(&mut bits, len);
            assert_eq!(count_all(&bits), len, "len = {len}");
            for i in 0..bits.len() * 64 {
                assert_eq!(get_bit(&bits, i), i < len, "len = {len}, bit {i}");
            }
        }
    }

    #[test]
    fn subset_and_empty() {
        assert!(is_subset(&[0b0110, 0], &[0b1110, 1]));
        assert!(!is_subset(&[0b0110, 1], &[0b1110, 0]));
        assert!(is_subset(&[0, 0], &[0, 0]));
        assert!(is_empty(&[0u64, 0]));
        assert!(!is_empty(&[0u64, 4]));
    }

    #[test]
    fn count_through_and_matched_in_agree_with_naive() {
        let bits = [0xDEAD_BEEF_0123_4567u64, 0x0F0F, 0x8000_0000_0000_0001];
        let naive_through = |end: usize| (0..=end).filter(|&i| get_bit(&bits, i)).count();
        for end in [0usize, 1, 31, 63, 64, 65, 127, 128, 191] {
            assert_eq!(count_through(&bits, end), naive_through(end), "end {end}");
        }
        for (start, end) in [(0usize, 192usize), (5, 70), (64, 64), (63, 129), (100, 101)] {
            let naive = (start..end).filter(|&i| !get_bit(&bits, i)).count();
            assert_eq!(matched_in(&bits, start, end), naive, "{start}..{end}");
        }
    }
}
