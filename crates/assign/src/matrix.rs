//! Dense rectangular cost matrices for assignment problems.

use std::fmt;

/// A dense `rows × cols` matrix of `i64` costs.
///
/// The paper's *matching matrix* (Fig. 8c) is the special case with entries
/// in `{0, 1}`: 0 where a function-matrix row can be assigned to a crossbar
/// row, 1 where it cannot. A zero-cost assignment then certifies a valid
/// defect-tolerant mapping.
///
/// # Examples
///
/// ```
/// use xbar_assign::CostMatrix;
///
/// let m = CostMatrix::from_fn(2, 3, |r, c| (r + c) as i64);
/// assert_eq!(m.get(1, 2), 3);
/// assert_eq!(m.rows(), 2);
/// ```
#[derive(Clone, PartialEq, Eq)]
pub struct CostMatrix {
    rows: usize,
    cols: usize,
    data: Vec<i64>,
}

impl CostMatrix {
    /// All-zero matrix.
    #[must_use]
    pub fn new(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            data: vec![0; rows * cols],
        }
    }

    /// Builds a matrix by evaluating `f(row, col)` in row-major order,
    /// writing straight into the backing vector (no per-element bounds
    /// checks).
    #[must_use]
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> i64) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for r in 0..rows {
            for c in 0..cols {
                data.push(f(r, c));
            }
        }
        Self { rows, cols, data }
    }

    /// Builds a matrix from row-major data.
    ///
    /// # Panics
    ///
    /// Panics when `data.len() != rows * cols`.
    #[must_use]
    pub fn from_rows(rows: usize, cols: usize, data: Vec<i64>) -> Self {
        assert_eq!(data.len(), rows * cols, "row-major data length");
        Self { rows, cols, data }
    }

    /// [`CostMatrix::from_rows`] without the length check (debug-asserted
    /// only) — the bulk constructor for hot paths that fill a reused buffer
    /// and hand it over wholesale.
    #[must_use]
    pub fn from_rows_unchecked(rows: usize, cols: usize, data: Vec<i64>) -> Self {
        debug_assert_eq!(data.len(), rows * cols, "row-major data length");
        Self { rows, cols, data }
    }

    /// Consumes the matrix and returns its row-major backing vector, so a
    /// caller that built the matrix with [`CostMatrix::from_rows_unchecked`]
    /// can reclaim the allocation for the next round.
    #[must_use]
    pub fn into_data(self) -> Vec<i64> {
        self.data
    }

    /// Number of rows.
    #[must_use]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[must_use]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Cost at `(row, col)`.
    ///
    /// # Panics
    ///
    /// Panics on out-of-range indices.
    #[must_use]
    pub fn get(&self, row: usize, col: usize) -> i64 {
        assert!(row < self.rows && col < self.cols, "index out of range");
        self.data[row * self.cols + col]
    }

    /// Sets the cost at `(row, col)`.
    ///
    /// # Panics
    ///
    /// Panics on out-of-range indices.
    pub fn set(&mut self, row: usize, col: usize, value: i64) {
        assert!(row < self.rows && col < self.cols, "index out of range");
        self.data[row * self.cols + col] = value;
    }

    /// Total cost of an assignment given as `assignment[row] = col`.
    ///
    /// # Panics
    ///
    /// Panics when the assignment references out-of-range columns or has
    /// the wrong length.
    #[must_use]
    pub fn assignment_cost(&self, assignment: &[usize]) -> i64 {
        assert_eq!(assignment.len(), self.rows, "assignment length");
        assignment
            .iter()
            .enumerate()
            .map(|(r, &c)| self.get(r, c))
            .sum()
    }
}

impl fmt::Debug for CostMatrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "CostMatrix {}x{}", self.rows, self.cols)?;
        for r in 0..self.rows {
            for c in 0..self.cols {
                write!(f, "{:>4}", self.get(r, c))?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_fn_and_get() {
        let m = CostMatrix::from_fn(3, 2, |r, c| (10 * r + c) as i64);
        assert_eq!(m.get(2, 1), 21);
    }

    #[test]
    fn assignment_cost_sums_entries() {
        let m = CostMatrix::from_rows(2, 2, vec![1, 2, 3, 4]);
        assert_eq!(m.assignment_cost(&[1, 0]), 5);
    }

    #[test]
    #[should_panic(expected = "index out of range")]
    fn get_out_of_range_panics() {
        let _ = CostMatrix::new(2, 2).get(2, 0);
    }

    #[test]
    fn unchecked_roundtrips_through_into_data() {
        let data = vec![5, 6, 7, 8, 9, 10];
        let m = CostMatrix::from_rows_unchecked(2, 3, data.clone());
        assert_eq!(m.get(1, 2), 10);
        assert_eq!(m.into_data(), data);
    }
}
