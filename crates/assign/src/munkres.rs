//! Munkres' algorithm (the Hungarian method) for the rectangular assignment
//! problem — reference [21] of the paper.
//!
//! Implemented as the `O(rows² · cols)` shortest-augmenting-path formulation
//! with dual potentials. Handles `rows ≤ cols`; every row is assigned a
//! distinct column and the total cost is minimized.

use crate::matrix::CostMatrix;
use std::error::Error;
use std::fmt;

/// Result of an assignment: `assignment[row] = col`, plus the total cost.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Assignment {
    /// Column assigned to each row.
    pub assignment: Vec<usize>,
    /// Total cost of the assignment.
    pub cost: i64,
}

/// Error returned when the matrix has more rows than columns.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SolveAssignmentError {
    rows: usize,
    cols: usize,
}

impl fmt::Display for SolveAssignmentError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "assignment needs rows <= cols, got {} rows and {} cols",
            self.rows, self.cols
        )
    }
}

impl Error for SolveAssignmentError {}

/// Reusable workspace for [`munkres_with_scratch`]: potentials, path
/// bookkeeping and the output assignment, kept across calls so repeated
/// solves (one per Monte Carlo sample) stop allocating.
#[derive(Debug, Clone, Default)]
pub struct MunkresScratch {
    u: Vec<i64>,
    v: Vec<i64>,
    p: Vec<usize>,
    way: Vec<usize>,
    minv: Vec<i64>,
    used: Vec<bool>,
    assignment: Vec<usize>,
}

impl MunkresScratch {
    /// An empty scratch; buffers grow to fit the first solve and are reused
    /// afterwards.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// The assignment produced by the most recent successful solve:
    /// `assignment()[row] = col`.
    #[must_use]
    pub fn assignment(&self) -> &[usize] {
        &self.assignment
    }
}

/// Solves the minimum-cost rectangular assignment problem.
///
/// # Errors
///
/// Returns [`SolveAssignmentError`] when `matrix.rows() > matrix.cols()`
/// (no complete assignment of rows exists).
///
/// # Examples
///
/// ```
/// use xbar_assign::{munkres, CostMatrix};
///
/// let m = CostMatrix::from_rows(2, 2, vec![4, 1, 2, 3]);
/// let sol = munkres(&m)?;
/// assert_eq!(sol.assignment, vec![1, 0]);
/// assert_eq!(sol.cost, 3);
/// # Ok::<(), xbar_assign::SolveAssignmentError>(())
/// ```
pub fn munkres(matrix: &CostMatrix) -> Result<Assignment, SolveAssignmentError> {
    let mut scratch = MunkresScratch::new();
    let cost = munkres_with_scratch(matrix, &mut scratch)?;
    Ok(Assignment {
        assignment: scratch.assignment,
        cost,
    })
}

/// [`munkres`] writing into a caller-owned [`MunkresScratch`]: returns the
/// minimum cost and leaves the assignment in `scratch.assignment()`. The
/// result is identical to [`munkres`] on the same matrix; only the
/// allocation behaviour differs.
///
/// # Errors
///
/// Returns [`SolveAssignmentError`] when `matrix.rows() > matrix.cols()`.
pub fn munkres_with_scratch(
    matrix: &CostMatrix,
    scratch: &mut MunkresScratch,
) -> Result<i64, SolveAssignmentError> {
    let n = matrix.rows();
    let m = matrix.cols();
    if n > m {
        return Err(SolveAssignmentError { rows: n, cols: m });
    }
    scratch.assignment.clear();
    if n == 0 {
        return Ok(0);
    }

    const INF: i64 = i64::MAX / 4;

    // 1-based potentials over rows (u) and columns (v); p[j] = row matched
    // to column j (0 = none). Column 0 is the virtual source column.
    let MunkresScratch {
        u,
        v,
        p,
        way,
        minv,
        used,
        assignment,
    } = scratch;
    reset(u, n + 1, 0i64);
    reset(v, m + 1, 0i64);
    reset(p, m + 1, 0usize);
    reset(way, m + 1, 0usize);

    for i in 1..=n {
        p[0] = i;
        let mut j0 = 0usize;
        reset(minv, m + 1, INF);
        reset(used, m + 1, false);
        loop {
            used[j0] = true;
            let i0 = p[j0];
            let mut delta = INF;
            let mut j1 = 0usize;
            for j in 1..=m {
                if used[j] {
                    continue;
                }
                let cur = matrix.get(i0 - 1, j - 1) - u[i0] - v[j];
                if cur < minv[j] {
                    minv[j] = cur;
                    way[j] = j0;
                }
                if minv[j] < delta {
                    delta = minv[j];
                    j1 = j;
                }
            }
            for j in 0..=m {
                if used[j] {
                    u[p[j]] += delta;
                    v[j] -= delta;
                } else {
                    minv[j] -= delta;
                }
            }
            j0 = j1;
            if p[j0] == 0 {
                break;
            }
        }
        // Augment along the alternating path.
        loop {
            let j1 = way[j0];
            p[j0] = p[j1];
            j0 = j1;
            if j0 == 0 {
                break;
            }
        }
    }

    reset(assignment, n, usize::MAX);
    for j in 1..=m {
        if p[j] != 0 {
            assignment[p[j] - 1] = j - 1;
        }
    }
    debug_assert!(assignment.iter().all(|&c| c != usize::MAX));
    Ok(matrix.assignment_cost(assignment))
}

/// Resizes `buf` to `len` entries all equal to `value`, reusing capacity.
fn reset<T: Copy>(buf: &mut Vec<T>, len: usize, value: T) {
    buf.clear();
    buf.resize(len, value);
}

/// Exhaustive minimum-cost assignment for tiny matrices; the correctness
/// oracle for [`munkres`] in tests.
///
/// # Panics
///
/// Panics when `matrix.rows() > 10` (factorial blow-up) or
/// `rows > cols`.
#[must_use]
pub fn brute_force_assignment(matrix: &CostMatrix) -> Assignment {
    let n = matrix.rows();
    let m = matrix.cols();
    assert!(n <= 10, "brute force limited to 10 rows");
    assert!(n <= m, "needs rows <= cols");
    let mut best: Option<Assignment> = None;
    let mut cols: Vec<usize> = (0..m).collect();
    permute(&mut cols, n, &mut |prefix| {
        let cost = prefix
            .iter()
            .enumerate()
            .map(|(r, &c)| matrix.get(r, c))
            .sum::<i64>();
        if best.as_ref().is_none_or(|b| cost < b.cost) {
            best = Some(Assignment {
                assignment: prefix.to_vec(),
                cost,
            });
        }
    });
    best.expect("at least one assignment exists")
}

/// Enumerates all ordered selections of `k` elements from `items`, invoking
/// `f` with each prefix of length `k`.
fn permute(items: &mut [usize], k: usize, f: &mut impl FnMut(&[usize])) {
    fn rec(items: &mut [usize], depth: usize, k: usize, f: &mut impl FnMut(&[usize])) {
        if depth == k {
            f(&items[..k]);
            return;
        }
        for i in depth..items.len() {
            items.swap(depth, i);
            rec(items, depth + 1, k, f);
            items.swap(depth, i);
        }
    }
    rec(items, 0, k, f);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn square_example() {
        let m = CostMatrix::from_rows(
            3,
            3,
            vec![
                1, 2, 3, //
                2, 4, 6, //
                3, 6, 9,
            ],
        );
        let sol = munkres(&m).expect("square");
        assert_eq!(sol.cost, 10); // 3 + 4 + 3
    }

    #[test]
    fn rectangular_picks_cheapest_columns() {
        let m = CostMatrix::from_rows(
            2,
            4,
            vec![
                9, 9, 1, 9, //
                9, 9, 9, 1,
            ],
        );
        let sol = munkres(&m).expect("rect");
        assert_eq!(sol.assignment, vec![2, 3]);
        assert_eq!(sol.cost, 2);
    }

    #[test]
    fn more_rows_than_cols_is_error() {
        let m = CostMatrix::new(3, 2);
        assert!(munkres(&m).is_err());
    }

    #[test]
    fn empty_matrix() {
        let sol = munkres(&CostMatrix::new(0, 0)).expect("empty");
        assert_eq!(sol.cost, 0);
        assert!(sol.assignment.is_empty());
    }

    #[test]
    fn zero_one_matrix_finds_zero_cost_when_it_exists() {
        // Permutation-like feasibility matrix.
        let m = CostMatrix::from_rows(
            3,
            3,
            vec![
                1, 0, 1, //
                0, 1, 1, //
                1, 1, 0,
            ],
        );
        let sol = munkres(&m).expect("square");
        assert_eq!(sol.cost, 0);
        assert_eq!(sol.assignment, vec![1, 0, 2]);
    }

    #[test]
    fn detects_infeasible_zero_cost() {
        // Two rows can only use column 0: zero-cost assignment impossible.
        let m = CostMatrix::from_rows(
            2,
            2,
            vec![
                0, 1, //
                0, 1,
            ],
        );
        let sol = munkres(&m).expect("square");
        assert_eq!(sol.cost, 1);
    }

    #[test]
    fn matches_brute_force_on_random_matrices() {
        let mut state = 0x1234_5678_u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for _ in 0..50 {
            let rows = (next() % 5 + 1) as usize;
            let cols = rows + (next() % 3) as usize;
            let m = CostMatrix::from_fn(rows, cols, |_, _| (next() % 20) as i64);
            let fast = munkres(&m).expect("rows <= cols");
            let slow = brute_force_assignment(&m);
            assert_eq!(fast.cost, slow.cost, "matrix {m:?}");
            // Assignments must be a valid injection.
            let mut seen = vec![false; cols];
            for &c in &fast.assignment {
                assert!(!seen[c], "duplicate column");
                seen[c] = true;
            }
        }
    }

    #[test]
    fn scratch_reuse_matches_fresh_solves_across_sizes() {
        let mut scratch = MunkresScratch::new();
        let mut state = 0xD1CE_u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for _ in 0..40 {
            let rows = (next() % 6 + 1) as usize;
            let cols = rows + (next() % 4) as usize;
            let m = CostMatrix::from_fn(rows, cols, |_, _| (next() % 30) as i64);
            let fresh = munkres(&m).expect("rows <= cols");
            let cost = munkres_with_scratch(&m, &mut scratch).expect("rows <= cols");
            assert_eq!(cost, fresh.cost);
            assert_eq!(scratch.assignment(), fresh.assignment.as_slice());
        }
    }

    #[test]
    fn negative_costs_are_supported() {
        let m = CostMatrix::from_rows(2, 2, vec![-5, 0, 0, -5]);
        let sol = munkres(&m).expect("square");
        assert_eq!(sol.cost, -10);
    }
}
