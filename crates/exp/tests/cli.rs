//! Integration tests of the typed `Experiment` API and the `xbar` CLI:
//! registry completeness, parse round-trips (including error paths and
//! exit codes), golden artifact-schema pins, legacy-shim equivalence, and
//! the `xbar mc` byte-identity contract.

use std::collections::HashSet;
use std::path::PathBuf;
use std::process::{Command, Output};
use xbar_exp::shard::json::Json;
use xbar_exp::{find_experiment, registry, ExpError, Params, Reporter};

// ---------------------------------------------------------------------------
// Registry completeness
// ---------------------------------------------------------------------------

#[test]
fn registry_covers_every_experiment_with_unique_names() {
    let names: Vec<&str> = registry().iter().map(|e| e.name()).collect();
    assert_eq!(names.len(), 18, "tables + figures + ext studies + yield");
    let unique: HashSet<&str> = names.iter().copied().collect();
    assert_eq!(unique.len(), names.len(), "duplicate names in {names:?}");
    // Every pre-redesign binary's experiment is present.
    for expected in [
        "table1",
        "table2",
        "fig1",
        "fig2_fig4",
        "fig3",
        "fig5",
        "fig6",
        "fig7",
        "fig8",
        "ext_yield_redundancy",
        "ext_multilevel_defects",
        "ext_ablation_hba",
        "ext_analog_validation",
        "ext_column_redundancy",
        "ext_defect_scan",
        "ext_model_yield",
        "ext_cluster_tolerance",
        "estimate_yield",
    ] {
        assert!(
            names.contains(&expected),
            "{expected} missing from registry"
        );
    }
}

#[test]
fn registry_descriptions_and_param_specs_are_well_formed() {
    for exp in registry() {
        assert!(
            !exp.description().trim().is_empty(),
            "{}: empty description",
            exp.name()
        );
        let mut seen = HashSet::new();
        for spec in exp.extra_params() {
            assert!(
                seen.insert(spec.name),
                "{}: duplicate param --{}",
                exp.name(),
                spec.name
            );
            assert!(!spec.help.trim().is_empty(), "--{} has no help", spec.name);
            assert!(
                !spec.name.starts_with('-') && !spec.name.contains(' '),
                "--{} is not a bare kebab-case name",
                spec.name
            );
        }
        // Defaults must parse for every experiment (panics otherwise).
        let _ = Params::defaults(exp.extra_params());
    }
}

#[test]
fn find_experiment_resolves_names_and_rejects_unknowns() {
    assert_eq!(find_experiment("table2").map(|e| e.name()), Some("table2"));
    assert!(find_experiment("not-an-experiment").is_none());
}

// ---------------------------------------------------------------------------
// Typed-params layer: run-time usage errors surface as ExpError::Usage
// ---------------------------------------------------------------------------

#[test]
fn experiments_reject_bad_param_values_as_usage_errors() {
    for (name, flags, needle) in [
        ("table2", &["--circuits", "nope"][..], "not a Table II"),
        ("estimate_yield", &["--mapper", "psychic"][..], "hybrid"),
        (
            "estimate_yield",
            &["--circuit", "nope"][..],
            "not registered",
        ),
        ("fig6", &["--input-sizes", "8,banana"][..], "input size"),
        (
            "ext_column_redundancy",
            &["--stuck-closed-fraction", "1.5"][..],
            "[0, 1]",
        ),
        ("table2", &["--circuits", "rd53,rd53"][..], "listed twice"),
    ] {
        let exp = find_experiment(name).expect("registered");
        let params = Params::parse(exp.extra_params(), flags.iter().map(|s| (*s).to_owned()))
            .expect("flags themselves parse");
        let err = exp
            .run(&params, &mut Reporter::quiet())
            .expect_err("bad value must fail");
        match &err {
            ExpError::Usage(msg) => assert!(msg.contains(needle), "{name}: {msg}"),
            ExpError::Failed(msg) => panic!("{name}: expected Usage, got Failed({msg})"),
        }
    }
}

// ---------------------------------------------------------------------------
// Golden artifact schemas (pinned layouts; update DELIBERATELY, never
// silently — downstream tooling parses these documents)
// ---------------------------------------------------------------------------

fn run_artifact(name: &str, flags: &[&str]) -> (String, Params) {
    let exp = find_experiment(name).expect("registered");
    let params = Params::parse(exp.extra_params(), flags.iter().map(|s| (*s).to_owned()))
        .expect("flags parse");
    let artifact = exp
        .run(&params, &mut Reporter::quiet())
        .expect("experiment runs");
    (artifact.render(exp, &params), params)
}

#[test]
fn golden_table2_artifact_layout_is_pinned() {
    let (text, _) = run_artifact(
        "table2",
        &["--samples", "12", "--seed", "5", "--circuits", "rd53"],
    );
    let expected = r#"{
  "schema": "xbar-artifact/1",
  "experiment": "table2",
  "params": {
    "samples": 12,
    "seed": 5,
    "defect_rate": 0.1,
    "circuits": [
      "rd53"
    ],
    "rng_stream": "v1"
  },
  "data": {
    "circuits": [
      {
        "name": "rd53",
        "inputs": 5,
        "outputs": 3,
        "products": 31,
        "area": 544,
        "area_published": 544,
        "inclusion_ratio": 0.3327205882352941,
        "samples": 12,
        "hba_successes": 11,
        "hba_success_rate": 0.9166666666666666,
        "ea_successes": 11,
        "ea_success_rate": 0.9166666666666666
      }
    ]
  }
}
"#;
    assert_eq!(text, expected, "table2 artifact layout drifted");
}

#[test]
fn golden_estimate_yield_artifact_layout_is_pinned() {
    let (text, _) = run_artifact(
        "estimate_yield",
        &["--samples", "15", "--seed", "7", "--spare-rows", "2"],
    );
    let expected = r#"{
  "schema": "xbar-artifact/1",
  "experiment": "estimate_yield",
  "params": {
    "samples": 15,
    "seed": 7,
    "defect_rate": 0.1,
    "circuit": "rd53",
    "spare_rows": 2,
    "stuck_closed_fraction": 0.0,
    "mapper": "hybrid",
    "rng_stream": "v1"
  },
  "data": {
    "circuit": "rd53",
    "rows": 34,
    "cols": 16,
    "spare_rows": 2,
    "mapper": "hybrid",
    "successes": 15,
    "samples": 15,
    "success_rate": 1.0,
    "area": 576,
    "area_overhead": 1.0588235294117647
  }
}
"#;
    assert_eq!(text, expected, "estimate_yield artifact layout drifted");
}

#[test]
fn golden_ext_model_yield_artifact_layout_is_pinned() {
    // Pins every spatial defect model's yield sweep in one document:
    // the sampling procedures themselves are frozen by these counts.
    let (text, _) = run_artifact("ext_model_yield", &["--samples", "12", "--seed", "5"]);
    let expected = r#"{
  "schema": "xbar-artifact/1",
  "experiment": "ext_model_yield",
  "params": {
    "samples": 12,
    "seed": 5,
    "defect_rate": 0.1,
    "circuit": "rd53",
    "rng_stream": "v1"
  },
  "data": {
    "circuit": "rd53",
    "rows": 34,
    "cols": 16,
    "models": [
      {
        "model": "iid",
        "sweep": [
          {
            "defect_rate": 0.05,
            "successes": 12,
            "samples": 12
          },
          {
            "defect_rate": 0.1,
            "successes": 12,
            "samples": 12
          },
          {
            "defect_rate": 0.15,
            "successes": 10,
            "samples": 12
          },
          {
            "defect_rate": 0.2,
            "successes": 2,
            "samples": 12
          }
        ]
      },
      {
        "model": "clustered",
        "sweep": [
          {
            "defect_rate": 0.05,
            "successes": 3,
            "samples": 12
          },
          {
            "defect_rate": 0.1,
            "successes": 3,
            "samples": 12
          },
          {
            "defect_rate": 0.15,
            "successes": 0,
            "samples": 12
          },
          {
            "defect_rate": 0.2,
            "successes": 0,
            "samples": 12
          }
        ]
      },
      {
        "model": "lines",
        "sweep": [
          {
            "defect_rate": 0.05,
            "successes": 4,
            "samples": 12
          },
          {
            "defect_rate": 0.1,
            "successes": 4,
            "samples": 12
          },
          {
            "defect_rate": 0.15,
            "successes": 4,
            "samples": 12
          },
          {
            "defect_rate": 0.2,
            "successes": 4,
            "samples": 12
          }
        ]
      },
      {
        "model": "composite",
        "sweep": [
          {
            "defect_rate": 0.05,
            "successes": 1,
            "samples": 12
          },
          {
            "defect_rate": 0.1,
            "successes": 1,
            "samples": 12
          },
          {
            "defect_rate": 0.15,
            "successes": 0,
            "samples": 12
          },
          {
            "defect_rate": 0.2,
            "successes": 0,
            "samples": 12
          }
        ]
      }
    ]
  }
}
"#;
    assert_eq!(text, expected, "ext_model_yield artifact layout drifted");
}

#[test]
fn golden_ext_cluster_tolerance_artifact_layout_is_pinned() {
    let (text, _) = run_artifact("ext_cluster_tolerance", &["--samples", "12", "--seed", "5"]);
    let expected = r#"{
  "schema": "xbar-artifact/1",
  "experiment": "ext_cluster_tolerance",
  "params": {
    "samples": 12,
    "seed": 5,
    "defect_rate": 0.1,
    "circuit": "rd53",
    "rng_stream": "v1"
  },
  "data": {
    "circuit": "rd53",
    "products": 31,
    "defect_rate": 0.1,
    "sweep": [
      {
        "cluster_size": 1.0,
        "hba_successes": 11,
        "ea_successes": 12,
        "samples": 12
      },
      {
        "cluster_size": 2.0,
        "hba_successes": 3,
        "ea_successes": 4,
        "samples": 12
      },
      {
        "cluster_size": 4.0,
        "hba_successes": 1,
        "ea_successes": 1,
        "samples": 12
      },
      {
        "cluster_size": 8.0,
        "hba_successes": 0,
        "ea_successes": 0,
        "samples": 12
      }
    ]
  }
}
"#;
    assert_eq!(
        text, expected,
        "ext_cluster_tolerance artifact layout drifted"
    );
}

#[test]
fn table2_circuit_subset_preserves_user_order() {
    // Same contract as `xbar mc coordinate --circuits`: the artifact's
    // circuit array lines up with the requested order.
    let (text, _) = run_artifact("table2", &["--samples", "10", "--circuits", "misex1,rd53"]);
    let doc = Json::parse(&text).expect("artifact parses");
    let names: Vec<&str> = doc
        .get("data")
        .and_then(|d| d.get("circuits"))
        .and_then(Json::as_arr)
        .expect("circuits array")
        .iter()
        .map(|c| c.get("name").and_then(Json::as_str).expect("name"))
        .collect();
    assert_eq!(names, ["misex1", "rd53"]);
}

#[test]
fn every_experiment_declares_a_parseable_artifact_envelope() {
    // Cheap structural check on the two fast deterministic experiments
    // (the full registry sweep is CI's `xbar run --quick --json` loop).
    for name in ["fig3", "fig8"] {
        let (text, _) = run_artifact(name, &[]);
        let doc = Json::parse(&text).expect("artifact parses");
        assert_eq!(
            doc.get("schema").and_then(Json::as_str),
            Some("xbar-artifact/1")
        );
        assert_eq!(doc.get("experiment").and_then(Json::as_str), Some(name));
        assert!(doc.get("params").is_some());
        assert!(doc.get("data").is_some());
    }
}

// ---------------------------------------------------------------------------
// Process-level: exit codes, shim equivalence, mc byte-identity
// ---------------------------------------------------------------------------

fn xbar(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_xbar"))
        .args(args)
        .output()
        .expect("spawn xbar")
}

fn stdout(out: &Output) -> String {
    String::from_utf8_lossy(&out.stdout).into_owned()
}

fn stderr(out: &Output) -> String {
    String::from_utf8_lossy(&out.stderr).into_owned()
}

#[test]
fn xbar_list_names_every_registered_experiment() {
    let out = xbar(&["list"]);
    assert!(out.status.success());
    let text = stdout(&out);
    for exp in registry() {
        assert!(
            text.lines().any(|l| l.starts_with(exp.name())),
            "{} missing from `xbar list`",
            exp.name()
        );
    }
}

#[test]
fn usage_problems_exit_2_with_help_not_a_backtrace() {
    for args in [
        &[][..],
        &["frobnicate"][..],
        &["run"][..],
        &["run", "not-an-experiment"][..],
        &["run", "table2", "--frobnicate"][..],
        &["run", "table2", "--samples"][..],
        &["run", "table2", "--samples", "many"][..],
        &["describe", "not-an-experiment"][..],
        &["mc"][..],
        &["mc", "frobnicate"][..],
        &["mc", "shard", "--shard-index", "x"][..],
        &["mc", "coordinate", "--shards"][..],
        &["mc", "coordinate", "--shard-timeout", "soon"][..],
        &["mc", "coordinate", "--shard-timeout", "0"][..],
        &["mc", "coordinate", "--max-inflight", "0"][..],
        &["mc", "coordinate", "--worker-arg"][..],
    ] {
        let out = xbar(args);
        assert_eq!(
            out.status.code(),
            Some(2),
            "xbar {args:?}: expected exit 2, got {:?}\nstderr: {}",
            out.status.code(),
            stderr(&out)
        );
        let err = stderr(&out);
        assert!(!err.contains("panicked"), "xbar {args:?} panicked:\n{err}");
    }
}

#[test]
fn describe_and_help_exit_0() {
    for args in [
        &["--help"][..],
        &["describe", "table2"][..],
        &["run", "table2", "--help"][..],
        &["mc", "shard", "--help"][..],
        &["mc", "coordinate", "--help"][..],
    ] {
        let out = xbar(args);
        assert!(out.status.success(), "xbar {args:?} failed");
        assert!(!stdout(&out).is_empty());
    }
}

#[test]
fn legacy_shim_produces_byte_identical_artifacts() {
    let flags = ["--quick", "--json", "--circuits", "rd53"];
    let via_xbar = xbar(&["run", "table2", "--quick", "--json", "--circuits", "rd53"]);
    assert!(via_xbar.status.success());
    let shim = Command::new(env!("CARGO_BIN_EXE_table2_defect_tolerance"))
        .args(flags)
        .output()
        .expect("spawn shim");
    assert!(shim.status.success());
    assert_eq!(
        stdout(&via_xbar),
        stdout(&shim),
        "shim must delegate to the identical registry run"
    );
    assert!(
        stderr(&shim).contains("deprecated"),
        "shim must announce its replacement"
    );
}

#[test]
fn mc_coordinate_is_byte_identical_to_in_process_with_xbar_as_its_own_worker() {
    let dir = std::env::temp_dir().join(format!("xbar-cli-test-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("scratch dir");
    let sharded_path = dir.join("sharded.json");
    let single_path = dir.join("single.json");

    // No --worker: default resolution finds the xbar binary next to the
    // running xbar and spawns it as `xbar mc shard` — the self-contained
    // path production uses.
    let sharded = xbar(&[
        "mc",
        "coordinate",
        "--shards",
        "3",
        "--samples",
        "30",
        "--circuits",
        "rd53",
        "--work-dir",
        dir.join("work").to_str().expect("utf8 path"),
        "--out",
        sharded_path.to_str().expect("utf8 path"),
    ]);
    assert!(
        sharded.status.success(),
        "sharded run failed: {}",
        stderr(&sharded)
    );
    let single = xbar(&[
        "mc",
        "coordinate",
        "--in-process",
        "--samples",
        "30",
        "--circuits",
        "rd53",
        "--out",
        single_path.to_str().expect("utf8 path"),
    ]);
    assert!(single.status.success(), "{}", stderr(&single));

    let sharded_text = std::fs::read_to_string(&sharded_path).expect("sharded artifact");
    let single_text = std::fs::read_to_string(&single_path).expect("single artifact");
    assert_eq!(
        sharded_text, single_text,
        "3-shard xbar run must be byte-identical to --in-process"
    );
    Json::parse(&sharded_text).expect("merged artifact parses");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn json_mode_stdout_carries_only_the_artifact() {
    let out = xbar(&["run", "estimate_yield", "--quick", "--json"]);
    assert!(out.status.success());
    let text = stdout(&out);
    let doc = Json::parse(&text).expect("stdout is exactly one JSON document");
    assert_eq!(
        doc.get("experiment").and_then(Json::as_str),
        Some("estimate_yield")
    );
}

#[test]
fn out_dir_receives_the_artifact_file() {
    let dir = std::env::temp_dir().join(format!("xbar-out-test-{}", std::process::id()));
    let out = xbar(&["run", "fig3", "--out", dir.to_str().expect("utf8 path")]);
    assert!(out.status.success(), "{}", stderr(&out));
    let path: PathBuf = dir.join("fig3.json");
    let text = std::fs::read_to_string(&path).expect("artifact written");
    Json::parse(&text).expect("artifact parses");
    let _ = std::fs::remove_dir_all(&dir);
}
