//! Process-level and property tests of the multi-host launcher: remote
//! dispatch over `Transport` implementations with injected faults
//! (torn streams, host death, stalls), host-health quarantine, hedged
//! straggler re-dispatch, and the two-level merge tree — all pinned to
//! one invariant: the merged stats artifact is byte-identical to the
//! monolithic in-process run, whatever the fleet did.

use std::path::PathBuf;
use std::process::{Command, Output};
use std::time::Duration;

use proptest::prelude::*;
use xbar_core::{DefectModelSpec, SampleStream};
use xbar_exp::experiments::table2::CircuitAccum;
use xbar_exp::launch::{
    merge_host_groups, parse_hosts, run_launch_with_report, Exec, FaultPlan, Faulty, LaunchConfig,
    LaunchReport, LocalProc,
};
use xbar_exp::sample_seed;
use xbar_exp::shard::coordinator::{
    merge_partials, render_stats_json, run_monolithic, MergedResult, Worker,
};
use xbar_exp::shard::partial::ShardPartial;
use xbar_exp::shard::{McConfig, ShardSpec};

fn campaign() -> McConfig {
    McConfig {
        samples: 30,
        seed: 2018,
        defect_rate: 0.10,
        stream: SampleStream::V1,
        model: DefectModelSpec::default(),
        circuits: vec!["rd53".to_owned()],
    }
}

/// A unique scratch directory per test (no tempfile crate in the
/// workspace); cleaned up by the launcher on success.
fn scratch(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("xbar-launch-test-{}-{tag}", std::process::id()))
}

/// A launch over the loopback fleet with test-friendly settings: the
/// standalone worker binary, a scratch work dir, tiny retry backoff, and
/// a probation long enough that a quarantined host never returns within
/// the test.
fn launch(tag: &str, hosts: &str) -> LaunchConfig {
    LaunchConfig {
        config: campaign(),
        shards: 3,
        max_attempts: 3,
        worker: Worker::standalone(PathBuf::from(env!("CARGO_BIN_EXE_mc_shard"))),
        work_dir: scratch(tag),
        extra_worker_args: Vec::new(),
        keep_partials: false,
        shard_timeout: None,
        hedge_after: None,
        resume: false,
        retry_base: Duration::from_millis(5),
        hosts: parse_hosts(hosts).expect("host spec"),
        quarantine_after: 3,
        probation: Duration::from_secs(3600),
    }
}

fn monolithic() -> String {
    render_stats_json(&run_monolithic(&campaign()))
}

fn faults(specs: &[&str]) -> Faulty<LocalProc> {
    Faulty::new(
        LocalProc,
        specs
            .iter()
            .map(|s| FaultPlan::parse(s).expect("fault spec"))
            .collect(),
    )
}

fn host<'r>(report: &'r LaunchReport, name: &str) -> &'r xbar_exp::launch::HostCount {
    report
        .hosts
        .iter()
        .find(|h| h.name == name)
        .unwrap_or_else(|| panic!("host {name} missing from report: {:?}", report.hosts))
}

#[test]
fn loopback_fleet_is_byte_identical_to_monolithic_with_host_attribution() {
    let cfg = launch("loopback", "alpha*2,beta*2");
    let (merged, report) = run_launch_with_report(&cfg, &LocalProc).expect("launch");
    assert_eq!(
        render_stats_json(&merged),
        monolithic(),
        "a 2-host loopback launch must reproduce the monolithic artifact"
    );
    assert_eq!(report.base.spawned, 3, "one flight per shard, no retries");
    assert_eq!(report.base.retries, 0);
    assert_eq!(report.hedges, 0);
    assert_eq!(report.discards, 0);
    let dispatched: usize = report.hosts.iter().map(|h| h.dispatched).sum();
    let completed: usize = report.hosts.iter().map(|h| h.completed).sum();
    assert_eq!(dispatched, 3, "every dispatch is attributed to a host");
    assert_eq!(completed, 3);
    assert_eq!(
        report.hosts[0].name, "alpha",
        "counters stay in fleet order"
    );
    assert_eq!(report.hosts[1].name, "beta");
}

#[test]
fn exec_template_transport_matches_monolithic() {
    // `{worker:sh}` through a real shell is the ssh-shaped path minus the
    // network: quoting, exec-replacement, and stdout streaming all real.
    let cfg = launch("exec", "alpha,beta");
    let transport = Exec::new(vec![
        "/bin/sh".to_owned(),
        "-c".to_owned(),
        "{worker:sh}".to_owned(),
    ])
    .expect("template");
    let (merged, _) = run_launch_with_report(&cfg, &transport).expect("launch");
    assert_eq!(render_stats_json(&merged), monolithic());
}

#[test]
fn torn_stream_is_rejected_and_retried_to_identical_bytes() {
    let cfg = launch("torn", "alpha,beta");
    let transport = faults(&["alpha=truncate@0"]);
    let (merged, report) = run_launch_with_report(&cfg, &transport).expect("launch");
    assert_eq!(
        render_stats_json(&merged),
        monolithic(),
        "a truncated partial must never reach the merge"
    );
    assert!(
        report.base.retries >= 1,
        "the torn transfer costs a retry: {:?}",
        report.base
    );
}

#[test]
fn host_death_mid_campaign_fails_over_to_the_survivor() {
    let cfg = launch("death", "alpha*3,beta");
    let transport = faults(&["beta=die@0"]);
    let (merged, report) = run_launch_with_report(&cfg, &transport).expect("launch");
    assert_eq!(
        render_stats_json(&merged),
        monolithic(),
        "losing a host must not change the merged bytes"
    );
    let beta = host(&report, "beta");
    assert!(beta.failed >= 1, "the dead host is blamed: {beta:?}");
    assert_eq!(beta.completed, 0, "a dead host completes nothing");
    assert_eq!(
        host(&report, "alpha").completed,
        3,
        "the survivor carries the campaign"
    );
}

#[test]
fn quarantined_host_receives_no_further_shards() {
    let mut cfg = launch("quarantine", "good,bad");
    cfg.quarantine_after = 2;
    cfg.max_attempts = 5;
    let transport = faults(&["bad=die@0"]);
    let (merged, report) = run_launch_with_report(&cfg, &transport).expect("launch");
    assert_eq!(render_stats_json(&merged), monolithic());
    let bad = host(&report, "bad");
    assert_eq!(
        bad.dispatched, 2,
        "exactly `quarantine_after` strikes, then nothing: {bad:?}"
    );
    assert_eq!(bad.failed, 2);
    assert_eq!(bad.quarantines, 1, "one quarantine event");
    assert_eq!(bad.completed, 0);
    assert_eq!(
        host(&report, "good").completed,
        3,
        "every shard lands on the healthy host"
    );
}

#[test]
fn hedged_straggler_wins_on_the_other_host_and_the_loser_is_discarded() {
    let mut cfg = launch("hedge", "alpha,beta");
    cfg.hedge_after = Some(Duration::from_millis(50));
    let transport = faults(&["alpha=stall@0"]);
    let (merged, report) = run_launch_with_report(&cfg, &transport).expect("launch");
    assert_eq!(
        render_stats_json(&merged),
        monolithic(),
        "the hedge winner's partial must merge to identical bytes"
    );
    assert!(report.hedges >= 1, "the stall forces a hedge: {report:?}");
    assert!(
        report.discards >= 1,
        "the stalled loser is cancelled and discarded: {report:?}"
    );
    assert_eq!(
        host(&report, "alpha").completed,
        0,
        "the stalled host never finishes its flight"
    );
}

#[test]
fn host_spec_grammar_parses_slots_and_rejects_degenerate_fleets() {
    let fleet = parse_hosts("alpha*2,beta").expect("valid spec");
    assert_eq!(fleet.len(), 2);
    assert_eq!((fleet[0].name.as_str(), fleet[0].slots), ("alpha", 2));
    assert_eq!((fleet[1].name.as_str(), fleet[1].slots), ("beta", 1));
    assert_eq!(fleet[0].render(), "alpha*2");
    for bad in ["", "alpha*0", "alpha*many", "*2", "alpha,alpha"] {
        assert!(parse_hosts(bad).is_err(), "{bad:?} must be rejected");
    }
}

// ---------------------------------------------------------------------
// Properties: the two-level merge tree and torn-transfer detection.
// ---------------------------------------------------------------------

/// Deterministic synthetic observation for global sample `i` (a pure
/// function of the per-sample seed) so the merge properties can afford
/// many cases without running the mapper.
fn observe(experiment_seed: u64, i: usize) -> (bool, f64, bool, f64) {
    let s = sample_seed(experiment_seed, i);
    let hba_ok = s % 3 != 0;
    let ea_ok = s % 5 != 0;
    let hba_secs = ((s >> 11) as f64 + 1.0) / 9.007_199_254_740_992e15;
    let ea_secs = ((s >> 23) as f64 + 1.0) / 9.007_199_254_740_992e15;
    (hba_ok, hba_secs, ea_ok, ea_secs)
}

fn fold(experiment_seed: u64, range: std::ops::Range<usize>) -> CircuitAccum {
    let mut accum = CircuitAccum::new();
    for i in range {
        let (hba_ok, hba_secs, ea_ok, ea_secs) = observe(experiment_seed, i);
        accum.push(hba_ok, hba_secs, ea_ok, ea_secs);
    }
    accum
}

fn synthetic_partials(samples: usize, shards: usize, seed: u64) -> (McConfig, Vec<ShardPartial>) {
    let config = McConfig {
        samples,
        seed,
        ..campaign()
    };
    let partials = ShardSpec::partition(samples, shards)
        .into_iter()
        .map(|spec| ShardPartial {
            config: config.clone(),
            spec,
            circuits: vec![("rd53".to_owned(), fold(seed, spec.range()))],
        })
        .collect();
    (config, partials)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The per-host pre-merge tree is byte-identical to the flat merge
    /// for any sample count, shard count, and host assignment — the
    /// property that makes host attribution free of artifact risk.
    #[test]
    fn two_level_merge_is_byte_identical_to_flat_for_any_assignment(
        samples in 12usize..120,
        shards in 1usize..12,
        seed in 0u64..u64::MAX,
        assignment in prop::collection::vec(0usize..4, 12),
    ) {
        let (config, partials) = synthetic_partials(samples, shards, seed);
        let flat: MergedResult = merge_partials(&config, &partials).expect("flat merge");
        let assigned: Vec<(String, ShardPartial)> = partials
            .iter()
            .enumerate()
            .map(|(i, p)| (format!("host{}", assignment[i % assignment.len()]), p.clone()))
            .collect();
        let tree = merge_host_groups(&config, &assigned).expect("tree merge");
        prop_assert_eq!(render_stats_json(&tree), render_stats_json(&flat));
    }

    /// Every strict prefix of a partial document (the torn-transfer
    /// shape the `truncate` fault injects) fails to parse — no prefix
    /// can masquerade as a complete partial and poison a merge.
    #[test]
    fn any_strict_prefix_of_a_partial_is_rejected(
        cut_choice in 0usize..1_000_000,
        seed in 0u64..u64::MAX,
    ) {
        let (_, partials) = synthetic_partials(17, 3, seed);
        let text = partials[1].to_json();
        let body = text.trim_end();
        let cut = cut_choice % body.len();
        prop_assert!(
            ShardPartial::from_json(&body[..cut]).is_err(),
            "a {cut}-byte prefix of a {}-byte partial must not parse",
            body.len()
        );
    }
}

// ---------------------------------------------------------------------
// The CLI surface: `xbar mc launch` against `xbar run table2 --json`.
// ---------------------------------------------------------------------

fn xbar(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_xbar"))
        .args(args)
        .output()
        .expect("spawn xbar")
}

fn stdout(out: &Output) -> String {
    String::from_utf8_lossy(&out.stdout).into_owned()
}

fn stderr(out: &Output) -> String {
    String::from_utf8_lossy(&out.stderr).into_owned()
}

const CAMPAIGN_FLAGS: [&str; 8] = [
    "--samples",
    "30",
    "--seed",
    "2018",
    "--defect-rate",
    "0.1",
    "--circuits",
    "rd53",
];

#[test]
fn cli_launch_artifact_is_byte_identical_to_xbar_run_even_under_faults() {
    let dir = scratch("cli");
    std::fs::create_dir_all(&dir).expect("scratch dir");
    let mono = xbar(&[&["run", "table2", "--json"], &CAMPAIGN_FLAGS[..]].concat());
    assert!(mono.status.success(), "monolithic run: {}", stderr(&mono));
    let canonical = stdout(&mono);

    // A clean 2-host loopback launch.
    let artifact = dir.join("clean-artifact.json");
    let clean = xbar(
        &[
            &[
                "mc",
                "launch",
                "--hosts",
                "alpha*2,beta",
                "--shards",
                "3",
                "--work-dir",
                dir.join("clean").to_str().expect("utf8"),
                "--out",
                dir.join("clean-stats.json").to_str().expect("utf8"),
                "--artifact",
                artifact.to_str().expect("utf8"),
            ],
            &CAMPAIGN_FLAGS[..],
        ]
        .concat(),
    );
    assert!(clean.status.success(), "clean launch: {}", stderr(&clean));
    assert_eq!(
        std::fs::read_to_string(&artifact).expect("artifact"),
        canonical,
        "the launched canonical artifact must match `xbar run table2 --json`"
    );
    assert!(
        stdout(&clean).contains("launcher: host alpha:"),
        "the report attributes work to hosts: {}",
        stdout(&clean)
    );

    // The same campaign with a host dying on its first dispatch and a
    // torn stream on the survivor — detection, quarantine, retries, and
    // still the identical bytes.
    let faulty_artifact = dir.join("faulty-artifact.json");
    let faulty = xbar(
        &[
            &[
                "mc",
                "launch",
                "--hosts",
                "alpha*2,beta",
                "--shards",
                "3",
                "--max-attempts",
                "5",
                "--quarantine-after",
                "2",
                "--inject-host-fault",
                "beta=die@0",
                "--inject-host-fault",
                "alpha=truncate@0",
                "--work-dir",
                dir.join("faulty").to_str().expect("utf8"),
                "--out",
                dir.join("faulty-stats.json").to_str().expect("utf8"),
                "--artifact",
                faulty_artifact.to_str().expect("utf8"),
            ],
            &CAMPAIGN_FLAGS[..],
        ]
        .concat(),
    );
    assert!(
        faulty.status.success(),
        "faulty launch: {}",
        stderr(&faulty)
    );
    assert_eq!(
        std::fs::read_to_string(&faulty_artifact).expect("artifact"),
        canonical,
        "host death plus a torn transfer must not change the artifact"
    );

    // A hedged straggler: one host stalls forever, the duplicate on the
    // other host wins, and the bytes still match.
    let hedge_artifact = dir.join("hedge-artifact.json");
    let hedged = xbar(
        &[
            &[
                "mc",
                "launch",
                "--hosts",
                "alpha,beta*2",
                "--shards",
                "3",
                "--hedge-after",
                "0.1",
                "--inject-host-fault",
                "alpha=stall@0",
                "--work-dir",
                dir.join("hedge").to_str().expect("utf8"),
                "--out",
                dir.join("hedge-stats.json").to_str().expect("utf8"),
                "--artifact",
                hedge_artifact.to_str().expect("utf8"),
            ],
            &CAMPAIGN_FLAGS[..],
        ]
        .concat(),
    );
    assert!(
        hedged.status.success(),
        "hedged launch: {}",
        stderr(&hedged)
    );
    assert_eq!(
        std::fs::read_to_string(&hedge_artifact).expect("artifact"),
        canonical,
        "the hedge winner must produce the identical artifact"
    );
    assert!(
        stderr(&hedged).contains("hedged onto"),
        "the straggler must actually be hedged: {}",
        stderr(&hedged)
    );

    std::fs::remove_dir_all(&dir).expect("cleanup");
}

#[test]
fn cli_launch_rejects_bad_fleets_with_usage_not_panic() {
    for args in [
        &["mc", "launch"][..],
        &["mc", "launch", "--hosts", ""][..],
        &["mc", "launch", "--hosts", "a*0"][..],
        &[
            "mc",
            "launch",
            "--hosts",
            "a",
            "--inject-host-fault",
            "a=melt",
        ][..],
        &["mc", "launch", "--hosts", "a", "--hedge-after", "soon"][..],
    ] {
        let out = xbar(args);
        assert_eq!(
            out.status.code(),
            Some(2),
            "xbar {args:?} must exit 2: {}",
            stderr(&out)
        );
        assert!(
            stderr(&out).contains("mc launch:"),
            "xbar {args:?} must explain itself: {}",
            stderr(&out)
        );
    }
}
