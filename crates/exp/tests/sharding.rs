//! Process-level tests of the sharded Monte Carlo subsystem: the
//! fault-tolerant coordinator spawning real worker processes
//! (`CARGO_BIN_EXE_mc_shard` / `CARGO_BIN_EXE_xbar`), killing hung
//! workers at the watchdog deadline, bounding in-flight concurrency,
//! resuming from checkpoints after a `kill -9`, and always producing a
//! merged stats artifact byte-identical to the monolithic in-process run.

use std::path::PathBuf;
use std::process::{Command, Stdio};
use std::time::{Duration, Instant};
use xbar_core::{DefectModelKind, DefectModelSpec, SampleStream};
use xbar_exp::shard::coordinator::{
    campaign_run_dir, render_stats_json, run_coordinator, run_coordinator_with_report,
    run_monolithic, CoordinatorConfig, Worker,
};
use xbar_exp::shard::partial::ShardPartial;
use xbar_exp::shard::McConfig;

fn worker_binary() -> Worker {
    // The legacy standalone worker shim; the `xbar mc shard` path is
    // exercised by crates/exp/tests/cli.rs and the kill/resume test below.
    Worker::standalone(PathBuf::from(env!("CARGO_BIN_EXE_mc_shard")))
}

fn campaign() -> McConfig {
    McConfig {
        samples: 30,
        seed: 2018,
        defect_rate: 0.10,
        stream: SampleStream::V1,
        model: DefectModelSpec::default(),
        circuits: vec!["rd53".to_owned()],
    }
}

/// A unique scratch directory per test (no tempfile crate in the
/// workspace); cleaned up by the coordinator on success.
fn scratch(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("xbar-shard-test-{}-{tag}", std::process::id()))
}

fn coordinator(tag: &str, shards: usize) -> CoordinatorConfig {
    CoordinatorConfig {
        config: campaign(),
        shards,
        max_attempts: 3,
        worker: worker_binary(),
        work_dir: scratch(tag),
        extra_worker_args: Vec::new(),
        keep_partials: false,
        shard_timeout: None,
        max_inflight: None,
        resume: false,
        // Tiny backoff: retry-path tests stay fast without changing the
        // deterministic shape of the schedule.
        retry_base: Duration::from_millis(5),
    }
}

#[test]
fn sharded_runs_are_byte_identical_to_monolithic_across_shard_counts() {
    let mono = render_stats_json(&run_monolithic(&campaign()));
    for shards in [1usize, 2, 3, 7] {
        let cfg = coordinator(&format!("counts-{shards}"), shards);
        let merged = run_coordinator(&cfg).expect("coordinator run");
        assert_eq!(
            render_stats_json(&merged),
            mono,
            "{shards} worker processes must reproduce the monolithic artifact"
        );
    }
}

#[test]
fn v2_campaigns_shard_byte_identically_too() {
    // The geometric-skip stream must survive the full process round-trip:
    // the coordinator forwards `--rng-stream v2` to every worker, partials
    // echo it, and the merged artifact is byte-identical to the
    // monolithic V2 run (which differs from the V1 artifact by design).
    let config = McConfig {
        stream: SampleStream::V2,
        ..campaign()
    };
    let mono = render_stats_json(&run_monolithic(&config));
    assert!(
        mono.contains("\"rng_stream\": \"v2\""),
        "V2 stats must declare their stream: {mono}"
    );
    let v1_mono = render_stats_json(&run_monolithic(&campaign()));
    assert_ne!(mono, v1_mono, "V2 draws different defect maps than V1");
    let mut cfg = coordinator("v2-stream", 3);
    cfg.config = config;
    let merged = run_coordinator(&cfg).expect("coordinator run");
    assert_eq!(render_stats_json(&merged), mono);
}

#[test]
fn clustered_campaigns_shard_byte_identically_through_real_workers() {
    // The spatial defect model must survive the full process round-trip
    // exactly like the RNG stream: the coordinator forwards
    // `--defect-model clustered --cluster-size 3` to every worker,
    // partials echo the model, and the 3-shard merge is byte-identical to
    // the monolithic clustered run.
    let model = DefectModelSpec::new(DefectModelKind::Clustered, 3.0, 0.02).expect("valid spec");
    let config = McConfig {
        model,
        ..campaign()
    };
    let mono = render_stats_json(&run_monolithic(&config));
    assert!(
        mono.contains("\"defect_model\": \"clustered\""),
        "clustered stats must declare their model: {mono}"
    );
    assert!(
        mono.contains("\"cluster_size\": 3.0"),
        "clustered stats must pin the cluster size: {mono}"
    );
    assert_ne!(
        mono,
        render_stats_json(&run_monolithic(&campaign())),
        "clustering draws different defect maps than the i.i.d. model"
    );
    let mut cfg = coordinator("clustered-model", 3);
    cfg.config = config;
    let merged = run_coordinator(&cfg).expect("coordinator run");
    assert_eq!(
        render_stats_json(&merged),
        mono,
        "3 worker processes must reproduce the monolithic clustered artifact"
    );
}

#[test]
fn empty_shards_need_no_workers_and_merge_cleanly() {
    // 7 shards over 4 samples: 3 shards are empty and must be synthesized
    // without spawning processes, with the artifact still byte-identical.
    let config = McConfig {
        samples: 4,
        ..campaign()
    };
    let mono = render_stats_json(&run_monolithic(&config));
    let mut cfg = coordinator("empty-shards", 7);
    cfg.config = config;
    let (merged, report) = run_coordinator_with_report(&cfg).expect("coordinator run");
    assert_eq!(render_stats_json(&merged), mono);
    assert_eq!(report.spawned, 4, "only non-empty shards spawn workers");
}

#[test]
fn coordinator_retries_a_crashing_shard_and_still_matches() {
    let mono = render_stats_json(&run_monolithic(&campaign()));
    let mut cfg = coordinator("fail-once", 3);
    let marker = cfg.work_dir.join("fail-once-marker");
    std::fs::create_dir_all(&cfg.work_dir).expect("scratch dir");
    cfg.extra_worker_args = vec![
        "--inject-fail-once".to_owned(),
        marker.to_string_lossy().into_owned(),
    ];
    let (merged, report) = run_coordinator_with_report(&cfg).expect("retry must recover");
    assert_eq!(render_stats_json(&merged), mono);
    assert!(report.retries >= 1, "{report:?}");
    let _ = std::fs::remove_file(&marker);
    let _ = std::fs::remove_dir(&cfg.work_dir);
}

#[test]
fn coordinator_retries_a_torn_partial_and_still_matches() {
    let mono = render_stats_json(&run_monolithic(&campaign()));
    let mut cfg = coordinator("torn", 2);
    let marker = cfg.work_dir.join("torn-marker");
    std::fs::create_dir_all(&cfg.work_dir).expect("scratch dir");
    cfg.extra_worker_args = vec![
        "--inject-truncate-once".to_owned(),
        marker.to_string_lossy().into_owned(),
    ];
    let merged = run_coordinator(&cfg).expect("retry must recover");
    assert_eq!(render_stats_json(&merged), mono);
    let _ = std::fs::remove_file(&marker);
    let _ = std::fs::remove_dir(&cfg.work_dir);
}

#[test]
fn hung_worker_is_killed_at_the_deadline_and_retried() {
    // One worker hangs forever (first `--inject-hang-once` hit); the
    // watchdog must kill it at the deadline and the retry must finish the
    // shard, with the merged artifact still byte-identical.
    let mono = render_stats_json(&run_monolithic(&campaign()));
    let mut cfg = coordinator("hang", 2);
    let marker = cfg.work_dir.join("hang-marker");
    std::fs::create_dir_all(&cfg.work_dir).expect("scratch dir");
    cfg.shard_timeout = Some(Duration::from_secs(3));
    cfg.extra_worker_args = vec![
        "--inject-hang-once".to_owned(),
        marker.to_string_lossy().into_owned(),
    ];
    let start = Instant::now();
    let (merged, report) = run_coordinator_with_report(&cfg).expect("watchdog must recover");
    assert_eq!(render_stats_json(&merged), mono);
    assert_eq!(report.timeouts, 1, "{report:?}");
    assert!(report.retries >= 1, "{report:?}");
    assert!(
        start.elapsed() < Duration::from_secs(60),
        "the watchdog must turn the hang into a bounded retry"
    );
    let _ = std::fs::remove_file(&marker);
    let _ = std::fs::remove_dir(&cfg.work_dir);
}

#[test]
fn slow_but_finishing_worker_is_not_killed() {
    // Workers sleep 150 ms but the deadline is far away: the watchdog
    // must not fire, and no retries happen.
    let mono = render_stats_json(&run_monolithic(&campaign()));
    let mut cfg = coordinator("slow-ok", 2);
    cfg.shard_timeout = Some(Duration::from_secs(60));
    cfg.extra_worker_args = vec!["--inject-slow-ms".to_owned(), "150".to_owned()];
    let (merged, report) = run_coordinator_with_report(&cfg).expect("slow run");
    assert_eq!(render_stats_json(&merged), mono);
    assert_eq!(report.timeouts, 0, "{report:?}");
    assert_eq!(report.retries, 0, "{report:?}");
    assert_eq!(report.spawned, 2, "{report:?}");
}

#[test]
fn inflight_workers_never_exceed_max_inflight() {
    // 5 shards, 2 slots, each worker slowed so lifetimes overlap. The
    // workers themselves record how many live-markers exist while they
    // run (`--inject-concurrency-dir`), so the bound is asserted from
    // inside the fleet, not from the coordinator's bookkeeping alone.
    let config = McConfig {
        samples: 10,
        ..campaign()
    };
    let mono = render_stats_json(&run_monolithic(&config));
    let mut cfg = coordinator("inflight", 5);
    cfg.config = config;
    cfg.max_inflight = Some(2);
    let obs_dir = cfg.work_dir.join("concurrency");
    cfg.extra_worker_args = vec![
        "--inject-slow-ms".to_owned(),
        "150".to_owned(),
        "--inject-concurrency-dir".to_owned(),
        obs_dir.to_string_lossy().into_owned(),
    ];
    let (merged, report) = run_coordinator_with_report(&cfg).expect("bounded run");
    assert_eq!(render_stats_json(&merged), mono);
    assert_eq!(
        report.max_inflight_observed, 2,
        "5 queued shards must saturate (but never exceed) the 2 slots: {report:?}"
    );
    let observed = std::fs::read_to_string(obs_dir.join("observed.txt")).expect("observations");
    let counts: Vec<usize> = observed
        .lines()
        .map(|line| line.parse().expect("count line"))
        .collect();
    assert_eq!(counts.len(), 5, "every worker samples once: {observed:?}");
    assert!(
        counts.iter().all(|&live| (1..=2).contains(&live)),
        "no worker may ever see more than --max-inflight live peers: {counts:?}"
    );
    let _ = std::fs::remove_dir_all(&cfg.work_dir);
}

#[test]
fn resume_reuses_valid_partials_and_schedules_only_the_rest() {
    // First run keeps its partials; then one is corrupted and one
    // deleted. `--resume` must reuse the intact checkpoint, re-run
    // exactly the two damaged shards, and reproduce the identical bytes.
    let mono = render_stats_json(&run_monolithic(&campaign()));
    let mut cfg = coordinator("resume", 3);
    cfg.keep_partials = true;
    let (first, r1) = run_coordinator_with_report(&cfg).expect("first run");
    assert_eq!(render_stats_json(&first), mono);
    assert_eq!(r1.spawned, 3);
    assert_eq!(r1.reused, 0);

    let run_dir = campaign_run_dir(&cfg.work_dir, &cfg.config, cfg.shards);
    std::fs::write(run_dir.join("partial-1.json"), "{\n  \"schema\": \"tor").expect("corrupt");
    std::fs::remove_file(run_dir.join("partial-2.json")).expect("delete");

    cfg.resume = true;
    cfg.keep_partials = false;
    let (second, r2) = run_coordinator_with_report(&cfg).expect("resumed run");
    assert_eq!(
        render_stats_json(&second),
        mono,
        "a resumed campaign must merge to the identical artifact"
    );
    assert_eq!(r2.reused, 1, "{r2:?}");
    assert_eq!(r2.spawned, 2, "{r2:?}");
}

#[test]
fn resume_after_coordinator_kill_finishes_the_campaign_with_identical_bytes() {
    // The real crash story: a coordinator process (xbar spawning itself
    // as `xbar mc shard`) is SIGKILLed mid-campaign, then a second
    // coordinator with --resume picks up the surviving checkpoints and
    // completes — byte-identical artifact, fewer spawns.
    let dir = scratch("kill-resume");
    let _ = std::fs::remove_dir_all(&dir);
    let work = dir.join("work");
    std::fs::create_dir_all(&work).expect("scratch dir");
    let out = dir.join("merged.json");
    let mono = render_stats_json(&run_monolithic(&campaign()));

    // Serialized workers (--max-inflight 1), each slowed 400 ms, so
    // partials appear one by one and the kill lands mid-campaign.
    let campaign_flags = [
        "--samples",
        "30",
        "--circuits",
        "rd53",
        "--shards",
        "4",
        "--work-dir",
    ];
    let mut coordinator = Command::new(env!("CARGO_BIN_EXE_xbar"))
        .arg("mc")
        .arg("coordinate")
        .args(campaign_flags)
        .arg(&work)
        .args(["--max-inflight", "1", "--keep-partials"])
        .args(["--worker-arg", "--inject-slow-ms", "--worker-arg", "400"])
        .args(["--out".as_ref(), out.as_os_str()])
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn coordinator");

    // Wait for the first complete checkpoint, then SIGKILL the
    // coordinator (kill() is SIGKILL on unix).
    let run_dir = campaign_run_dir(&work, &campaign(), 4);
    let first_partial = run_dir.join("partial-0.json");
    let deadline = Instant::now() + Duration::from_secs(60);
    loop {
        assert!(
            Instant::now() < deadline,
            "no checkpoint appeared before the deadline"
        );
        if coordinator.try_wait().expect("try_wait").is_some() {
            panic!("coordinator finished before it could be killed; slow the workers down");
        }
        if let Ok(text) = std::fs::read_to_string(&first_partial) {
            if ShardPartial::from_json(&text).is_ok() {
                break;
            }
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    coordinator.kill().expect("kill -9 the coordinator");
    let _ = coordinator.wait();
    // Let the orphaned in-flight worker finish writing its partial so the
    // resume below starts from a quiet directory.
    std::thread::sleep(Duration::from_millis(800));

    let out2 = dir.join("merged-resumed.json");
    let resumed = Command::new(env!("CARGO_BIN_EXE_xbar"))
        .arg("mc")
        .arg("coordinate")
        .args(campaign_flags)
        .arg(&work)
        .arg("--resume")
        .args(["--out".as_ref(), out2.as_os_str()])
        .output()
        .expect("spawn resumed coordinator");
    let stdout = String::from_utf8_lossy(&resumed.stdout);
    assert!(
        resumed.status.success(),
        "resume failed: {stdout}\n{}",
        String::from_utf8_lossy(&resumed.stderr)
    );
    let report_line = stdout
        .lines()
        .find(|line| line.starts_with("coordinator:"))
        .expect("report line");
    // The report reads "coordinator: spawned 2 worker(s), reused 2
    // partial(s), ..." — the count follows its verb.
    let field = |key: &str| -> usize {
        let tokens: Vec<&str> = report_line
            .split([' ', ','])
            .filter(|t| !t.is_empty())
            .collect();
        tokens
            .windows(2)
            .find(|pair| pair[0] == key)
            .and_then(|pair| pair[1].parse().ok())
            .unwrap_or_else(|| panic!("no `{key}` count in {report_line:?}"))
    };
    assert!(
        field("reused") >= 1,
        "the killed run's checkpoints must be reused: {report_line:?}"
    );
    assert!(
        field("spawned") < 4,
        "resume must spawn fewer workers than a fresh campaign: {report_line:?}"
    );
    let merged = std::fs::read_to_string(&out2).expect("resumed artifact");
    assert_eq!(
        merged, mono,
        "kill -9 + --resume must still produce the monolithic bytes"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn a_second_coordinator_on_a_live_campaign_fails_fast() {
    // Two coordinators race for the same campaign: the first to create
    // `coordinator.lock` wins and runs to completion; the second must
    // fail fast with a clear "campaign already running" error instead of
    // double-spawning workers or corrupting the run directory.
    let dir = scratch("second-coordinator");
    let _ = std::fs::remove_dir_all(&dir);
    let work = dir.join("work");
    std::fs::create_dir_all(&work).expect("scratch dir");
    let out = dir.join("merged.json");

    // Serialized workers, each slowed 400 ms, so the winner holds the
    // lock long enough for the contender to collide with it.
    let campaign_flags = [
        "--samples",
        "30",
        "--circuits",
        "rd53",
        "--shards",
        "4",
        "--work-dir",
    ];
    let mut winner = Command::new(env!("CARGO_BIN_EXE_xbar"))
        .arg("mc")
        .arg("coordinate")
        .args(campaign_flags)
        .arg(&work)
        .args(["--max-inflight", "1"])
        .args(["--worker-arg", "--inject-slow-ms", "--worker-arg", "400"])
        .args(["--out".as_ref(), out.as_os_str()])
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn first coordinator");

    // Wait until the winner actually holds the run-dir lock.
    let run_dir = campaign_run_dir(&work, &campaign(), 4);
    let lock = run_dir.join("coordinator.lock");
    let deadline = Instant::now() + Duration::from_secs(60);
    while !lock.exists() {
        assert!(
            Instant::now() < deadline,
            "no coordinator.lock appeared before the deadline"
        );
        if winner.try_wait().expect("try_wait").is_some() {
            panic!(
                "first coordinator finished before the contender could run; slow the workers down"
            );
        }
        std::thread::sleep(Duration::from_millis(10));
    }

    let out2 = dir.join("merged-second.json");
    let loser = Command::new(env!("CARGO_BIN_EXE_xbar"))
        .arg("mc")
        .arg("coordinate")
        .args(campaign_flags)
        .arg(&work)
        .args(["--out".as_ref(), out2.as_os_str()])
        .output()
        .expect("run second coordinator");
    let stderr = String::from_utf8_lossy(&loser.stderr);
    assert!(
        !loser.status.success(),
        "the contender must lose the lock race: {stderr}"
    );
    assert!(
        stderr.contains("campaign already running"),
        "the loser must say why it stopped: {stderr}"
    );
    assert!(!out2.exists(), "the loser must not write an artifact");

    // The winner is unaffected by the collision: it finishes cleanly and
    // produces the monolithic bytes.
    let status = winner.wait().expect("first coordinator");
    assert!(
        status.success(),
        "the lock holder must still finish cleanly"
    );
    let merged = std::fs::read_to_string(&out).expect("winner artifact");
    assert_eq!(
        merged,
        render_stats_json(&run_monolithic(&campaign())),
        "the winner's artifact must be untouched by the losing contender"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn a_run_dir_claimed_by_a_different_campaign_is_rejected() {
    // Same (seed, samples, shards, stream) — so the same derived run
    // directory — but a different defect rate: the manifest check must
    // refuse to clobber the first campaign's partials.
    let mut cfg = coordinator("campaign-clash", 2);
    cfg.keep_partials = true;
    let _ = run_coordinator(&cfg).expect("first campaign");

    let mut other = coordinator("campaign-clash", 2);
    other.config.defect_rate = 0.25;
    let err = run_coordinator(&other).expect_err("must refuse");
    assert!(err.contains("different campaign"), "{err}");
    assert!(err.contains("defect_rate"), "{err}");
    let _ = std::fs::remove_dir_all(&cfg.work_dir);
}

#[test]
fn permanently_failing_shard_surfaces_an_error_not_a_hang() {
    let mut cfg = coordinator("fail-always", 2);
    cfg.extra_worker_args = vec!["--inject-fail-always".to_owned()];
    let err = run_coordinator(&cfg).expect_err("must give up");
    assert!(err.contains("failed permanently"), "{err}");
    assert!(err.contains("attempt"), "{err}");
    let _ = std::fs::remove_dir_all(&cfg.work_dir);
}

#[test]
fn missing_worker_binary_is_a_clear_error() {
    let mut cfg = coordinator("no-worker", 2);
    cfg.worker = Worker::standalone(PathBuf::from("/nonexistent/mc_shard"));
    let err = run_coordinator(&cfg).expect_err("must fail");
    assert!(err.contains("failed permanently"), "{err}");
    let _ = std::fs::remove_dir_all(&cfg.work_dir);
}

#[test]
fn unknown_circuit_fails_before_spawning_anything() {
    let mut cfg = coordinator("bad-circuit", 2);
    cfg.config.circuits = vec!["not-a-circuit".to_owned()];
    let err = run_coordinator(&cfg).expect_err("must fail");
    assert!(err.contains("not-a-circuit"), "{err}");
}
