//! Process-level tests of the sharded Monte Carlo subsystem: the
//! coordinator spawning real `mc_shard` worker processes
//! (`CARGO_BIN_EXE_mc_shard`), retrying injected failures, and always
//! producing a merged stats artifact byte-identical to the monolithic
//! in-process run.

use std::path::PathBuf;
use xbar_core::SampleStream;
use xbar_exp::shard::coordinator::{
    render_stats_json, run_coordinator, run_monolithic, CoordinatorConfig, Worker,
};
use xbar_exp::shard::McConfig;

fn worker_binary() -> Worker {
    // The legacy standalone worker shim; the `xbar mc shard` path is
    // exercised by crates/exp/tests/cli.rs.
    Worker::standalone(PathBuf::from(env!("CARGO_BIN_EXE_mc_shard")))
}

fn campaign() -> McConfig {
    McConfig {
        samples: 30,
        seed: 2018,
        defect_rate: 0.10,
        stream: SampleStream::V1,
        circuits: vec!["rd53".to_owned()],
    }
}

/// A unique scratch directory per test (no tempfile crate in the
/// workspace); cleaned up by the coordinator on success.
fn scratch(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("xbar-shard-test-{}-{tag}", std::process::id()))
}

fn coordinator(tag: &str, shards: usize) -> CoordinatorConfig {
    CoordinatorConfig {
        config: campaign(),
        shards,
        max_attempts: 3,
        worker: worker_binary(),
        work_dir: scratch(tag),
        extra_worker_args: Vec::new(),
        keep_partials: false,
    }
}

#[test]
fn sharded_runs_are_byte_identical_to_monolithic_across_shard_counts() {
    let mono = render_stats_json(&run_monolithic(&campaign()));
    for shards in [1usize, 2, 3, 7] {
        let cfg = coordinator(&format!("counts-{shards}"), shards);
        let merged = run_coordinator(&cfg).expect("coordinator run");
        assert_eq!(
            render_stats_json(&merged),
            mono,
            "{shards} worker processes must reproduce the monolithic artifact"
        );
    }
}

#[test]
fn v2_campaigns_shard_byte_identically_too() {
    // The geometric-skip stream must survive the full process round-trip:
    // the coordinator forwards `--rng-stream v2` to every worker, partials
    // echo it, and the merged artifact is byte-identical to the
    // monolithic V2 run (which differs from the V1 artifact by design).
    let config = McConfig {
        stream: SampleStream::V2,
        ..campaign()
    };
    let mono = render_stats_json(&run_monolithic(&config));
    assert!(
        mono.contains("\"rng_stream\": \"v2\""),
        "V2 stats must declare their stream: {mono}"
    );
    let v1_mono = render_stats_json(&run_monolithic(&campaign()));
    assert_ne!(mono, v1_mono, "V2 draws different defect maps than V1");
    let mut cfg = coordinator("v2-stream", 3);
    cfg.config = config;
    let merged = run_coordinator(&cfg).expect("coordinator run");
    assert_eq!(render_stats_json(&merged), mono);
}

#[test]
fn empty_shards_need_no_workers_and_merge_cleanly() {
    // 7 shards over 4 samples: 3 shards are empty and must be synthesized
    // without spawning processes, with the artifact still byte-identical.
    let config = McConfig {
        samples: 4,
        ..campaign()
    };
    let mono = render_stats_json(&run_monolithic(&config));
    let mut cfg = coordinator("empty-shards", 7);
    cfg.config = config;
    let merged = run_coordinator(&cfg).expect("coordinator run");
    assert_eq!(render_stats_json(&merged), mono);
}

#[test]
fn coordinator_retries_a_crashing_shard_and_still_matches() {
    let mono = render_stats_json(&run_monolithic(&campaign()));
    let mut cfg = coordinator("fail-once", 3);
    let marker = cfg.work_dir.join("fail-once-marker");
    std::fs::create_dir_all(&cfg.work_dir).expect("scratch dir");
    cfg.extra_worker_args = vec![
        "--inject-fail-once".to_owned(),
        marker.to_string_lossy().into_owned(),
    ];
    let merged = run_coordinator(&cfg).expect("retry must recover");
    assert_eq!(render_stats_json(&merged), mono);
    let _ = std::fs::remove_file(&marker);
    let _ = std::fs::remove_dir(&cfg.work_dir);
}

#[test]
fn coordinator_retries_a_torn_partial_and_still_matches() {
    let mono = render_stats_json(&run_monolithic(&campaign()));
    let mut cfg = coordinator("torn", 2);
    let marker = cfg.work_dir.join("torn-marker");
    std::fs::create_dir_all(&cfg.work_dir).expect("scratch dir");
    cfg.extra_worker_args = vec![
        "--inject-truncate-once".to_owned(),
        marker.to_string_lossy().into_owned(),
    ];
    let merged = run_coordinator(&cfg).expect("retry must recover");
    assert_eq!(render_stats_json(&merged), mono);
    let _ = std::fs::remove_file(&marker);
    let _ = std::fs::remove_dir(&cfg.work_dir);
}

#[test]
fn permanently_failing_shard_surfaces_an_error_not_a_hang() {
    let mut cfg = coordinator("fail-always", 2);
    cfg.extra_worker_args = vec!["--inject-fail-always".to_owned()];
    let err = run_coordinator(&cfg).expect_err("must give up");
    assert!(err.contains("failed permanently"), "{err}");
    assert!(err.contains("attempt"), "{err}");
    let _ = std::fs::remove_dir_all(&cfg.work_dir);
}

#[test]
fn missing_worker_binary_is_a_clear_error() {
    let mut cfg = coordinator("no-worker", 2);
    cfg.worker = Worker::standalone(PathBuf::from("/nonexistent/mc_shard"));
    let err = run_coordinator(&cfg).expect_err("must fail");
    assert!(err.contains("failed permanently"), "{err}");
    let _ = std::fs::remove_dir_all(&cfg.work_dir);
}

#[test]
fn unknown_circuit_fails_before_spawning_anything() {
    let mut cfg = coordinator("bad-circuit", 2);
    cfg.config.circuits = vec!["not-a-circuit".to_owned()];
    let err = run_coordinator(&cfg).expect_err("must fail");
    assert!(err.contains("not-a-circuit"), "{err}");
}
