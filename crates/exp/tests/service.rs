//! Process-level tests of the yield-oracle service: a real `xbar serve`
//! daemon on a real TCP socket, driven by real `xbar submit` processes.
//! Covers the core service promises end to end: the served artifact is
//! byte-identical to `xbar run --json`, a repeated submit is answered
//! from the artifact cache without any new work, concurrent submissions
//! never exceed the worker-slot bound, and a daemon killed mid-job
//! leaves checkpoints a restarted daemon resumes from.

use std::io::BufRead;
use std::path::PathBuf;
use std::process::{Child, Command, Output, Stdio};
use std::time::{Duration, Instant};
use xbar_core::{DefectModelSpec, SampleStream};
use xbar_exp::experiment::{find_experiment, Params};
use xbar_exp::service::cache_key;
use xbar_exp::shard::coordinator::campaign_run_dir;
use xbar_exp::shard::partial::ShardPartial;
use xbar_exp::shard::McConfig;

fn xbar() -> Command {
    Command::new(env!("CARGO_BIN_EXE_xbar"))
}

/// A unique scratch directory per test (no tempfile crate in the
/// workspace).
fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("xbar-service-test-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("scratch dir");
    dir
}

/// A running daemon plus the address it bound.
struct Daemon {
    child: Child,
    addr: String,
}

impl Daemon {
    /// Starts `xbar serve --listen 127.0.0.1:0 --work-dir <work_dir>` plus
    /// `extra` flags and reads the bound address off the first stdout
    /// line.
    fn start(work_dir: &PathBuf, extra: &[&str]) -> Self {
        Self::start_at(work_dir, "127.0.0.1:0", extra)
    }

    /// Starts a daemon on an explicit listen address (the bounce test
    /// must rebind the address a killed daemon just vacated).
    fn start_at(work_dir: &PathBuf, listen: &str, extra: &[&str]) -> Self {
        Self::try_start_at(work_dir, listen, extra).expect("daemon announces its address")
    }

    /// Fallible start: `None` when the daemon exits before announcing
    /// its address (e.g. the listen address is still in TIME_WAIT after
    /// a kill — callers retry).
    fn try_start_at(work_dir: &PathBuf, listen: &str, extra: &[&str]) -> Option<Self> {
        let mut child = xbar()
            .args(["serve", "--listen", listen, "--work-dir"])
            .arg(work_dir)
            .args(extra)
            .stdout(Stdio::piped())
            .stderr(Stdio::null())
            .spawn()
            .expect("spawn daemon");
        let stdout = child.stdout.take().expect("piped stdout");
        let mut lines = std::io::BufReader::new(stdout).lines();
        let Some(Ok(first)) = lines.next() else {
            let _ = child.kill();
            let _ = child.wait();
            return None;
        };
        let addr = first
            .rsplit("listening on ")
            .next()
            .expect("address after the marker")
            .trim()
            .to_owned();
        assert!(addr.contains(':'), "not an address: {first}");
        Some(Daemon { child, addr })
    }

    /// Runs one `xbar submit` against this daemon and returns its output.
    fn submit(&self, args: &[&str]) -> Output {
        xbar()
            .args(["submit", "--connect", &self.addr])
            .args(args)
            .output()
            .expect("run xbar submit")
    }

    /// Asks the daemon to drain and waits for a clean exit.
    fn shutdown(mut self) {
        let out = self.submit(&["--shutdown"]);
        assert!(out.status.success(), "shutdown: {out:?}");
        let status = self.child.wait().expect("daemon exit");
        assert!(status.success(), "daemon exit: {status:?}");
    }
}

fn stdout_str(out: &Output) -> String {
    String::from_utf8(out.stdout.clone()).expect("utf8 stdout")
}

fn stderr_str(out: &Output) -> String {
    String::from_utf8(out.stderr.clone()).expect("utf8 stderr")
}

#[test]
fn served_artifact_is_byte_identical_to_xbar_run_and_repeats_hit_the_cache() {
    let work_dir = scratch("identity");
    let daemon = Daemon::start(&work_dir, &["--max-inflight", "2", "--job-shards", "2"]);

    // The reference bytes a client of `xbar run` would get.
    let reference = xbar()
        .args(["run", "table2", "--quick", "--circuits", "rd53", "--json"])
        .output()
        .expect("run xbar run");
    assert!(reference.status.success(), "{reference:?}");
    let reference = stdout_str(&reference);
    assert!(reference.contains("xbar-artifact/1"), "{reference}");

    let submit_args = ["table2", "--quick", "--circuits", "rd53", "--wait"];
    let cold = daemon.submit(&submit_args);
    assert!(cold.status.success(), "{cold:?}");
    assert_eq!(
        stdout_str(&cold),
        reference,
        "served artifact must be byte-identical to xbar run --json"
    );
    assert!(
        stderr_str(&cold).contains("cache miss"),
        "{}",
        stderr_str(&cold)
    );

    // Successful jobs clean their run directories up; only the cache
    // remains as durable state.
    let jobs_left = |dir: &PathBuf| {
        std::fs::read_dir(dir.join("jobs"))
            .map(|entries| entries.count())
            .unwrap_or(0)
    };
    assert_eq!(jobs_left(&work_dir), 0, "cold run dir cleaned after merge");

    let warm = daemon.submit(&submit_args);
    assert!(warm.status.success(), "{warm:?}");
    assert_eq!(stdout_str(&warm), reference, "cache hit serves same bytes");
    assert!(
        stderr_str(&warm).contains("cache hit"),
        "{}",
        stderr_str(&warm)
    );
    assert_eq!(jobs_left(&work_dir), 0, "a hit never creates a run dir");

    let stats = daemon.submit(&["--stats"]);
    assert!(stats.status.success(), "{stats:?}");
    let stats = stdout_str(&stats);
    assert!(stats.contains("\"cache_hits\": 1"), "{stats}");
    assert!(stats.contains("\"completed\": 1"), "{stats}");

    daemon.shutdown();
    let _ = std::fs::remove_dir_all(&work_dir);
}

#[test]
fn concurrent_submissions_never_exceed_the_worker_slot_bound() {
    let work_dir = scratch("slots");
    let conc_dir = work_dir.join("conc");
    // 2 worker slots, 1 shard per job, 1 live worker per job: at most two
    // shard workers can be alive at any instant, and every worker records
    // how many live siblings it sees.
    let daemon = Daemon::start(
        &work_dir,
        &[
            "--max-inflight",
            "2",
            "--job-shards",
            "1",
            "--job-max-inflight",
            "1",
            "--worker-arg",
            "--inject-slow-ms",
            "--worker-arg",
            "300",
            "--worker-arg",
            "--inject-concurrency-dir",
            "--worker-arg",
            conc_dir.to_str().expect("utf8 path"),
        ],
    );

    // Five concurrent clients with distinct seeds (distinct cache keys, so
    // nothing coalesces) all waiting for completion.
    let clients: Vec<_> = (0..5)
        .map(|i| {
            let addr = daemon.addr.clone();
            std::thread::spawn(move || {
                xbar()
                    .args(["submit", "--connect", &addr])
                    .args(["table2", "--samples", "6", "--circuits", "rd53", "--wait"])
                    .args(["--seed", &format!("90{i}")])
                    .output()
                    .expect("run xbar submit")
            })
        })
        .collect();
    for client in clients {
        let out = client.join().expect("client thread");
        assert!(out.status.success(), "{out:?}");
        assert!(stdout_str(&out).contains("xbar-artifact/1"));
    }

    let observed = std::fs::read_to_string(conc_dir.join("observed.txt"))
        .expect("workers recorded live counts");
    let max_live = observed
        .lines()
        .map(|line| line.trim().parse::<usize>().expect("count"))
        .max()
        .expect("at least one worker ran");
    assert!(
        (1..=2).contains(&max_live),
        "worker-slot bound violated: {max_live} live workers\n{observed}"
    );

    let stats = stdout_str(&daemon.submit(&["--stats"]));
    assert!(stats.contains("\"completed\": 5"), "{stats}");
    assert!(
        stats.contains("\"max_running_observed\": 2")
            || stats.contains("\"max_running_observed\": 1"),
        "{stats}"
    );

    daemon.shutdown();
    let _ = std::fs::remove_dir_all(&work_dir);
}

#[test]
fn daemon_killed_mid_job_resumes_from_checkpoints_after_restart() {
    let work_dir = scratch("resume");
    let submit_args = ["table2", "--samples", "30", "--circuits", "rd53"];

    // Where the job's first checkpoint will land: the job dir is named by
    // the cache key, the run dir inside it by the campaign identity —
    // both computed with the same library code the daemon uses.
    let exp = find_experiment("table2").expect("registered");
    let params = Params::parse(
        exp.extra_params(),
        submit_args[1..].iter().map(|s| (*s).to_owned()),
    )
    .expect("parses");
    let key = cache_key(exp, &params);
    let config = McConfig {
        samples: 30,
        seed: params.seed,
        defect_rate: params.defect_rate,
        stream: SampleStream::V1,
        model: DefectModelSpec::default(),
        circuits: vec!["rd53".to_owned()],
    };
    let job_dir = work_dir.join("jobs").join(&key.name);
    let first_partial = campaign_run_dir(&job_dir, &config, 4).join("partial-0.json");

    // Slow serialized shards so the kill lands mid-campaign.
    let mut daemon = Daemon::start(
        &work_dir,
        &[
            "--job-shards",
            "4",
            "--job-max-inflight",
            "1",
            "--worker-arg",
            "--inject-slow-ms",
            "--worker-arg",
            "400",
        ],
    );
    let accepted = daemon.submit(&submit_args);
    assert!(accepted.status.success(), "{accepted:?}");

    // Wait for the first complete checkpoint, then SIGTERM the daemon —
    // no graceful drain, exactly like a supervisor timeout or reboot.
    let deadline = Instant::now() + Duration::from_secs(60);
    loop {
        assert!(
            Instant::now() < deadline,
            "no checkpoint appeared at {}",
            first_partial.display()
        );
        if let Ok(text) = std::fs::read_to_string(&first_partial) {
            if ShardPartial::from_json(&text).is_ok() {
                break;
            }
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    let term = Command::new("kill")
        .args(["-TERM", &daemon.child.id().to_string()])
        .status()
        .expect("send SIGTERM");
    assert!(term.success());
    let _ = daemon.child.wait();
    assert!(
        first_partial.exists(),
        "checkpoints must survive the daemon's death"
    );

    // Restart on the same work dir (full speed this time) and resubmit:
    // the stale coordinator.lock of the dead daemon must be reclaimed,
    // the surviving partials reused, and the artifact still byte-equal to
    // a monolithic run.
    let daemon = Daemon::start(&work_dir, &["--job-shards", "4", "--job-max-inflight", "1"]);
    let resumed = daemon.submit(&[&submit_args[..], &["--wait"]].concat());
    assert!(resumed.status.success(), "{resumed:?}");
    let note = stderr_str(&resumed);
    let reused: usize = note
        .split("reused ")
        .nth(1)
        .and_then(|rest| rest.split(',').next())
        .and_then(|n| n.trim().parse().ok())
        .unwrap_or_else(|| panic!("no reused count in client note: {note}"));
    assert!(reused >= 1, "restart must reuse checkpoints: {note}");

    let reference = xbar()
        .args(["run"])
        .args(submit_args)
        .arg("--json")
        .output()
        .expect("run xbar run");
    assert_eq!(
        stdout_str(&resumed),
        stdout_str(&reference),
        "resumed artifact must be byte-identical to a monolithic run"
    );

    daemon.shutdown();
    let _ = std::fs::remove_dir_all(&work_dir);
}

#[test]
fn protocol_errors_and_usage_errors_have_distinct_exit_codes() {
    let work_dir = scratch("errors");
    let daemon = Daemon::start(&work_dir, &["--in-process-jobs"]);

    // Daemon-side errors: clean exit 1 with the daemon's message.
    let unknown = daemon.submit(&["frobnicate", "--wait"]);
    assert_eq!(unknown.status.code(), Some(1), "{unknown:?}");
    assert!(
        stderr_str(&unknown).contains("unknown experiment"),
        "{}",
        stderr_str(&unknown)
    );
    let no_job = daemon.submit(&["--status", "999"]);
    assert_eq!(no_job.status.code(), Some(1), "{no_job:?}");
    assert!(
        stderr_str(&no_job).contains("no such job"),
        "{}",
        stderr_str(&no_job)
    );
    let routed = daemon.submit(&["table2", "--json"]);
    assert_eq!(routed.status.code(), Some(1), "{routed:?}");
    assert!(
        stderr_str(&routed).contains("output routing"),
        "{}",
        stderr_str(&routed)
    );

    // Client-side usage errors: exit 2 before anything touches the wire.
    let usage = daemon.submit(&["--status", "soon"]);
    assert_eq!(usage.status.code(), Some(2), "{usage:?}");

    daemon.shutdown();
    let _ = std::fs::remove_dir_all(&work_dir);
}

#[test]
fn launcher_mode_serves_byte_identical_artifacts_with_host_attribution() {
    let work_dir = scratch("launcher");
    // A 2-host loopback fleet with one host dying on its first dispatch:
    // the executor must fail over, attribute the work, and still serve
    // the canonical bytes.
    let daemon = Daemon::start(
        &work_dir,
        &[
            "--job-shards",
            "3",
            "--launcher",
            "alpha*3,beta",
            "--launcher-fault",
            "beta=die@0",
        ],
    );

    let reference = xbar()
        .args(["run", "table2", "--quick", "--circuits", "rd53", "--json"])
        .output()
        .expect("run xbar run");
    assert!(reference.status.success(), "{reference:?}");

    let served = daemon.submit(&["table2", "--quick", "--circuits", "rd53", "--wait"]);
    assert!(served.status.success(), "{served:?}");
    assert_eq!(
        stdout_str(&served),
        stdout_str(&reference),
        "launcher-run artifact must be byte-identical to xbar run --json"
    );
    let note = stderr_str(&served);
    assert!(
        note.contains("hosts ") && note.contains("alpha:"),
        "the completion note must attribute dispatches to hosts: {note}"
    );

    let stats = stdout_str(&daemon.submit(&["--stats"]));
    assert!(
        stats.contains("\"shard_spawned\": 3"),
        "launcher flights must reach the stats counters: {stats}"
    );
    assert!(
        stats.contains("\"shard_retries\": 1"),
        "the dead host costs exactly one shard retry: {stats}"
    );

    daemon.shutdown();
    let _ = std::fs::remove_dir_all(&work_dir);
}

#[test]
fn waiting_client_survives_a_daemon_bounce_and_still_gets_identical_bytes() {
    let work_dir = scratch("bounce");
    let submit_args = ["table2", "--samples", "30", "--circuits", "rd53"];

    // Slow serialized shards so the kill lands mid-campaign (same
    // checkpoint bookkeeping as the resume test above).
    let exp = find_experiment("table2").expect("registered");
    let params = Params::parse(
        exp.extra_params(),
        submit_args[1..].iter().map(|s| (*s).to_owned()),
    )
    .expect("parses");
    let key = cache_key(exp, &params);
    let config = McConfig {
        samples: 30,
        seed: params.seed,
        defect_rate: params.defect_rate,
        stream: SampleStream::V1,
        model: DefectModelSpec::default(),
        circuits: vec!["rd53".to_owned()],
    };
    let job_dir = work_dir.join("jobs").join(&key.name);
    let first_partial = campaign_run_dir(&job_dir, &config, 4).join("partial-0.json");

    let mut daemon = Daemon::start(
        &work_dir,
        &[
            "--job-shards",
            "4",
            "--job-max-inflight",
            "1",
            "--worker-arg",
            "--inject-slow-ms",
            "--worker-arg",
            "400",
        ],
    );
    let addr = daemon.addr.clone();

    // A client waiting on the job while the daemon dies under it.
    let client = xbar()
        .args(["submit", "--connect", &addr])
        .args(submit_args)
        .arg("--wait")
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn waiting client");

    // Wait for the first complete checkpoint, then SIGKILL — a hard
    // bounce, no drain, no goodbye on the client's connection.
    let deadline = Instant::now() + Duration::from_secs(60);
    loop {
        assert!(
            Instant::now() < deadline,
            "no checkpoint appeared at {}",
            first_partial.display()
        );
        if let Ok(text) = std::fs::read_to_string(&first_partial) {
            if ShardPartial::from_json(&text).is_ok() {
                break;
            }
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    let kill = Command::new("kill")
        .args(["-KILL", &daemon.child.id().to_string()])
        .status()
        .expect("send SIGKILL");
    assert!(kill.success());
    let _ = daemon.child.wait();

    // Rebind the same address (retrying while the socket drains) at full
    // speed; the new daemon has fresh queue state, so the client must
    // resubmit and the resubmit must resume from the checkpoints.
    let daemon = {
        let rebind_deadline = Instant::now() + Duration::from_secs(8);
        loop {
            if let Some(daemon) = Daemon::try_start_at(
                &work_dir,
                &addr,
                &["--job-shards", "4", "--job-max-inflight", "1"],
            ) {
                break daemon;
            }
            assert!(
                Instant::now() < rebind_deadline,
                "could not rebind {addr} after the bounce"
            );
            std::thread::sleep(Duration::from_millis(100));
        }
    };

    let out = client.wait_with_output().expect("client output");
    assert!(
        out.status.success(),
        "client must survive the bounce: {out:?}"
    );
    let note = stderr_str(&out);
    assert!(
        note.contains("reconnecting to follow job"),
        "the client must notice the outage: {note}"
    );
    assert!(
        note.contains("resubmitted as job"),
        "the bounced daemon lost its queue; the client resubmits: {note}"
    );

    let reference = xbar()
        .args(["run"])
        .args(submit_args)
        .arg("--json")
        .output()
        .expect("run xbar run");
    assert_eq!(
        stdout_str(&out),
        stdout_str(&reference),
        "bytes delivered across the bounce must equal a monolithic run"
    );

    daemon.shutdown();
    let _ = std::fs::remove_dir_all(&work_dir);
}
