//! Ext-E: column redundancy vs stuck-at-closed defects: the complement of
//! Ext-A. Row spares cannot recover column kills (each extra row *adds*
//! column cross-section); spare columns with configurable routing can.

use crate::experiment::{
    spec, write_csv_if_requested, Artifact, ExpError, Experiment, ParamKind, ParamSpec, Params,
    Reporter,
};
use crate::shard::json::JsonValue;
use crate::table::{pct, Table};
use xbar_core::{column_redundancy_yield, FunctionMatrix, MapperKind};
use xbar_logic::bench_reg::find;

/// Ext-E as a registry [`Experiment`].
#[derive(Debug, Clone, Copy)]
pub struct ExtColumnRedundancyExperiment;

const EXT_E_PARAMS: &[ParamSpec] = &[
    spec(
        "circuit",
        ParamKind::Str,
        "rd53",
        "registry circuit whose function matrix is swept",
    ),
    spec(
        "stuck-closed-fraction",
        ParamKind::F64,
        "0.4",
        "fraction of defects that are stuck-closed",
    ),
];

const RATES: [f64; 4] = [0.005, 0.01, 0.02, 0.03];
const SPARE_GRID: [(usize, usize); 5] = [(0, 0), (4, 0), (0, 4), (4, 4), (8, 8)];

impl Experiment for ExtColumnRedundancyExperiment {
    fn name(&self) -> &'static str {
        "ext_column_redundancy"
    }

    fn description(&self) -> &'static str {
        "Ext-E: joint row+column redundancy under stuck-closed defects — the remedy \
         row spares alone cannot provide"
    }

    fn extra_params(&self) -> &'static [ParamSpec] {
        EXT_E_PARAMS
    }

    fn run(&self, params: &Params, reporter: &mut Reporter) -> Result<Artifact, ExpError> {
        let circuit = params.str("circuit");
        let info = find(circuit)
            .map_err(|_| ExpError::Usage(format!("--circuit: {circuit:?} is not registered")))?;
        let closed_fraction = params.f64("stuck-closed-fraction");
        if !(0.0..=1.0).contains(&closed_fraction) {
            return Err(ExpError::Usage(
                "--stuck-closed-fraction must be in [0, 1]".to_owned(),
            ));
        }
        let cover = info.mapping_cover(params.seed);
        let fm = FunctionMatrix::from_cover(&cover);
        reporter.line(format!(
            "circuit: {circuit} ({} rows x {} cols optimum), mixed defects: {:.0}% of defects \
             stuck-closed",
            fm.num_rows(),
            fm.num_cols(),
            closed_fraction * 100.0
        ));

        let headers: Vec<String> = std::iter::once("defect rate".to_owned())
            .chain(SPARE_GRID.iter().map(|(r, c)| format!("({r}r,{c}c)")))
            .collect();
        let header_refs: Vec<&str> = headers.iter().map(String::as_str).collect();
        let mut table = Table::new(
            "Ext-E — success rate % vs (spare rows, spare cols), EA + column routing",
            &header_refs,
        );
        let mut cells = Vec::new();
        for &rate in &RATES {
            let mut row = vec![format!("{:.1}%", rate * 100.0)];
            for &(sr, sc) in &SPARE_GRID {
                let y = column_redundancy_yield(
                    &fm,
                    rate,
                    closed_fraction,
                    sr,
                    sc,
                    params.samples,
                    MapperKind::Exact,
                    params.seed,
                );
                row.push(pct(y));
                cells.push((rate, sr, sc, y));
            }
            table.row(row);
        }
        reporter.table(&table);
        reporter.line("reading: under stuck-closed defects, spares of EITHER kind alone do not");
        reporter.line("help (extra rows add column-kill cross-section and vice versa); only joint");
        reporter.line("row+column redundancy recovers yield — quantifying the open problem the");
        reporter.line("paper's §VI identifies.");
        write_csv_if_requested(params, reporter, &table)?;

        let data = JsonValue::obj([
            ("circuit", JsonValue::str(circuit)),
            ("stuck_closed_fraction", JsonValue::f64(closed_fraction)),
            ("samples_per_cell", JsonValue::usize(params.samples)),
            (
                "cells",
                JsonValue::arr(cells.iter().map(|(rate, sr, sc, y)| {
                    JsonValue::obj([
                        ("defect_rate", JsonValue::f64(*rate)),
                        ("spare_rows", JsonValue::usize(*sr)),
                        ("spare_cols", JsonValue::usize(*sc)),
                        ("success_rate", JsonValue::f64(*y)),
                    ])
                })),
            ),
        ]);
        Ok(Artifact::new(data))
    }
}
