//! Fig. 7: naive vs defect-aware mapping of a 2-output function on a
//! defective 6×10 crossbar. The naive mapping is invalid (and computes the
//! wrong outputs when executed); the defect-aware mapping is valid and
//! functionally correct.

use crate::experiment::{Artifact, ExpError, Experiment, Params, Reporter};
use crate::shard::json::JsonValue;
use xbar_core::{
    map_hybrid, map_naive, program_two_level, CrossbarMatrix, FunctionMatrix, RowAssignment,
};
use xbar_device::{Crossbar, Defect};
use xbar_logic::{cube, Cover};

/// The Fig. 7/8 example family: O1 = x1x2 + x̄2x3, O2 = x̄1x̄3 + x2x3.
#[must_use]
pub fn fig7_cover() -> Cover {
    Cover::from_cubes(
        3,
        2,
        [
            cube("11- 10"),
            cube("-01 10"),
            cube("0-0 01"),
            cube("-11 01"),
        ],
    )
    .expect("valid cubes")
}

fn row_label(fm: &FunctionMatrix, index: usize) -> String {
    if index < fm.num_minterms() {
        format!("m{}", index + 1)
    } else {
        format!("O{}", index - fm.num_minterms() + 1)
    }
}

/// Fig. 7 as a registry [`Experiment`].
#[derive(Debug, Clone, Copy)]
pub struct Fig7Experiment;

impl Experiment for Fig7Experiment {
    fn name(&self) -> &'static str {
        "fig7"
    }

    fn description(&self) -> &'static str {
        "Fig. 7: naive vs defect-aware (HBA) mapping on a defective crossbar, \
         executed and functionally verified"
    }

    fn run(&self, _params: &Params, reporter: &mut Reporter) -> Result<Artifact, ExpError> {
        let cover = fig7_cover();
        let fm = FunctionMatrix::from_cover(&cover);

        // Defects placed where the identity mapping needs active switches
        // (the red diagonals of Fig. 7a).
        let mut xbar = Crossbar::new(6, 10);
        xbar.set_defect(0, 0, Defect::StuckOpen); // m1 needs x1 here
        xbar.set_defect(3, 7, Defect::StuckOpen); // m4 needs its O2 membership
        let cm = CrossbarMatrix::from_crossbar(&xbar);

        reporter.line("function matrix rows (x1 x2 x3 | x̄1 x̄2 x̄3 | O1 O2 | Ō1 Ō2):");
        for r in 0..fm.num_rows() {
            reporter.line(format!("  {:<3} {}", row_label(&fm, r), fm.row(r)));
        }
        reporter.line("crossbar matrix (1 = functional):");
        for r in 0..cm.num_rows() {
            reporter.line(format!("  H{}  {}", r + 1, cm.row(r)));
        }
        reporter.blank();

        let naive = map_naive(&fm, &cm);
        reporter.line(format!(
            "(a) naive mapping (identity, defects disregarded): {}",
            if naive.is_success() {
                "VALID"
            } else {
                "INVALID"
            }
        ));
        // Execute the naive placement anyway to show the functional corruption.
        let identity = RowAssignment {
            fm_to_cm: (0..fm.num_rows()).collect(),
        };
        let mut broken = program_two_level(&cover, &identity, xbar.clone())
            .map_err(|e| ExpError::Failed(format!("layout does not fit: {e:?}")))?;
        let naive_wrong = (0..8u64)
            .filter(|&a| broken.evaluate(a) != cover.evaluate(a))
            .count();
        reporter.line(format!(
            "    executed anyway: {naive_wrong}/8 input vectors produce wrong outputs"
        ));

        let hybrid = map_hybrid(&fm, &cm);
        let assignment = hybrid.assignment.ok_or_else(|| {
            ExpError::Failed("defect-aware mapping failed (unexpected for this defect map)".into())
        })?;
        reporter.line("(b) defect-aware mapping (HBA): VALID");
        for (i, &row) in assignment.fm_to_cm.iter().enumerate() {
            reporter.line(format!("    {} -> H{}", row_label(&fm, i), row + 1));
        }
        let mut machine = program_two_level(&cover, &assignment, xbar)
            .map_err(|e| ExpError::Failed(format!("layout does not fit: {e:?}")))?;
        let hybrid_wrong = (0..8u64)
            .filter(|&a| machine.evaluate(a) != cover.evaluate(a))
            .count();
        reporter.line(format!(
            "    executed: {hybrid_wrong}/8 input vectors wrong (must be 0)"
        ));
        if hybrid_wrong != 0 {
            return Err(ExpError::Failed(format!(
                "defect-aware mapping computed {hybrid_wrong}/8 inputs wrong"
            )));
        }

        let data = JsonValue::obj([
            ("naive_valid", JsonValue::Bool(naive.is_success())),
            ("naive_wrong_inputs", JsonValue::usize(naive_wrong)),
            ("hybrid_valid", JsonValue::Bool(true)),
            (
                "hybrid_assignment",
                JsonValue::arr(assignment.fm_to_cm.iter().map(|&r| JsonValue::usize(r))),
            ),
            ("hybrid_wrong_inputs", JsonValue::usize(hybrid_wrong)),
        ]);
        Ok(Artifact::new(data))
    }
}
