//! Figs. 2(b) and 4(b): the two-level and multi-level computation state
//! machines, demonstrated as executable phase traces on the worked example
//! function f = x0+x1+x2+x3 + x4·x5·x6·x7.

use crate::experiment::{Artifact, ExpError, Experiment, Params, Reporter};
use crate::shard::json::JsonValue;
use xbar_core::{
    map_naive, program_two_level, CrossbarMatrix, FunctionMatrix, MultiLevelDesign,
    MultiLevelMapping,
};
use xbar_device::Crossbar;
use xbar_logic::{cube, Cover};
use xbar_netlist::MapOptions;

/// The worked example function shared by Figs. 2–5.
#[must_use]
pub fn worked_example_cover() -> Cover {
    Cover::from_cubes(
        8,
        1,
        [
            cube("1------- 1"),
            cube("-1------ 1"),
            cube("--1----- 1"),
            cube("---1---- 1"),
            cube("----1111 1"),
        ],
    )
    .expect("valid cubes")
}

/// Figs. 2(b)/4(b) as a registry [`Experiment`].
#[derive(Debug, Clone, Copy)]
pub struct Fig2Fig4Experiment;

impl Experiment for Fig2Fig4Experiment {
    fn name(&self) -> &'static str {
        "fig2_fig4"
    }

    fn description(&self) -> &'static str {
        "Figs. 2(b)/4(b): two-level and multi-level computation state machines \
         as executable phase traces"
    }

    fn run(&self, _params: &Params, reporter: &mut Reporter) -> Result<Artifact, ExpError> {
        let cover = worked_example_cover();
        let input = 0b1111_0000u64; // x4..x7 = 1: only the AND minterm fires.

        reporter.line("== Fig. 2(b): two-level state machine ==");
        let fm = FunctionMatrix::from_cover(&cover);
        let cm = CrossbarMatrix::perfect(fm.num_rows(), fm.num_cols());
        let assignment = map_naive(&fm, &cm)
            .assignment
            .ok_or_else(|| ExpError::Failed("clean crossbar must map".to_owned()))?;
        let mut machine = program_two_level(&cover, &assignment, Crossbar::new(6, 18))
            .map_err(|e| ExpError::Failed(format!("two-level layout does not fit: {e:?}")))?;
        let trace = machine.trace(input);
        for (phase, text) in &trace.phases {
            reporter.line(format!("  {phase:>4}: {text}"));
        }
        reporter.line(format!(
            "  outputs f = {:?}, f̄ = {:?}",
            trace.outputs, trace.outputs_bar
        ));
        if trace.outputs != cover.evaluate(input) {
            return Err(ExpError::Failed(
                "two-level trace disagrees with the cover".to_owned(),
            ));
        }
        let two_level_phases = trace.phases.len();

        reporter.blank();
        reporter
            .line("== Fig. 4(b): multi-level state machine (CFM→EVM→CR per gate, nL < n loop) ==");
        let design = MultiLevelDesign::synthesize(&cover, &MapOptions::default());
        let mapping = MultiLevelMapping::identity(&design);
        let xbar = Crossbar::new(design.cost.rows, design.cost.cols);
        let mut ml = design
            .build_machine(xbar, &mapping)
            .map_err(|e| ExpError::Failed(format!("multi-level layout does not fit: {e:?}")))?;
        let ml_trace = ml.trace(input);
        for (phase, gate, text) in &ml_trace.phases {
            match gate {
                Some(g) => reporter.line(format!("  {phase:>4} (gate {g}): {text}")),
                None => reporter.line(format!("  {phase:>4}: {text}")),
            }
        }
        reporter.line(format!("  gate values = {:?}", ml_trace.gate_values));
        reporter.line(format!(
            "  outputs f = {:?}, f̄ = {:?}",
            ml_trace.outputs, ml_trace.outputs_bar
        ));
        if ml_trace.outputs != cover.evaluate(input) {
            return Err(ExpError::Failed(
                "multi-level trace disagrees with the cover".to_owned(),
            ));
        }
        reporter.blank();
        reporter.line(format!(
            "two-level: {two_level_phases} phases once; multi-level: CFM/EVM/CR × {} gates + INR/SO",
            design.network.gate_count()
        ));

        let bools = |v: &[bool]| JsonValue::arr(v.iter().map(|&b| JsonValue::Bool(b)));
        let data = JsonValue::obj([
            ("input_vector", JsonValue::u64(input)),
            ("two_level_phases", JsonValue::usize(two_level_phases)),
            ("two_level_outputs", bools(&trace.outputs)),
            (
                "multi_level_phases",
                JsonValue::usize(ml_trace.phases.len()),
            ),
            ("multi_level_outputs", bools(&ml_trace.outputs)),
            ("gate_values", bools(&ml_trace.gate_values)),
            ("nand_gates", JsonValue::usize(design.network.gate_count())),
            ("traces_match_cover", JsonValue::Bool(true)),
        ]);
        Ok(Artifact::new(data))
    }
}
