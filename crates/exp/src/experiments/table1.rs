//! Table I: two-level vs multi-level area of the benchmark circuits, for
//! both the original function and its negation.

use crate::experiment::{write_csv_if_requested, Artifact, ExpError, Experiment, Params, Reporter};
use crate::shard::json::JsonValue;
use crate::table::Table;
use xbar_core::TwoLevelLayout;
use xbar_logic::bench_reg::{exact_truth_table, registry, BenchmarkInfo, BenchmarkSource};
use xbar_logic::{minimize, Cover, MinimizeOptions};
use xbar_netlist::{
    cordic_analog, map_cover, t481_analog, MapOptions, MultiLevelCost, NetSignal, Network,
};

/// Areas for one circuit; `published_*` carry the paper's numbers.
#[derive(Debug, Clone, PartialEq)]
pub struct Table1Row {
    /// Circuit name.
    pub name: String,
    /// Our two-level area, original circuit.
    pub two_level: usize,
    /// Our multi-level area, original circuit.
    pub multi_level: usize,
    /// Our two-level area, negated circuit (`None` when the negation size
    /// is unknown and not synthesizable).
    pub two_level_neg: Option<usize>,
    /// Our multi-level area, negated circuit.
    pub multi_level_neg: Option<usize>,
    /// Published `(two-level, multi-level)` for the original circuit.
    pub published: (usize, usize),
    /// Published `(two-level, multi-level)` for the negation.
    pub published_neg: (usize, usize),
}

impl Table1Row {
    /// Whether our numbers agree with the paper on who wins (multi-level
    /// vs two-level) for the original circuit.
    #[must_use]
    pub fn winner_matches_paper(&self) -> bool {
        let ours_ml_wins = self.multi_level < self.two_level;
        let paper_ml_wins = self.published.1 < self.published.0;
        ours_ml_wins == paper_ml_wins
    }
}

/// Appends an inverter after every output of `net` (the multi-level
/// negation: one extra NAND per gate-driven output, free for literals).
#[must_use]
pub fn negated_network(net: &Network) -> Network {
    let mut out = Network::new(net.num_inputs(), net.num_outputs());
    for gate in net.gates() {
        out.add_gate(gate.fanins.clone());
    }
    for k in 0..net.num_outputs() {
        match net.output(k).expect("connected output") {
            NetSignal::Literal { var, positive } => {
                out.set_output(
                    k,
                    NetSignal::Literal {
                        var,
                        positive: !positive,
                    },
                );
            }
            gate @ NetSignal::Gate(_) => {
                let inv = out.add_gate(vec![gate]);
                out.set_output(k, inv);
            }
        }
    }
    out
}

fn multilevel_area_of_cover(cover: &Cover) -> usize {
    let options = MapOptions {
        factoring: true,
        max_fanin: Some(cover.num_inputs().max(2)),
    };
    MultiLevelCost::of(&map_cover(cover, &options)).area()
}

/// Negated cover of an exact benchmark: complement the truth table and
/// minimize.
fn exact_negated_cover(name: &str) -> Option<Cover> {
    let table = exact_truth_table(name)?.complemented();
    let on = table.minterm_cover();
    let dc = Cover::new(table.num_inputs(), table.num_outputs());
    Some(minimize(&on, &dc, MinimizeOptions::default()))
}

/// Runs one Table I row.
#[must_use]
pub fn run_circuit(info: &BenchmarkInfo, seed: u64) -> Table1Row {
    let published = info.twolevel_area.zip(info.multilevel_area);
    let (published_tl, published_ml) = published.expect("Table I circuits have published areas");

    let (two_level, multi_level, two_level_neg, multi_level_neg) = match info.source {
        BenchmarkSource::StructuralAnalog => {
            let net = match info.name {
                "t481" => t481_analog(),
                "cordic" => cordic_analog(),
                other => unreachable!("unknown analog {other}"),
            };
            // Two-level areas come from the published product counts (the
            // analog's own SOP differs; see DESIGN.md §4).
            let tl = info.formula_area();
            let tl_neg = info
                .neg_products
                .map(|p| TwoLevelLayout::new(info.inputs, info.outputs, p).area());
            let ml = MultiLevelCost::of(&net).area();
            let ml_neg = Some(MultiLevelCost::of(&negated_network(&net)).area());
            (tl, ml, tl_neg, ml_neg)
        }
        BenchmarkSource::Exact => {
            let cover = info.cover(seed);
            let tl = TwoLevelLayout::of_cover(&cover).area();
            let ml = multilevel_area_of_cover(&cover);
            let neg = exact_negated_cover(info.name);
            let tl_neg = neg.as_ref().map(|c| TwoLevelLayout::of_cover(c).area());
            let ml_neg = neg.as_ref().map(multilevel_area_of_cover);
            (tl, ml, tl_neg, ml_neg)
        }
        BenchmarkSource::Statistical => {
            let cover = info.cover(seed);
            let tl = TwoLevelLayout::of_cover(&cover).area();
            let ml = multilevel_area_of_cover(&cover);
            let neg_cover = info
                .neg_twin_spec()
                .map(|spec| spec.generate_seeded(seed ^ 0x5A5A));
            let tl_neg = neg_cover
                .as_ref()
                .map(|c| TwoLevelLayout::of_cover(c).area());
            let ml_neg = neg_cover.as_ref().map(multilevel_area_of_cover);
            (tl, ml, tl_neg, ml_neg)
        }
    };

    Table1Row {
        name: info.name.to_owned(),
        two_level,
        multi_level,
        two_level_neg,
        multi_level_neg,
        published: (published_tl.0, published_ml.0),
        published_neg: (published_tl.1, published_ml.1),
    }
}

/// Runs the whole Table I (the 9 circuits with published areas).
#[must_use]
pub fn run_table1(seed: u64) -> Vec<Table1Row> {
    registry()
        .iter()
        .filter(|info| info.twolevel_area.is_some() && info.multilevel_area.is_some())
        .map(|info| run_circuit(info, seed))
        .collect()
}

/// Table I as a registry [`Experiment`]: two-level vs multi-level area of
/// the benchmark circuits, original and negated.
#[derive(Debug, Clone, Copy)]
pub struct Table1Experiment;

impl Experiment for Table1Experiment {
    fn name(&self) -> &'static str {
        "table1"
    }

    fn description(&self) -> &'static str {
        "Table I: two-level vs multi-level crossbar area of benchmark circuits, \
         original and negated"
    }

    fn run(&self, params: &Params, reporter: &mut Reporter) -> Result<Artifact, ExpError> {
        let rows = run_table1(params.seed);

        let mut table = Table::new(
            "Table I — two-level vs multi-level area (original | negation)",
            &[
                "bench",
                "TL paper",
                "TL ours",
                "ML paper",
                "ML ours",
                "TLneg paper",
                "TLneg ours",
                "MLneg paper",
                "MLneg ours",
                "winner matches paper",
            ],
        );
        let mut agree = 0usize;
        for r in &rows {
            if r.winner_matches_paper() {
                agree += 1;
            }
            table.row([
                r.name.clone(),
                r.published.0.to_string(),
                r.two_level.to_string(),
                r.published.1.to_string(),
                r.multi_level.to_string(),
                r.published_neg.0.to_string(),
                r.two_level_neg.map_or("-".into(), |v| v.to_string()),
                r.published_neg.1.to_string(),
                r.multi_level_neg.map_or("-".into(), |v| v.to_string()),
                if r.winner_matches_paper() {
                    "yes"
                } else {
                    "NO"
                }
                .to_string(),
            ]);
        }
        reporter.table(&table);
        reporter.line(format!(
            "winner (two-level vs multi-level) agrees with the paper on {agree}/{} circuits",
            rows.len()
        ));
        reporter.line("paper's crossover circuits (multi-level wins): t481, cordic");
        write_csv_if_requested(params, reporter, &table)?;

        let opt_usize = |v: Option<usize>| v.map_or(JsonValue::Null, JsonValue::usize);
        let data = JsonValue::obj([
            (
                "circuits",
                JsonValue::arr(rows.iter().map(|r| {
                    JsonValue::obj([
                        ("name", JsonValue::str(r.name.clone())),
                        ("two_level", JsonValue::usize(r.two_level)),
                        ("multi_level", JsonValue::usize(r.multi_level)),
                        ("two_level_neg", opt_usize(r.two_level_neg)),
                        ("multi_level_neg", opt_usize(r.multi_level_neg)),
                        ("two_level_published", JsonValue::usize(r.published.0)),
                        ("multi_level_published", JsonValue::usize(r.published.1)),
                        (
                            "winner_matches_paper",
                            JsonValue::Bool(r.winner_matches_paper()),
                        ),
                    ])
                })),
            ),
            ("winners_agreeing", JsonValue::usize(agree)),
        ]);
        Ok(Artifact::new(data))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xbar_logic::bench_reg::find;

    #[test]
    fn t481_crossover_is_reproduced() {
        // The paper's headline Table I result: multi-level beats two-level
        // on t481 (5760 < 16388).
        let row = run_circuit(find("t481").expect("registered"), 1);
        assert_eq!(row.two_level, 16388);
        assert!(
            row.multi_level < row.two_level,
            "multi-level {} must beat two-level {}",
            row.multi_level,
            row.two_level
        );
        assert!(row.winner_matches_paper());
    }

    #[test]
    fn cordic_crossover_is_reproduced() {
        let row = run_circuit(find("cordic").expect("registered"), 1);
        assert_eq!(row.two_level, 45800);
        assert!(row.multi_level < row.two_level);
        assert!(row.winner_matches_paper());
    }

    #[test]
    fn multi_output_benchmark_keeps_two_level_ahead() {
        // misex1 (7 outputs): paper has ML 4836 ≫ TL 570.
        let row = run_circuit(find("misex1").expect("registered"), 1);
        assert_eq!(row.two_level, 570);
        assert!(row.multi_level > row.two_level);
        assert!(row.winner_matches_paper());
    }

    #[test]
    fn negated_network_inverts_outputs() {
        let net = t481_analog();
        let neg = negated_network(&net);
        for a in [0u64, 0xFFFF, 0xAAAA, 0x5A5A, 0x1234] {
            assert_eq!(net.evaluate(a)[0], !neg.evaluate(a)[0]);
        }
        assert_eq!(neg.gate_count(), net.gate_count() + 1);
    }

    #[test]
    fn rd53_negation_size_is_close_to_published() {
        // Published: P' = 32 (area 560). Our complement+minimize should be
        // within a small margin.
        let neg = exact_negated_cover("rd53").expect("exact");
        assert!(
            (29..=38).contains(&neg.len()),
            "rd53 negation has {} products, published 32",
            neg.len()
        );
    }

    #[test]
    fn full_table_has_nine_rows() {
        let rows = run_table1(3);
        assert_eq!(rows.len(), 9);
        // The two winners-by-multi-level in the paper are t481 and cordic;
        // our flow must agree on at least 7 of 9 winners.
        let agreeing = rows.iter().filter(|r| r.winner_matches_paper()).count();
        assert!(agreeing >= 7, "only {agreeing}/9 winners agree");
    }
}
