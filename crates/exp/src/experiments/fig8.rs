//! Fig. 8: function matrix, crossbar matrix, matching matrix and a
//! zero-cost Munkres assignment, printed end to end.

use super::fig7::fig7_cover;
use crate::experiment::{
    Artifact, ExpError, Experiment, ParamSpec, Params, Reporter, RNG_STREAM_PARAM,
};
use crate::shard::json::JsonValue;
use rand::rngs::StdRng;
use rand::SeedableRng;
use xbar_assign::{munkres, CostMatrix};
use xbar_core::{row_compatible, DefectSampler, FunctionMatrix};

/// Fig. 8 as a registry [`Experiment`].
#[derive(Debug, Clone, Copy)]
pub struct Fig8Experiment;

const FIG8_PARAMS: &[ParamSpec] = &[RNG_STREAM_PARAM];

impl Experiment for Fig8Experiment {
    fn name(&self) -> &'static str {
        "fig8"
    }

    fn description(&self) -> &'static str {
        "Fig. 8: matching matrix construction and a zero-cost Munkres assignment \
         on a sampled defect map"
    }

    fn extra_params(&self) -> &'static [ParamSpec] {
        FIG8_PARAMS
    }

    fn run(&self, params: &Params, reporter: &mut Reporter) -> Result<Artifact, ExpError> {
        let cover = fig7_cover();
        let fm = FunctionMatrix::from_cover(&cover);
        let mut rng = StdRng::seed_from_u64(params.seed);
        let cm = DefectSampler::new(params.sample_stream()).sample(
            fm.num_rows(),
            fm.num_cols(),
            params.defect_rate,
            &mut rng,
        );

        let label = |f: usize| {
            if f < fm.num_minterms() {
                format!("m{}", f + 1)
            } else {
                format!("O{}", f - fm.num_minterms() + 1)
            }
        };

        reporter.line("(a) function matrix FM (rows m1..m4, O1, O2):");
        for r in 0..fm.num_rows() {
            reporter.line(format!("    {}", fm.row(r)));
        }
        reporter.line("(b) crossbar matrix CM (defect map, 1 = functional):");
        for r in 0..cm.num_rows() {
            reporter.line(format!("    {}", cm.row(r)));
        }

        reporter.line("(c) matching matrix (0 = row matching possible):");
        let n = fm.num_rows();
        let matrix = CostMatrix::from_fn(n, cm.num_rows(), |f, c| {
            i64::from(!row_compatible(fm.row(f), cm.row(c)))
        });
        let mut header = String::from("        ");
        for c in 0..cm.num_rows() {
            header.push_str(&format!("H{} ", c + 1));
        }
        reporter.line(header);
        for f in 0..n {
            let mut line = format!("    {:<4}", label(f));
            for c in 0..cm.num_rows() {
                line.push_str(&format!(" {} ", matrix.get(f, c)));
            }
            reporter.line(line);
        }

        reporter.line("(d) Munkres assignment:");
        let solution = munkres(&matrix)
            .map_err(|e| ExpError::Failed(format!("munkres on a square matrix: {e:?}")))?;
        for (f, &c) in solution.assignment.iter().enumerate() {
            reporter.line(format!(
                "    {} -> H{} (cost {})",
                label(f),
                c + 1,
                matrix.get(f, c)
            ));
        }
        reporter.line(format!(
            "    total cost = {} → {}",
            solution.cost,
            if solution.cost == 0 {
                "Cost = 0 : Valid Mapping"
            } else {
                "no zero-cost assignment: mapping impossible on this defect map"
            }
        ));

        let data = JsonValue::obj([
            ("fm_rows", JsonValue::usize(fm.num_rows())),
            ("cm_rows", JsonValue::usize(cm.num_rows())),
            (
                "assignment",
                JsonValue::arr(solution.assignment.iter().map(|&c| JsonValue::usize(c))),
            ),
            ("total_cost", JsonValue::Num(solution.cost.to_string())),
            ("valid_mapping", JsonValue::Bool(solution.cost == 0)),
        ]);
        Ok(Artifact::new(data))
    }
}
