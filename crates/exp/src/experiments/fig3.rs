//! Fig. 3: two-level mapping of f = x1+x2+x3+x4+x5·x6·x7·x8 (paper
//! indexing; x0..x7 here): area cost 126 with the figure's extra inversion
//! row, inclusion ratio 31/126 ≈ 25%.

use super::fig2_fig4::worked_example_cover;
use crate::experiment::{write_csv_if_requested, Artifact, ExpError, Experiment, Params, Reporter};
use crate::shard::json::JsonValue;
use crate::table::Table;
use xbar_core::{map_naive, program_two_level, CrossbarMatrix, FunctionMatrix, TwoLevelLayout};
use xbar_device::Crossbar;

/// Fig. 3 as a registry [`Experiment`].
#[derive(Debug, Clone, Copy)]
pub struct Fig3Experiment;

impl Experiment for Fig3Experiment {
    fn name(&self) -> &'static str {
        "fig3"
    }

    fn description(&self) -> &'static str {
        "Fig. 3: two-level worked example — area cost, inclusion ratio, and an \
         exhaustive functional check on the simulated crossbar"
    }

    fn run(&self, params: &Params, reporter: &mut Reporter) -> Result<Artifact, ExpError> {
        let cover = worked_example_cover();

        let paper_layout = TwoLevelLayout::of_cover(&cover).with_inversion_row();
        let table_layout = TwoLevelLayout::of_cover(&cover);
        let switches = table_layout.active_switches(&cover) + 2 * cover.num_inputs();
        let inclusion_ratio = switches as f64 / paper_layout.area() as f64;

        let mut table = Table::new(
            "Fig. 3 — two-level design of f = x1+x2+x3+x4+x5x6x7x8",
            &["quantity", "paper", "ours"],
        );
        table.row(["horizontal lines", "7", &paper_layout.rows().to_string()]);
        table.row(["vertical lines", "18", &paper_layout.cols().to_string()]);
        table.row(["area cost", "126", &paper_layout.area().to_string()]);
        table.row([
            "area cost (Table I/II convention, P+K rows)".to_string(),
            "-".to_string(),
            table_layout.area().to_string(),
        ]);
        table.row([
            "memristors used (incl. input-latch diagonal)".to_string(),
            "31".to_string(),
            switches.to_string(),
        ]);
        table.row([
            "inclusion ratio".to_string(),
            "25%".to_string(),
            format!("{:.1}%", inclusion_ratio * 100.0),
        ]);
        reporter.table(&table);
        write_csv_if_requested(params, reporter, &table)?;

        // Execute the mapping on the simulated crossbar; verify exhaustively.
        let fm = FunctionMatrix::from_cover(&cover);
        let cm = CrossbarMatrix::perfect(fm.num_rows(), fm.num_cols());
        let assignment = map_naive(&fm, &cm)
            .assignment
            .ok_or_else(|| ExpError::Failed("clean crossbar must map".to_owned()))?;
        let mut machine = program_two_level(&cover, &assignment, Crossbar::new(6, 18))
            .map_err(|e| ExpError::Failed(format!("layout does not fit: {e:?}")))?;
        let mismatches = (0..256u64)
            .filter(|&a| machine.evaluate(a) != cover.evaluate(a))
            .count();
        reporter.line(format!(
            "functional check on the simulated crossbar: {mismatches} mismatches over 256 inputs"
        ));
        if mismatches != 0 {
            return Err(ExpError::Failed(format!(
                "{mismatches}/256 inputs computed the wrong outputs"
            )));
        }

        let data = JsonValue::obj([
            ("rows", JsonValue::usize(paper_layout.rows())),
            ("cols", JsonValue::usize(paper_layout.cols())),
            (
                "area_with_inversion_row",
                JsonValue::usize(paper_layout.area()),
            ),
            (
                "area_table_convention",
                JsonValue::usize(table_layout.area()),
            ),
            ("memristors_used", JsonValue::usize(switches)),
            ("inclusion_ratio", JsonValue::f64(inclusion_ratio)),
            ("exhaustive_mismatches", JsonValue::usize(mismatches)),
        ]);
        Ok(Artifact::new(data))
    }
}
