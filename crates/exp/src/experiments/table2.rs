//! Table II: success rate and runtime of HBA vs EA on optimum-size
//! crossbars with stuck-open defects.
//!
//! Aggregation runs through the mergeable accumulators in
//! [`xbar_core::stats`]: the single-process path folds the whole sample
//! range into one [`CircuitAccum`]; the process-sharded path (see
//! [`crate::shard`]) folds disjoint sub-ranges in worker processes and
//! merges the partials — by construction the integer statistics agree
//! bit-for-bit.

use crate::cli::ExpArgs;
use crate::experiment::{
    spec, write_csv_if_requested, Artifact, ExpError, Experiment, ParamKind, ParamSpec, Params,
    Reporter, CLUSTER_SIZE_PARAM, DEFECT_MODEL_PARAM, LINE_RATE_PARAM, RNG_STREAM_PARAM,
};
use crate::mc::monte_carlo_range_fold;
use crate::shard::json::JsonValue;
use crate::table::{pct, secs, Table};
use std::ops::Range;
use std::time::Instant;
use xbar_core::stats::{Moments, SuccessCount};
use xbar_core::{CrossbarMatrix, DefectSampler, FunctionMatrix, MatchEngine, TwoLevelLayout};
use xbar_logic::bench_reg::{find, registry, BenchmarkInfo};
use xbar_logic::Cover;

/// Measured results for one circuit, paired with the paper's numbers.
#[derive(Debug, Clone, PartialEq)]
pub struct Table2Row {
    /// Circuit name.
    pub name: String,
    /// Inputs.
    pub inputs: usize,
    /// Outputs.
    pub outputs: usize,
    /// Product count of the cover we mapped (published for twins, our
    /// minimizer's for exact circuits).
    pub products: usize,
    /// Our crossbar area `(P+O)(2I+2O)`.
    pub area: usize,
    /// The paper's published area.
    pub area_published: usize,
    /// Our inclusion ratio (0..1).
    pub inclusion_ratio: f64,
    /// Published inclusion ratio (0..1), when given.
    pub ir_published: Option<f64>,
    /// Measured HBA success rate (0..1).
    pub hba_success: f64,
    /// Mean HBA runtime per mapping attempt (seconds).
    pub hba_time: f64,
    /// Measured EA success rate (0..1).
    pub ea_success: f64,
    /// Mean EA runtime per attempt (seconds).
    pub ea_time: f64,
    /// Published HBA `(success fraction, seconds)`.
    pub hba_published: Option<(f64, f64)>,
    /// Published EA `(success fraction, seconds)`.
    pub ea_published: Option<(f64, f64)>,
}

/// Mergeable per-circuit fold state for the Table II statistics: success
/// counters (integer, merge-exact) plus runtime moments (Welford, merged
/// with Chan's combination).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct CircuitAccum {
    /// HBA success counter.
    pub hba: SuccessCount,
    /// EA success counter.
    pub ea: SuccessCount,
    /// HBA per-attempt runtime moments (seconds).
    pub hba_time: Moments,
    /// EA per-attempt runtime moments (seconds).
    pub ea_time: Moments,
}

impl CircuitAccum {
    /// Empty accumulator.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Folds one Monte Carlo trial in.
    pub fn push(&mut self, hba_ok: bool, hba_secs: f64, ea_ok: bool, ea_secs: f64) {
        self.hba.push(hba_ok);
        self.ea.push(ea_ok);
        self.hba_time.push(hba_secs);
        self.ea_time.push(ea_secs);
    }

    /// Merges an accumulator folded over a disjoint sample range.
    pub fn merge(&mut self, other: &Self) {
        self.hba.merge(&other.hba);
        self.ea.merge(&other.ea);
        self.hba_time.merge(&other.hba_time);
        self.ea_time.merge(&other.ea_time);
    }

    /// Trials folded in.
    #[must_use]
    pub fn samples(&self) -> u64 {
        self.hba.samples
    }
}

/// The Monte Carlo seed Table II derives from the experiment seed (kept
/// stable since the first implementation so published statistics never
/// drift; shard workers must use the same derivation).
#[must_use]
pub fn mc_seed(experiment_seed: u64) -> u64 {
    experiment_seed ^ 0xBEEF
}

/// Folds the Table II Monte Carlo trials with **global** sample indices
/// `range` for one circuit — the shard-capable core of [`run_circuit`].
/// The full sample count never appears here: per-sample seeds depend only
/// on `(mc_seed(args.seed), index)`, so any contiguous partition of
/// `0..samples` merges back to the monolithic accumulator.
#[must_use]
pub fn run_circuit_range(
    info: &BenchmarkInfo,
    args: &ExpArgs,
    range: Range<usize>,
) -> CircuitAccum {
    run_circuit_range_on(&info.mapping_cover(args.seed), args, range)
}

/// [`run_circuit_range`] with the cover already minimized — lets callers
/// that need both the accumulator and the layout pay for
/// [`BenchmarkInfo::mapping_cover`] (a potentially full minimization) once.
#[must_use]
pub fn run_circuit_range_on(cover: &Cover, args: &ExpArgs, range: Range<usize>) -> CircuitAccum {
    let fm = FunctionMatrix::from_cover(cover);
    let rows = fm.num_rows();
    let cols = fm.num_cols();

    // Each worker owns one engine (FM structure cached up front via
    // `prepare_fm` — the per-campaign half of the bitplane adjacency
    // build) plus one crossbar matrix it resamples per trial: the hot
    // loop performs zero heap allocations. Sampling goes through the
    // campaign's stream-selected [`DefectSampler`]: under V1 it consumes
    // the per-sample RNG exactly like `sample_stuck_open`, keeping the
    // statistics bit-identical to the pre-engine implementation; V2 pins
    // its own golden values. Non-default spatial models dispatch through
    // the same handle, so the i.i.d. hot path stays untouched. HBA and EA
    // stay
    // separate calls (each paying its own adjacency build) because this
    // table reports per-algorithm runtime; success-only loops should
    // prefer `hybrid_and_exact_success`. Trials fold straight into
    // per-worker accumulators (nothing per-sample is materialized, so
    // memory stays flat at any sample count); success counters are
    // merge-exact, so the worker count never shows in the statistics.
    let sampler = DefectSampler::with_model(args.stream, args.model);
    monte_carlo_range_fold(
        range,
        mc_seed(args.seed),
        || {
            let mut engine = MatchEngine::new();
            engine.prepare_fm(&fm);
            (engine, CrossbarMatrix::perfect(rows, cols))
        },
        CircuitAccum::new,
        |accum, (engine, cm), _, seed| {
            let mut rng: rand::rngs::StdRng = rand::SeedableRng::seed_from_u64(seed);
            sampler.resample(cm, args.defect_rate, &mut rng);
            let t0 = Instant::now();
            let (hba_ok, _) = engine.hybrid_success(&fm, cm);
            let hba_secs = t0.elapsed().as_secs_f64();
            let t1 = Instant::now();
            let (ea_ok, _) = engine.exact_success(&fm, cm);
            let ea_secs = t1.elapsed().as_secs_f64();
            debug_assert!(!hba_ok || ea_ok, "HBA success must imply EA success");
            accum.push(hba_ok, hba_secs, ea_ok, ea_secs);
        },
        |accum, piece| accum.merge(&piece),
    )
}

/// Builds the report row for one circuit from its (possibly merged)
/// accumulator — the single aggregation path shared by the monolithic and
/// sharded runs.
#[must_use]
pub fn row_from_accum(info: &BenchmarkInfo, cover: &Cover, accum: &CircuitAccum) -> Table2Row {
    let layout = TwoLevelLayout::of_cover(cover);
    Table2Row {
        name: info.name.to_owned(),
        inputs: info.inputs,
        outputs: cover.num_outputs(),
        products: cover.len(),
        area: layout.area(),
        area_published: info.area,
        inclusion_ratio: layout.inclusion_ratio(cover),
        ir_published: info.ir_percent.map(|p| p / 100.0),
        hba_success: accum.hba.rate(),
        hba_time: accum.hba_time.mean(),
        ea_success: accum.ea.rate(),
        ea_time: accum.ea_time.mean(),
        hba_published: info.hba.map(|(p, t)| (p / 100.0, t)),
        ea_published: info.ea.map(|(p, t)| (p / 100.0, t)),
    }
}

/// Runs the Table II experiment for one circuit.
#[must_use]
pub fn run_circuit(info: &BenchmarkInfo, args: &ExpArgs) -> Table2Row {
    let cover = info.mapping_cover(args.seed);
    let accum = run_circuit_range_on(&cover, args, 0..args.samples);
    row_from_accum(info, &cover, &accum)
}

/// Runs the full Table II (all 16 circuits, or a named subset).
#[must_use]
pub fn run_table2(args: &ExpArgs, subset: Option<&[&str]>) -> Vec<Table2Row> {
    registry()
        .iter()
        .filter(|info| info.hba.is_some())
        .filter(|info| subset.is_none_or(|names| names.contains(&info.name)))
        .map(|info| run_circuit(info, args))
        .collect()
}

/// The circuits eligible for Table II (those with published HBA numbers),
/// in registry order — the default circuit set of the sharded runner.
#[must_use]
pub fn table2_circuit_names() -> Vec<String> {
    registry()
        .iter()
        .filter(|info| info.hba.is_some())
        .map(|info| info.name.to_owned())
        .collect()
}

/// Table II as a registry [`Experiment`]: HBA vs EA success rate and
/// runtime on optimum-size crossbars with stuck-open defects.
#[derive(Debug, Clone, Copy)]
pub struct Table2Experiment;

const TABLE2_PARAMS: &[ParamSpec] = &[
    spec(
        "circuits",
        ParamKind::StrList,
        "all",
        "comma-separated registry subset in run order, or `all` for the full Table II set",
    ),
    RNG_STREAM_PARAM,
    DEFECT_MODEL_PARAM,
    CLUSTER_SIZE_PARAM,
    LINE_RATE_PARAM,
];

/// Resolves a `--circuits` list (`all` or a subset) against the Table II
/// circuit set. A subset keeps the **user's order** — the same contract
/// as `xbar mc coordinate --circuits` — so the artifact's circuit array
/// lines up with the request.
///
/// # Errors
///
/// Names the first circuit that is not Table II-eligible or is repeated.
pub fn resolve_circuit_subset(selector: &[String]) -> Result<Vec<String>, ExpError> {
    let eligible = table2_circuit_names();
    if selector == ["all"] {
        return Ok(eligible);
    }
    for (i, name) in selector.iter().enumerate() {
        if !eligible.iter().any(|e| e == name) {
            return Err(ExpError::Usage(format!(
                "--circuits: {name:?} is not a Table II circuit (see `xbar describe table2`)"
            )));
        }
        if selector[..i].contains(name) {
            return Err(ExpError::Usage(format!(
                "--circuits: {name:?} listed twice"
            )));
        }
    }
    Ok(selector.to_vec())
}

impl Experiment for Table2Experiment {
    fn name(&self) -> &'static str {
        "table2"
    }

    fn description(&self) -> &'static str {
        "Table II: HBA vs EA success rate and runtime on optimum-size crossbars \
         with stuck-open defects"
    }

    fn extra_params(&self) -> &'static [ParamSpec] {
        TABLE2_PARAMS
    }

    fn run(&self, params: &Params, reporter: &mut Reporter) -> Result<Artifact, ExpError> {
        let circuits = resolve_circuit_subset(params.list("circuits"))?;
        let args = params.exp_args();
        reporter.line(format!(
            "running {} samples/circuit at defect rate {:.0}% (seed {})...",
            args.samples,
            args.defect_rate * 100.0,
            args.seed
        ));
        // Fold per circuit keeping the integer accumulators: the artifact
        // carries exact success counts, not rates reconstructed from f64s.
        let mut rows = Vec::with_capacity(circuits.len());
        let mut accums = Vec::with_capacity(circuits.len());
        for name in &circuits {
            let info = find(name).expect("subset resolved against the registry");
            let cover = info.mapping_cover(args.seed);
            let accum = run_circuit_range_on(&cover, &args, 0..args.samples);
            rows.push(row_from_accum(info, &cover, &accum));
            accums.push(accum);
        }

        let mut table = Table::new(
            "Table II — HBA vs EA on optimum-size crossbars",
            &[
                "name",
                "I",
                "O",
                "P",
                "area",
                "area paper",
                "IR%",
                "IR% paper",
                "HBA Psucc%",
                "paper",
                "HBA time s",
                "paper",
                "EA Psucc%",
                "paper",
                "EA time s",
                "paper",
            ],
        );
        for r in &rows {
            table.row([
                r.name.clone(),
                r.inputs.to_string(),
                r.outputs.to_string(),
                r.products.to_string(),
                r.area.to_string(),
                r.area_published.to_string(),
                pct(r.inclusion_ratio),
                r.ir_published.map_or("-".into(), pct),
                pct(r.hba_success),
                r.hba_published.map_or("-".into(), |(p, _)| pct(p)),
                secs(r.hba_time),
                r.hba_published.map_or("-".into(), |(_, t)| secs(t)),
                pct(r.ea_success),
                r.ea_published.map_or("-".into(), |(p, _)| pct(p)),
                secs(r.ea_time),
                r.ea_published.map_or("-".into(), |(_, t)| secs(t)),
            ]);
        }
        reporter.table(&table);

        let max_speedup = rows
            .iter()
            .filter(|r| r.hba_time > 0.0)
            .map(|r| r.ea_time / r.hba_time)
            .fold(0.0, f64::max);
        let worst_gap = rows
            .iter()
            .map(|r| r.ea_success - r.hba_success)
            .fold(0.0, f64::max);
        reporter.line(format!(
            "HBA vs EA runtime: up to {max_speedup:.0}x faster \
             (paper: 1–2 orders of magnitude on large circuits)"
        ));
        reporter.line(format!(
            "largest EA−HBA success gap: {:.0} percentage points (paper: up to ~15)",
            worst_gap * 100.0
        ));
        write_csv_if_requested(params, reporter, &table)?;

        Ok(Artifact::new(table2_artifact_data(&rows, &accums)))
    }
}

/// Builds the Table II artifact `data` block from report rows and their
/// accumulators: seed-deterministic statistics only (success counters are
/// integers, layout quantities are exact) — wall-clock runtimes stay in
/// the human table so the document is byte-identical across hosts, runs,
/// and shard layouts. Shared by [`Table2Experiment::run`] and the serving
/// daemon, which rebuilds the identical artifact from coordinator-merged
/// accumulators (the merge is integer-exact, so the bytes cannot differ).
///
/// # Panics
///
/// Panics when `rows` and `accums` disagree in length — they must come
/// from the same per-circuit fold.
#[must_use]
pub fn table2_artifact_data(rows: &[Table2Row], accums: &[CircuitAccum]) -> JsonValue {
    assert_eq!(rows.len(), accums.len(), "one accumulator per row");
    JsonValue::obj([(
        "circuits",
        JsonValue::arr(rows.iter().zip(accums).map(|(r, accum)| {
            JsonValue::obj([
                ("name", JsonValue::str(r.name.clone())),
                ("inputs", JsonValue::usize(r.inputs)),
                ("outputs", JsonValue::usize(r.outputs)),
                ("products", JsonValue::usize(r.products)),
                ("area", JsonValue::usize(r.area)),
                ("area_published", JsonValue::usize(r.area_published)),
                ("inclusion_ratio", JsonValue::f64(r.inclusion_ratio)),
                ("samples", JsonValue::u64(accum.samples())),
                ("hba_successes", JsonValue::u64(accum.hba.successes)),
                ("hba_success_rate", JsonValue::f64(accum.hba.rate())),
                ("ea_successes", JsonValue::u64(accum.ea.successes)),
                ("ea_success_rate", JsonValue::f64(accum.ea.rate())),
            ])
        })),
    )])
}

/// Rebuilds the rendered canonical Table II artifact from merged
/// per-circuit accumulators — the one reconstruction path shared by the
/// serving daemon and the multi-host launcher, so neither can drift from
/// the other (or from `xbar run table2`, whose artifact these bytes must
/// equal: the merge is integer-exact and the layout quantities are
/// seed-deterministic).
///
/// # Errors
///
/// Reports a circuit name missing from the benchmark registry.
pub fn table2_artifact_from_accums(
    circuits: &[(String, CircuitAccum)],
    seed: u64,
    exp: &dyn Experiment,
    params: &Params,
) -> Result<String, String> {
    let mut rows = Vec::with_capacity(circuits.len());
    let mut accums = Vec::with_capacity(circuits.len());
    for (name, accum) in circuits {
        let info = find(name).map_err(|e| format!("registry lookup for {name:?}: {e}"))?;
        let cover = info.mapping_cover(seed);
        rows.push(row_from_accum(info, &cover, accum));
        accums.push(*accum);
    }
    Ok(Artifact::new(table2_artifact_data(&rows, &accums)).render(exp, params))
}

#[cfg(test)]
mod tests {
    use super::*;
    use xbar_logic::bench_reg::find;

    fn quick_args() -> ExpArgs {
        ExpArgs {
            samples: 40,
            seed: 5,
            defect_rate: 0.10,
            ..ExpArgs::default()
        }
    }

    #[test]
    fn small_easy_circuit_maps_nearly_always() {
        // misex1: published 100%/100% at 10% defects.
        let row = run_circuit(find("misex1").expect("registered"), &quick_args());
        assert_eq!(row.area, 570);
        assert!(row.hba_success >= 0.9, "hba {}", row.hba_success);
        assert!(row.ea_success >= row.hba_success);
    }

    #[test]
    fn rd73_shows_the_hba_ea_gap_direction() {
        // Published: HBA 78%, EA 92% — EA must not be below HBA.
        let row = run_circuit(find("rd73").expect("registered"), &quick_args());
        assert!(row.ea_success >= row.hba_success);
        assert_eq!(row.area_published, 2600);
        assert_eq!(row.products, 127, "exact rd73 minimizes to 127 products");
    }

    #[test]
    fn hba_is_faster_than_ea_on_a_large_circuit() {
        // Wall-clock comparisons are noisy on shared CI runners: a single
        // scheduler hiccup during the (shorter) HBA pass can flip one
        // measurement. The claim under test is only that HBA is not slower
        // than EA at ex1010's size, so accept a generous ratio and retry a
        // few times — a genuine regression fails all attempts, while a
        // one-off stall passes on the next.
        let args = ExpArgs {
            samples: 5,
            ..quick_args()
        };
        let mut observed = Vec::new();
        for _ in 0..3 {
            let row = run_circuit(find("ex1010").expect("registered"), &args);
            if row.hba_time < row.ea_time * 1.5 {
                return;
            }
            observed.push((row.hba_time, row.ea_time));
        }
        panic!("hba consistently slower than 1.5x ea across retries: {observed:?}");
    }

    #[test]
    fn subset_filter_works() {
        let rows = run_table2(
            &ExpArgs {
                samples: 5,
                ..quick_args()
            },
            Some(&["rd53", "bw"]),
        );
        let names: Vec<&str> = rows.iter().map(|r| r.name.as_str()).collect();
        assert_eq!(names, ["rd53", "bw"]);
    }

    #[test]
    fn sharded_ranges_merge_to_the_monolithic_accumulator_counts() {
        let info = find("rd53").expect("registered");
        let args = ExpArgs {
            samples: 30,
            ..quick_args()
        };
        let whole = run_circuit_range(info, &args, 0..30);
        let mut merged = CircuitAccum::new();
        for pair in [0usize, 7, 19, 30].windows(2) {
            merged.merge(&run_circuit_range(info, &args, pair[0]..pair[1]));
        }
        // Success decisions are seed-deterministic: integer-exact match.
        assert_eq!(merged.hba, whole.hba);
        assert_eq!(merged.ea, whole.ea);
        // Runtimes are wall-clock, but their counts must still line up.
        assert_eq!(merged.hba_time.count, whole.hba_time.count);
        assert_eq!(merged.ea_time.count, whole.ea_time.count);
    }

    #[test]
    fn table2_circuit_names_match_the_registry_filter() {
        let names = table2_circuit_names();
        assert!(names.iter().any(|n| n == "rd53"));
        assert_eq!(
            names.len(),
            registry().iter().filter(|i| i.hba.is_some()).count()
        );
    }
}
