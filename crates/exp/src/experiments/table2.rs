//! Table II: success rate and runtime of HBA vs EA on optimum-size
//! crossbars with stuck-open defects.

use crate::cli::ExpArgs;
use crate::mc::{mean, monte_carlo_with};
use std::time::Instant;
use xbar_core::{CrossbarMatrix, FunctionMatrix, MatchEngine, TwoLevelLayout};
use xbar_logic::bench_reg::{registry, BenchmarkInfo};

/// Measured results for one circuit, paired with the paper's numbers.
#[derive(Debug, Clone, PartialEq)]
pub struct Table2Row {
    /// Circuit name.
    pub name: String,
    /// Inputs.
    pub inputs: usize,
    /// Outputs.
    pub outputs: usize,
    /// Product count of the cover we mapped (published for twins, our
    /// minimizer's for exact circuits).
    pub products: usize,
    /// Our crossbar area `(P+O)(2I+2O)`.
    pub area: usize,
    /// The paper's published area.
    pub area_published: usize,
    /// Our inclusion ratio (0..1).
    pub inclusion_ratio: f64,
    /// Published inclusion ratio (0..1), when given.
    pub ir_published: Option<f64>,
    /// Measured HBA success rate (0..1).
    pub hba_success: f64,
    /// Mean HBA runtime per mapping attempt (seconds).
    pub hba_time: f64,
    /// Measured EA success rate (0..1).
    pub ea_success: f64,
    /// Mean EA runtime per attempt (seconds).
    pub ea_time: f64,
    /// Published HBA `(success fraction, seconds)`.
    pub hba_published: Option<(f64, f64)>,
    /// Published EA `(success fraction, seconds)`.
    pub ea_published: Option<(f64, f64)>,
}

/// Per-sample result.
struct Sample {
    hba_ok: bool,
    hba_secs: f64,
    ea_ok: bool,
    ea_secs: f64,
}

/// Runs the Table II experiment for one circuit.
#[must_use]
pub fn run_circuit(info: &BenchmarkInfo, args: &ExpArgs) -> Table2Row {
    let cover = info.mapping_cover(args.seed);
    let fm = FunctionMatrix::from_cover(&cover);
    let layout = TwoLevelLayout::of_cover(&cover);
    let rows = fm.num_rows();
    let cols = fm.num_cols();

    // Each worker owns one engine plus one crossbar matrix and resamples it
    // per trial: the hot loop performs zero heap allocations. Sampling
    // consumes the per-sample RNG exactly like `sample_stuck_open`, so the
    // statistics are bit-identical to the pre-engine implementation. HBA
    // and EA stay separate calls (each paying its own adjacency build)
    // because this table reports per-algorithm runtime; success-only loops
    // should prefer `hybrid_and_exact_success`.
    let samples = monte_carlo_with(
        args.samples,
        args.seed ^ 0xBEEF,
        || (MatchEngine::new(), CrossbarMatrix::perfect(rows, cols)),
        |(engine, cm), _, seed| {
            let mut rng: rand::rngs::StdRng = rand::SeedableRng::seed_from_u64(seed);
            cm.resample_stuck_open(args.defect_rate, &mut rng);
            let t0 = Instant::now();
            let (hba_ok, _) = engine.hybrid_success(&fm, cm);
            let hba_secs = t0.elapsed().as_secs_f64();
            let t1 = Instant::now();
            let (ea_ok, _) = engine.exact_success(&fm, cm);
            let ea_secs = t1.elapsed().as_secs_f64();
            debug_assert!(!hba_ok || ea_ok, "HBA success must imply EA success");
            Sample {
                hba_ok,
                hba_secs,
                ea_ok,
                ea_secs,
            }
        },
    );

    let frac = |ok: &dyn Fn(&Sample) -> bool| {
        samples.iter().filter(|s| ok(s)).count() as f64 / samples.len().max(1) as f64
    };
    Table2Row {
        name: info.name.to_owned(),
        inputs: info.inputs,
        outputs: cover.num_outputs(),
        products: cover.len(),
        area: layout.area(),
        area_published: info.area,
        inclusion_ratio: layout.inclusion_ratio(&cover),
        ir_published: info.ir_percent.map(|p| p / 100.0),
        hba_success: frac(&|s: &Sample| s.hba_ok),
        hba_time: mean(&samples.iter().map(|s| s.hba_secs).collect::<Vec<_>>()),
        ea_success: frac(&|s: &Sample| s.ea_ok),
        ea_time: mean(&samples.iter().map(|s| s.ea_secs).collect::<Vec<_>>()),
        hba_published: info.hba.map(|(p, t)| (p / 100.0, t)),
        ea_published: info.ea.map(|(p, t)| (p / 100.0, t)),
    }
}

/// Runs the full Table II (all 16 circuits, or a named subset).
#[must_use]
pub fn run_table2(args: &ExpArgs, subset: Option<&[&str]>) -> Vec<Table2Row> {
    registry()
        .iter()
        .filter(|info| info.hba.is_some())
        .filter(|info| subset.is_none_or(|names| names.contains(&info.name)))
        .map(|info| run_circuit(info, args))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use xbar_logic::bench_reg::find;

    fn quick_args() -> ExpArgs {
        ExpArgs {
            samples: 40,
            seed: 5,
            defect_rate: 0.10,
            csv: None,
        }
    }

    #[test]
    fn small_easy_circuit_maps_nearly_always() {
        // misex1: published 100%/100% at 10% defects.
        let row = run_circuit(find("misex1").expect("registered"), &quick_args());
        assert_eq!(row.area, 570);
        assert!(row.hba_success >= 0.9, "hba {}", row.hba_success);
        assert!(row.ea_success >= row.hba_success);
    }

    #[test]
    fn rd73_shows_the_hba_ea_gap_direction() {
        // Published: HBA 78%, EA 92% — EA must not be below HBA.
        let row = run_circuit(find("rd73").expect("registered"), &quick_args());
        assert!(row.ea_success >= row.hba_success);
        assert_eq!(row.area_published, 2600);
        assert_eq!(row.products, 127, "exact rd73 minimizes to 127 products");
    }

    #[test]
    fn hba_is_faster_than_ea_on_a_large_circuit() {
        let args = ExpArgs {
            samples: 5,
            ..quick_args()
        };
        let row = run_circuit(find("ex1010").expect("registered"), &args);
        assert!(
            row.hba_time < row.ea_time,
            "hba {} !< ea {}",
            row.hba_time,
            row.ea_time
        );
    }

    #[test]
    fn subset_filter_works() {
        let rows = run_table2(
            &ExpArgs {
                samples: 5,
                ..quick_args()
            },
            Some(&["rd53", "bw"]),
        );
        let names: Vec<&str> = rows.iter().map(|r| r.name.as_str()).collect();
        assert_eq!(names, ["rd53", "bw"]);
    }
}
