//! Fig. 5: multi-level mapping of the worked example function: a 3×19
//! crossbar (the paper's text says "area cost is 59"; 3 × 19 = 57 — see
//! DESIGN.md).

use super::fig2_fig4::worked_example_cover;
use crate::experiment::{write_csv_if_requested, Artifact, ExpError, Experiment, Params, Reporter};
use crate::shard::json::JsonValue;
use crate::table::Table;
use xbar_core::{MultiLevelDesign, MultiLevelMapping};
use xbar_device::Crossbar;
use xbar_netlist::MapOptions;

/// Fig. 5 as a registry [`Experiment`].
#[derive(Debug, Clone, Copy)]
pub struct Fig5Experiment;

impl Experiment for Fig5Experiment {
    fn name(&self) -> &'static str {
        "fig5"
    }

    fn description(&self) -> &'static str {
        "Fig. 5: multi-level worked example — NAND network synthesis, area, and an \
         exhaustive functional check"
    }

    fn run(&self, params: &Params, reporter: &mut Reporter) -> Result<Artifact, ExpError> {
        let cover = worked_example_cover();
        let design = MultiLevelDesign::synthesize(&cover, &MapOptions::default());

        let mut table = Table::new(
            "Fig. 5 — multi-level design of f = x1+x2+x3+x4+x5x6x7x8",
            &["quantity", "paper", "ours"],
        );
        table.row(["horizontal lines", "3", &design.cost.rows.to_string()]);
        table.row(["vertical lines", "19", &design.cost.cols.to_string()]);
        table.row([
            "area cost".to_string(),
            "59 (text; 3×19 = 57)".to_string(),
            design.area().to_string(),
        ]);
        table.row(["NAND gates", "2", &design.network.gate_count().to_string()]);
        table.row([
            "multi-level connections".to_string(),
            "1".to_string(),
            design.cost.connections.to_string(),
        ]);
        table.row([
            "vs two-level area".to_string(),
            "126".to_string(),
            "126 (with inversion row)".to_string(),
        ]);
        reporter.table(&table);
        reporter.line(format!("network:\n{:?}", design.network));
        write_csv_if_requested(params, reporter, &table)?;

        // Execute on the simulated crossbar, exhaustively.
        let mapping = MultiLevelMapping::identity(&design);
        let xbar = Crossbar::new(design.cost.rows, design.cost.cols);
        let mut machine = design
            .build_machine(xbar, &mapping)
            .map_err(|e| ExpError::Failed(format!("layout does not fit: {e:?}")))?;
        let mismatches = (0..256u64)
            .filter(|&a| machine.evaluate(a) != cover.evaluate(a))
            .count();
        reporter.line(format!(
            "functional check on the simulated crossbar: {mismatches} mismatches over 256 inputs"
        ));
        if mismatches != 0 {
            return Err(ExpError::Failed(format!(
                "{mismatches}/256 inputs computed the wrong outputs"
            )));
        }

        let data = JsonValue::obj([
            ("rows", JsonValue::usize(design.cost.rows)),
            ("cols", JsonValue::usize(design.cost.cols)),
            ("area", JsonValue::usize(design.area())),
            ("nand_gates", JsonValue::usize(design.network.gate_count())),
            ("connections", JsonValue::usize(design.cost.connections)),
            ("exhaustive_mismatches", JsonValue::usize(mismatches)),
        ]);
        Ok(Artifact::new(data))
    }
}
