//! Ext-B: defect-tolerant *multi-level* mapping (the paper's second
//! future-work item, §VI: "we plan to integrate multi-level logic design
//! with our defect tolerant logic mapping methods").
//!
//! Gate rows are placed with the HBA-style greedy+backtracking loop;
//! connection-net → column permutations add a second degree of freedom the
//! two-level mapper does not have.

use super::fig2_fig4::worked_example_cover;
use crate::experiment::{
    spec, write_csv_if_requested, Artifact, ExpError, Experiment, ParamKind, ParamSpec, Params,
    Reporter, RNG_STREAM_PARAM,
};
use crate::mc::monte_carlo;
use crate::shard::json::JsonValue;
use crate::table::{pct, Table};
use rand::rngs::StdRng;
use rand::SeedableRng;
use xbar_core::{map_multilevel, DefectSampler, MultiLevelDesign, SampleStream};
use xbar_logic::RandomSopSpec;
use xbar_netlist::MapOptions;

/// Ext-B as a registry [`Experiment`].
#[derive(Debug, Clone, Copy)]
pub struct ExtMultilevelDefectsExperiment;

const EXT_B_PARAMS: &[ParamSpec] = &[
    spec(
        "permutations",
        ParamKind::USize,
        "8",
        "connection-column permutations tried per mapping attempt",
    ),
    RNG_STREAM_PARAM,
];

const RATES: [f64; 3] = [0.05, 0.10, 0.15];
const SPARES: [usize; 4] = [0, 1, 2, 4];

/// Counts mapping successes for one design/rate/spare cell.
fn successes(
    design: &MultiLevelDesign,
    spare_rows: usize,
    defect_rate: f64,
    samples: usize,
    seed: u64,
    permutations: usize,
    stream: SampleStream,
) -> usize {
    let rows = design.cost.rows + spare_rows;
    let cols = design.cost.cols;
    let results = monte_carlo(samples, seed, |_, s| {
        let mut rng = StdRng::seed_from_u64(s);
        let cm = DefectSampler::new(stream).sample(rows, cols, defect_rate, &mut rng);
        map_multilevel(design, &cm, permutations, s ^ 0xFACE).is_some()
    });
    results.iter().filter(|&&ok| ok).count()
}

impl Experiment for ExtMultilevelDefectsExperiment {
    fn name(&self) -> &'static str {
        "ext_multilevel_defects"
    }

    fn description(&self) -> &'static str {
        "Ext-B: defect-tolerant multi-level mapping — success rate vs defect rate, \
         spare rows, and connection permutations"
    }

    fn extra_params(&self) -> &'static [ParamSpec] {
        EXT_B_PARAMS
    }

    fn run(&self, params: &Params, reporter: &mut Reporter) -> Result<Artifact, ExpError> {
        let permutations = params.usize("permutations");
        let mut table = Table::new(
            "Ext-B — multi-level mapping success rate % vs defect rate",
            &[
                "design",
                "rows x cols",
                "defects",
                "spare 0",
                "spare 1",
                "spare 2",
                "spare 4",
            ],
        );

        let designs: Vec<(String, MultiLevelDesign)> = vec![
            (
                "fig5 (2 gates)".into(),
                MultiLevelDesign::synthesize(&worked_example_cover(), &MapOptions::default()),
            ),
            (
                "random n=10 P=8".into(),
                MultiLevelDesign::synthesize(
                    &RandomSopSpec::figure6(10, 8).generate_seeded(params.seed),
                    &MapOptions {
                        factoring: true,
                        max_fanin: Some(10),
                    },
                ),
            ),
            (
                "t481 analog (26 gates)".into(),
                MultiLevelDesign::from_network(xbar_netlist::t481_analog()),
            ),
        ];

        let mut cells = Vec::new();
        for (name, design) in &designs {
            for &rate in &RATES {
                let mut row = vec![
                    name.clone(),
                    format!("{}x{}", design.cost.rows, design.cost.cols),
                    format!("{:.0}%", rate * 100.0),
                ];
                for &spare in &SPARES {
                    let succ = successes(
                        design,
                        spare,
                        rate,
                        params.samples,
                        params.seed,
                        permutations,
                        params.sample_stream(),
                    );
                    row.push(pct(succ as f64 / params.samples.max(1) as f64));
                    cells.push((name.clone(), rate, spare, succ));
                }
                table.row(row);
            }
        }
        reporter.table(&table);
        reporter.line("observations:");
        reporter.line("  - multi-level rows carry more active switches (fan-in + destination),");
        reporter.line("    so at equal defect rates mapping is harder than two-level;");
        reporter
            .line("  - connection-column permutations + a spare row or two recover most of it.");
        write_csv_if_requested(params, reporter, &table)?;

        let data = JsonValue::obj([
            ("permutations", JsonValue::usize(permutations)),
            ("samples_per_cell", JsonValue::usize(params.samples)),
            (
                "cells",
                JsonValue::arr(cells.iter().map(|(design, rate, spare, succ)| {
                    JsonValue::obj([
                        ("design", JsonValue::str(design.clone())),
                        ("defect_rate", JsonValue::f64(*rate)),
                        ("spare_rows", JsonValue::usize(*spare)),
                        ("successes", JsonValue::usize(*succ)),
                    ])
                })),
            ),
        ]);
        Ok(Artifact::new(data))
    }
}
