//! Experiment implementations, one module per paper table/figure family
//! or extension study. Each module exposes its library functions plus a
//! unit struct implementing [`crate::experiment::Experiment`]; the
//! registry in [`crate::experiment::registry`] lists them all.

pub mod estimate_yield;
pub mod ext_ablation_hba;
pub mod ext_analog_validation;
pub mod ext_cluster_tolerance;
pub mod ext_column_redundancy;
pub mod ext_defect_scan;
pub mod ext_model_yield;
pub mod ext_multilevel_defects;
pub mod ext_yield_redundancy;
pub mod fig1;
pub mod fig2_fig4;
pub mod fig3;
pub mod fig5;
pub mod fig6;
pub mod fig7;
pub mod fig8;
pub mod table1;
pub mod table2;
