//! Experiment implementations, one module per paper table/figure family.

pub mod fig6;
pub mod table1;
pub mod table2;
