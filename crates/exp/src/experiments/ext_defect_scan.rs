//! Ext-F: defect-map extraction: march-style testing recovers the
//! crossbar matrix that the paper's mapping algorithms assume as given
//! (the testing problem of the paper's references \[11\] and \[12\]).
//!
//! The full loop: manufacture a defective fabric → march-scan it → build
//! the CM from the *measured* map → run HBA → execute the mapping on the
//! fabric and verify functionally.

use crate::experiment::{
    spec, write_csv_if_requested, Artifact, ExpError, Experiment, ParamKind, ParamSpec, Params,
    Reporter,
};
use crate::shard::json::JsonValue;
use crate::table::Table;
use rand::rngs::StdRng;
use rand::SeedableRng;
use xbar_core::{
    program_two_level, verify_against_cover, CrossbarMatrix, FunctionMatrix, MatchEngine,
    VerifyMode,
};
use xbar_device::{scan_cell_by_cell, scan_march, Crossbar, DefectProfile};
use xbar_logic::bench_reg::find;

/// Ext-F as a registry [`Experiment`].
#[derive(Debug, Clone, Copy)]
pub struct ExtDefectScanExperiment;

const EXT_F_PARAMS: &[ParamSpec] = &[
    spec(
        "circuit",
        ParamKind::Str,
        "rd53",
        "registry circuit mapped in the closed loop",
    ),
    spec(
        "stuck-closed-fraction",
        ParamKind::F64,
        "0.2",
        "fraction of defects that are stuck-closed in the scan-cost fabric",
    ),
];

impl Experiment for ExtDefectScanExperiment {
    fn name(&self) -> &'static str {
        "ext_defect_scan"
    }

    fn description(&self) -> &'static str {
        "Ext-F: march-test defect-map extraction and the closed scan->map->execute->verify loop"
    }

    fn extra_params(&self) -> &'static [ParamSpec] {
        EXT_F_PARAMS
    }

    fn run(&self, params: &Params, reporter: &mut Reporter) -> Result<Artifact, ExpError> {
        let circuit = params.str("circuit");
        let info = find(circuit)
            .map_err(|_| ExpError::Usage(format!("--circuit: {circuit:?} is not registered")))?;
        let closed_fraction = params.f64("stuck-closed-fraction");
        if !(0.0..=1.0).contains(&closed_fraction) {
            return Err(ExpError::Usage(
                "--stuck-closed-fraction must be in [0, 1]".to_owned(),
            ));
        }
        let cover = info.mapping_cover(params.seed);
        let fm = FunctionMatrix::from_cover(&cover);
        let rows = fm.num_rows();
        let cols = fm.num_cols();

        // 1. Test-cost comparison of the two scan procedures.
        let mut cost = Table::new(
            "Ext-F — test cost per procedure",
            &["procedure", "write ops", "read ops", "map recovered"],
        );
        let mut rng = StdRng::seed_from_u64(params.seed);
        let profile = DefectProfile {
            rate: params.defect_rate,
            stuck_closed_fraction: closed_fraction,
        };
        let mut xbar = Crossbar::with_random_defects(rows, cols, profile, &mut rng);
        let cell = scan_cell_by_cell(&mut xbar);
        let cell_exact = cell.matches_ground_truth(&xbar);
        cost.row([
            "cell-by-cell".to_owned(),
            cell.write_ops.to_string(),
            cell.read_ops.to_string(),
            if cell_exact { "exact" } else { "WRONG" }.to_owned(),
        ]);
        let march = scan_march(&mut xbar);
        let march_exact = march.matches_ground_truth(&xbar);
        cost.row([
            "march (row-parallel writes)".to_owned(),
            march.write_ops.to_string(),
            march.read_ops.to_string(),
            if march_exact { "exact" } else { "WRONG" }.to_owned(),
        ]);
        reporter.table(&cost);
        let (functional, open, closed) = march.counts();
        reporter.line(format!(
            "measured map: {functional} functional, {open} stuck-open, {closed} stuck-closed"
        ));
        if !cell_exact || !march_exact {
            return Err(ExpError::Failed(
                "a scan procedure failed to recover the ground-truth defect map".to_owned(),
            ));
        }
        write_csv_if_requested(params, reporter, &cost)?;

        // 2. Closed loop over many fabrics: scan → map from the measured CM →
        //    execute → verify.
        let mut attempted = 0usize;
        let mut mapped = 0usize;
        let mut verified = 0usize;
        // One engine for the whole closed loop; the FM never changes.
        let mut engine = MatchEngine::new();
        engine.prepare_fm(&fm);
        for _ in 0..params.samples {
            let mut xbar = Crossbar::with_random_defects(
                rows,
                cols,
                DefectProfile::stuck_open_only(params.defect_rate),
                &mut rng,
            );
            let report = scan_march(&mut xbar);
            if !report.matches_ground_truth(&xbar) {
                return Err(ExpError::Failed("march scan must be exact".to_owned()));
            }
            // Build the CM from the *measured* report, not the ground truth.
            let mut cm = CrossbarMatrix::perfect(rows, cols);
            for r in 0..rows {
                for c in 0..cols {
                    if report.diagnosis(r, c).as_defect() != xbar_device::Defect::None {
                        cm.set_defective(r, c);
                    }
                }
            }
            attempted += 1;
            if let Some(assignment) = engine.map_hybrid(&fm, &cm).assignment {
                mapped += 1;
                let mut machine = program_two_level(&cover, &assignment, xbar)
                    .map_err(|e| ExpError::Failed(format!("layout does not fit: {e:?}")))?;
                if verify_against_cover(&mut machine, &cover, VerifyMode::Exhaustive, 0).is_none() {
                    verified += 1;
                }
            }
        }
        reporter.line(format!(
            "closed loop over {attempted} fabrics at {:.0}% stuck-open: {mapped} mapped, \
             {verified} functionally verified",
            params.defect_rate * 100.0
        ));
        if mapped != verified {
            return Err(ExpError::Failed(format!(
                "{} mappings from measured maps failed functional verification",
                mapped - verified
            )));
        }

        let data = JsonValue::obj([
            ("circuit", JsonValue::str(circuit)),
            (
                "scan_costs",
                JsonValue::obj([
                    (
                        "cell_by_cell",
                        JsonValue::obj([
                            ("write_ops", JsonValue::usize(cell.write_ops)),
                            ("read_ops", JsonValue::usize(cell.read_ops)),
                            ("exact", JsonValue::Bool(cell_exact)),
                        ]),
                    ),
                    (
                        "march",
                        JsonValue::obj([
                            ("write_ops", JsonValue::usize(march.write_ops)),
                            ("read_ops", JsonValue::usize(march.read_ops)),
                            ("exact", JsonValue::Bool(march_exact)),
                        ]),
                    ),
                ]),
            ),
            (
                "measured_map",
                JsonValue::obj([
                    ("functional", JsonValue::usize(functional)),
                    ("stuck_open", JsonValue::usize(open)),
                    ("stuck_closed", JsonValue::usize(closed)),
                ]),
            ),
            (
                "closed_loop",
                JsonValue::obj([
                    ("attempted", JsonValue::usize(attempted)),
                    ("mapped", JsonValue::usize(mapped)),
                    ("verified", JsonValue::usize(verified)),
                ]),
            ),
        ]);
        Ok(Artifact::new(data))
    }
}
