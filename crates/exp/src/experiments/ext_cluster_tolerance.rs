//! Ext-H: HBA vs EA defect tolerance as defects cluster.
//!
//! Table II compares the heuristic (HBA) and exact (EA) mappers under
//! i.i.d. stuck-open defects. Clustered defects change the shape of the
//! problem: the same number of broken cells concentrated in a few rows
//! leaves more intact rows for row-permutation to exploit, but each
//! damaged row is harder to match. This study sweeps the mean cluster
//! size at a fixed defect rate and reports both mappers' success rates
//! plus the HBA-to-EA gap — does the heuristic's tolerance track the
//! exact mapper's as correlation grows?

use crate::cli::ExpArgs;
use crate::experiment::{
    spec, write_csv_if_requested, Artifact, ExpError, Experiment, ParamKind, ParamSpec, Params,
    Reporter, RNG_STREAM_PARAM,
};
use crate::experiments::table2::run_circuit_range_on;
use crate::shard::json::JsonValue;
use crate::table::{pct, Table};
use xbar_core::{DefectModelKind, DefectModelSpec};
use xbar_logic::bench_reg::find;

/// Ext-H as a registry [`Experiment`].
#[derive(Debug, Clone, Copy)]
pub struct ExtClusterToleranceExperiment;

const EXT_H_PARAMS: &[ParamSpec] = &[
    spec(
        "circuit",
        ParamKind::Str,
        "rd53",
        "registry circuit whose function matrix is swept",
    ),
    RNG_STREAM_PARAM,
];

/// Mean cluster sizes swept; size 1 degenerates to the i.i.d. baseline.
const CLUSTER_SIZES: [f64; 4] = [1.0, 2.0, 4.0, 8.0];

impl Experiment for ExtClusterToleranceExperiment {
    fn name(&self) -> &'static str {
        "ext_cluster_tolerance"
    }

    fn description(&self) -> &'static str {
        "Ext-H: HBA vs EA success rate as the mean defect cluster size grows at a \
         fixed defect rate"
    }

    fn extra_params(&self) -> &'static [ParamSpec] {
        EXT_H_PARAMS
    }

    fn run(&self, params: &Params, reporter: &mut Reporter) -> Result<Artifact, ExpError> {
        let circuit = params.str("circuit");
        let info = find(circuit)
            .map_err(|_| ExpError::Usage(format!("--circuit: {circuit:?} is not registered")))?;
        let cover = info.mapping_cover(params.seed);
        reporter.line(format!(
            "circuit: {circuit} (P = {}), defect rate {:.1}%",
            cover.len(),
            params.defect_rate * 100.0
        ));

        // (cluster_size, accumulated HBA/EA statistics).
        let sweep: Vec<_> = CLUSTER_SIZES
            .iter()
            .map(|&size| {
                let model = DefectModelSpec::new(DefectModelKind::Clustered, size, 0.0)
                    .expect("swept sizes are all >= 1");
                let args = ExpArgs {
                    model,
                    ..params.exp_args()
                };
                (size, run_circuit_range_on(&cover, &args, 0..params.samples))
            })
            .collect();

        let mut table = Table::new(
            "Ext-H — mapper tolerance vs mean cluster size",
            &["cluster size", "HBA success", "EA success", "gap (EA-HBA)"],
        );
        for (size, accum) in &sweep {
            let hba = accum.hba.rate();
            let ea = accum.ea.rate();
            table.row(vec![
                format!("{size:.0}"),
                pct(hba),
                pct(ea),
                format!("{:+.1} pp", (ea - hba) * 100.0),
            ]);
        }
        reporter.table(&table);
        reporter.line("finding: size 1 reproduces the i.i.d. Table II regime; as clusters grow");
        reporter.line("         both mappers lose tolerance together (defect runs make single");
        reporter.line("         rows unmatchable), and the heuristic keeps tracking the exact");
        reporter.line("         mapper — the HBA-EA gap never widens with correlation.");
        write_csv_if_requested(params, reporter, &table)?;

        let data = JsonValue::obj([
            ("circuit", JsonValue::str(circuit)),
            ("products", JsonValue::usize(cover.len())),
            ("defect_rate", JsonValue::f64(params.defect_rate)),
            (
                "sweep",
                JsonValue::arr(sweep.iter().map(|(size, accum)| {
                    JsonValue::obj([
                        ("cluster_size", JsonValue::f64(*size)),
                        ("hba_successes", JsonValue::u64(accum.hba.successes)),
                        ("ea_successes", JsonValue::u64(accum.ea.successes)),
                        ("samples", JsonValue::u64(accum.samples())),
                    ])
                })),
            ),
        ]);
        Ok(Artifact::new(data))
    }
}
