//! Ext-D: analog validation of the digital NAND abstraction: nodal
//! analysis of the resistive read path (sneak paths included) versus the
//! logic-level simulator, plus the read-margin degradation curve that
//! bounds practical row widths.

use crate::experiment::{Artifact, ExpError, Experiment, Params, Reporter};
use crate::shard::json::JsonValue;
use crate::table::Table;
use xbar_device::analog::{row_nand_read, ReadConfig};
use xbar_device::{Crossbar, ProgramState};

/// Ext-D as a registry [`Experiment`].
#[derive(Debug, Clone, Copy)]
pub struct ExtAnalogValidationExperiment;

fn programmed_row(
    values: &[bool],
    rows: usize,
    cols: usize,
    target_row: usize,
) -> (Crossbar, Vec<usize>) {
    let mut xbar = Crossbar::new(rows, cols);
    let mut sense = Vec::new();
    for (c, &v) in values.iter().enumerate() {
        xbar.set_program(target_row, c, ProgramState::Active);
        xbar.store_value(target_row, c, v);
        sense.push(c);
    }
    (xbar, sense)
}

impl Experiment for ExtAnalogValidationExperiment {
    fn name(&self) -> &'static str {
        "ext_analog_validation"
    }

    fn description(&self) -> &'static str {
        "Ext-D: analog nodal analysis of the NAND read path vs the digital \
         abstraction, with read-margin curves"
    }

    fn run(&self, _params: &Params, reporter: &mut Reporter) -> Result<Artifact, ExpError> {
        let config = ReadConfig::default();
        reporter.line(format!(
            "read scheme: v_read = {} V through R_load = {:.0} Ω, threshold at {}·v_read",
            config.v_read, config.r_load, config.threshold_fraction
        ));

        // 1. Digital-vs-analog agreement over all 4-input patterns on an
        //    8x12 array (sneak paths live).
        let mut agree = 0usize;
        let mut total = 0usize;
        for pattern in 0..16u32 {
            let values: Vec<bool> = (0..4).map(|b| pattern >> b & 1 == 1).collect();
            let (xbar, sense) = programmed_row(&values, 8, 12, 3);
            let read = row_nand_read(&xbar, 3, &sense, &config)
                .map_err(|e| ExpError::Failed(format!("nodal solve failed: {e:?}")))?;
            let digital = !values.iter().all(|&v| v);
            total += 1;
            if read.nand_value == digital {
                agree += 1;
            }
        }
        reporter.line(format!(
            "digital vs analog NAND decisions on 8x12 array: {agree}/{total} agree"
        ));
        if agree != total {
            return Err(ExpError::Failed(format!(
                "analog NAND disagrees with the digital abstraction on {}/{total} patterns",
                total - agree
            )));
        }

        // 2. Read margin vs number of participating (all-R_OFF) inputs.
        let mut margin_table = Table::new(
            "Ext-D — worst-case read margin vs NAND fan-in (all inputs logic 1)",
            &["fan-in", "row voltage V", "margin V", "decision"],
        );
        let mut fanin_points = Vec::new();
        for fanin in [2usize, 4, 8, 16, 32, 64] {
            let values = vec![true; fanin];
            let (xbar, sense) = programmed_row(&values, 4, fanin + 4, 1);
            let read = row_nand_read(&xbar, 1, &sense, &config)
                .map_err(|e| ExpError::Failed(format!("nodal solve failed: {e:?}")))?;
            margin_table.row([
                fanin.to_string(),
                format!("{:.4}", read.row_voltage),
                format!("{:.4}", read.margin),
                if read.nand_value {
                    "NAND=1 (WRONG)"
                } else {
                    "NAND=0 (correct)"
                }
                .to_string(),
            ]);
            fanin_points.push((fanin, read.row_voltage, read.margin, read.nand_value));
        }
        reporter.table(&margin_table);

        // 3. Margin vs array size with a fixed 3-input NAND (sneak paths grow).
        let mut sneak_table = Table::new(
            "Ext-D — read margin vs array size (3-input NAND, everything else R_OFF)",
            &["array", "row voltage V", "margin V"],
        );
        let mut sneak_points = Vec::new();
        for size in [4usize, 8, 16, 32] {
            let values = vec![true; 3];
            let (xbar, sense) = programmed_row(&values, size, size, size / 2);
            let read = row_nand_read(&xbar, size / 2, &sense, &config)
                .map_err(|e| ExpError::Failed(format!("nodal solve failed: {e:?}")))?;
            sneak_table.row([
                format!("{size}x{size}"),
                format!("{:.4}", read.row_voltage),
                format!("{:.4}", read.margin),
            ]);
            sneak_points.push((size, read.row_voltage, read.margin));
        }
        reporter.table(&sneak_table);
        reporter
            .line("reading: margins shrink with fan-in (parallel R_OFF divider) and array size");
        reporter
            .line("(sneak paths), but the decisions stay correct at the sizes the paper maps —");
        reporter.line("the digital abstraction used by the mapping experiments is sound.");

        let data = JsonValue::obj([
            (
                "nand_agreement",
                JsonValue::obj([
                    ("agree", JsonValue::usize(agree)),
                    ("total", JsonValue::usize(total)),
                ]),
            ),
            (
                "margin_vs_fanin",
                JsonValue::arr(fanin_points.iter().map(|(fanin, v, m, wrong)| {
                    JsonValue::obj([
                        ("fanin", JsonValue::usize(*fanin)),
                        ("row_voltage", JsonValue::f64(*v)),
                        ("margin", JsonValue::f64(*m)),
                        ("decision_correct", JsonValue::Bool(!*wrong)),
                    ])
                })),
            ),
            (
                "margin_vs_array_size",
                JsonValue::arr(sneak_points.iter().map(|(size, v, m)| {
                    JsonValue::obj([
                        ("array_size", JsonValue::usize(*size)),
                        ("row_voltage", JsonValue::f64(*v)),
                        ("margin", JsonValue::f64(*m)),
                    ])
                })),
            ),
        ]);
        Ok(Artifact::new(data))
    }
}
