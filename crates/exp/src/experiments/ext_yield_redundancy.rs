//! Ext-A: yield analysis with redundant rows and stuck-at-closed defects
//! (the paper's first future-work item, §VI).
//!
//! Two sweeps on the selected function matrix:
//! 1. stuck-open only: success rate vs defect rate × spare rows — spares
//!    recover yield at the cost of area overhead;
//! 2. mixed defects: spare rows do NOT recover stuck-closed losses (each
//!    extra row adds column-kill probability), quantifying why the paper
//!    calls for dedicated redundancy for stuck-at-closed defects.

use crate::experiment::{
    spec, write_csv_if_requested, Artifact, ExpError, Experiment, ParamKind, ParamSpec, Params,
    Reporter, CLUSTER_SIZE_PARAM, DEFECT_MODEL_PARAM, LINE_RATE_PARAM, RNG_STREAM_PARAM,
};
use crate::shard::json::JsonValue;
use crate::table::{pct, Table};
use xbar_core::{estimate_yield, FunctionMatrix, MapperKind, YieldConfig};
use xbar_logic::bench_reg::find;

/// Ext-A as a registry [`Experiment`].
#[derive(Debug, Clone, Copy)]
pub struct ExtYieldRedundancyExperiment;

const EXT_A_PARAMS: &[ParamSpec] = &[
    spec(
        "circuit",
        ParamKind::Str,
        "rd53",
        "registry circuit whose function matrix is swept",
    ),
    RNG_STREAM_PARAM,
    DEFECT_MODEL_PARAM,
    CLUSTER_SIZE_PARAM,
    LINE_RATE_PARAM,
];

/// One sweep cell: `(spare_rows, successes, samples)`.
type SpareCell = (usize, u64, u64);
/// One sweep row: a defect rate and its per-spare-count cells.
type SweepRow = (f64, Vec<SpareCell>);

const SPARES: [usize; 5] = [0, 2, 4, 8, 17];
const OPEN_RATES: [f64; 4] = [0.05, 0.10, 0.15, 0.20];
const CLOSED_RATES: [f64; 4] = [0.005, 0.01, 0.02, 0.03];

impl Experiment for ExtYieldRedundancyExperiment {
    fn name(&self) -> &'static str {
        "ext_yield_redundancy"
    }

    fn description(&self) -> &'static str {
        "Ext-A: mapping yield vs spare rows and defect rate, stuck-open and mixed \
         stuck-closed regimes"
    }

    fn extra_params(&self) -> &'static [ParamSpec] {
        EXT_A_PARAMS
    }

    fn run(&self, params: &Params, reporter: &mut Reporter) -> Result<Artifact, ExpError> {
        let circuit = params.str("circuit");
        let info = find(circuit)
            .map_err(|_| ExpError::Usage(format!("--circuit: {circuit:?} is not registered")))?;
        let cover = info.cover(params.seed);
        let fm = FunctionMatrix::from_cover(&cover);
        reporter.line(format!(
            "circuit: {circuit} (P = {}, optimum rows = {}, cols = {})",
            cover.len(),
            fm.num_rows(),
            fm.num_cols()
        ));

        let sweep = |rates: &[f64],
                     stuck_closed_fraction: f64,
                     mapper: MapperKind,
                     seed: u64|
         -> Vec<SweepRow> {
            rates
                .iter()
                .map(|&rate| {
                    let cells = SPARES
                        .iter()
                        .map(|&spare| {
                            let result = estimate_yield(
                                &fm,
                                &YieldConfig {
                                    defect_rate: rate,
                                    stuck_closed_fraction,
                                    spare_rows: spare,
                                    samples: params.samples,
                                    mapper,
                                    seed,
                                    stream: params.sample_stream(),
                                    model: params.defect_model(),
                                },
                            );
                            (spare, result.successes as u64, result.samples as u64)
                        })
                        .collect();
                    (rate, cells)
                })
                .collect()
        };

        let open = sweep(&OPEN_RATES, 0.0, MapperKind::Hybrid, params.seed);
        let closed = sweep(
            &CLOSED_RATES,
            0.3,
            MapperKind::Exact,
            params.seed ^ 0xC105ED,
        );

        let spare_headers: Vec<String> = SPARES.iter().map(|s| format!("spare {s}")).collect();
        let mut headers: Vec<&str> = vec!["defect rate"];
        headers.extend(spare_headers.iter().map(String::as_str));
        let render = |title: &str, sweep: &[SweepRow]| {
            let mut table = Table::new(title, &headers);
            for (rate, cells) in sweep {
                let mut row = vec![format!("{:.1}%", rate * 100.0)];
                for (_, successes, samples) in cells {
                    row.push(pct(*successes as f64 / (*samples).max(1) as f64));
                }
                table.row(row);
            }
            table
        };
        let open_table = render("Ext-A.1 — success rate % (stuck-open only), HBA", &open);
        reporter.table(&open_table);
        let closed_table = render(
            "Ext-A.2 — success rate % (30% of defects stuck-closed), EA",
            &closed,
        );
        reporter.table(&closed_table);

        let overhead_17 = (fm.num_rows() + 17) as f64 / fm.num_rows() as f64;
        reporter.line(format!(
            "area overhead at 17 spares: {overhead_17:.2}x (the 1.5x sizing of refs [13,14])"
        ));
        reporter.line("finding: spare rows recover stuck-open yield but NOT stuck-closed yield —");
        reporter.line("         each added row increases the chance a needed column is killed,");
        reporter
            .line("         confirming the paper's call for dedicated stuck-closed redundancy.");
        write_csv_if_requested(params, reporter, &open_table)?;

        let sweep_json = |sweep: &[SweepRow]| {
            JsonValue::arr(sweep.iter().map(|(rate, cells)| {
                JsonValue::obj([
                    ("defect_rate", JsonValue::f64(*rate)),
                    (
                        "spares",
                        JsonValue::arr(cells.iter().map(|(spare, successes, samples)| {
                            JsonValue::obj([
                                ("spare_rows", JsonValue::usize(*spare)),
                                ("successes", JsonValue::u64(*successes)),
                                ("samples", JsonValue::u64(*samples)),
                            ])
                        })),
                    ),
                ])
            }))
        };
        let data = JsonValue::obj([
            ("circuit", JsonValue::str(circuit)),
            ("rows", JsonValue::usize(fm.num_rows())),
            ("cols", JsonValue::usize(fm.num_cols())),
            ("stuck_open_sweep", sweep_json(&open)),
            ("stuck_closed_sweep", sweep_json(&closed)),
        ]);
        Ok(Artifact::new(data))
    }
}
