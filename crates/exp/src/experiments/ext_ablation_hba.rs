//! Ext-C: ablation of the hybrid algorithm's design choices on the
//! Table II workload:
//!
//! * full HBA (greedy + backtracking + exact Munkres outputs);
//! * no backtracking (pure greedy minterms);
//! * greedy outputs (no Munkres);
//! * EA (all-rows Munkres) and the Hopcroft–Karp feasibility bound.

use crate::experiment::{
    spec, write_csv_if_requested, Artifact, ExpError, Experiment, ParamKind, ParamSpec, Params,
    Reporter, RNG_STREAM_PARAM,
};
use crate::mc::monte_carlo_with;
use crate::shard::json::JsonValue;
use crate::table::{pct, Table};
use rand::rngs::StdRng;
use rand::SeedableRng;
use xbar_core::{CrossbarMatrix, DefectSampler, FunctionMatrix, HybridOptions, MatchEngine};
use xbar_logic::bench_reg::find;

/// Ext-C as a registry [`Experiment`].
#[derive(Debug, Clone, Copy)]
pub struct ExtAblationHbaExperiment;

const EXT_C_PARAMS: &[ParamSpec] = &[
    spec(
        "circuits",
        ParamKind::StrList,
        "rd53,sao2,rd73,clip,rd84,exp5",
        "registry circuits to ablate",
    ),
    RNG_STREAM_PARAM,
];

#[derive(Clone, Copy, Default)]
struct Counts {
    full: usize,
    no_backtrack: usize,
    greedy_outputs: usize,
    exact: usize,
    feasible: usize,
}

impl Experiment for ExtAblationHbaExperiment {
    fn name(&self) -> &'static str {
        "ext_ablation_hba"
    }

    fn description(&self) -> &'static str {
        "Ext-C: HBA ablation — what backtracking and the exact output stage buy, \
         against EA and the Hopcroft-Karp feasibility bound"
    }

    fn extra_params(&self) -> &'static [ParamSpec] {
        EXT_C_PARAMS
    }

    fn run(&self, params: &Params, reporter: &mut Reporter) -> Result<Artifact, ExpError> {
        let mut table = Table::new(
            "Ext-C — success rate % by algorithm variant (stuck-open defects)",
            &[
                "name",
                "HBA full",
                "no backtrack",
                "greedy outputs",
                "EA",
                "feasible (HK bound)",
            ],
        );

        let mut circuit_counts = Vec::new();
        for name in params.list("circuits") {
            let info = find(name)
                .map_err(|_| ExpError::Usage(format!("--circuits: {name:?} is not registered")))?;
            let cover = info.cover(params.seed);
            let fm = FunctionMatrix::from_cover(&cover);
            let rows = fm.num_rows();
            let cols = fm.num_cols();

            // Per-worker engine (FM structure cached once) plus a reused
            // crossbar matrix: the five variant queries per sample share
            // one scratch set and allocate nothing. Decisions are
            // byte-identical to the old per-sample facade calls.
            let samples = monte_carlo_with(
                params.samples,
                params.seed ^ 0xAB1A,
                || {
                    let mut engine = MatchEngine::new();
                    engine.prepare_fm(&fm);
                    (engine, CrossbarMatrix::perfect(rows, cols))
                },
                |(engine, cm), _, seed| {
                    let mut rng = StdRng::seed_from_u64(seed);
                    DefectSampler::new(params.sample_stream()).resample(
                        cm,
                        params.defect_rate,
                        &mut rng,
                    );
                    Counts {
                        full: usize::from(
                            engine
                                .hybrid_success_with(&fm, cm, HybridOptions::default())
                                .0,
                        ),
                        no_backtrack: usize::from(
                            engine
                                .hybrid_success_with(
                                    &fm,
                                    cm,
                                    HybridOptions {
                                        backtracking: false,
                                        ..HybridOptions::default()
                                    },
                                )
                                .0,
                        ),
                        greedy_outputs: usize::from(
                            engine
                                .hybrid_success_with(
                                    &fm,
                                    cm,
                                    HybridOptions {
                                        exact_outputs: false,
                                        ..HybridOptions::default()
                                    },
                                )
                                .0,
                        ),
                        exact: usize::from(engine.exact_success(&fm, cm).0),
                        feasible: usize::from(engine.feasible(&fm, cm)),
                    }
                },
            );
            let total = samples.len();
            let sum = samples.iter().fold(Counts::default(), |a, b| Counts {
                full: a.full + b.full,
                no_backtrack: a.no_backtrack + b.no_backtrack,
                greedy_outputs: a.greedy_outputs + b.greedy_outputs,
                exact: a.exact + b.exact,
                feasible: a.feasible + b.feasible,
            });
            table.row([
                name.clone(),
                pct(sum.full as f64 / total as f64),
                pct(sum.no_backtrack as f64 / total as f64),
                pct(sum.greedy_outputs as f64 / total as f64),
                pct(sum.exact as f64 / total as f64),
                pct(sum.feasible as f64 / total as f64),
            ]);
            circuit_counts.push((name.clone(), total, sum));
        }
        reporter.table(&table);
        reporter.line("reading: EA equals the feasibility bound by construction; the gap between");
        reporter.line(
            "\"no backtrack\" and \"HBA full\" is what Algorithm 1's backtracking step buys;",
        );
        reporter.line("the gap between \"greedy outputs\" and \"HBA full\" is what Munkres buys —");
        reporter.line(
            "the paper's §IV-B rationale (\"a single defect might discard a whole output\").",
        );
        write_csv_if_requested(params, reporter, &table)?;

        let data = JsonValue::obj([(
            "circuits",
            JsonValue::arr(circuit_counts.iter().map(|(name, total, sum)| {
                JsonValue::obj([
                    ("name", JsonValue::str(name.clone())),
                    ("samples", JsonValue::usize(*total)),
                    ("hba_full", JsonValue::usize(sum.full)),
                    ("no_backtrack", JsonValue::usize(sum.no_backtrack)),
                    ("greedy_outputs", JsonValue::usize(sum.greedy_outputs)),
                    ("exact", JsonValue::usize(sum.exact)),
                    ("feasible", JsonValue::usize(sum.feasible)),
                ])
            })),
        )]);
        Ok(Artifact::new(data))
    }
}
