//! Fig. 6: Monte Carlo area-cost comparison of two-level vs multi-level
//! designs on random single-output functions.
//!
//! The paper draws 200 random Boolean functions per input size (8, 9, 10,
//! 15), sorts them by product count, and reports the fraction whose
//! multi-level implementation is smaller ("success rate": 65%, 60%, 54%,
//! 33%). Cost ranges in the published plots imply product counts of
//! roughly 2..n−1, which is the workload generated here.

use crate::cli::ExpArgs;
use crate::experiment::{
    spec, write_csv_if_requested, Artifact, ExpError, Experiment, ParamKind, ParamSpec, Params,
    Reporter,
};
use crate::mc::monte_carlo;
use crate::shard::json::JsonValue;
use crate::table::{pct, Table};
use rand::prelude::*;
use rand::rngs::StdRng;
use xbar_core::TwoLevelLayout;
use xbar_logic::RandomSopSpec;
use xbar_netlist::{map_cover, MapOptions, MultiLevelCost};

/// One random-function sample.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Fig6Point {
    /// Product count of the sampled SOP.
    pub products: usize,
    /// Two-level area `(P+1)(2n+2)`.
    pub two_level: usize,
    /// Multi-level area from the factored NAND flow.
    pub multi_level: usize,
}

impl Fig6Point {
    /// Whether multi-level beats two-level on this sample.
    #[must_use]
    pub fn multi_level_wins(&self) -> bool {
        self.multi_level < self.two_level
    }
}

/// All samples for one input size, sorted by product count (the paper's
/// x-axis ordering).
#[derive(Debug, Clone, PartialEq)]
pub struct Fig6Series {
    /// Input size `n`.
    pub input_size: usize,
    /// Samples sorted ascending by product count.
    pub points: Vec<Fig6Point>,
    /// Fraction of samples where multi-level wins.
    pub success_rate: f64,
    /// The paper's published success rate, when this input size appears in
    /// Fig. 6 (8 → 65%, 9 → 60%, 10 → 54%, 15 → 33%).
    pub published_success_rate: Option<f64>,
}

/// Published Fig. 6 success rates by input size.
#[must_use]
pub fn published_success_rate(input_size: usize) -> Option<f64> {
    match input_size {
        8 => Some(0.65),
        9 => Some(0.60),
        10 => Some(0.54),
        15 => Some(0.33),
        _ => None,
    }
}

/// Runs one Fig. 6 series.
#[must_use]
pub fn run_series(input_size: usize, args: &ExpArgs) -> Fig6Series {
    let n = input_size;
    let mut points: Vec<Fig6Point> = monte_carlo(args.samples, args.seed ^ n as u64, |_, seed| {
        let mut rng = StdRng::seed_from_u64(seed);
        // Product count uniform on [2, n-1] (see module docs).
        let products = rng.random_range(2..=(n - 1).max(2));
        let spec = RandomSopSpec::figure6(n, products);
        let cover = spec.generate(&mut rng);
        let two_level = TwoLevelLayout::of_cover(&cover).area();
        let net = map_cover(
            &cover,
            &MapOptions {
                factoring: true,
                max_fanin: Some(n),
            },
        );
        let multi_level = MultiLevelCost::of(&net).area();
        Fig6Point {
            products: cover.len(),
            two_level,
            multi_level,
        }
    });
    points.sort_by_key(|p| (p.products, p.multi_level));
    let success_rate =
        points.iter().filter(|p| p.multi_level_wins()).count() as f64 / points.len().max(1) as f64;
    Fig6Series {
        input_size,
        points,
        success_rate,
        published_success_rate: published_success_rate(input_size),
    }
}

/// Runs the figure's four input sizes (or custom ones).
#[must_use]
pub fn run_fig6(args: &ExpArgs, input_sizes: &[usize]) -> Vec<Fig6Series> {
    input_sizes.iter().map(|&n| run_series(n, args)).collect()
}

/// Fig. 6 as a registry [`Experiment`]: two-level vs multi-level Monte
/// Carlo on random Boolean functions.
#[derive(Debug, Clone, Copy)]
pub struct Fig6Experiment;

const FIG6_PARAMS: &[ParamSpec] = &[spec(
    "input-sizes",
    ParamKind::StrList,
    "8,9,10,15",
    "input sizes to sweep (the figure's four by default)",
)];

impl Experiment for Fig6Experiment {
    fn name(&self) -> &'static str {
        "fig6"
    }

    fn description(&self) -> &'static str {
        "Fig. 6: Monte Carlo area comparison of two-level vs multi-level designs \
         on random Boolean functions"
    }

    fn extra_params(&self) -> &'static [ParamSpec] {
        FIG6_PARAMS
    }

    fn run(&self, params: &Params, reporter: &mut Reporter) -> Result<Artifact, ExpError> {
        let input_sizes: Vec<usize> = params
            .list("input-sizes")
            .iter()
            .map(|s| {
                s.parse::<usize>().ok().filter(|&n| n >= 3).ok_or_else(|| {
                    ExpError::Usage(format!("--input-sizes: {s:?} is not an input size >= 3"))
                })
            })
            .collect::<Result<_, _>>()?;
        let args = params.exp_args();
        let series = run_fig6(&args, &input_sizes);

        let mut summary = Table::new(
            "Fig. 6 — success rate (% of samples with multi-level < two-level)",
            &[
                "input size",
                "samples",
                "success % (paper)",
                "success % (ours)",
            ],
        );
        for s in &series {
            summary.row([
                s.input_size.to_string(),
                s.points.len().to_string(),
                s.published_success_rate.map_or("-".to_owned(), pct),
                pct(s.success_rate),
            ]);
        }
        reporter.table(&summary);

        let mut points = Table::new(
            "Fig. 6 — per-sample series (sorted by product count)",
            &[
                "input_size",
                "sample",
                "products",
                "two_level_area",
                "multi_level_area",
                "ml_wins",
            ],
        );
        for s in &series {
            for (i, p) in s.points.iter().enumerate() {
                points.row([
                    s.input_size.to_string(),
                    i.to_string(),
                    p.products.to_string(),
                    p.two_level.to_string(),
                    p.multi_level.to_string(),
                    u8::from(p.multi_level_wins()).to_string(),
                ]);
            }
        }
        if params.csv.is_some() {
            write_csv_if_requested(params, reporter, &points)?;
        } else {
            reporter.line("(run with --csv PATH to dump the full per-sample series)");
        }

        let data = JsonValue::obj([(
            "series",
            JsonValue::arr(series.iter().map(|s| {
                let wins = s.points.iter().filter(|p| p.multi_level_wins()).count();
                JsonValue::obj([
                    ("input_size", JsonValue::usize(s.input_size)),
                    ("samples", JsonValue::usize(s.points.len())),
                    ("multi_level_wins", JsonValue::usize(wins)),
                    ("success_rate", JsonValue::f64(s.success_rate)),
                    (
                        "published_success_rate",
                        s.published_success_rate
                            .map_or(JsonValue::Null, JsonValue::f64),
                    ),
                ])
            })),
        )]);
        Ok(Artifact::new(data))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_args() -> ExpArgs {
        ExpArgs {
            samples: 60,
            seed: 11,
            defect_rate: 0.1,
            ..ExpArgs::default()
        }
    }

    #[test]
    fn two_level_cost_is_flat_per_product_count() {
        let series = run_series(8, &quick_args());
        for p in &series.points {
            assert_eq!(p.two_level, (p.products + 1) * 18);
        }
        // Sorted by products.
        for w in series.points.windows(2) {
            assert!(w[0].products <= w[1].products);
        }
    }

    #[test]
    fn success_rate_declines_with_input_size() {
        // The paper's headline trend: 65% at n=8 down to 33% at n=15.
        let args = ExpArgs {
            samples: 120,
            ..quick_args()
        };
        let small = run_series(8, &args);
        let large = run_series(15, &args);
        assert!(
            small.success_rate > large.success_rate,
            "n=8 {:.2} should beat n=15 {:.2}",
            small.success_rate,
            large.success_rate
        );
    }

    #[test]
    fn success_rates_are_in_the_papers_ballpark() {
        let args = ExpArgs {
            samples: 150,
            ..quick_args()
        };
        for n in [8, 15] {
            let series = run_series(n, &args);
            let published = series.published_success_rate.expect("published");
            assert!(
                (series.success_rate - published).abs() < 0.30,
                "n={n}: measured {:.2} too far from published {:.2}",
                series.success_rate,
                published
            );
        }
    }

    #[test]
    fn more_products_help_multi_level_at_small_input_sizes() {
        // Paper: "when the product size increases, it is easier to find a
        // superior multi-level design". In our flow this holds clearly at
        // n = 8..10 (measured 63%→75% at n=8); at n = 15 it *reverses*
        // (connection columns grow with the product count faster than
        // factoring can recover) — recorded as a deviation in
        // EXPERIMENTS.md. Assert the paper-matching regime.
        let args = ExpArgs {
            samples: 300,
            ..quick_args()
        };
        let series = run_series(8, &args);
        let half = series.points.len() / 2;
        let low: f64 = series.points[..half]
            .iter()
            .filter(|p| p.multi_level_wins())
            .count() as f64
            / half as f64;
        let high: f64 = series.points[half..]
            .iter()
            .filter(|p| p.multi_level_wins())
            .count() as f64
            / (series.points.len() - half) as f64;
        assert!(
            high + 0.03 >= low,
            "high-product half {high:.2} should win at least as often as {low:.2}"
        );
    }
}
