//! Fig. 1: memristor I-V characteristics and switching behaviour.
//!
//! Sweeps a triangular voltage across a fresh device with both the abrupt
//! (ideal Snider) and linear-drift models; the human report carries the
//! hysteresis loop as CSV-ready series plus the SET/RESET summary the
//! figure annotates.

use crate::experiment::{
    spec, write_csv_if_requested, Artifact, ExpError, Experiment, ParamKind, ParamSpec, Params,
    Reporter,
};
use crate::shard::json::JsonValue;
use crate::table::Table;
use xbar_device::{iv_sweep, IvPoint, MemristorParams};

/// Fig. 1 as a registry [`Experiment`].
#[derive(Debug, Clone, Copy)]
pub struct Fig1Experiment;

const FIG1_PARAMS: &[ParamSpec] = &[
    spec(
        "points",
        ParamKind::USize,
        "40",
        "sweep steps per triangular leg",
    ),
    spec("v-max", ParamKind::F64, "3.0", "sweep amplitude in volts"),
];

fn current_at(points: &[IvPoint], voltage: f64) -> f64 {
    points
        .iter()
        .min_by(|a, b| {
            (a.voltage - voltage)
                .abs()
                .partial_cmp(&(b.voltage - voltage).abs())
                .expect("no NaN")
        })
        .map(|p| p.current.abs().max(1e-12))
        .unwrap_or(1e-12)
}

impl Experiment for Fig1Experiment {
    fn name(&self) -> &'static str {
        "fig1"
    }

    fn description(&self) -> &'static str {
        "Fig. 1: memristor I-V hysteresis sweep (abrupt and linear-drift models)"
    }

    fn extra_params(&self) -> &'static [ParamSpec] {
        FIG1_PARAMS
    }

    fn run(&self, params: &Params, reporter: &mut Reporter) -> Result<Artifact, ExpError> {
        let steps = params.usize("points");
        if steps < 2 {
            return Err(ExpError::Usage("--points must be at least 2".to_owned()));
        }
        let v_max = params.f64("v-max");
        if v_max <= 0.0 {
            return Err(ExpError::Usage("--v-max must be positive".to_owned()));
        }
        let device = MemristorParams::default();
        reporter.line(format!(
            "device: R_ON = {:.0} Ω (logic 0), R_OFF = {:.0} Ω (logic 1), \
             v_write = ±{} V, v_hold = ±{} V",
            device.r_on, device.r_off, device.v_write, device.v_hold
        ));

        let abrupt = iv_sweep(device, v_max, steps, true);
        let drift = iv_sweep(device, v_max, steps, false);

        let mut table = Table::new(
            "Fig. 1 — I-V sweep (0 → +Vmax → 0 → −Vmax → 0)",
            &[
                "leg_point",
                "voltage_V",
                "abrupt_current_A",
                "drift_current_A",
                "drift_state_w",
            ],
        );
        for (i, (a, d)) in abrupt.iter().zip(&drift).enumerate() {
            table.row([
                i.to_string(),
                format!("{:.3}", a.voltage),
                format!("{:.3e}", a.current),
                format!("{:.3e}", d.current),
                format!("{:.3}", d.state),
            ]);
        }
        if params.csv.is_some() {
            write_csv_if_requested(params, reporter, &table)?;
            reporter.line(format!("wrote {} sweep points", table.len()));
        } else {
            // Condensed view (every 8th point) when not dumping CSV.
            let mut condensed = Table::new(
                "Fig. 1 — I-V sweep (condensed; use --csv for all points)",
                &["voltage_V", "abrupt_current_A", "drift_state_w"],
            );
            for (i, (a, d)) in abrupt.iter().zip(&drift).enumerate() {
                if i % 8 == 0 {
                    condensed.row([
                        format!("{:.3}", a.voltage),
                        format!("{:.3e}", a.current),
                        format!("{:.3}", d.state),
                    ]);
                }
            }
            reporter.table(&condensed);
        }

        let set_at = abrupt.iter().find(|p| p.state > 0.5).map(|p| p.voltage);
        let reset_at = abrupt
            .iter()
            .skip_while(|p| p.state < 0.5)
            .find(|p| p.state < 0.5)
            .map(|p| p.voltage);
        let hysteresis_ratio =
            current_at(&abrupt[steps..], 1.0) / current_at(&abrupt[..steps], 1.0);
        reporter.line(format!(
            "SET observed at {set_at:?} V (paper: +Vw), RESET at {reset_at:?} V (paper: −Vw)"
        ));
        reporter.line(format!(
            "hysteresis confirmed: current ratio at +1 V between down/up legs = \
             {hysteresis_ratio:.1}x"
        ));

        let opt_v = |v: Option<f64>| v.map_or(JsonValue::Null, JsonValue::f64);
        let data = JsonValue::obj([
            ("sweep_points", JsonValue::usize(abrupt.len())),
            ("v_max", JsonValue::f64(v_max)),
            ("set_voltage", opt_v(set_at)),
            ("reset_voltage", opt_v(reset_at)),
            ("hysteresis_ratio", JsonValue::f64(hysteresis_ratio)),
            ("r_on", JsonValue::f64(device.r_on)),
            ("r_off", JsonValue::f64(device.r_off)),
        ]);
        Ok(Artifact::new(data))
    }
}
