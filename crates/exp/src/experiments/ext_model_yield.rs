//! Ext-G: mapping yield versus defect rate under every spatial defect
//! model.
//!
//! The paper's yield numbers assume independent stuck-open defects; real
//! crossbar defect maps cluster (shared forming conditions) and whole
//! lines fail (broken nanowires, §VI). This study sweeps the same HBA
//! yield estimator across all four registered [`DefectModelKind`]s at a
//! fixed *target* defect rate per row, quantifying how much of the
//! i.i.d. yield estimate survives spatial correlation.

use crate::experiment::{
    spec, write_csv_if_requested, Artifact, ExpError, Experiment, ParamKind, ParamSpec, Params,
    Reporter, CLUSTER_SIZE_PARAM, LINE_RATE_PARAM, RNG_STREAM_PARAM,
};
use crate::shard::json::JsonValue;
use crate::table::{pct, Table};
use xbar_core::{
    estimate_yield, DefectModelKind, DefectModelSpec, FunctionMatrix, MapperKind, YieldConfig,
};
use xbar_logic::bench_reg::find;

/// Ext-G as a registry [`Experiment`].
#[derive(Debug, Clone, Copy)]
pub struct ExtModelYieldExperiment;

const EXT_G_PARAMS: &[ParamSpec] = &[
    spec(
        "circuit",
        ParamKind::Str,
        "rd53",
        "registry circuit whose function matrix is swept",
    ),
    RNG_STREAM_PARAM,
    CLUSTER_SIZE_PARAM,
    LINE_RATE_PARAM,
];

const RATES: [f64; 4] = [0.05, 0.10, 0.15, 0.20];

/// One sweep cell: `(defect_rate, successes, samples)`.
type RateCell = (f64, u64, u64);

impl Experiment for ExtModelYieldExperiment {
    fn name(&self) -> &'static str {
        "ext_model_yield"
    }

    fn description(&self) -> &'static str {
        "Ext-G: HBA mapping yield vs defect rate under each spatial defect model \
         (iid, clustered, lines, composite)"
    }

    fn extra_params(&self) -> &'static [ParamSpec] {
        EXT_G_PARAMS
    }

    fn run(&self, params: &Params, reporter: &mut Reporter) -> Result<Artifact, ExpError> {
        let circuit = params.str("circuit");
        let info = find(circuit)
            .map_err(|_| ExpError::Usage(format!("--circuit: {circuit:?} is not registered")))?;
        let cover = info.cover(params.seed);
        let fm = FunctionMatrix::from_cover(&cover);
        let cluster_size = params.f64(CLUSTER_SIZE_PARAM.name);
        let line_rate = params.f64(LINE_RATE_PARAM.name);
        reporter.line(format!(
            "circuit: {circuit} ({} x {}), cluster size {cluster_size}, line rate {line_rate}",
            fm.num_rows(),
            fm.num_cols()
        ));

        // kind -> per-rate cells, in DefectModelKind::ALL order.
        let sweep: Vec<(DefectModelKind, Vec<RateCell>)> = DefectModelKind::ALL
            .iter()
            .map(|&kind| {
                let model = DefectModelSpec::new(kind, cluster_size, line_rate)
                    .expect("parse-time range checks admit only valid model params");
                let cells = RATES
                    .iter()
                    .map(|&rate| {
                        let result = estimate_yield(
                            &fm,
                            &YieldConfig {
                                defect_rate: rate,
                                stuck_closed_fraction: 0.0,
                                spare_rows: 0,
                                samples: params.samples,
                                mapper: MapperKind::Hybrid,
                                seed: params.seed,
                                stream: params.sample_stream(),
                                model,
                            },
                        );
                        (rate, result.successes as u64, result.samples as u64)
                    })
                    .collect();
                (kind, cells)
            })
            .collect();

        let mut headers: Vec<&str> = vec!["defect rate"];
        headers.extend(DefectModelKind::ALL.iter().map(|k| k.as_str()));
        let mut table = Table::new(
            "Ext-G — HBA success rate % by spatial defect model",
            &headers,
        );
        for (i, &rate) in RATES.iter().enumerate() {
            let mut row = vec![format!("{:.1}%", rate * 100.0)];
            for (_, cells) in &sweep {
                let (_, successes, samples) = cells[i];
                row.push(pct(successes as f64 / samples.max(1) as f64));
            }
            table.row(row);
        }
        reporter.table(&table);
        reporter.line("finding: at equal per-cell defect rates spatial correlation is strictly");
        reporter.line("         harsher than i.i.d. — an optimum-size crossbar must match every");
        reporter.line("         row, and a row holding a defect run rarely matches anything;");
        reporter.line("         line faults ignore the cell rate, and composite is the floor.");
        write_csv_if_requested(params, reporter, &table)?;

        let data = JsonValue::obj([
            ("circuit", JsonValue::str(circuit)),
            ("rows", JsonValue::usize(fm.num_rows())),
            ("cols", JsonValue::usize(fm.num_cols())),
            (
                "models",
                JsonValue::arr(sweep.iter().map(|(kind, cells)| {
                    JsonValue::obj([
                        ("model", JsonValue::str(kind.as_str())),
                        (
                            "sweep",
                            JsonValue::arr(cells.iter().map(|(rate, successes, samples)| {
                                JsonValue::obj([
                                    ("defect_rate", JsonValue::f64(*rate)),
                                    ("successes", JsonValue::u64(*successes)),
                                    ("samples", JsonValue::u64(*samples)),
                                ])
                            })),
                        ),
                    ])
                })),
            ),
        ]);
        Ok(Artifact::new(data))
    }
}
