//! Yield estimation as a first-class experiment: one Monte Carlo yield
//! point for a circuit under a configurable defect regime, row
//! redundancy, and mapper — the building block the Ext-A/Ext-E sweeps
//! (and any future launcher-driven campaign) are made of.

use crate::experiment::{
    spec, write_csv_if_requested, Artifact, ExpError, Experiment, ParamKind, ParamSpec, Params,
    Reporter, CLUSTER_SIZE_PARAM, DEFECT_MODEL_PARAM, LINE_RATE_PARAM, RNG_STREAM_PARAM,
};
use crate::shard::json::JsonValue;
use crate::table::{pct, Table};
use xbar_core::{estimate_yield, FunctionMatrix, MapperKind, YieldConfig};
use xbar_logic::bench_reg::find;

/// `estimate_yield` as a registry [`Experiment`].
#[derive(Debug, Clone, Copy)]
pub struct EstimateYieldExperiment;

const YIELD_PARAMS: &[ParamSpec] = &[
    spec(
        "circuit",
        ParamKind::Str,
        "rd53",
        "registry circuit whose function matrix is mapped",
    ),
    spec(
        "spare-rows",
        ParamKind::USize,
        "0",
        "spare horizontal lines beyond the optimum P+K",
    ),
    spec(
        "stuck-closed-fraction",
        ParamKind::F64,
        "0.0",
        "fraction of defects that are stuck-closed (0 = Table II regime)",
    ),
    spec(
        "mapper",
        ParamKind::Str,
        "hybrid",
        "mapping algorithm: `hybrid` (HBA) or `exact` (EA)",
    ),
    RNG_STREAM_PARAM,
    DEFECT_MODEL_PARAM,
    CLUSTER_SIZE_PARAM,
    LINE_RATE_PARAM,
];

/// Parses a `--mapper` value.
///
/// # Errors
///
/// Rejects anything but `hybrid` / `exact`.
pub fn parse_mapper(text: &str) -> Result<MapperKind, ExpError> {
    match text {
        "hybrid" => Ok(MapperKind::Hybrid),
        "exact" => Ok(MapperKind::Exact),
        other => Err(ExpError::Usage(format!(
            "--mapper: expected `hybrid` or `exact`, got {other:?}"
        ))),
    }
}

impl Experiment for EstimateYieldExperiment {
    fn name(&self) -> &'static str {
        "estimate_yield"
    }

    fn description(&self) -> &'static str {
        "Monte Carlo mapping-yield estimate for one circuit under a configurable \
         defect regime, row redundancy, and mapper"
    }

    fn extra_params(&self) -> &'static [ParamSpec] {
        YIELD_PARAMS
    }

    fn run(&self, params: &Params, reporter: &mut Reporter) -> Result<Artifact, ExpError> {
        let circuit = params.str("circuit");
        let info = find(circuit)
            .map_err(|_| ExpError::Usage(format!("--circuit: {circuit:?} is not registered")))?;
        let stuck_closed_fraction = params.f64("stuck-closed-fraction");
        if !(0.0..=1.0).contains(&stuck_closed_fraction) {
            return Err(ExpError::Usage(
                "--stuck-closed-fraction must be in [0, 1]".to_owned(),
            ));
        }
        let mapper = parse_mapper(params.str("mapper"))?;
        if params.samples == 0 {
            return Err(ExpError::Usage("--samples must be at least 1".to_owned()));
        }
        let spare_rows = params.usize("spare-rows");

        let cover = info.mapping_cover(params.seed);
        let fm = FunctionMatrix::from_cover(&cover);
        let result = estimate_yield(
            &fm,
            &YieldConfig {
                defect_rate: params.defect_rate,
                stuck_closed_fraction,
                spare_rows,
                samples: params.samples,
                mapper,
                seed: params.seed,
                stream: params.sample_stream(),
                model: params.defect_model(),
            },
        );

        let mut table = Table::new(
            "Yield estimate",
            &[
                "circuit",
                "rows+spares x cols",
                "mapper",
                "defect rate",
                "stuck-closed",
                "successes",
                "samples",
                "yield %",
                "area",
                "overhead",
            ],
        );
        table.row([
            circuit.to_owned(),
            format!("{}+{} x {}", fm.num_rows(), spare_rows, fm.num_cols()),
            params.str("mapper").to_owned(),
            format!("{:.1}%", params.defect_rate * 100.0),
            format!("{:.0}%", stuck_closed_fraction * 100.0),
            result.successes.to_string(),
            result.samples.to_string(),
            pct(result.success_rate),
            result.area.to_string(),
            format!("{:.2}x", result.area_overhead),
        ]);
        reporter.table(&table);
        write_csv_if_requested(params, reporter, &table)?;

        let data = JsonValue::obj([
            ("circuit", JsonValue::str(circuit)),
            ("rows", JsonValue::usize(fm.num_rows())),
            ("cols", JsonValue::usize(fm.num_cols())),
            ("spare_rows", JsonValue::usize(spare_rows)),
            ("mapper", JsonValue::str(params.str("mapper"))),
            ("successes", JsonValue::usize(result.successes)),
            ("samples", JsonValue::usize(result.samples)),
            ("success_rate", JsonValue::f64(result.success_rate)),
            ("area", JsonValue::usize(result.area)),
            ("area_overhead", JsonValue::f64(result.area_overhead)),
        ]);
        Ok(Artifact::new(data))
    }
}
