//! The typed parameter layer of the [`Experiment`](super::Experiment)
//! API: every experiment declares its extra flags **once** as
//! [`ParamSpec`]s and the CLI derives parsing, `--help` text, and the
//! artifact's `params` echo from the same declaration — no per-binary
//! flag loops.
//!
//! Parsing is `Result`-returning throughout: a malformed flag produces a
//! [`UsageError`] the driver turns into usage text and exit code 2, never
//! a panic/backtrace.

use crate::shard::json::JsonValue;
use std::collections::BTreeMap;
use std::fmt;
use std::path::PathBuf;
use xbar_core::{DefectModelKind, DefectModelSpec, SampleStream};

/// A flag-parsing/usage error. The CLI driver prints it with the
/// experiment's usage text and exits with code 2.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UsageError(pub String);

impl fmt::Display for UsageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for UsageError {}

/// Convenience constructor used by parsing code.
pub(crate) fn usage_err(message: impl Into<String>) -> UsageError {
    UsageError(message.into())
}

/// The value type of one experiment parameter.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ParamKind {
    /// An unsigned count (`usize`).
    USize,
    /// A 64-bit seed-like integer.
    U64,
    /// A floating-point value.
    F64,
    /// A boolean switch (present = true, takes no value).
    Flag,
    /// A free-form string.
    Str,
    /// A comma-separated list of strings.
    StrList,
    /// A closed choice: the value must be one of the listed literals
    /// (stored and echoed as a string).
    Enum(&'static [&'static str]),
}

impl ParamKind {
    fn value_hint(self) -> String {
        match self {
            ParamKind::USize | ParamKind::U64 => "N".to_owned(),
            ParamKind::F64 => "F".to_owned(),
            ParamKind::Flag => String::new(),
            ParamKind::Str => "S".to_owned(),
            ParamKind::StrList => "a,b".to_owned(),
            ParamKind::Enum(choices) => choices.join("|"),
        }
    }
}

/// A resolved parameter value.
#[derive(Debug, Clone, PartialEq)]
pub enum ParamValue {
    /// An unsigned count.
    USize(usize),
    /// A 64-bit integer.
    U64(u64),
    /// A float.
    F64(f64),
    /// A switch.
    Flag(bool),
    /// A string.
    Str(String),
    /// A string list.
    StrList(Vec<String>),
}

impl ParamValue {
    fn to_json(&self) -> JsonValue {
        match self {
            ParamValue::USize(v) => JsonValue::usize(*v),
            ParamValue::U64(v) => JsonValue::u64(*v),
            ParamValue::F64(v) => JsonValue::f64(*v),
            ParamValue::Flag(v) => JsonValue::Bool(*v),
            ParamValue::Str(v) => JsonValue::str(v.clone()),
            ParamValue::StrList(v) => JsonValue::arr(v.iter().map(|s| JsonValue::str(s.clone()))),
        }
    }
}

/// The declaration of one extra experiment parameter: flag name (without
/// the leading `--`), type, textual default, and help line. This single
/// declaration drives parsing, `--help`, and the artifact echo.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ParamSpec {
    /// Flag name without the leading `--` (e.g. `"spare-rows"`).
    pub name: &'static str,
    /// Value type.
    pub kind: ParamKind,
    /// Textual default, parsed by [`Params::defaults`] (e.g. `"0"`,
    /// `"rd53"`, `"false"` for flags).
    pub default: &'static str,
    /// One-line help text.
    pub help: &'static str,
}

/// Const constructor for registry tables.
#[must_use]
pub const fn spec(
    name: &'static str,
    kind: ParamKind,
    default: &'static str,
    help: &'static str,
) -> ParamSpec {
    ParamSpec {
        name,
        kind,
        default,
        help,
    }
}

impl ParamSpec {
    fn parse_value(&self, text: &str) -> Result<ParamValue, UsageError> {
        let bad = |kind: &str| usage_err(format!("--{}: expected {kind}, got {text:?}", self.name));
        Ok(match self.kind {
            ParamKind::USize => {
                ParamValue::USize(text.parse().map_err(|_| bad("an unsigned integer"))?)
            }
            ParamKind::U64 => ParamValue::U64(text.parse().map_err(|_| bad("a u64"))?),
            ParamKind::F64 => {
                let v: f64 = text.parse().map_err(|_| bad("a number"))?;
                if !v.is_finite() {
                    return Err(bad("a finite number"));
                }
                ParamValue::F64(v)
            }
            ParamKind::Flag => ParamValue::Flag(text.parse().map_err(|_| bad("true or false"))?),
            ParamKind::Str => ParamValue::Str(text.to_owned()),
            ParamKind::StrList => {
                if text.is_empty() {
                    return Err(bad("a non-empty comma-separated list"));
                }
                ParamValue::StrList(text.split(',').map(str::to_owned).collect())
            }
            ParamKind::Enum(choices) => {
                if !choices.contains(&text) {
                    return Err(bad(&format!("one of {}", choices.join(", "))));
                }
                ParamValue::Str(text.to_owned())
            }
        })
    }
}

/// The shared `--rng-stream` declaration: every experiment that samples
/// defects adds this spec, so campaigns pick the sampling stream version
/// with one flag and the artifact `params` block echoes it
/// deterministically. The default is `v1`, the frozen dense stream —
/// existing invocations keep their bytes.
pub const RNG_STREAM_PARAM: ParamSpec = spec(
    "rng-stream",
    ParamKind::Enum(&["v1", "v2"]),
    "v1",
    "defect sampling stream: v1 = frozen dense sweep, v2 = geometric skip",
);

/// The shared `--defect-model` declaration: which spatial defect model
/// the campaign draws. Defaults to `iid` (the paper's Table II model) and
/// is echoed in artifacts **only when non-default**, so every pre-model
/// artifact stays byte-frozen.
pub const DEFECT_MODEL_PARAM: ParamSpec = spec(
    "defect-model",
    ParamKind::Enum(&["iid", "clustered", "lines", "composite"]),
    "iid",
    "spatial defect model: iid cells, clustered runs, broken lines, or lines over clusters",
);

/// The shared `--cluster-size` declaration (mean defect-run length for
/// the `clustered`/`composite` models). Echoed only when non-default.
pub const CLUSTER_SIZE_PARAM: ParamSpec = spec(
    "cluster-size",
    ParamKind::F64,
    "4",
    "mean defect-cluster size for clustered/composite models (>= 1)",
);

/// The shared `--line-rate` declaration (per-line break probability for
/// the `lines`/`composite` models). Echoed only when non-default.
pub const LINE_RATE_PARAM: ParamSpec = spec(
    "line-rate",
    ParamKind::F64,
    "0.02",
    "broken wordline/bitline probability for lines/composite models",
);

/// The full defect-model declaration set, appended by every sampling
/// experiment after [`RNG_STREAM_PARAM`].
pub const DEFECT_MODEL_PARAMS: [ParamSpec; 3] =
    [DEFECT_MODEL_PARAM, CLUSTER_SIZE_PARAM, LINE_RATE_PARAM];

/// Extras echoed in artifact `params` **only when non-default**: the
/// defect-model family postdates the frozen artifact pins, so the echo
/// must not disturb existing documents when the campaign never opted in.
const OMIT_DEFAULT_ECHO: [&str; 3] = [
    DEFECT_MODEL_PARAM.name,
    CLUSTER_SIZE_PARAM.name,
    LINE_RATE_PARAM.name,
];

/// The parameters every experiment shares (the old `ExpArgs` surface plus
/// output routing), rendered in usage text for all experiments.
pub const COMMON_PARAMS: &[ParamSpec] = &[
    spec(
        "samples",
        ParamKind::USize,
        "200",
        "Monte Carlo samples (ignored by deterministic experiments)",
    ),
    spec("seed", ParamKind::U64, "2018", "experiment seed"),
    spec(
        "defect-rate",
        ParamKind::F64,
        "0.10",
        "per-crosspoint defect probability",
    ),
    spec(
        "quick",
        ParamKind::Flag,
        "false",
        "smoke run: samples/10 (at least 10), applied after --samples",
    ),
    spec(
        "json",
        ParamKind::Flag,
        "false",
        "suppress human output; print the canonical artifact JSON to stdout",
    ),
    spec(
        "out",
        ParamKind::Str,
        "",
        "directory to write the artifact to as <experiment>.json",
    ),
    spec(
        "csv",
        ParamKind::Str,
        "",
        "also write the primary table as CSV",
    ),
];

/// Fully-resolved experiment parameters: the common set as typed fields,
/// per-experiment extras behind the [`Params::usize`]-family accessors.
#[derive(Debug, Clone, PartialEq)]
pub struct Params {
    /// Monte Carlo sample count (already divided when `quick` is set).
    pub samples: usize,
    /// Experiment seed.
    pub seed: u64,
    /// Per-crosspoint defect probability.
    pub defect_rate: f64,
    /// Smoke-run mode (`--quick`).
    pub quick: bool,
    /// Artifact-to-stdout mode (`--json`).
    pub json: bool,
    /// Artifact output directory (`--out DIR`).
    pub out: Option<PathBuf>,
    /// CSV output path for the primary table (`--csv PATH`).
    pub csv: Option<PathBuf>,
    extras: BTreeMap<&'static str, ParamValue>,
}

impl Params {
    /// Defaults for the common set plus the given extra specs.
    ///
    /// # Panics
    ///
    /// Panics when a spec's textual default does not parse as its own
    /// kind — a registry bug, pinned by the completeness test.
    #[must_use]
    pub fn defaults(extra: &[ParamSpec]) -> Self {
        let extras = extra
            .iter()
            .map(|s| {
                let value = s
                    .parse_value(s.default)
                    .unwrap_or_else(|e| panic!("bad default for --{}: {e}", s.name));
                (s.name, value)
            })
            .collect();
        Self {
            samples: 200,
            seed: 2018,
            defect_rate: 0.10,
            quick: false,
            json: false,
            out: None,
            csv: None,
            extras,
        }
    }

    /// Parses a flag stream against the common set plus `extra`.
    ///
    /// `--quick` is applied **after** all flags (order-independent):
    /// `samples = (samples / 10).max(10)`.
    ///
    /// # Errors
    ///
    /// Returns a [`UsageError`] on an unknown flag, a missing value, or a
    /// malformed value — never panics.
    pub fn parse(
        extra: &[ParamSpec],
        args: impl IntoIterator<Item = String>,
    ) -> Result<Self, UsageError> {
        let mut out = Self::defaults(extra);
        let mut it = args.into_iter();
        while let Some(flag) = it.next() {
            let name = flag
                .strip_prefix("--")
                .ok_or_else(|| usage_err(format!("expected a --flag, got {flag:?}")))?;
            let mut value_of = |flag_name: &str| {
                it.next()
                    .ok_or_else(|| usage_err(format!("--{flag_name} needs a value")))
            };
            match name {
                "samples" => out.samples = parse_num(name, &value_of(name)?)?,
                "seed" => out.seed = parse_num(name, &value_of(name)?)?,
                "defect-rate" => {
                    let v: f64 = parse_num(name, &value_of(name)?)?;
                    if !(0.0..=1.0).contains(&v) {
                        return Err(usage_err("--defect-rate must be a probability in [0, 1]"));
                    }
                    out.defect_rate = v;
                }
                "quick" => out.quick = true,
                "json" => out.json = true,
                "out" => out.out = Some(PathBuf::from(value_of(name)?)),
                "csv" => out.csv = Some(PathBuf::from(value_of(name)?)),
                other => {
                    let spec = extra
                        .iter()
                        .find(|s| s.name == other)
                        .ok_or_else(|| usage_err(format!("unknown flag --{other}")))?;
                    let value = if spec.kind == ParamKind::Flag {
                        ParamValue::Flag(true)
                    } else {
                        spec.parse_value(&value_of(other)?)?
                    };
                    out.extras.insert(spec.name, value);
                }
            }
        }
        if out.quick {
            out.samples = (out.samples / 10).max(10);
        }
        // Central floor: every Monte Carlo experiment divides by the
        // sample count or asserts it non-zero; deterministic experiments
        // ignore it, so rejecting 0 here costs nothing and keeps the
        // no-panic exit-code contract for all of them.
        if out.samples == 0 {
            return Err(usage_err("--samples must be at least 1"));
        }
        // Central range checks for the shared defect-model params (the
        // same role the `--defect-rate` bound plays above), so
        // `Params::defect_model` is infallible for accessor code.
        if let Some(ParamValue::F64(v)) = out.extras.get(CLUSTER_SIZE_PARAM.name) {
            // Non-finite values never reach here: `parse_value` rejects
            // them for every F64 param.
            if *v < 1.0 {
                return Err(usage_err("--cluster-size must be at least 1"));
            }
        }
        if let Some(ParamValue::F64(v)) = out.extras.get(LINE_RATE_PARAM.name) {
            if !(0.0..=1.0).contains(v) {
                return Err(usage_err("--line-rate must be a probability in [0, 1]"));
            }
        }
        Ok(out)
    }

    /// An extra `usize` parameter declared by the experiment.
    ///
    /// # Panics
    ///
    /// Panics when the experiment did not declare `name` with that kind —
    /// a programmer error, not a user error.
    #[must_use]
    pub fn usize(&self, name: &str) -> usize {
        match self.extras.get(name) {
            Some(ParamValue::USize(v)) => *v,
            other => panic!("param --{name} is not a declared usize (got {other:?})"),
        }
    }

    /// An extra `u64` parameter. See [`Params::usize`] for panics.
    #[must_use]
    pub fn u64(&self, name: &str) -> u64 {
        match self.extras.get(name) {
            Some(ParamValue::U64(v)) => *v,
            other => panic!("param --{name} is not a declared u64 (got {other:?})"),
        }
    }

    /// An extra `f64` parameter. See [`Params::usize`] for panics.
    #[must_use]
    pub fn f64(&self, name: &str) -> f64 {
        match self.extras.get(name) {
            Some(ParamValue::F64(v)) => *v,
            other => panic!("param --{name} is not a declared f64 (got {other:?})"),
        }
    }

    /// An extra flag parameter. See [`Params::usize`] for panics.
    #[must_use]
    pub fn flag(&self, name: &str) -> bool {
        match self.extras.get(name) {
            Some(ParamValue::Flag(v)) => *v,
            other => panic!("param --{name} is not a declared flag (got {other:?})"),
        }
    }

    /// An extra string parameter. See [`Params::usize`] for panics.
    #[must_use]
    pub fn str(&self, name: &str) -> &str {
        match self.extras.get(name) {
            Some(ParamValue::Str(v)) => v,
            other => panic!("param --{name} is not a declared string (got {other:?})"),
        }
    }

    /// An extra string-list parameter. See [`Params::usize`] for panics.
    #[must_use]
    pub fn list(&self, name: &str) -> &[String] {
        match self.extras.get(name) {
            Some(ParamValue::StrList(v)) => v,
            other => panic!("param --{name} is not a declared list (got {other:?})"),
        }
    }

    /// An extra string parameter when the experiment declared one under
    /// `name`, `None` otherwise. For generic callers (the service's batch
    /// scheduler probes every experiment for an optional circuit
    /// affinity) that cannot uphold [`Params::str`]'s declared-name
    /// contract.
    #[must_use]
    pub fn opt_str(&self, name: &str) -> Option<&str> {
        match self.extras.get(name) {
            Some(ParamValue::Str(v)) => Some(v),
            _ => None,
        }
    }

    /// An extra string-list parameter when declared, `None` otherwise.
    /// See [`Params::opt_str`].
    #[must_use]
    pub fn opt_list(&self, name: &str) -> Option<&[String]> {
        match self.extras.get(name) {
            Some(ParamValue::StrList(v)) => Some(&v[..]),
            _ => None,
        }
    }

    /// The defect sampling stream selected by `--rng-stream`, or
    /// [`SampleStream::V1`] for experiments that never declared
    /// [`RNG_STREAM_PARAM`] (deterministic experiments sample nothing).
    #[must_use]
    pub fn sample_stream(&self) -> SampleStream {
        match self.extras.get(RNG_STREAM_PARAM.name) {
            Some(ParamValue::Str(v)) => SampleStream::parse(v)
                .unwrap_or_else(|_| panic!("--rng-stream validated at parse time, got {v:?}")),
            _ => SampleStream::V1,
        }
    }

    /// The defect model selected by `--defect-model` (+ `--cluster-size`,
    /// `--line-rate`), or the default i.i.d. model for experiments that
    /// never declared [`DEFECT_MODEL_PARAMS`]. Parameter ranges are
    /// enforced at parse time, so this is infallible.
    #[must_use]
    pub fn defect_model(&self) -> DefectModelSpec {
        let kind = match self.extras.get(DEFECT_MODEL_PARAM.name) {
            Some(ParamValue::Str(v)) => DefectModelKind::parse(v)
                .unwrap_or_else(|_| panic!("--defect-model validated at parse time, got {v:?}")),
            _ => return DefectModelSpec::default(),
        };
        let cluster_size = match self.extras.get(CLUSTER_SIZE_PARAM.name) {
            Some(ParamValue::F64(v)) => *v,
            _ => DefectModelSpec::DEFAULT_CLUSTER_SIZE,
        };
        let line_rate = match self.extras.get(LINE_RATE_PARAM.name) {
            Some(ParamValue::F64(v)) => *v,
            _ => DefectModelSpec::DEFAULT_LINE_RATE,
        };
        DefectModelSpec::new(kind, cluster_size, line_rate)
            .expect("defect-model params validated at parse time")
    }

    /// The equivalent legacy [`ExpArgs`](crate::ExpArgs) for experiment
    /// code that predates the typed layer.
    #[must_use]
    pub fn exp_args(&self) -> crate::ExpArgs {
        crate::ExpArgs {
            samples: self.samples,
            seed: self.seed,
            defect_rate: self.defect_rate,
            stream: self.sample_stream(),
            model: self.defect_model(),
            csv: self.csv.clone(),
        }
    }

    /// The canonical `params` echo of the artifact document: the
    /// experiment-semantic parameters (common + extras in declaration
    /// order). Output routing (`--json`, `--out`, `--csv`) is deliberately
    /// excluded so artifacts stay byte-identical across hosts and
    /// invocation styles.
    #[must_use]
    pub fn to_json(&self, extra: &[ParamSpec]) -> JsonValue {
        let mut fields = vec![
            ("samples".to_owned(), JsonValue::usize(self.samples)),
            ("seed".to_owned(), JsonValue::u64(self.seed)),
            ("defect_rate".to_owned(), JsonValue::f64(self.defect_rate)),
        ];
        for s in extra {
            let value = self
                .extras
                .get(s.name)
                .expect("defaults seeded every declared extra");
            // The defect-model family is echoed only when non-default:
            // these params postdate the frozen artifact pins, and omitting
            // them at their defaults keeps every existing document
            // byte-identical.
            if OMIT_DEFAULT_ECHO.contains(&s.name)
                && value
                    == &s
                        .parse_value(s.default)
                        .expect("defaults validated by Params::defaults")
            {
                continue;
            }
            fields.push((s.name.replace('-', "_"), value.to_json()));
        }
        JsonValue::Obj(fields)
    }

    /// Renders the auto-generated usage text for an experiment: common
    /// flags followed by the experiment's extras, one line each.
    #[must_use]
    pub fn usage(exp_name: &str, description: &str, extra: &[ParamSpec]) -> String {
        let mut out = format!("{description}\n\nusage: xbar run {exp_name} [flags]\n\nflags:\n");
        for s in COMMON_PARAMS {
            push_flag_line(&mut out, s);
        }
        if !extra.is_empty() {
            out.push_str("\nexperiment flags:\n");
            for s in extra {
                push_flag_line(&mut out, s);
            }
        }
        out
    }
}

fn push_flag_line(out: &mut String, s: &ParamSpec) {
    let hint = s.kind.value_hint();
    let flag = if hint.is_empty() {
        format!("--{}", s.name)
    } else {
        format!("--{} {hint}", s.name)
    };
    let default = if s.default.is_empty() || s.kind == ParamKind::Flag {
        String::new()
    } else {
        format!(" (default {})", s.default)
    };
    out.push_str(&format!("  {flag:<22} {}{default}\n", s.help));
}

fn parse_num<T: std::str::FromStr>(flag: &str, text: &str) -> Result<T, UsageError> {
    text.parse()
        .map_err(|_| usage_err(format!("--{flag}: expected a number, got {text:?}")))
}

#[cfg(test)]
mod tests {
    use super::*;

    const EXTRA: &[ParamSpec] = &[
        spec("circuit", ParamKind::Str, "rd53", "registry circuit"),
        spec(
            "spare-rows",
            ParamKind::USize,
            "0",
            "spare horizontal lines",
        ),
        spec("verbose", ParamKind::Flag, "false", "print more"),
        spec("sizes", ParamKind::StrList, "8,9", "input sizes"),
        RNG_STREAM_PARAM,
    ];

    fn parse(words: &[&str]) -> Result<Params, UsageError> {
        Params::parse(EXTRA, words.iter().map(|s| (*s).to_owned()))
    }

    #[test]
    fn defaults_match_the_paper_and_specs() {
        let p = parse(&[]).expect("defaults parse");
        assert_eq!(p.samples, 200);
        assert_eq!(p.seed, 2018);
        assert!((p.defect_rate - 0.10).abs() < 1e-12);
        assert_eq!(p.str("circuit"), "rd53");
        assert_eq!(p.usize("spare-rows"), 0);
        assert!(!p.flag("verbose"));
        assert_eq!(p.list("sizes"), ["8", "9"]);
    }

    #[test]
    fn common_and_extra_flags_roundtrip() {
        let p = parse(&[
            "--samples",
            "50",
            "--seed",
            "9",
            "--defect-rate",
            "0.2",
            "--circuit",
            "bw",
            "--spare-rows",
            "4",
            "--verbose",
            "--sizes",
            "10,15",
            "--csv",
            "/tmp/x.csv",
        ])
        .expect("parses");
        assert_eq!(p.samples, 50);
        assert_eq!(p.seed, 9);
        assert_eq!(p.str("circuit"), "bw");
        assert_eq!(p.usize("spare-rows"), 4);
        assert!(p.flag("verbose"));
        assert_eq!(p.list("sizes"), ["10", "15"]);
        assert_eq!(p.csv.as_deref(), Some(std::path::Path::new("/tmp/x.csv")));
    }

    #[test]
    fn opt_accessors_probe_without_panicking() {
        let p = parse(&["--circuit", "bw", "--sizes", "10,15"]).expect("parses");
        assert_eq!(p.opt_str("circuit"), Some("bw"));
        assert_eq!(
            p.opt_list("sizes"),
            Some(&["10".to_owned(), "15".to_owned()][..])
        );
        // Undeclared names and kind mismatches are None, not a panic —
        // generic callers (the service batch scheduler) rely on this.
        assert_eq!(p.opt_str("circuits"), None);
        assert_eq!(p.opt_list("circuit"), None);
        assert_eq!(p.opt_str("sizes"), None);
    }

    #[test]
    fn quick_is_order_independent() {
        for words in [
            &["--quick", "--samples", "500"][..],
            &["--samples", "500", "--quick"][..],
        ] {
            assert_eq!(parse(words).expect("parses").samples, 50);
        }
        assert_eq!(parse(&["--quick"]).expect("parses").samples, 20);
        // Floor of 10 samples even for tiny campaigns.
        assert_eq!(
            parse(&["--samples", "3", "--quick"])
                .expect("parses")
                .samples,
            10
        );
    }

    #[test]
    fn malformed_flags_are_errors_not_panics() {
        for (words, needle) in [
            (&["--frobnicate"][..], "unknown flag"),
            (&["--samples"][..], "needs a value"),
            (&["--samples", "many"][..], "expected a number"),
            (&["--spare-rows", "-1"][..], "unsigned"),
            (&["--defect-rate", "NaN"][..], "[0, 1]"),
            (&["--defect-rate", "1.5"][..], "[0, 1]"),
            (&["--defect-rate", "-0.1"][..], "[0, 1]"),
            (&["--samples", "0"][..], "at least 1"),
            (&["positional"][..], "expected a --flag"),
            (&["--sizes", ""][..], "non-empty"),
        ] {
            let err = parse(words).expect_err("must fail");
            assert!(err.0.contains(needle), "{words:?}: {err}");
        }
    }

    #[test]
    fn enum_params_validate_their_choices() {
        // Default: the declared literal, typed through sample_stream().
        let p = parse(&[]).expect("defaults parse");
        assert_eq!(p.str("rng-stream"), "v1");
        assert_eq!(p.sample_stream(), SampleStream::V1);

        let p = parse(&["--rng-stream", "v2"]).expect("parses");
        assert_eq!(p.sample_stream(), SampleStream::V2);

        let err = parse(&["--rng-stream", "v3"]).expect_err("must fail");
        assert!(err.0.contains("one of v1, v2"), "{err}");
    }

    #[test]
    fn sample_stream_defaults_to_v1_when_undeclared() {
        // Experiments that never declared RNG_STREAM_PARAM (deterministic
        // ones) still answer V1 instead of panicking.
        let p = Params::parse(&[], std::iter::empty()).expect("parses");
        assert_eq!(p.sample_stream(), SampleStream::V1);
    }

    #[test]
    fn enum_usage_hint_lists_the_choices() {
        let text = Params::usage("demo", "a demo experiment", EXTRA);
        assert!(text.contains("--rng-stream v1|v2"), "{text}");
        assert!(text.contains("(default v1)"), "{text}");
    }

    const MODELED: &[ParamSpec] = &[
        RNG_STREAM_PARAM,
        DEFECT_MODEL_PARAM,
        CLUSTER_SIZE_PARAM,
        LINE_RATE_PARAM,
    ];

    fn parse_modeled(words: &[&str]) -> Result<Params, UsageError> {
        Params::parse(MODELED, words.iter().map(|s| (*s).to_owned()))
    }

    #[test]
    fn defect_model_defaults_parses_and_normalizes() {
        // Default and undeclared both answer the i.i.d. model.
        let p = parse_modeled(&[]).expect("defaults parse");
        assert_eq!(p.defect_model(), DefectModelSpec::default());
        let p = Params::parse(&[], std::iter::empty()).expect("parses");
        assert_eq!(p.defect_model(), DefectModelSpec::default());

        let p =
            parse_modeled(&["--defect-model", "clustered", "--cluster-size", "6"]).expect("parses");
        let spec = p.defect_model();
        assert_eq!(spec.kind(), DefectModelKind::Clustered);
        assert!((spec.cluster_size() - 6.0).abs() < 1e-12);

        let p =
            parse_modeled(&["--defect-model", "lines", "--line-rate", "0.125"]).expect("parses");
        let spec = p.defect_model();
        assert_eq!(spec.kind(), DefectModelKind::Lines);
        assert!((spec.line_rate() - 0.125).abs() < 1e-12);

        // A parameter the chosen kind never consumes is normalized back to
        // its default, so campaign identity comparisons stay exact.
        let p = parse_modeled(&["--defect-model", "lines", "--cluster-size", "9"]).expect("parses");
        assert!(
            (p.defect_model().cluster_size() - DefectModelSpec::DEFAULT_CLUSTER_SIZE).abs() < 1e-12
        );
    }

    #[test]
    fn defect_model_params_are_range_checked_at_parse_time() {
        for (words, needle) in [
            (&["--defect-model", "blobs"][..], "one of iid, clustered"),
            (&["--cluster-size", "0.5"][..], "at least 1"),
            (&["--cluster-size", "NaN"][..], "finite"),
            (&["--cluster-size", "inf"][..], "finite"),
            (&["--line-rate", "1.5"][..], "[0, 1]"),
            (&["--line-rate", "-0.1"][..], "[0, 1]"),
            (&["--line-rate", "NaN"][..], "finite"),
        ] {
            let err = parse_modeled(words).expect_err("must fail");
            assert!(err.0.contains(needle), "{words:?}: {err}");
        }
    }

    #[test]
    fn default_model_params_are_omitted_from_the_echo() {
        // The frozen-artifact contract: at their defaults the model params
        // leave no trace in the params echo, so pre-existing documents stay
        // byte-identical.
        let p = parse_modeled(&[]).expect("defaults parse");
        let text = p.to_json(MODELED).render();
        // `rng_stream` predates the freeze and is echoed unconditionally;
        // the model family must leave no trace at its defaults.
        assert!(text.contains("\"rng_stream\": \"v1\""), "{text}");
        for absent in ["defect_model", "cluster_size", "line_rate"] {
            assert!(
                !text.contains(absent),
                "default echo leaks {absent}: {text}"
            );
        }

        let p =
            parse_modeled(&["--defect-model", "clustered", "--cluster-size", "6"]).expect("parses");
        let text = p.to_json(MODELED).render();
        assert!(text.contains("\"defect_model\": \"clustered\""), "{text}");
        assert!(text.contains("\"cluster_size\": 6.0"), "{text}");
        assert!(!text.contains("line_rate"), "{text}");
    }

    #[test]
    fn params_echo_is_ordered_and_excludes_output_routing() {
        let p = parse(&["--json", "--out", "/tmp/a", "--csv", "/tmp/b.csv"]).expect("parses");
        let text = p.to_json(EXTRA).render();
        assert!(text.starts_with("{\n  \"samples\": 200,\n  \"seed\": 2018,"));
        assert!(text.contains("\"spare_rows\": 0"));
        assert!(!text.contains("csv"), "{text}");
        assert!(!text.contains("/tmp"), "{text}");
    }

    #[test]
    fn usage_lists_common_and_extra_flags() {
        let text = Params::usage("demo", "a demo experiment", EXTRA);
        for needle in [
            "--samples N",
            "--spare-rows N",
            "--sizes a,b",
            "xbar run demo",
        ] {
            assert!(text.contains(needle), "missing {needle}: {text}");
        }
    }
}
