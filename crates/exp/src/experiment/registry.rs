//! The static experiment registry: every reproduction and extension study
//! in the repository, addressable by name through one table. `xbar list`,
//! `xbar run`, the CI smoke loop, and the bench harness all resolve
//! experiments here — adding a workload is adding one line.

use super::Experiment;
use crate::experiments::estimate_yield::EstimateYieldExperiment;
use crate::experiments::ext_ablation_hba::ExtAblationHbaExperiment;
use crate::experiments::ext_analog_validation::ExtAnalogValidationExperiment;
use crate::experiments::ext_cluster_tolerance::ExtClusterToleranceExperiment;
use crate::experiments::ext_column_redundancy::ExtColumnRedundancyExperiment;
use crate::experiments::ext_defect_scan::ExtDefectScanExperiment;
use crate::experiments::ext_model_yield::ExtModelYieldExperiment;
use crate::experiments::ext_multilevel_defects::ExtMultilevelDefectsExperiment;
use crate::experiments::ext_yield_redundancy::ExtYieldRedundancyExperiment;
use crate::experiments::fig1::Fig1Experiment;
use crate::experiments::fig2_fig4::Fig2Fig4Experiment;
use crate::experiments::fig3::Fig3Experiment;
use crate::experiments::fig5::Fig5Experiment;
use crate::experiments::fig6::Fig6Experiment;
use crate::experiments::fig7::Fig7Experiment;
use crate::experiments::fig8::Fig8Experiment;
use crate::experiments::table1::Table1Experiment;
use crate::experiments::table2::Table2Experiment;

/// Every registered experiment, in presentation order (paper tables, then
/// figures, then extension studies, then building blocks).
static REGISTRY: [&dyn Experiment; 18] = [
    &Table1Experiment,
    &Table2Experiment,
    &Fig1Experiment,
    &Fig2Fig4Experiment,
    &Fig3Experiment,
    &Fig5Experiment,
    &Fig6Experiment,
    &Fig7Experiment,
    &Fig8Experiment,
    &ExtYieldRedundancyExperiment,
    &ExtMultilevelDefectsExperiment,
    &ExtAblationHbaExperiment,
    &ExtAnalogValidationExperiment,
    &ExtColumnRedundancyExperiment,
    &ExtDefectScanExperiment,
    &ExtModelYieldExperiment,
    &ExtClusterToleranceExperiment,
    &EstimateYieldExperiment,
];

/// The full experiment registry.
#[must_use]
pub fn registry() -> &'static [&'static dyn Experiment] {
    &REGISTRY
}

/// Looks an experiment up by its registry name.
#[must_use]
pub fn find_experiment(name: &str) -> Option<&'static dyn Experiment> {
    registry().iter().find(|e| e.name() == name).copied()
}
