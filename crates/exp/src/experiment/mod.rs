//! The typed `Experiment` API: one trait, one static registry, one
//! canonical artifact schema — the single surface every figure/table
//! reproduction and every future workload sits behind (and what the
//! `xbar` CLI, the bench harness, and remote launchers drive).
//!
//! An experiment declares its name, description, and extra typed
//! parameters ([`ParamSpec`]) once; the CLI derives flag parsing and
//! `--help` from the declaration, and [`Experiment::run`] receives the
//! resolved [`Params`] plus a [`Reporter`] for human-facing narration.
//! The returned [`Artifact`] carries only **seed-deterministic** data
//! (wall-clock timings stay in the human report), rendered through the
//! raw-text-preserving writer in [`crate::shard::json`] so the same
//! campaign produces byte-identical artifacts on any host and across any
//! shard layout.

mod params;
mod registry;

pub use params::{
    spec, ParamKind, ParamSpec, ParamValue, Params, UsageError, CLUSTER_SIZE_PARAM, COMMON_PARAMS,
    DEFECT_MODEL_PARAM, DEFECT_MODEL_PARAMS, LINE_RATE_PARAM, RNG_STREAM_PARAM,
};
pub use registry::{find_experiment, registry};

use crate::shard::json::JsonValue;
use crate::table::Table;
use std::fmt;

/// Schema tag of every experiment artifact document.
pub const ARTIFACT_SCHEMA: &str = "xbar-artifact/1";

/// An experiment failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExpError {
    /// Bad flags or parameter values — the driver prints usage and exits
    /// with code 2.
    Usage(String),
    /// The experiment ran and failed (I/O, invariant violation, …) — the
    /// driver exits with code 1.
    Failed(String),
}

impl fmt::Display for ExpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExpError::Usage(msg) | ExpError::Failed(msg) => write!(f, "{msg}"),
        }
    }
}

impl std::error::Error for ExpError {}

impl From<UsageError> for ExpError {
    fn from(e: UsageError) -> Self {
        ExpError::Usage(e.0)
    }
}

/// One registered experiment: a paper table/figure family or an extension
/// study, runnable through [`Experiment::run`] with typed parameters.
pub trait Experiment: Sync {
    /// Registry name (also the `xbar run <name>` subcommand and the
    /// artifact's `experiment` field).
    fn name(&self) -> &'static str;

    /// One-line description shown by `xbar list` / `xbar describe`.
    fn description(&self) -> &'static str;

    /// Extra typed parameters beyond the common set (empty by default).
    fn extra_params(&self) -> &'static [ParamSpec] {
        &[]
    }

    /// Runs the experiment: human-facing output through `reporter`, the
    /// deterministic result as the returned [`Artifact`].
    ///
    /// # Errors
    ///
    /// [`ExpError::Usage`] for bad parameter values, [`ExpError::Failed`]
    /// for runtime failures.
    fn run(&self, params: &Params, reporter: &mut Reporter) -> Result<Artifact, ExpError>;
}

/// The deterministic result payload of one experiment run. Wrap the
/// experiment-specific data tree with [`Artifact::new`]; the framework
/// adds the schema envelope (`schema`, `experiment`, `params`).
#[derive(Debug, Clone, PartialEq)]
pub struct Artifact {
    /// Experiment-specific payload (an insertion-ordered object).
    pub data: JsonValue,
}

impl Artifact {
    /// Wraps an experiment's data tree.
    #[must_use]
    pub fn new(data: JsonValue) -> Self {
        Self { data }
    }

    /// Renders the full canonical artifact document for `exp` run with
    /// `params`: schema tag, experiment name, the deterministic parameter
    /// echo, and the data payload, with a trailing newline (file-ready).
    #[must_use]
    pub fn render(&self, exp: &dyn Experiment, params: &Params) -> String {
        let doc = JsonValue::obj([
            ("schema", JsonValue::str(ARTIFACT_SCHEMA)),
            ("experiment", JsonValue::str(exp.name())),
            ("params", params.to_json(exp.extra_params())),
            ("data", self.data.clone()),
        ]);
        let mut text = doc.render();
        text.push('\n');
        text
    }
}

enum Sink {
    /// Print to stdout (interactive runs).
    Stdout,
    /// Drop human output (`--json` mode).
    Quiet,
    /// Capture into a buffer (tests).
    Buffer(String),
}

/// Where an experiment's human-facing narration goes. Artifact data never
/// passes through here — the reporter is presentation only, so `--json`
/// runs can drop it wholesale.
pub struct Reporter {
    sink: Sink,
}

impl fmt::Debug for Reporter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let kind = match self.sink {
            Sink::Stdout => "stdout",
            Sink::Quiet => "quiet",
            Sink::Buffer(_) => "buffer",
        };
        write!(f, "Reporter({kind})")
    }
}

impl Reporter {
    /// A reporter printing to stdout.
    #[must_use]
    pub fn stdout() -> Self {
        Self { sink: Sink::Stdout }
    }

    /// A reporter that drops all human output (`--json` mode).
    #[must_use]
    pub fn quiet() -> Self {
        Self { sink: Sink::Quiet }
    }

    /// A reporter capturing output for assertions.
    #[must_use]
    pub fn buffer() -> Self {
        Self {
            sink: Sink::Buffer(String::new()),
        }
    }

    /// Emits one line of narration.
    pub fn line(&mut self, text: impl fmt::Display) {
        match &mut self.sink {
            Sink::Stdout => println!("{text}"),
            Sink::Quiet => {}
            Sink::Buffer(buf) => {
                use fmt::Write as _;
                let _ = writeln!(buf, "{text}");
            }
        }
    }

    /// Emits a blank separator line.
    pub fn blank(&mut self) {
        self.line("");
    }

    /// Emits an ASCII table.
    pub fn table(&mut self, table: &Table) {
        match &mut self.sink {
            Sink::Stdout => table.print(),
            Sink::Quiet => {}
            Sink::Buffer(buf) => buf.push_str(&table.to_ascii()),
        }
    }

    /// The captured output of a [`Reporter::buffer`] reporter (`None` for
    /// the other sinks).
    #[must_use]
    pub fn buffered(&self) -> Option<&str> {
        match &self.sink {
            Sink::Buffer(buf) => Some(buf),
            _ => None,
        }
    }
}

/// Writes the experiment's primary table as CSV when `--csv PATH` was
/// given, reporting the path through the reporter.
///
/// # Errors
///
/// Fails with [`ExpError::Failed`] when the file cannot be written.
pub fn write_csv_if_requested(
    params: &Params,
    reporter: &mut Reporter,
    table: &Table,
) -> Result<(), ExpError> {
    if let Some(path) = &params.csv {
        table
            .write_csv(path)
            .map_err(|e| ExpError::Failed(format!("cannot write CSV {}: {e}", path.display())))?;
        reporter.line(format!("wrote CSV to {}", path.display()));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Demo;

    impl Experiment for Demo {
        fn name(&self) -> &'static str {
            "demo"
        }

        fn description(&self) -> &'static str {
            "demo experiment"
        }

        fn run(&self, params: &Params, reporter: &mut Reporter) -> Result<Artifact, ExpError> {
            reporter.line("running");
            Ok(Artifact::new(JsonValue::obj([(
                "seed",
                JsonValue::u64(params.seed),
            )])))
        }
    }

    #[test]
    fn artifact_envelope_has_schema_name_params_data() {
        let params = Params::defaults(&[]);
        let mut reporter = Reporter::buffer();
        let artifact = Demo.run(&params, &mut reporter).expect("runs");
        let text = artifact.render(&Demo, &params);
        assert!(text.ends_with('\n'));
        let doc = crate::shard::json::Json::parse(&text).expect("valid json");
        assert_eq!(
            doc.get("schema").and_then(|v| v.as_str()),
            Some(ARTIFACT_SCHEMA)
        );
        assert_eq!(doc.get("experiment").and_then(|v| v.as_str()), Some("demo"));
        assert_eq!(
            doc.get("params")
                .and_then(|p| p.get("seed"))
                .and_then(|v| v.as_u64()),
            Some(2018)
        );
        assert_eq!(
            doc.get("data")
                .and_then(|d| d.get("seed"))
                .and_then(|v| v.as_u64()),
            Some(2018)
        );
        assert_eq!(reporter.buffered(), Some("running\n"));
    }

    #[test]
    fn quiet_reporter_drops_output() {
        let mut reporter = Reporter::quiet();
        reporter.line("x");
        reporter.table(&Table::new("t", &["a"]));
        assert_eq!(reporter.buffered(), None);
    }
}
