//! ASCII table and CSV rendering for experiment output.

use std::fmt::Write as _;
use std::fs;
use std::io;
use std::path::Path;

/// A simple experiment result table.
///
/// # Examples
///
/// ```
/// use xbar_exp::Table;
///
/// let mut t = Table::new("demo", &["name", "value"]);
/// t.row(["rd53", "544"]);
/// let text = t.to_ascii();
/// assert!(text.contains("rd53"));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// New table with a title and column headers.
    #[must_use]
    pub fn new(title: &str, headers: &[&str]) -> Self {
        Self {
            title: title.to_owned(),
            headers: headers.iter().map(|s| (*s).to_owned()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row; missing cells are blank, extras are dropped.
    pub fn row<I, S>(&mut self, cells: I)
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        let mut row: Vec<String> = cells.into_iter().map(Into::into).collect();
        row.resize(self.headers.len(), String::new());
        self.rows.push(row);
    }

    /// Number of data rows.
    #[must_use]
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when the table has no data rows.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders an aligned ASCII table.
    #[must_use]
    pub fn to_ascii(&self) -> String {
        let cols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (c, cell) in row.iter().enumerate().take(cols) {
                widths[c] = widths[c].max(cell.len());
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "== {} ==", self.title);
        let line = |out: &mut String| {
            for (c, w) in widths.iter().enumerate() {
                let _ = write!(out, "+{}", "-".repeat(w + 2));
                if c + 1 == cols {
                    out.push('+');
                    out.push('\n');
                }
            }
        };
        line(&mut out);
        for (c, h) in self.headers.iter().enumerate() {
            let _ = write!(out, "| {h:width$} ", width = widths[c]);
        }
        out.push('|');
        out.push('\n');
        line(&mut out);
        for row in &self.rows {
            for (c, cell) in row.iter().enumerate() {
                let _ = write!(out, "| {cell:>width$} ", width = widths[c]);
            }
            out.push('|');
            out.push('\n');
        }
        line(&mut out);
        out
    }

    /// Renders RFC-4180-ish CSV (quotes cells containing commas/quotes).
    #[must_use]
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        let escape = |cell: &str| -> String {
            if cell.contains(',') || cell.contains('"') || cell.contains('\n') {
                format!("\"{}\"", cell.replace('"', "\"\""))
            } else {
                cell.to_owned()
            }
        };
        let _ = writeln!(
            out,
            "{}",
            self.headers
                .iter()
                .map(|h| escape(h))
                .collect::<Vec<_>>()
                .join(",")
        );
        for row in &self.rows {
            let _ = writeln!(
                out,
                "{}",
                row.iter().map(|c| escape(c)).collect::<Vec<_>>().join(",")
            );
        }
        out
    }

    /// Prints the ASCII rendering to stdout.
    pub fn print(&self) {
        print!("{}", self.to_ascii());
    }

    /// Writes the CSV rendering to a file.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors.
    pub fn write_csv(&self, path: &Path) -> io::Result<()> {
        fs::write(path, self.to_csv())
    }
}

/// Formats a fraction as a percentage with one decimal.
#[must_use]
pub fn pct(fraction: f64) -> String {
    format!("{:.1}", fraction * 100.0)
}

/// Formats seconds with adaptive precision.
#[must_use]
pub fn secs(seconds: f64) -> String {
    if seconds < 0.001 {
        format!("{:.6}", seconds)
    } else {
        format!("{:.4}", seconds)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ascii_contains_all_cells() {
        let mut t = Table::new("t", &["a", "b"]);
        t.row(["1", "2"]);
        t.row(["333", "4"]);
        let s = t.to_ascii();
        assert!(s.contains("333"));
        assert!(s.contains("| a"));
    }

    #[test]
    fn csv_escapes_commas() {
        let mut t = Table::new("t", &["a"]);
        t.row(["x,y"]);
        assert!(t.to_csv().contains("\"x,y\""));
    }

    #[test]
    fn short_rows_are_padded() {
        let mut t = Table::new("t", &["a", "b", "c"]);
        t.row(["only"]);
        assert_eq!(t.len(), 1);
        let s = t.to_csv();
        assert!(s.lines().nth(1).expect("row").contains("only,,"));
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(pct(0.985), "98.5");
        assert_eq!(secs(0.0001234), "0.000123");
        assert_eq!(secs(0.25), "0.2500");
    }
}
