//! Atomic file writes for artifacts and checkpoints.
//!
//! Artifacts, shard partials, and cache entries are all consumed by
//! *other* processes (a resuming coordinator, the serving daemon, a CI
//! `cmp`), so a torn write is not a local bug — it poisons whoever reads
//! the file next. Every durable write therefore goes through
//! [`write_atomic`]: the bytes land in a temporary file in the **same
//! directory** (staying on one filesystem so the rename is atomic) and
//! are renamed into place only once fully written. A process killed at
//! any instant leaves either the old file, the new file, or a stray
//! `.tmp` sibling that readers never look at — never a truncated target.

use std::fs;
use std::io::{self, Write};
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};

/// Per-process counter so concurrent writers in one process never race on
/// the same temporary name (distinct processes are separated by pid).
static TMP_SEQ: AtomicU64 = AtomicU64::new(0);

/// Writes `bytes` to `path` atomically: temp file in the same directory,
/// flushed and synced, then renamed over the target. On any error the
/// temporary file is removed; the target is either untouched or fully
/// replaced, never torn.
///
/// # Errors
///
/// Propagates the underlying I/O error (missing parent directory,
/// permissions, full disk, ...). `path` must name a file, not a
/// directory.
pub fn write_atomic(path: &Path, bytes: &[u8]) -> io::Result<()> {
    let file_name = path.file_name().ok_or_else(|| {
        io::Error::new(
            io::ErrorKind::InvalidInput,
            format!("write_atomic target has no file name: {}", path.display()),
        )
    })?;
    let dir = match path.parent() {
        Some(parent) if !parent.as_os_str().is_empty() => parent,
        _ => Path::new("."),
    };
    let tmp = dir.join(format!(
        ".{}.tmp-{}-{}",
        file_name.to_string_lossy(),
        std::process::id(),
        TMP_SEQ.fetch_add(1, Ordering::Relaxed),
    ));
    let result = (|| {
        let mut file = fs::File::create(&tmp)?;
        file.write_all(bytes)?;
        file.sync_all()?;
        fs::rename(&tmp, path)
    })();
    if result.is_err() {
        let _ = fs::remove_file(&tmp);
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scratch_dir(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("xbar-atomic-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).expect("create scratch dir");
        dir
    }

    #[test]
    fn writes_content_and_leaves_no_temp_files() {
        let dir = scratch_dir("basic");
        let target = dir.join("artifact.json");
        write_atomic(&target, b"{\"a\": 1}\n").expect("write");
        assert_eq!(fs::read(&target).unwrap(), b"{\"a\": 1}\n");
        let leftovers: Vec<_> = fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().file_name().to_string_lossy().into_owned())
            .filter(|n| n != "artifact.json")
            .collect();
        assert!(leftovers.is_empty(), "stray files: {leftovers:?}");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn replaces_an_existing_file_completely() {
        let dir = scratch_dir("replace");
        let target = dir.join("out.json");
        write_atomic(&target, b"old contents, quite long").expect("first write");
        write_atomic(&target, b"new").expect("second write");
        // A non-atomic in-place rewrite of a shorter payload would leave
        // the old tail behind; the rename swap must not.
        assert_eq!(fs::read(&target).unwrap(), b"new");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn missing_parent_directory_errors_and_creates_nothing() {
        let dir = scratch_dir("noparent");
        let target = dir.join("absent").join("out.json");
        assert!(write_atomic(&target, b"x").is_err());
        assert!(!target.exists());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn a_target_without_a_file_name_is_rejected() {
        let err = write_atomic(Path::new("/"), b"x").expect_err("must reject");
        assert_eq!(err.kind(), io::ErrorKind::InvalidInput);
    }

    #[test]
    fn concurrent_writers_to_one_target_never_tear() {
        let dir = scratch_dir("race");
        let target = dir.join("contended.json");
        let payloads: Vec<Vec<u8>> = (0..4_u8)
            .map(|i| vec![b'a' + i; 4096 + usize::from(i)])
            .collect();
        std::thread::scope(|scope| {
            for payload in &payloads {
                scope.spawn(|| {
                    for _ in 0..25 {
                        write_atomic(&target, payload).expect("write");
                    }
                });
            }
        });
        // Last writer wins, but every observable state is one writer's
        // payload in full — never a mix.
        let bytes = fs::read(&target).unwrap();
        assert!(
            payloads.iter().any(|p| p == &bytes),
            "target must hold exactly one complete payload"
        );
        let _ = fs::remove_dir_all(&dir);
    }
}
