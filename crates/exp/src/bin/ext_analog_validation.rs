//! Ext-D — analog validation of the digital NAND abstraction: nodal
//! analysis of the resistive read path (sneak paths included) versus the
//! logic-level simulator, plus the read-margin degradation curve that
//! bounds practical row widths.

use xbar_device::analog::{row_nand_read, ReadConfig};
use xbar_device::{Crossbar, ProgramState};
use xbar_exp::{ExpArgs, Table};

fn programmed_row(
    values: &[bool],
    rows: usize,
    cols: usize,
    target_row: usize,
) -> (Crossbar, Vec<usize>) {
    let mut xbar = Crossbar::new(rows, cols);
    let mut sense = Vec::new();
    for (c, &v) in values.iter().enumerate() {
        xbar.set_program(target_row, c, ProgramState::Active);
        xbar.store_value(target_row, c, v);
        sense.push(c);
    }
    (xbar, sense)
}

fn main() {
    let args = ExpArgs::parse("Ext-D: analog validation of the NAND read");
    let config = ReadConfig::default();
    println!(
        "read scheme: v_read = {} V through R_load = {:.0} Ω, threshold at {}·v_read",
        config.v_read, config.r_load, config.threshold_fraction
    );

    // 1. Digital-vs-analog agreement over all 4-input patterns on an
    //    8x12 array (sneak paths live).
    let mut agree = 0usize;
    let mut total = 0usize;
    for pattern in 0..16u32 {
        let values: Vec<bool> = (0..4).map(|b| pattern >> b & 1 == 1).collect();
        let (xbar, sense) = programmed_row(&values, 8, 12, 3);
        let read = row_nand_read(&xbar, 3, &sense, &config).expect("solvable");
        let digital = !values.iter().all(|&v| v);
        total += 1;
        if read.nand_value == digital {
            agree += 1;
        }
    }
    println!("digital vs analog NAND decisions on 8x12 array: {agree}/{total} agree");
    assert_eq!(agree, total);

    // 2. Read margin vs number of participating (all-R_OFF) inputs.
    let mut margin_table = Table::new(
        "Ext-D — worst-case read margin vs NAND fan-in (all inputs logic 1)",
        &["fan-in", "row voltage V", "margin V", "decision"],
    );
    for fanin in [2usize, 4, 8, 16, 32, 64] {
        let values = vec![true; fanin];
        let (xbar, sense) = programmed_row(&values, 4, fanin + 4, 1);
        let read = row_nand_read(&xbar, 1, &sense, &config).expect("solvable");
        margin_table.row([
            fanin.to_string(),
            format!("{:.4}", read.row_voltage),
            format!("{:.4}", read.margin),
            if read.nand_value {
                "NAND=1 (WRONG)"
            } else {
                "NAND=0 (correct)"
            }
            .to_string(),
        ]);
    }
    margin_table.print();

    // 3. Margin vs array size with a fixed 3-input NAND (sneak paths grow).
    let mut sneak_table = Table::new(
        "Ext-D — read margin vs array size (3-input NAND, everything else R_OFF)",
        &["array", "row voltage V", "margin V"],
    );
    for size in [4usize, 8, 16, 32] {
        let values = vec![true; 3];
        let (xbar, sense) = programmed_row(&values, size, size, size / 2);
        let read = row_nand_read(&xbar, size / 2, &sense, &config).expect("solvable");
        sneak_table.row([
            format!("{size}x{size}"),
            format!("{:.4}", read.row_voltage),
            format!("{:.4}", read.margin),
        ]);
    }
    sneak_table.print();
    println!("reading: margins shrink with fan-in (parallel R_OFF divider) and array size");
    println!("(sneak paths), but the decisions stay correct at the sizes the paper maps —");
    println!("the digital abstraction used by the mapping experiments is sound.");
    let _ = args;
}
