//! Deprecated shim: delegates to `xbar run ext_analog_validation` (same flags).

fn main() {
    xbar_exp::legacy_shim("ext_analog_validation", "ext_analog_validation");
}
