//! Deprecated shim: delegates to `xbar run fig6` (same flags).

fn main() {
    xbar_exp::legacy_shim("fig6_area_comparison", "fig6");
}
