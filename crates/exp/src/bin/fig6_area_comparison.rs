//! Fig. 6 — Monte Carlo area-cost comparison of two-level vs multi-level
//! designs on random Boolean functions (input sizes 8, 9, 10, 15; 200
//! samples each; sorted by product count).

use xbar_exp::{experiments::fig6::run_fig6, pct, ExpArgs, Table};

fn main() {
    let args = ExpArgs::parse("Fig. 6: two-level vs multi-level Monte Carlo");
    let series = run_fig6(&args, &[8, 9, 10, 15]);

    let mut summary = Table::new(
        "Fig. 6 — success rate (% of samples with multi-level < two-level)",
        &[
            "input size",
            "samples",
            "success % (paper)",
            "success % (ours)",
        ],
    );
    for s in &series {
        summary.row([
            s.input_size.to_string(),
            s.points.len().to_string(),
            s.published_success_rate.map_or("-".to_owned(), pct),
            pct(s.success_rate),
        ]);
    }
    summary.print();

    let mut points = Table::new(
        "Fig. 6 — per-sample series (sorted by product count)",
        &[
            "input_size",
            "sample",
            "products",
            "two_level_area",
            "multi_level_area",
            "ml_wins",
        ],
    );
    for s in &series {
        for (i, p) in s.points.iter().enumerate() {
            points.row([
                s.input_size.to_string(),
                i.to_string(),
                p.products.to_string(),
                p.two_level.to_string(),
                p.multi_level.to_string(),
                u8::from(p.multi_level_wins()).to_string(),
            ]);
        }
    }
    if let Some(path) = &args.csv {
        points.write_csv(path).expect("write csv");
        println!("wrote {} sample points to {}", points.len(), path.display());
    } else {
        println!("(run with --csv PATH to dump the full per-sample series)");
    }
}
