//! The unified experiment driver: `xbar list | describe | run | mc`.
//! See `xbar --help` and the crate-level docs of `xbar-exp`.

fn main() {
    std::process::exit(xbar_exp::run_cli(std::env::args().skip(1)));
}
