//! Deprecated shim: delegates to `xbar run table2` (same flags).

fn main() {
    xbar_exp::legacy_shim("table2_defect_tolerance", "table2");
}
