//! Table II — success rate and runtime of the hybrid algorithm (HBA) vs
//! the exact algorithm (EA) on optimum-size crossbars with 10% stuck-open
//! defects, 200 Monte Carlo samples per circuit.

use xbar_exp::{experiments::table2::run_table2, pct, secs, ExpArgs, Table};

fn main() {
    let args = ExpArgs::parse("Table II: HBA vs EA success rate and runtime");
    println!(
        "running {} samples/circuit at defect rate {:.0}% (seed {})...",
        args.samples,
        args.defect_rate * 100.0,
        args.seed
    );
    let rows = run_table2(&args, None);

    let mut table = Table::new(
        "Table II — HBA vs EA on optimum-size crossbars",
        &[
            "name",
            "I",
            "O",
            "P",
            "area",
            "area paper",
            "IR%",
            "IR% paper",
            "HBA Psucc%",
            "paper",
            "HBA time s",
            "paper",
            "EA Psucc%",
            "paper",
            "EA time s",
            "paper",
        ],
    );
    for r in &rows {
        table.row([
            r.name.clone(),
            r.inputs.to_string(),
            r.outputs.to_string(),
            r.products.to_string(),
            r.area.to_string(),
            r.area_published.to_string(),
            pct(r.inclusion_ratio),
            r.ir_published.map_or("-".into(), pct),
            pct(r.hba_success),
            r.hba_published.map_or("-".into(), |(p, _)| pct(p)),
            secs(r.hba_time),
            r.hba_published.map_or("-".into(), |(_, t)| secs(t)),
            pct(r.ea_success),
            r.ea_published.map_or("-".into(), |(p, _)| pct(p)),
            secs(r.ea_time),
            r.ea_published.map_or("-".into(), |(_, t)| secs(t)),
        ]);
    }
    table.print();

    // Headline checks the paper reports.
    let speedups: Vec<f64> = rows
        .iter()
        .filter(|r| r.hba_time > 0.0)
        .map(|r| r.ea_time / r.hba_time)
        .collect();
    let max_speedup = speedups.iter().cloned().fold(0.0, f64::max);
    let worst_gap = rows
        .iter()
        .map(|r| r.ea_success - r.hba_success)
        .fold(0.0, f64::max);
    println!(
        "HBA vs EA runtime: up to {max_speedup:.0}x faster (paper: 1–2 orders of magnitude on large circuits)"
    );
    println!(
        "largest EA−HBA success gap: {:.0} percentage points (paper: up to ~15)",
        worst_gap * 100.0
    );
    if let Some(path) = &args.csv {
        table.write_csv(path).expect("write csv");
        println!("wrote CSV to {}", path.display());
    }
}
