//! Deprecated shim: delegates to `xbar run ext_ablation_hba` (same flags).

fn main() {
    xbar_exp::legacy_shim("ext_ablation_hba", "ext_ablation_hba");
}
