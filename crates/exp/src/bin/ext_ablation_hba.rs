//! Ext-C — ablation of the hybrid algorithm's design choices on the
//! Table II workload:
//!
//! * full HBA (greedy + backtracking + exact Munkres outputs);
//! * no backtracking (pure greedy minterms);
//! * greedy outputs (no Munkres);
//! * EA (all-rows Munkres) and the Hopcroft–Karp feasibility bound.

use rand::rngs::StdRng;
use rand::SeedableRng;
use xbar_core::{
    map_exact, map_hybrid_with, mapping_feasible, CrossbarMatrix, FunctionMatrix, HybridOptions,
};
use xbar_exp::{monte_carlo, pct, ExpArgs, Table};
use xbar_logic::bench_reg::find;

fn main() {
    let args = ExpArgs::parse("Ext-C: HBA ablation study");
    let circuits = ["rd53", "sao2", "rd73", "clip", "rd84", "exp5"];
    let mut table = Table::new(
        "Ext-C — success rate % by algorithm variant (10% stuck-open)",
        &[
            "name",
            "HBA full",
            "no backtrack",
            "greedy outputs",
            "EA",
            "feasible (HK bound)",
        ],
    );

    for name in circuits {
        let info = find(name).expect("registered circuit");
        let cover = info.cover(args.seed);
        let fm = FunctionMatrix::from_cover(&cover);
        let rows = fm.num_rows();
        let cols = fm.num_cols();

        #[derive(Clone, Copy, Default)]
        struct Counts {
            full: usize,
            no_backtrack: usize,
            greedy_outputs: usize,
            exact: usize,
            feasible: usize,
        }
        let samples = monte_carlo(args.samples, args.seed ^ 0xAB1A, |_, seed| {
            let mut rng = StdRng::seed_from_u64(seed);
            let cm = CrossbarMatrix::sample_stuck_open(rows, cols, args.defect_rate, &mut rng);
            Counts {
                full: map_hybrid_with(&fm, &cm, HybridOptions::default()).is_success() as usize,
                no_backtrack: map_hybrid_with(
                    &fm,
                    &cm,
                    HybridOptions {
                        backtracking: false,
                        ..HybridOptions::default()
                    },
                )
                .is_success() as usize,
                greedy_outputs: map_hybrid_with(
                    &fm,
                    &cm,
                    HybridOptions {
                        exact_outputs: false,
                        ..HybridOptions::default()
                    },
                )
                .is_success() as usize,
                exact: map_exact(&fm, &cm).is_success() as usize,
                feasible: mapping_feasible(&fm, &cm) as usize,
            }
        });
        let total = samples.len() as f64;
        let sum = samples.iter().fold(Counts::default(), |a, b| Counts {
            full: a.full + b.full,
            no_backtrack: a.no_backtrack + b.no_backtrack,
            greedy_outputs: a.greedy_outputs + b.greedy_outputs,
            exact: a.exact + b.exact,
            feasible: a.feasible + b.feasible,
        });
        table.row([
            name.to_owned(),
            pct(sum.full as f64 / total),
            pct(sum.no_backtrack as f64 / total),
            pct(sum.greedy_outputs as f64 / total),
            pct(sum.exact as f64 / total),
            pct(sum.feasible as f64 / total),
        ]);
    }
    table.print();
    println!("reading: EA equals the feasibility bound by construction; the gap between");
    println!("\"no backtrack\" and \"HBA full\" is what Algorithm 1's backtracking step buys;");
    println!("the gap between \"greedy outputs\" and \"HBA full\" is what Munkres buys —");
    println!("the paper's §IV-B rationale (\"a single defect might discard a whole output\").");
    if let Some(path) = &args.csv {
        table.write_csv(path).expect("write csv");
        println!("wrote CSV to {}", path.display());
    }
}
