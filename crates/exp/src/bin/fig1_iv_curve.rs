//! Fig. 1 — memristor I-V characteristics and switching behaviour.
//!
//! Sweeps a triangular voltage across a fresh device with both the abrupt
//! (ideal Snider) and linear-drift models and prints the hysteresis loop as
//! CSV-ready series, plus the SET/RESET summary the figure annotates.

use xbar_device::{iv_sweep, MemristorParams};
use xbar_exp::{ExpArgs, Table};

fn main() {
    let args = ExpArgs::parse("Fig. 1: memristor I-V hysteresis sweep");
    let params = MemristorParams::default();
    println!(
        "device: R_ON = {:.0} Ω (logic 0), R_OFF = {:.0} Ω (logic 1), v_write = ±{} V, v_hold = ±{} V",
        params.r_on, params.r_off, params.v_write, params.v_hold
    );

    let mut table = Table::new(
        "Fig. 1 — I-V sweep (0 → +3V → 0 → −3V → 0)",
        &[
            "leg_point",
            "voltage_V",
            "abrupt_current_A",
            "drift_current_A",
            "drift_state_w",
        ],
    );
    let abrupt = iv_sweep(params, 3.0, 40, true);
    let drift = iv_sweep(params, 3.0, 40, false);
    for (i, (a, d)) in abrupt.iter().zip(&drift).enumerate() {
        table.row([
            i.to_string(),
            format!("{:.3}", a.voltage),
            format!("{:.3e}", a.current),
            format!("{:.3e}", d.current),
            format!("{:.3}", d.state),
        ]);
    }
    if let Some(path) = &args.csv {
        table.write_csv(path).expect("write csv");
        println!("wrote {} points to {}", table.len(), path.display());
    } else {
        // Print a condensed view (every 8th point) and the key events.
        let mut condensed = Table::new(
            "Fig. 1 — I-V sweep (condensed; use --csv for all points)",
            &["voltage_V", "abrupt_current_A", "drift_state_w"],
        );
        for (i, (a, d)) in abrupt.iter().zip(&drift).enumerate() {
            if i % 8 == 0 {
                condensed.row([
                    format!("{:.3}", a.voltage),
                    format!("{:.3e}", a.current),
                    format!("{:.3}", d.state),
                ]);
            }
        }
        condensed.print();
    }

    let set_at = abrupt.iter().find(|p| p.state > 0.5).map(|p| p.voltage);
    let reset_at = abrupt
        .iter()
        .skip_while(|p| p.state < 0.5)
        .find(|p| p.state < 0.5)
        .map(|p| p.voltage);
    println!("SET observed at {set_at:?} V (paper: +Vw), RESET at {reset_at:?} V (paper: −Vw)");
    println!(
        "hysteresis confirmed: current ratio at +1 V between down/up legs = {:.1}x",
        current_at(&abrupt[40..], 1.0) / current_at(&abrupt[..40], 1.0)
    );
}

fn current_at(points: &[xbar_device::IvPoint], voltage: f64) -> f64 {
    points
        .iter()
        .min_by(|a, b| {
            (a.voltage - voltage)
                .abs()
                .partial_cmp(&(b.voltage - voltage).abs())
                .expect("no NaN")
        })
        .map(|p| p.current.abs().max(1e-12))
        .unwrap_or(1e-12)
}
