//! Deprecated shim: delegates to `xbar run fig1` (same flags).

fn main() {
    xbar_exp::legacy_shim("fig1_iv_curve", "fig1");
}
