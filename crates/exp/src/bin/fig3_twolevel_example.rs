//! Fig. 3 — two-level mapping of f = x1+x2+x3+x4+x5·x6·x7·x8 (paper
//! indexing; x0..x7 here): area cost 126 with the figure's extra inversion
//! row, inclusion ratio 31/126 ≈ 25%.

use xbar_core::{map_naive, program_two_level, CrossbarMatrix, FunctionMatrix, TwoLevelLayout};
use xbar_device::Crossbar;
use xbar_exp::{ExpArgs, Table};
use xbar_logic::{cube, Cover};

fn main() {
    let _args = ExpArgs::parse("Fig. 3: two-level worked example");
    let cover = Cover::from_cubes(
        8,
        1,
        [
            cube("1------- 1"),
            cube("-1------ 1"),
            cube("--1----- 1"),
            cube("---1---- 1"),
            cube("----1111 1"),
        ],
    )
    .expect("valid cubes");

    let paper_layout = TwoLevelLayout::of_cover(&cover).with_inversion_row();
    let table_layout = TwoLevelLayout::of_cover(&cover);
    let mut table = Table::new(
        "Fig. 3 — two-level design of f = x1+x2+x3+x4+x5x6x7x8",
        &["quantity", "paper", "ours"],
    );
    table.row(["horizontal lines", "7", &paper_layout.rows().to_string()]);
    table.row(["vertical lines", "18", &paper_layout.cols().to_string()]);
    table.row(["area cost", "126", &paper_layout.area().to_string()]);
    table.row([
        "area cost (Table I/II convention, P+K rows)".to_string(),
        "-".to_string(),
        table_layout.area().to_string(),
    ]);
    let switches = table_layout.active_switches(&cover) + 2 * cover.num_inputs();
    table.row([
        "memristors used (incl. input-latch diagonal)".to_string(),
        "31".to_string(),
        switches.to_string(),
    ]);
    table.row([
        "inclusion ratio".to_string(),
        "25%".to_string(),
        format!(
            "{:.1}%",
            switches as f64 / paper_layout.area() as f64 * 100.0
        ),
    ]);
    table.print();

    // Execute the mapping on the simulated crossbar and verify exhaustively.
    let fm = FunctionMatrix::from_cover(&cover);
    let cm = CrossbarMatrix::perfect(fm.num_rows(), fm.num_cols());
    let assignment = map_naive(&fm, &cm).assignment.expect("clean crossbar");
    let mut machine =
        program_two_level(&cover, &assignment, Crossbar::new(6, 18)).expect("layout fits");
    let mut mismatches = 0;
    for a in 0..256u64 {
        if machine.evaluate(a) != cover.evaluate(a) {
            mismatches += 1;
        }
    }
    println!("functional check on the simulated crossbar: {mismatches} mismatches over 256 inputs");
    assert_eq!(mismatches, 0);
}
