//! Deprecated shim: delegates to `xbar run fig3` (same flags).

fn main() {
    xbar_exp::legacy_shim("fig3_twolevel_example", "fig3");
}
