//! Deprecated shim: delegates to `xbar run ext_defect_scan` (same flags).

fn main() {
    xbar_exp::legacy_shim("ext_defect_scan", "ext_defect_scan");
}
