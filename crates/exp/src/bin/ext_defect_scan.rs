//! Ext-F — defect-map extraction: march-style testing recovers the
//! crossbar matrix that the paper's mapping algorithms assume as given
//! (the testing problem of the paper's references \[11\] and \[12\]).
//!
//! The full loop: manufacture a defective fabric → march-scan it → build
//! the CM from the *measured* map → run HBA → execute the mapping on the
//! fabric and verify functionally.

use rand::rngs::StdRng;
use rand::SeedableRng;
use xbar_core::{
    map_hybrid, program_two_level, verify_against_cover, CrossbarMatrix, FunctionMatrix, VerifyMode,
};
use xbar_device::{scan_cell_by_cell, scan_march, Crossbar, DefectProfile};
use xbar_exp::{ExpArgs, Table};
use xbar_logic::bench_reg::find;

fn main() {
    let args = ExpArgs::parse("Ext-F: defect-map extraction and closed-loop mapping");
    let info = find("rd53").expect("registered");
    let cover = info.mapping_cover(args.seed);
    let fm = FunctionMatrix::from_cover(&cover);
    let rows = fm.num_rows();
    let cols = fm.num_cols();

    // 1. Test-cost comparison of the two scan procedures.
    let mut cost = Table::new(
        "Ext-F — test cost per procedure (rd53-sized array)",
        &["procedure", "write ops", "read ops", "map recovered"],
    );
    let mut rng = StdRng::seed_from_u64(args.seed);
    let profile = DefectProfile {
        rate: args.defect_rate,
        stuck_closed_fraction: 0.2,
    };
    let mut xbar = Crossbar::with_random_defects(rows, cols, profile, &mut rng);
    let cell = scan_cell_by_cell(&mut xbar);
    cost.row([
        "cell-by-cell".to_owned(),
        cell.write_ops.to_string(),
        cell.read_ops.to_string(),
        if cell.matches_ground_truth(&xbar) {
            "exact"
        } else {
            "WRONG"
        }
        .to_owned(),
    ]);
    let march = scan_march(&mut xbar);
    cost.row([
        "march (row-parallel writes)".to_owned(),
        march.write_ops.to_string(),
        march.read_ops.to_string(),
        if march.matches_ground_truth(&xbar) {
            "exact"
        } else {
            "WRONG"
        }
        .to_owned(),
    ]);
    cost.print();
    let (functional, open, closed) = march.counts();
    println!("measured map: {functional} functional, {open} stuck-open, {closed} stuck-closed");

    // 2. Closed loop over many fabrics: scan → map from the measured CM →
    //    execute → verify.
    let mut attempted = 0;
    let mut mapped = 0;
    let mut verified = 0;
    for _ in 0..args.samples {
        let mut xbar = Crossbar::with_random_defects(
            rows,
            cols,
            DefectProfile::stuck_open_only(args.defect_rate),
            &mut rng,
        );
        let report = scan_march(&mut xbar);
        assert!(report.matches_ground_truth(&xbar), "scan must be exact");
        // Build the CM from the *measured* report, not the ground truth.
        let mut cm = CrossbarMatrix::perfect(rows, cols);
        for r in 0..rows {
            for c in 0..cols {
                if report.diagnosis(r, c).as_defect() != xbar_device::Defect::None {
                    cm.set_defective(r, c);
                }
            }
        }
        attempted += 1;
        if let Some(assignment) = map_hybrid(&fm, &cm).assignment {
            mapped += 1;
            let mut machine = program_two_level(&cover, &assignment, xbar).expect("fits");
            if verify_against_cover(&mut machine, &cover, VerifyMode::Exhaustive, 0).is_none() {
                verified += 1;
            }
        }
    }
    println!(
        "closed loop over {attempted} fabrics at {:.0}% stuck-open: {mapped} mapped, {verified} functionally verified",
        args.defect_rate * 100.0
    );
    assert_eq!(
        mapped, verified,
        "every mapping from a measured map must verify"
    );
}
