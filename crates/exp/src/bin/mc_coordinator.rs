//! Deprecated shim: delegates to `xbar mc coordinate` (same flags).

fn main() {
    xbar_exp::legacy_mc_shim("mc_coordinator", "coordinate");
}
