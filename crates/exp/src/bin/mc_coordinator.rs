//! Deprecated shim: delegates to `xbar mc coordinate` (same flags,
//! including `--shard-timeout`, `--max-inflight`, and `--resume`).

fn main() {
    xbar_exp::legacy_mc_shim("mc_coordinator", "coordinate");
}
