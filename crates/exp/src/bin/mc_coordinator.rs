//! Sharded Monte Carlo coordinator: partitions a Table II campaign across
//! `mc_shard` worker processes, retries failed shards, merges the partial
//! results, and writes the deterministic merged-stats artifact.
//!
//! The artifact contains only integer-derived statistics, so for the same
//! `(seed, samples)` it is **byte-identical** across shard counts and to
//! `--in-process` (the monolithic path through the same accumulators) —
//! CI compares the files directly.

use std::path::PathBuf;
use std::process::exit;
use xbar_exp::shard::coordinator::{
    default_work_dir, default_worker_binary, render_stats_json, render_timing_table,
    run_coordinator, run_monolithic, CoordinatorConfig,
};
use xbar_exp::shard::CampaignFlags;

struct Args {
    campaign: CampaignFlags,
    shards: usize,
    max_attempts: usize,
    out: PathBuf,
    work_dir: Option<PathBuf>,
    worker: Option<PathBuf>,
    keep_partials: bool,
    in_process: bool,
}

impl Default for Args {
    fn default() -> Self {
        Self {
            campaign: CampaignFlags::default(),
            shards: 3,
            max_attempts: 3,
            out: PathBuf::from("MC_merged.json"),
            work_dir: None,
            worker: None,
            keep_partials: false,
            in_process: false,
        }
    }
}

fn usage() -> String {
    format!(
        "mc_coordinator: sharded Monte Carlo over worker processes\n\nflags:\n\
         {}\n  \
         --shards N         worker processes / sample-range shards (default 3)\n  \
         --max-attempts N   attempts per shard before giving up (default 3)\n  \
         --out PATH         merged stats artifact (default MC_merged.json)\n  \
         --work-dir PATH    partial-file directory (default: temp dir)\n  \
         --worker PATH      mc_shard binary (default: next to this binary)\n  \
         --keep-partials    keep partial files after the merge\n  \
         --in-process       run monolithically (no processes) through the same\n                     \
         accumulators; output is byte-identical to a sharded run",
        xbar_exp::shard::CAMPAIGN_FLAGS_USAGE
    )
}

fn parse_args() -> Args {
    let mut args = Args::default();
    let mut it = std::env::args().skip(1);
    let value = |flag: &str, it: &mut dyn Iterator<Item = String>| {
        it.next().unwrap_or_else(|| panic!("{flag} needs a value"))
    };
    while let Some(flag) = it.next() {
        if args.campaign.consume(&flag, &mut it) {
            continue;
        }
        match flag.as_str() {
            "--shards" => args.shards = value("--shards", &mut it).parse().expect("number"),
            "--max-attempts" => {
                args.max_attempts = value("--max-attempts", &mut it).parse().expect("number");
            }
            "--out" => args.out = PathBuf::from(value("--out", &mut it)),
            "--work-dir" => args.work_dir = Some(PathBuf::from(value("--work-dir", &mut it))),
            "--worker" => args.worker = Some(PathBuf::from(value("--worker", &mut it))),
            "--keep-partials" => args.keep_partials = true,
            "--in-process" => args.in_process = true,
            "--help" | "-h" => {
                println!("{}", usage());
                exit(0);
            }
            other => {
                eprintln!("unknown flag {other:?}; try --help");
                exit(2);
            }
        }
    }
    args
}

fn main() {
    let args = parse_args();
    let config = args.campaign.clone().into_config();
    if let Err(e) = config.validate() {
        eprintln!("mc_coordinator: {e}");
        exit(2);
    }

    let merged = if args.in_process {
        println!(
            "running {} samples monolithically (same accumulators as sharded mode)",
            config.samples
        );
        run_monolithic(&config)
    } else {
        let worker = match args.worker.clone().map_or_else(default_worker_binary, Ok) {
            Ok(worker) => worker,
            Err(e) => {
                eprintln!("mc_coordinator: {e}");
                exit(2);
            }
        };
        let coordinator = CoordinatorConfig {
            config: config.clone(),
            shards: args.shards,
            max_attempts: args.max_attempts,
            worker,
            work_dir: args.work_dir.clone().unwrap_or_else(default_work_dir),
            extra_worker_args: Vec::new(),
            keep_partials: args.keep_partials,
        };
        println!(
            "running {} samples across {} worker process(es) (seed {}, {:.0}% defects)",
            config.samples,
            coordinator.shards,
            config.seed,
            config.defect_rate * 100.0
        );
        match run_coordinator(&coordinator) {
            Ok(merged) => merged,
            Err(e) => {
                eprintln!("mc_coordinator: {e}");
                exit(1);
            }
        }
    };

    print!("{}", render_timing_table(&merged));
    std::fs::write(&args.out, render_stats_json(&merged)).expect("write merged stats");
    println!("wrote {}", args.out.display());
}
