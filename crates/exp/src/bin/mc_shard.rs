//! Sharded Monte Carlo worker: runs one contiguous slice of a Table II
//! defect-tolerance campaign and writes a self-describing partial-result
//! file for the coordinator (`mc_coordinator`) to merge.
//!
//! Per-sample seeds depend only on `(experiment seed, global sample
//! index)`, so this worker reproduces its slice bit-identically no matter
//! which process or host runs it.
//!
//! The `--inject-*` flags exist for the coordinator's failure-injection
//! tests: they make the worker crash or write a torn partial exactly once
//! (marker file) or always, so retry and permanent-failure handling can be
//! exercised against real processes.

use std::path::PathBuf;
use std::process::exit;
use xbar_exp::shard::{partial::ShardPartial, run_shard, CampaignFlags, ShardSpec};

struct Args {
    campaign: CampaignFlags,
    shard_index: usize,
    num_shards: usize,
    out: PathBuf,
    inject_fail_once: Option<PathBuf>,
    inject_fail_always: bool,
    inject_truncate_once: Option<PathBuf>,
}

impl Default for Args {
    fn default() -> Self {
        Self {
            campaign: CampaignFlags::default(),
            shard_index: 0,
            num_shards: 1,
            out: PathBuf::from("partial-0.json"),
            inject_fail_once: None,
            inject_fail_always: false,
            inject_truncate_once: None,
        }
    }
}

fn usage() -> String {
    format!(
        "mc_shard: run one shard of a sharded Monte Carlo campaign\n\nflags:\n\
         {}\n  \
         --shard-index I    this shard's index (default 0)\n  \
         --num-shards N     shards in the campaign (default 1)\n  \
         --out PATH         partial-result output path (default partial-0.json)\n\n\
         test-only failure injection:\n  \
         --inject-fail-once MARKER      exit 3 unless MARKER exists (created on the way out)\n  \
         --inject-fail-always           always exit 4\n  \
         --inject-truncate-once MARKER  write a torn partial once, then behave",
        xbar_exp::shard::CAMPAIGN_FLAGS_USAGE
    )
}

fn parse_args() -> Args {
    let mut args = Args::default();
    let mut it = std::env::args().skip(1);
    let value = |flag: &str, it: &mut dyn Iterator<Item = String>| {
        it.next().unwrap_or_else(|| panic!("{flag} needs a value"))
    };
    while let Some(flag) = it.next() {
        if args.campaign.consume(&flag, &mut it) {
            continue;
        }
        match flag.as_str() {
            "--shard-index" => {
                args.shard_index = value("--shard-index", &mut it).parse().expect("number");
            }
            "--num-shards" => {
                args.num_shards = value("--num-shards", &mut it).parse().expect("number");
            }
            "--out" => args.out = PathBuf::from(value("--out", &mut it)),
            "--inject-fail-once" => {
                args.inject_fail_once = Some(PathBuf::from(value("--inject-fail-once", &mut it)));
            }
            "--inject-fail-always" => args.inject_fail_always = true,
            "--inject-truncate-once" => {
                args.inject_truncate_once =
                    Some(PathBuf::from(value("--inject-truncate-once", &mut it)));
            }
            "--help" | "-h" => {
                println!("{}", usage());
                exit(0);
            }
            other => {
                eprintln!("unknown flag {other:?}; try --help");
                exit(2);
            }
        }
    }
    args
}

/// Returns true exactly once per marker path (creates the marker).
fn first_time(marker: &PathBuf) -> bool {
    if marker.exists() {
        false
    } else {
        std::fs::write(marker, b"injected\n").expect("write marker");
        true
    }
}

fn main() {
    let args = parse_args();
    if args.inject_fail_always {
        eprintln!("mc_shard: injected permanent failure");
        exit(4);
    }
    if let Some(marker) = &args.inject_fail_once {
        if first_time(marker) {
            eprintln!("mc_shard: injected one-shot failure");
            exit(3);
        }
    }

    let config = args.campaign.clone().into_config();
    if let Err(e) = config.validate() {
        eprintln!("mc_shard: {e}");
        exit(2);
    }
    if args.shard_index >= args.num_shards {
        eprintln!(
            "mc_shard: --shard-index {} out of range for --num-shards {}",
            args.shard_index, args.num_shards
        );
        exit(2);
    }
    let spec = ShardSpec::partition(config.samples, args.num_shards)[args.shard_index];

    if let Some(marker) = &args.inject_truncate_once {
        if first_time(marker) {
            // A torn write: valid JSON prefix, no `complete` marker.
            std::fs::write(&args.out, "{\n  \"schema\": \"xbar-mc-partial/1\", \"trunc")
                .expect("write torn partial");
            eprintln!("mc_shard: injected torn partial");
            return;
        }
    }

    let partial: ShardPartial = run_shard(&config, &spec);
    std::fs::write(&args.out, partial.to_json()).expect("write partial");
    println!(
        "mc_shard: shard {}/{} samples [{}, {}) -> {}",
        spec.index,
        spec.num_shards,
        spec.start,
        spec.end,
        args.out.display()
    );
}
