//! Deprecated shim: delegates to `xbar mc shard` (same flags).

fn main() {
    xbar_exp::legacy_mc_shim("mc_shard", "shard");
}
