//! Deprecated shim: delegates to `xbar mc shard` (same flags, including
//! the failure-injection hooks the coordinator tests drive).

fn main() {
    xbar_exp::legacy_mc_shim("mc_shard", "shard");
}
