//! Ext-E — column redundancy vs stuck-at-closed defects: the complement of
//! Ext-A. Row spares cannot recover column kills (each extra row *adds*
//! column cross-section); spare columns with configurable routing can.

use xbar_core::{column_redundancy_yield, FunctionMatrix, MapperKind};
use xbar_exp::{pct, ExpArgs, Table};
use xbar_logic::bench_reg::find;

fn main() {
    let args = ExpArgs::parse("Ext-E: column redundancy under stuck-closed defects");
    let info = find("rd53").expect("registered");
    let cover = info.mapping_cover(args.seed);
    let fm = FunctionMatrix::from_cover(&cover);
    println!(
        "circuit: rd53 ({} rows x {} cols optimum), mixed defects: 40% of defects stuck-closed",
        fm.num_rows(),
        fm.num_cols()
    );

    let mut table = Table::new(
        "Ext-E — success rate % vs (spare rows, spare cols), EA + column routing",
        &[
            "defect rate",
            "(0r,0c)",
            "(4r,0c)",
            "(0r,4c)",
            "(4r,4c)",
            "(8r,8c)",
        ],
    );
    for &rate in &[0.005, 0.01, 0.02, 0.03] {
        let mut row = vec![format!("{:.1}%", rate * 100.0)];
        for &(sr, sc) in &[(0usize, 0usize), (4, 0), (0, 4), (4, 4), (8, 8)] {
            let y = column_redundancy_yield(
                &fm,
                rate,
                0.4,
                sr,
                sc,
                args.samples,
                MapperKind::Exact,
                args.seed,
            );
            row.push(pct(y));
        }
        table.row(row);
    }
    table.print();
    println!("reading: under stuck-closed defects, spares of EITHER kind alone do not");
    println!("help (extra rows add column-kill cross-section and vice versa); only joint");
    println!("row+column redundancy recovers yield (e.g. 15% → 87% at 1.0% defects with");
    println!("4+4 spares) — quantifying the open problem the paper's §VI identifies.");
    if let Some(path) = &args.csv {
        table.write_csv(path).expect("write csv");
        println!("wrote CSV to {}", path.display());
    }
}
