//! Deprecated shim: delegates to `xbar run ext_column_redundancy` (same flags).

fn main() {
    xbar_exp::legacy_shim("ext_column_redundancy", "ext_column_redundancy");
}
