//! Fig. 8 — function matrix, crossbar matrix, matching matrix and a
//! zero-cost Munkres assignment, printed end to end.

use rand::rngs::StdRng;
use rand::SeedableRng;
use xbar_assign::{munkres, CostMatrix};
use xbar_core::{row_compatible, CrossbarMatrix, FunctionMatrix};
use xbar_exp::ExpArgs;
use xbar_logic::{cube, Cover};

fn main() {
    let args = ExpArgs::parse("Fig. 8: matching matrix and assignment demo");
    let cover = Cover::from_cubes(
        3,
        2,
        [
            cube("11- 10"),
            cube("-01 10"),
            cube("0-0 01"),
            cube("-11 01"),
        ],
    )
    .expect("valid cubes");
    let fm = FunctionMatrix::from_cover(&cover);
    let mut rng = StdRng::seed_from_u64(args.seed);
    let cm =
        CrossbarMatrix::sample_stuck_open(fm.num_rows(), fm.num_cols(), args.defect_rate, &mut rng);

    println!("(a) function matrix FM (rows m1..m4, O1, O2):");
    for r in 0..fm.num_rows() {
        println!("    {}", fm.row(r));
    }
    println!("(b) crossbar matrix CM (defect map, 1 = functional):");
    for r in 0..cm.num_rows() {
        println!("    {}", cm.row(r));
    }

    println!("(c) matching matrix (0 = row matching possible):");
    let n = fm.num_rows();
    let matrix = CostMatrix::from_fn(n, cm.num_rows(), |f, c| {
        i64::from(!row_compatible(fm.row(f), cm.row(c)))
    });
    print!("        ");
    for c in 0..cm.num_rows() {
        print!("H{} ", c + 1);
    }
    println!();
    for f in 0..n {
        let label = if f < fm.num_minterms() {
            format!("m{}", f + 1)
        } else {
            format!("O{}", f - fm.num_minterms() + 1)
        };
        print!("    {label:<4}");
        for c in 0..cm.num_rows() {
            print!(" {} ", matrix.get(f, c));
        }
        println!();
    }

    println!("(d) Munkres assignment:");
    let solution = munkres(&matrix).expect("square matrix");
    for (f, &c) in solution.assignment.iter().enumerate() {
        let label = if f < fm.num_minterms() {
            format!("m{}", f + 1)
        } else {
            format!("O{}", f - fm.num_minterms() + 1)
        };
        println!("    {label} -> H{} (cost {})", c + 1, matrix.get(f, c));
    }
    println!(
        "    total cost = {} → {}",
        solution.cost,
        if solution.cost == 0 {
            "Cost = 0 : Valid Mapping"
        } else {
            "no zero-cost assignment: mapping impossible on this defect map"
        }
    );
}
