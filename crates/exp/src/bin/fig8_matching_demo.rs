//! Deprecated shim: delegates to `xbar run fig8` (same flags).

fn main() {
    xbar_exp::legacy_shim("fig8_matching_demo", "fig8");
}
