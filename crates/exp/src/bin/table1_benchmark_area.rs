//! Table I — two-level vs multi-level area cost of benchmark circuits,
//! original and negated.
//!
//! Absolute multi-level numbers use our factoring/NAND flow instead of
//! ABC's, so they differ from the paper's; the comparison's *shape* (who
//! wins per circuit) is the reproduced quantity. See EXPERIMENTS.md.

use xbar_exp::{experiments::table1::run_table1, ExpArgs, Table};

fn main() {
    let args = ExpArgs::parse("Table I: benchmark area comparison");
    let rows = run_table1(args.seed);

    let mut table = Table::new(
        "Table I — two-level vs multi-level area (original | negation)",
        &[
            "bench",
            "TL paper",
            "TL ours",
            "ML paper",
            "ML ours",
            "TLneg paper",
            "TLneg ours",
            "MLneg paper",
            "MLneg ours",
            "winner matches paper",
        ],
    );
    let mut agree = 0usize;
    for r in &rows {
        if r.winner_matches_paper() {
            agree += 1;
        }
        table.row([
            r.name.clone(),
            r.published.0.to_string(),
            r.two_level.to_string(),
            r.published.1.to_string(),
            r.multi_level.to_string(),
            r.published_neg.0.to_string(),
            r.two_level_neg.map_or("-".into(), |v| v.to_string()),
            r.published_neg.1.to_string(),
            r.multi_level_neg.map_or("-".into(), |v| v.to_string()),
            if r.winner_matches_paper() {
                "yes"
            } else {
                "NO"
            }
            .to_string(),
        ]);
    }
    table.print();
    println!(
        "winner (two-level vs multi-level) agrees with the paper on {agree}/{} circuits",
        rows.len()
    );
    println!("paper's crossover circuits (multi-level wins): t481, cordic");
    if let Some(path) = &args.csv {
        table.write_csv(path).expect("write csv");
        println!("wrote CSV to {}", path.display());
    }
}
