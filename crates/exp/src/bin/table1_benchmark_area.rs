//! Deprecated shim: delegates to `xbar run table1` (same flags).

fn main() {
    xbar_exp::legacy_shim("table1_benchmark_area", "table1");
}
