//! Ext-B — defect-tolerant *multi-level* mapping (the paper's second
//! future-work item, §VI: "we plan to integrate multi-level logic design
//! with our defect tolerant logic mapping methods").
//!
//! Gate rows are placed with the HBA-style greedy+backtracking loop;
//! connection-net → column permutations add a second degree of freedom the
//! two-level mapper does not have.

use rand::rngs::StdRng;
use rand::SeedableRng;
use xbar_core::{map_multilevel, CrossbarMatrix, MultiLevelDesign};
use xbar_exp::{monte_carlo, pct, ExpArgs, Table};
use xbar_logic::{cube, Cover, RandomSopSpec};
use xbar_netlist::MapOptions;

fn fig5_cover() -> Cover {
    Cover::from_cubes(
        8,
        1,
        [
            cube("1------- 1"),
            cube("-1------ 1"),
            cube("--1----- 1"),
            cube("---1---- 1"),
            cube("----1111 1"),
        ],
    )
    .expect("valid cubes")
}

fn success_rate(
    design: &MultiLevelDesign,
    spare_rows: usize,
    defect_rate: f64,
    samples: usize,
    seed: u64,
    permutations: usize,
) -> f64 {
    let rows = design.cost.rows + spare_rows;
    let cols = design.cost.cols;
    let results = monte_carlo(samples, seed, |_, s| {
        let mut rng = StdRng::seed_from_u64(s);
        let cm = CrossbarMatrix::sample_stuck_open(rows, cols, defect_rate, &mut rng);
        map_multilevel(design, &cm, permutations, s ^ 0xFACE).is_some()
    });
    results.iter().filter(|&&ok| ok).count() as f64 / samples as f64
}

fn main() {
    let args = ExpArgs::parse("Ext-B: defect-tolerant multi-level mapping");
    let mut table = Table::new(
        "Ext-B — multi-level mapping success rate % vs defect rate",
        &[
            "design",
            "rows x cols",
            "defects",
            "spare 0",
            "spare 1",
            "spare 2",
            "spare 4",
        ],
    );

    let designs: Vec<(String, MultiLevelDesign)> = vec![
        (
            "fig5 (2 gates)".into(),
            MultiLevelDesign::synthesize(&fig5_cover(), &MapOptions::default()),
        ),
        (
            "random n=10 P=8".into(),
            MultiLevelDesign::synthesize(
                &RandomSopSpec::figure6(10, 8).generate_seeded(args.seed),
                &MapOptions {
                    factoring: true,
                    max_fanin: Some(10),
                },
            ),
        ),
        (
            "t481 analog (26 gates)".into(),
            MultiLevelDesign::from_network(xbar_netlist::t481_analog()),
        ),
    ];

    for (name, design) in &designs {
        for &rate in &[0.05, 0.10, 0.15] {
            let mut row = vec![
                name.clone(),
                format!("{}x{}", design.cost.rows, design.cost.cols),
                format!("{:.0}%", rate * 100.0),
            ];
            for &spare in &[0usize, 1, 2, 4] {
                let rate_val = success_rate(design, spare, rate, args.samples, args.seed, 8);
                row.push(pct(rate_val));
            }
            table.row(row);
        }
    }
    table.print();
    println!("observations:");
    println!("  - multi-level rows carry more active switches (fan-in + destination),");
    println!("    so at equal defect rates mapping is harder than two-level;");
    println!("  - connection-column permutations + a spare row or two recover most of it.");
    if let Some(path) = &args.csv {
        table.write_csv(path).expect("write csv");
        println!("wrote CSV to {}", path.display());
    }
}
