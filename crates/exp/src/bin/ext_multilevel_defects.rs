//! Deprecated shim: delegates to `xbar run ext_multilevel_defects` (same flags).

fn main() {
    xbar_exp::legacy_shim("ext_multilevel_defects", "ext_multilevel_defects");
}
