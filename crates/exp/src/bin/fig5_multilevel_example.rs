//! Fig. 5 — multi-level mapping of the same function: a 3×19 crossbar
//! (the paper's text says "area cost is 59"; 3 × 19 = 57 — see DESIGN.md).

use xbar_core::{MultiLevelDesign, MultiLevelMapping};
use xbar_device::Crossbar;
use xbar_exp::{ExpArgs, Table};
use xbar_logic::{cube, Cover};
use xbar_netlist::MapOptions;

fn main() {
    let _args = ExpArgs::parse("Fig. 5: multi-level worked example");
    let cover = Cover::from_cubes(
        8,
        1,
        [
            cube("1------- 1"),
            cube("-1------ 1"),
            cube("--1----- 1"),
            cube("---1---- 1"),
            cube("----1111 1"),
        ],
    )
    .expect("valid cubes");

    let design = MultiLevelDesign::synthesize(&cover, &MapOptions::default());
    let mut table = Table::new(
        "Fig. 5 — multi-level design of f = x1+x2+x3+x4+x5x6x7x8",
        &["quantity", "paper", "ours"],
    );
    table.row(["horizontal lines", "3", &design.cost.rows.to_string()]);
    table.row(["vertical lines", "19", &design.cost.cols.to_string()]);
    table.row([
        "area cost".to_string(),
        "59 (text; 3×19 = 57)".to_string(),
        design.area().to_string(),
    ]);
    table.row(["NAND gates", "2", &design.network.gate_count().to_string()]);
    table.row([
        "multi-level connections".to_string(),
        "1".to_string(),
        design.cost.connections.to_string(),
    ]);
    table.row([
        "vs two-level area".to_string(),
        "126".to_string(),
        "126 (with inversion row)".to_string(),
    ]);
    table.print();
    println!("network:\n{:?}", design.network);

    // Execute on the simulated crossbar, exhaustively.
    let mapping = MultiLevelMapping::identity(&design);
    let xbar = Crossbar::new(design.cost.rows, design.cost.cols);
    let mut machine = design.build_machine(xbar, &mapping).expect("layout fits");
    let mut mismatches = 0;
    for a in 0..256u64 {
        if machine.evaluate(a) != cover.evaluate(a) {
            mismatches += 1;
        }
    }
    println!("functional check on the simulated crossbar: {mismatches} mismatches over 256 inputs");
    assert_eq!(mismatches, 0);
}
