//! Deprecated shim: delegates to `xbar run fig5` (same flags).

fn main() {
    xbar_exp::legacy_shim("fig5_multilevel_example", "fig5");
}
