//! Ext-A — yield analysis with redundant rows and stuck-at-closed defects
//! (the paper's first future-work item, §VI).
//!
//! Two sweeps on the rd53 function matrix:
//! 1. stuck-open only: success rate vs defect rate × spare rows — spares
//!    recover yield at the cost of area overhead;
//! 2. mixed defects: spare rows do NOT recover stuck-closed losses (each
//!    extra row adds column-kill probability), quantifying why the paper
//!    calls for dedicated redundancy for stuck-at-closed defects.

use xbar_core::{estimate_yield, FunctionMatrix, MapperKind, YieldConfig};
use xbar_exp::{pct, ExpArgs, Table};
use xbar_logic::bench_reg::find;

fn main() {
    let args = ExpArgs::parse("Ext-A: yield vs redundancy and defect rate");
    let info = find("rd53").expect("registered");
    let cover = info.cover(args.seed);
    let fm = FunctionMatrix::from_cover(&cover);
    println!(
        "circuit: rd53 (P = {}, optimum rows = {}, cols = {})",
        cover.len(),
        fm.num_rows(),
        fm.num_cols()
    );

    let spares = [0usize, 2, 4, 8, 17];
    let rates = [0.05, 0.10, 0.15, 0.20];

    let mut open_table = Table::new(
        "Ext-A.1 — success rate % (stuck-open only), HBA",
        &[
            "defect rate",
            "spare 0",
            "spare 2",
            "spare 4",
            "spare 8",
            "spare 17 (1.5x rows)",
        ],
    );
    for &rate in &rates {
        let mut row = vec![format!("{:.0}%", rate * 100.0)];
        for &spare in &spares {
            let result = estimate_yield(
                &fm,
                &YieldConfig {
                    defect_rate: rate,
                    stuck_closed_fraction: 0.0,
                    spare_rows: spare,
                    samples: args.samples,
                    mapper: MapperKind::Hybrid,
                    seed: args.seed,
                },
            );
            row.push(pct(result.success_rate));
        }
        open_table.row(row);
    }
    open_table.print();

    let mut closed_table = Table::new(
        "Ext-A.2 — success rate % (30% of defects stuck-closed), EA",
        &[
            "defect rate",
            "spare 0",
            "spare 2",
            "spare 4",
            "spare 8",
            "spare 17",
        ],
    );
    // Stuck-closed kills whole lines, so meaningful rates sit far below the
    // stuck-open regime (see Ext-E for the column-redundancy remedy).
    for &rate in &[0.005, 0.01, 0.02, 0.03] {
        let mut row = vec![format!("{:.1}%", rate * 100.0)];
        for &spare in &spares {
            let result = estimate_yield(
                &fm,
                &YieldConfig {
                    defect_rate: rate,
                    stuck_closed_fraction: 0.3,
                    spare_rows: spare,
                    samples: args.samples,
                    mapper: MapperKind::Exact,
                    seed: args.seed ^ 0xC105ED,
                },
            );
            row.push(pct(result.success_rate));
        }
        closed_table.row(row);
    }
    closed_table.print();

    let overhead_17 = (fm.num_rows() + 17) as f64 / fm.num_rows() as f64;
    println!("area overhead at 17 spares: {overhead_17:.2}x (the 1.5x sizing of refs [13,14])");
    println!("finding: spare rows recover stuck-open yield but NOT stuck-closed yield —");
    println!("         each added row increases the chance a needed column is killed,");
    println!("         confirming the paper's call for dedicated stuck-closed redundancy.");
    if let Some(path) = &args.csv {
        open_table.write_csv(path).expect("write csv");
        println!("wrote stuck-open sweep CSV to {}", path.display());
    }
}
