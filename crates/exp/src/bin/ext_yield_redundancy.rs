//! Deprecated shim: delegates to `xbar run ext_yield_redundancy` (same flags).

fn main() {
    xbar_exp::legacy_shim("ext_yield_redundancy", "ext_yield_redundancy");
}
