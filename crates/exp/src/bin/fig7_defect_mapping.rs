//! Deprecated shim: delegates to `xbar run fig7` (same flags).

fn main() {
    xbar_exp::legacy_shim("fig7_defect_mapping", "fig7");
}
