//! Fig. 7 — naive vs defect-aware mapping of a 2-output function on a
//! defective 6×10 crossbar. The naive mapping is invalid (and computes the
//! wrong outputs when executed); the defect-aware mapping is valid and
//! functionally correct.

use xbar_core::{
    map_hybrid, map_naive, program_two_level, CrossbarMatrix, FunctionMatrix, RowAssignment,
};
use xbar_device::{Crossbar, Defect};
use xbar_exp::ExpArgs;
use xbar_logic::{cube, Cover};

fn main() {
    let _args = ExpArgs::parse("Fig. 7: naive vs defect-aware mapping");
    // O1 = x1x2 + x̄2x3, O2 = x̄1x̄3 + x2x3 (the Fig. 7/8 example family).
    let cover = Cover::from_cubes(
        3,
        2,
        [
            cube("11- 10"),
            cube("-01 10"),
            cube("0-0 01"),
            cube("-11 01"),
        ],
    )
    .expect("valid cubes");
    let fm = FunctionMatrix::from_cover(&cover);

    // Defects placed where the identity mapping needs active switches
    // (the red diagonals of Fig. 7a).
    let mut xbar = Crossbar::new(6, 10);
    xbar.set_defect(0, 0, Defect::StuckOpen); // m1 needs x1 here
    xbar.set_defect(3, 7, Defect::StuckOpen); // m4 needs its O2 membership
    let cm = CrossbarMatrix::from_crossbar(&xbar);

    println!("function matrix rows (x1 x2 x3 | x̄1 x̄2 x̄3 | O1 O2 | Ō1 Ō2):");
    for r in 0..fm.num_rows() {
        let label = if r < fm.num_minterms() {
            format!("m{}", r + 1)
        } else {
            format!("O{}", r - fm.num_minterms() + 1)
        };
        println!("  {label:<3} {}", fm.row(r));
    }
    println!("crossbar matrix (1 = functional):");
    for r in 0..cm.num_rows() {
        println!("  H{}  {}", r + 1, cm.row(r));
    }
    println!();

    let naive = map_naive(&fm, &cm);
    println!(
        "(a) naive mapping (identity, defects disregarded): {}",
        if naive.is_success() {
            "VALID"
        } else {
            "INVALID"
        }
    );
    // Execute the naive placement anyway to show the functional corruption.
    let identity = RowAssignment {
        fm_to_cm: (0..fm.num_rows()).collect(),
    };
    let mut broken = program_two_level(&cover, &identity, xbar.clone()).expect("fits");
    let mut wrong = 0;
    for a in 0..8u64 {
        if broken.evaluate(a) != cover.evaluate(a) {
            wrong += 1;
        }
    }
    println!("    executed anyway: {wrong}/8 input vectors produce wrong outputs");

    let hybrid = map_hybrid(&fm, &cm);
    match hybrid.assignment {
        Some(assignment) => {
            println!("(b) defect-aware mapping (HBA): VALID");
            for (i, &row) in assignment.fm_to_cm.iter().enumerate() {
                let label = if i < fm.num_minterms() {
                    format!("m{}", i + 1)
                } else {
                    format!("O{}", i - fm.num_minterms() + 1)
                };
                println!("    {label} -> H{}", row + 1);
            }
            let mut machine = program_two_level(&cover, &assignment, xbar).expect("fits");
            let mut wrong = 0;
            for a in 0..8u64 {
                if machine.evaluate(a) != cover.evaluate(a) {
                    wrong += 1;
                }
            }
            println!("    executed: {wrong}/8 input vectors wrong (must be 0)");
            assert_eq!(wrong, 0);
        }
        None => println!("(b) defect-aware mapping: FAILED (unexpected for this defect map)"),
    }
}
