//! Figs. 2(b) and 4(b) — the two-level and multi-level computation state
//! machines, demonstrated as executable phase traces on the worked example
//! function f = x0+x1+x2+x3 + x4·x5·x6·x7.

use xbar_core::{
    map_naive, program_two_level, CrossbarMatrix, FunctionMatrix, MultiLevelDesign,
    MultiLevelMapping,
};
use xbar_device::Crossbar;
use xbar_exp::ExpArgs;
use xbar_logic::{cube, Cover};
use xbar_netlist::MapOptions;

fn example_cover() -> Cover {
    Cover::from_cubes(
        8,
        1,
        [
            cube("1------- 1"),
            cube("-1------ 1"),
            cube("--1----- 1"),
            cube("---1---- 1"),
            cube("----1111 1"),
        ],
    )
    .expect("valid cubes")
}

fn main() {
    let _args = ExpArgs::parse("Figs. 2(b)/4(b): state machine traces");
    let cover = example_cover();
    let input = 0b1111_0000u64; // x4..x7 = 1: only the AND minterm fires.

    println!("== Fig. 2(b): two-level state machine ==");
    let fm = FunctionMatrix::from_cover(&cover);
    let cm = CrossbarMatrix::perfect(fm.num_rows(), fm.num_cols());
    let assignment = map_naive(&fm, &cm).assignment.expect("clean crossbar");
    let mut machine =
        program_two_level(&cover, &assignment, Crossbar::new(6, 18)).expect("layout fits");
    let trace = machine.trace(input);
    for (phase, text) in &trace.phases {
        println!("  {phase:>4}: {text}");
    }
    println!(
        "  outputs f = {:?}, f̄ = {:?}",
        trace.outputs, trace.outputs_bar
    );
    assert_eq!(trace.outputs, cover.evaluate(input));

    println!();
    println!("== Fig. 4(b): multi-level state machine (CFM→EVM→CR per gate, nL < n loop) ==");
    let design = MultiLevelDesign::synthesize(&cover, &MapOptions::default());
    let mapping = MultiLevelMapping::identity(&design);
    let xbar = Crossbar::new(design.cost.rows, design.cost.cols);
    let mut ml = design.build_machine(xbar, &mapping).expect("layout fits");
    let trace = ml.trace(input);
    for (phase, gate, text) in &trace.phases {
        match gate {
            Some(g) => println!("  {phase:>4} (gate {g}): {text}"),
            None => println!("  {phase:>4}: {text}"),
        }
    }
    println!("  gate values = {:?}", trace.gate_values);
    println!(
        "  outputs f = {:?}, f̄ = {:?}",
        trace.outputs, trace.outputs_bar
    );
    assert_eq!(trace.outputs, cover.evaluate(input));
    println!();
    println!(
        "two-level: 7 phases once; multi-level: CFM/EVM/CR × {} gates + INR/SO",
        design.network.gate_count()
    );
}
