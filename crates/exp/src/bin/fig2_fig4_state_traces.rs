//! Deprecated shim: delegates to `xbar run fig2_fig4` (same flags).

fn main() {
    xbar_exp::legacy_shim("fig2_fig4_state_traces", "fig2_fig4");
}
