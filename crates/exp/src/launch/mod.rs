//! Multi-host launcher: fault-tolerant remote dispatch over the sharded
//! Monte Carlo engine.
//!
//! The launcher sits exactly where `xbar mc coordinate` does — same
//! campaign vocabulary, same run directory, checkpoints, lock, and
//! deterministic retry backoff — but dispatches shards through a
//! [`Transport`] onto a fleet of named hosts instead of spawning local
//! workers directly:
//!
//! * [`transport`] — the dispatch abstraction ([`Transport`]/[`Flight`]),
//!   its two real implementations ([`LocalProc`] subprocesses and the
//!   [`Exec`] command template that covers `ssh` without new
//!   dependencies), and the deterministic fault injector ([`Faulty`]);
//! * [`pool`] — the [`HostPool`] with per-host health (healthy → suspect
//!   → quarantined → timed probation) and in-flight slot bounds;
//! * [`scheduler`] — the event loop: dispatch, watchdog deadlines,
//!   backoff retries, hedged re-dispatch of stragglers, torn-transfer
//!   detection on every returned stream;
//! * [`merge`] — the two-level merge tree (per-host pre-merge, root
//!   merge), byte-identical to the flat merge by construction;
//! * [`cli`] — `xbar mc launch`.
//!
//! The hard invariant, pinned by tests and the CI loopback smoke: the
//! merged artifacts are **byte-identical** to a monolithic run under
//! every tolerated fault — dropped dispatches, mid-stream truncation,
//! host death mid-campaign, hung flights, duplicated hedge partials.

pub mod cli;
pub mod merge;
pub mod pool;
pub mod scheduler;
pub mod transport;

pub use merge::merge_host_groups;
pub use pool::{parse_hosts, HostCount, HostHealth, HostPool, HostSpec};
pub use scheduler::{run_launch, run_launch_with_report, LaunchConfig, LaunchReport};
pub use transport::{Exec, FaultKind, FaultPlan, Faulty, Flight, LocalProc, Transport, WorkerJob};
