//! The launch scheduler: the coordinator's event loop re-based onto
//! transports and a health-tracked host pool.
//!
//! Scheduling reuses PR 7's machinery wholesale — the same deterministic
//! [`backoff_delay`] retry schedule, the same watchdog-deadline shape,
//! the same checkpoint/resume run directory (and its lock) — and adds
//! the remote failure modes on top:
//!
//! * a flight's result is *untrusted bytes*: every returned stream is
//!   parsed and re-validated with [`ShardPartial::validate_for`], so a
//!   torn transfer is detected exactly like a torn local write;
//! * failures are charged to the host that produced them; the
//!   [`HostPool`] quarantines hosts that fail repeatedly so a dead node
//!   cannot eat a shard's whole retry budget;
//! * stragglers past [`LaunchConfig::hedge_after`] are re-dispatched on
//!   a *different* host — first valid partial wins, the loser is
//!   cancelled and discarded (the exact-tiling merge validation would
//!   reject its duplicate anyway).

use super::merge::merge_host_groups;
use super::pool::{HostCount, HostHealth, HostPool, HostSpec};
use super::transport::{Transport, WorkerJob};
use crate::shard::coordinator::{
    backoff_delay, campaign_run_dir, partial_path, preflight_run_dir, worker_shard_args,
    MergedResult, RunReport, Worker, DEFAULT_RETRY_BASE,
};
use crate::shard::partial::ShardPartial;
use crate::shard::{McConfig, ShardSpec};
use std::collections::VecDeque;
use std::fs;
use std::path::PathBuf;
use std::time::{Duration, Instant};

/// Host shards reused from checkpoints (or synthesized empty) are
/// attributed to in the merge tree and the manifest.
const LOCAL_HOST: &str = "local";

/// How often the scheduler polls flights when nothing has changed.
const POLL_INTERVAL: Duration = Duration::from_millis(4);

/// Launcher configuration: the coordinator knobs plus the fleet and its
/// health/hedging policy.
#[derive(Debug, Clone)]
pub struct LaunchConfig {
    /// The campaign every shard must agree on.
    pub config: McConfig,
    /// Number of sample-range shards.
    pub shards: usize,
    /// Attempts per shard (first run + retries) before giving up.
    pub max_attempts: usize,
    /// The worker every dispatch runs (binary + entry-point prefix).
    pub worker: Worker,
    /// Parent directory for run directories (checkpoints and resume live
    /// in [`campaign_run_dir`] beneath it, exactly as for the local
    /// coordinator).
    pub work_dir: PathBuf,
    /// Extra arguments appended to every worker invocation.
    pub extra_worker_args: Vec<String>,
    /// Keep partial files (and the run directory) after the merge.
    pub keep_partials: bool,
    /// Per-attempt wall-clock deadline; `None` disables the watchdog.
    pub shard_timeout: Option<Duration>,
    /// Re-dispatch a flight still running after this long onto a
    /// different host (first valid partial wins); `None` disables
    /// hedging.
    pub hedge_after: Option<Duration>,
    /// Reuse valid checkpoints already in the run directory.
    pub resume: bool,
    /// Base delay of the exponential retry backoff.
    pub retry_base: Duration,
    /// The fleet.
    pub hosts: Vec<HostSpec>,
    /// Consecutive failures that quarantine a host.
    pub quarantine_after: usize,
    /// How long a quarantined host sits out before probation.
    pub probation: Duration,
}

impl LaunchConfig {
    /// A launcher with the coordinator's defaults plus the given fleet:
    /// three attempts per shard, no watchdog, no hedging, quarantine
    /// after [`super::pool::DEFAULT_QUARANTINE_AFTER`] consecutive
    /// failures with a [`super::pool::DEFAULT_PROBATION`] sit-out.
    ///
    /// # Errors
    ///
    /// Fails when no worker binary can be located.
    pub fn new(config: McConfig, shards: usize, hosts: Vec<HostSpec>) -> Result<Self, String> {
        Ok(Self {
            config,
            shards,
            max_attempts: 3,
            worker: crate::shard::coordinator::default_worker()?,
            work_dir: crate::shard::coordinator::default_work_dir(),
            extra_worker_args: Vec::new(),
            keep_partials: false,
            shard_timeout: None,
            hedge_after: None,
            resume: false,
            retry_base: DEFAULT_RETRY_BASE,
            hosts,
            quarantine_after: super::pool::DEFAULT_QUARANTINE_AFTER,
            probation: super::pool::DEFAULT_PROBATION,
        })
    }
}

/// Launch counters: the coordinator's [`RunReport`] plus the remote
/// dimensions.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct LaunchReport {
    /// The coordinator-shaped counters (`spawned` counts dispatched
    /// flights).
    pub base: RunReport,
    /// Hedged duplicate dispatches for straggler shards.
    pub hedges: usize,
    /// Flights discarded without blame: hedge losers and late results
    /// for already-completed shards.
    pub discards: usize,
    /// Per-host dispatch counters, in fleet order.
    pub hosts: Vec<HostCount>,
}

/// A shard waiting (or backing off) for a dispatch slot.
#[derive(Debug, Clone, Copy)]
struct QueueItem {
    spec: ShardSpec,
    attempt: usize,
    ready_at: Instant,
}

/// One live flight.
struct FlightSlot {
    spec: ShardSpec,
    attempt: usize,
    host: usize,
    started: Instant,
    deadline: Option<Instant>,
    hedged: bool,
    flight: Box<dyn super::transport::Flight>,
}

struct Launcher<'a> {
    cfg: &'a LaunchConfig,
    transport: &'a dyn Transport,
    run_dir: PathBuf,
    pool: HostPool,
    queue: VecDeque<QueueItem>,
    flights: Vec<FlightSlot>,
    /// Winner per shard: `(host name, validated partial)`.
    partials: Vec<Option<(String, ShardPartial)>>,
    report: LaunchReport,
    permanent: Vec<usize>,
    last_error: String,
}

impl Launcher<'_> {
    fn job_for(&self, spec: &ShardSpec) -> WorkerJob {
        let mut args = self.cfg.worker.prefix_args.clone();
        args.extend(worker_shard_args(&self.cfg.config, spec));
        args.push("--out".to_owned());
        args.push("-".to_owned());
        args.extend(self.cfg.extra_worker_args.iter().cloned());
        WorkerJob {
            binary: self.cfg.worker.binary.clone(),
            args,
        }
    }

    /// Records a failed attempt for a shard with no surviving sibling
    /// flight: backoff retry while attempts remain, else permanent.
    fn note_shard_failure(&mut self, spec: ShardSpec, attempt: usize, error: &str) {
        self.last_error = format!("shard {} (attempt {attempt}): {error}", spec.index);
        eprintln!("mc launch: {}", self.last_error);
        if attempt < self.cfg.max_attempts {
            self.report.base.retries += 1;
            let delay = backoff_delay(
                self.cfg.config.seed,
                spec.index,
                attempt,
                self.cfg.retry_base,
            );
            self.queue.push_back(QueueItem {
                spec,
                attempt: attempt + 1,
                ready_at: Instant::now() + delay,
            });
        } else {
            self.permanent.push(spec.index);
        }
    }

    /// True when another live flight is still working on the shard.
    fn has_sibling(&self, shard: usize) -> bool {
        self.flights.iter().any(|f| f.spec.index == shard)
    }

    /// Dispatches one attempt of `spec` to the host at `host`. Returns
    /// true when a flight started.
    fn dispatch(&mut self, host: usize, spec: ShardSpec, attempt: usize, hedged: bool) -> bool {
        let job = self.job_for(&spec);
        self.pool.note_dispatch(host);
        let name = self.pool.name(host).to_owned();
        match self.transport.dispatch(&name, &job) {
            Ok(flight) => {
                self.report.base.spawned += 1;
                let now = Instant::now();
                self.flights.push(FlightSlot {
                    spec,
                    attempt,
                    host,
                    started: now,
                    deadline: self.cfg.shard_timeout.map(|t| now + t),
                    hedged,
                    flight,
                });
                true
            }
            Err(e) => {
                self.pool.note_failure(host);
                let error = format!("dispatch to {name} failed: {e}");
                if hedged || self.has_sibling(spec.index) {
                    // The primary flight is still working on the shard;
                    // the failed hedge costs the host, not the shard.
                    eprintln!("mc launch: shard {} hedge: {error}", spec.index);
                } else {
                    self.note_shard_failure(spec, attempt, &error);
                }
                false
            }
        }
    }

    /// Fills free host slots with due queue items.
    fn fill(&mut self) -> bool {
        let mut progressed = false;
        loop {
            let now = Instant::now();
            let Some(pos) = self.queue.iter().position(|item| item.ready_at <= now) else {
                break;
            };
            let Some(host) = self.pool.pick() else {
                break;
            };
            let item = self.queue.remove(pos).expect("position is in range");
            progressed = true;
            self.dispatch(host, item.spec, item.attempt, false);
        }
        self.report.base.max_inflight_observed = self
            .report
            .base
            .max_inflight_observed
            .max(self.flights.len());
        progressed
    }

    /// Cancels and discards every other flight still working on `shard`
    /// (the hedge losers once a winner landed).
    fn cancel_siblings(&mut self, shard: usize) {
        let mut index = 0;
        while index < self.flights.len() {
            if self.flights[index].spec.index == shard {
                let mut slot = self.flights.swap_remove(index);
                slot.flight.cancel();
                self.pool.note_discard(slot.host);
                self.report.discards += 1;
            } else {
                index += 1;
            }
        }
    }

    /// Handles one resolved flight.
    fn finish_flight(&mut self, mut slot: FlightSlot, result: Result<Vec<u8>, String>) {
        let host_name = self.pool.name(slot.host).to_owned();
        if self.partials[slot.spec.index].is_some() {
            // The shard is already done (a sibling won): whatever this
            // flight brought back is discarded unseen — the winner's
            // partial is checkpointed and merged, nothing else.
            self.pool.note_discard(slot.host);
            self.report.discards += 1;
            return;
        }
        let outcome = result.and_then(|bytes| {
            let text = String::from_utf8(bytes)
                .map_err(|e| format!("stream from {host_name} is not UTF-8: {e}"))?;
            let partial = ShardPartial::from_json(&text)
                .map_err(|e| format!("stream from {host_name}: {e}"))?;
            partial.validate_for(&self.cfg.config, &slot.spec)?;
            Ok((text, partial))
        });
        match outcome {
            Ok((text, partial)) => {
                // Checkpoint the winning partial under the same path the
                // local coordinator uses, so `--resume` (and the service
                // restart flow) work unchanged.
                let path = partial_path(&self.run_dir, slot.spec.index);
                if let Err(e) = crate::atomic::write_atomic(&path, text.as_bytes()) {
                    eprintln!(
                        "mc launch: cannot checkpoint {}: {e} (continuing)",
                        path.display()
                    );
                }
                self.pool.note_success(slot.host);
                self.partials[slot.spec.index] = Some((host_name, partial));
                self.cancel_siblings(slot.spec.index);
            }
            Err(e) => {
                self.pool.note_failure(slot.host);
                if self.has_sibling(slot.spec.index) {
                    // A sibling is still flying: charge the host, let the
                    // sibling decide the shard's fate.
                    eprintln!(
                        "mc launch: shard {} ({}): {e}",
                        slot.spec.index,
                        if slot.hedged { "hedge" } else { "primary" }
                    );
                } else {
                    self.note_shard_failure(slot.spec, slot.attempt, &e);
                }
            }
        }
        // `slot.flight` is dropped here; a resolved ProcFlight has
        // already been reaped.
        slot.flight.cancel();
    }

    /// Polls every flight: resolves exits, kills flights past the
    /// watchdog deadline.
    fn reap(&mut self) -> bool {
        let mut progressed = false;
        let mut index = 0;
        while index < self.flights.len() {
            if let Some(result) = self.flights[index].flight.poll() {
                let slot = self.flights.swap_remove(index);
                progressed = true;
                self.finish_flight(slot, result);
                continue;
            }
            let overdue = self.flights[index]
                .deadline
                .is_some_and(|deadline| Instant::now() >= deadline);
            if overdue {
                let mut slot = self.flights.swap_remove(index);
                progressed = true;
                slot.flight.cancel();
                self.report.base.timeouts += 1;
                let timeout = self
                    .cfg
                    .shard_timeout
                    .expect("a deadline implies a configured timeout");
                self.pool.note_failure(slot.host);
                if self.partials[slot.spec.index].is_some() || self.has_sibling(slot.spec.index) {
                    // The shard is covered elsewhere; the hung flight
                    // costs only the host that stalled it.
                    eprintln!(
                        "mc launch: shard {} straggler on {} hit the {timeout:?} watchdog \
                         deadline; flight killed",
                        slot.spec.index,
                        self.pool.name(slot.host)
                    );
                } else {
                    self.note_shard_failure(
                        slot.spec,
                        slot.attempt,
                        &format!("hit the {timeout:?} watchdog deadline; flight killed"),
                    );
                }
            } else {
                index += 1;
            }
        }
        progressed
    }

    /// Re-dispatches stragglers: a flight past `hedge_after` whose shard
    /// has no sibling yet gets a duplicate on a *different* host.
    fn hedge(&mut self) -> bool {
        let Some(after) = self.cfg.hedge_after else {
            return false;
        };
        let now = Instant::now();
        let candidates: Vec<(ShardSpec, usize, usize)> = self
            .flights
            .iter()
            .filter(|f| {
                now.duration_since(f.started) >= after
                    && self.partials[f.spec.index].is_none()
                    && self
                        .flights
                        .iter()
                        .filter(|g| g.spec.index == f.spec.index)
                        .count()
                        == 1
            })
            .map(|f| (f.spec, f.attempt, f.host))
            .collect();
        let mut progressed = false;
        for (spec, attempt, straggler_host) in candidates {
            let Some(other) = self.pool.pick_filtered(&|i| i != straggler_host) else {
                continue;
            };
            if self.dispatch(other, spec, attempt, true) {
                self.report.hedges += 1;
                progressed = true;
                eprintln!(
                    "mc launch: shard {} straggling on {} — hedged onto {}",
                    spec.index,
                    self.pool.name(straggler_host),
                    self.pool.name(other)
                );
            }
        }
        progressed
    }

    /// When nothing moved, how long to sleep: the short poll tick while
    /// flights are live, else until the earliest backoff expiry — pushed
    /// out to the earliest probation expiry when the whole fleet is
    /// quarantined (the all-quarantined case must wait, not spin).
    fn idle_wait(&self) -> Duration {
        if !self.flights.is_empty() {
            return POLL_INTERVAL;
        }
        let now = Instant::now();
        let Some(ready) = self.queue.iter().map(|item| item.ready_at).min() else {
            return POLL_INTERVAL;
        };
        let all_quarantined =
            (0..self.pool.len()).all(|i| self.pool.health(i) == HostHealth::Quarantined);
        let wake = if all_quarantined {
            match self.pool.next_available_at() {
                Some(probation_end) => ready.max(probation_end),
                None => now + POLL_INTERVAL,
            }
        } else {
            ready
        };
        wake.saturating_duration_since(now).max(POLL_INTERVAL)
    }

    /// Kills and discards every live flight (fail-fast path; checkpoints
    /// on disk stay for `--resume`).
    fn abort_flights(&mut self) {
        for slot in &mut self.flights {
            slot.flight.cancel();
            self.pool.note_discard(slot.host);
        }
        self.flights.clear();
    }
}

/// Runs the campaign over the fleet and returns the merged result plus
/// the launch report. The merged artifact is byte-identical to a
/// monolithic run whatever faults occurred — every returned stream is
/// re-validated, duplicates cannot survive the exact-tiling merge, and
/// the statistics are integer-exact under any host assignment.
///
/// # Errors
///
/// Reports configuration problems, unwritable work directories, run
/// directories owned by a different campaign, and permanently failing
/// shards (with the last per-shard error) — the same failure surface as
/// the local coordinator, plus dispatch-level errors from the transport.
pub fn run_launch_with_report(
    cfg: &LaunchConfig,
    transport: &dyn Transport,
) -> Result<(MergedResult, LaunchReport), String> {
    if cfg.shards == 0 {
        return Err("need at least one shard".to_owned());
    }
    if cfg.max_attempts == 0 {
        return Err("need at least one attempt per shard".to_owned());
    }
    if cfg.hosts.is_empty() {
        return Err("need at least one host".to_owned());
    }
    if cfg.quarantine_after == 0 {
        return Err("need a quarantine threshold of at least one failure".to_owned());
    }
    cfg.config.validate()?;
    fs::create_dir_all(&cfg.work_dir)
        .map_err(|e| format!("cannot create work dir {}: {e}", cfg.work_dir.display()))?;
    let run_dir = campaign_run_dir(&cfg.work_dir, &cfg.config, cfg.shards);
    let host_strings: Vec<String> = cfg.hosts.iter().map(HostSpec::render).collect();
    // Held until this function returns, exactly like the coordinator:
    // a concurrent launcher or coordinator on the same campaign fails
    // fast instead of racing on the run directory.
    let _lock = preflight_run_dir(&cfg.config, cfg.shards, &host_strings, &run_dir)?;

    let specs = ShardSpec::partition(cfg.config.samples, cfg.shards);
    let mut launcher = Launcher {
        cfg,
        transport,
        run_dir: run_dir.clone(),
        pool: HostPool::new(&cfg.hosts, cfg.quarantine_after, cfg.probation),
        queue: VecDeque::with_capacity(specs.len()),
        flights: Vec::new(),
        partials: vec![None; specs.len()],
        report: LaunchReport::default(),
        permanent: Vec::new(),
        last_error: String::new(),
    };

    let start = Instant::now();
    for spec in specs {
        if spec.is_empty() {
            // Empty shards (more shards than samples) need no dispatch.
            launcher.partials[spec.index] = Some((
                LOCAL_HOST.to_owned(),
                ShardPartial {
                    config: cfg.config.clone(),
                    spec,
                    circuits: cfg
                        .config
                        .circuits
                        .iter()
                        .map(|name| {
                            (
                                name.clone(),
                                crate::experiments::table2::CircuitAccum::new(),
                            )
                        })
                        .collect(),
                },
            ));
        } else {
            if cfg.resume {
                let path = partial_path(&run_dir, spec.index);
                if let Ok(text) = fs::read_to_string(&path) {
                    if let Ok(partial) = ShardPartial::from_json(&text) {
                        if partial.validate_for(&cfg.config, &spec).is_ok() {
                            launcher.partials[spec.index] = Some((LOCAL_HOST.to_owned(), partial));
                            launcher.report.base.reused += 1;
                            continue;
                        }
                    }
                }
            }
            launcher.queue.push_back(QueueItem {
                spec,
                attempt: 1,
                ready_at: start,
            });
        }
    }

    // The event loop: dispatch due work onto healthy hosts, poll flights,
    // hedge stragglers, sleep only when nothing moved. Terminates because
    // every shard either completes or exhausts its attempts (quarantine
    // only *delays* dispatch until probation, never blocks it forever).
    while launcher.permanent.is_empty()
        && (!launcher.queue.is_empty() || !launcher.flights.is_empty())
    {
        let filled = launcher.fill();
        let reaped = launcher.reap();
        let hedged = launcher.hedge();
        if !filled && !reaped && !hedged {
            std::thread::sleep(launcher.idle_wait());
        }
    }

    if !launcher.permanent.is_empty() {
        launcher.abort_flights();
        launcher.permanent.sort_unstable();
        launcher.permanent.dedup();
        let indices: Vec<String> = launcher.permanent.iter().map(ToString::to_string).collect();
        return Err(format!(
            "shard(s) {} failed permanently after {} attempt(s); last error: {}",
            indices.join(", "),
            cfg.max_attempts,
            launcher.last_error
        ));
    }

    launcher.report.hosts = launcher.pool.counts();
    let report = launcher.report;
    let assigned: Vec<(String, ShardPartial)> = launcher
        .partials
        .into_iter()
        .enumerate()
        .map(|(index, slot)| {
            slot.ok_or_else(|| {
                format!(
                    "internal launcher invariant violated: shard {index} has no partial \
                     although scheduling reported the campaign complete — please report this bug"
                )
            })
        })
        .collect::<Result<Vec<_>, String>>()?;
    let merged = merge_host_groups(&cfg.config, &assigned)?;
    if !cfg.keep_partials {
        for index in 0..cfg.shards {
            let _ = fs::remove_file(partial_path(&run_dir, index));
        }
        let _ = fs::remove_file(run_dir.join("campaign.json"));
        let _ = fs::remove_file(run_dir.join("coordinator.lock"));
        let _ = fs::remove_dir(&run_dir);
        let _ = fs::remove_dir(&cfg.work_dir);
    }
    Ok((merged, report))
}

/// Runs the campaign and returns only the merged result.
///
/// # Errors
///
/// See [`run_launch_with_report`].
pub fn run_launch(cfg: &LaunchConfig, transport: &dyn Transport) -> Result<MergedResult, String> {
    run_launch_with_report(cfg, transport).map(|(merged, _)| merged)
}
