//! Host-health tracking: which hosts may receive work, and how failures
//! move a host through healthy → suspect → quarantined → probation.
//!
//! The pool is deliberately simple state, not policy: the scheduler asks
//! it to [`HostPool::pick`] a host (healthy first, least-loaded, stable
//! tie-break) and feeds back dispatch outcomes; the pool turns
//! consecutive failures into a timed quarantine so a dead or flapping
//! host stops eating retry attempts, and releases it into a *suspect*
//! probation where one success restores full health but one failure
//! re-quarantines immediately.

use std::time::{Duration, Instant};

/// How many consecutive failures quarantine a host by default.
pub const DEFAULT_QUARANTINE_AFTER: usize = 3;

/// How long a quarantined host sits out by default.
pub const DEFAULT_PROBATION: Duration = Duration::from_secs(30);

/// One host of the fleet: a name (opaque to the launcher — the transport
/// interprets it) plus how many concurrent flights it may carry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HostSpec {
    /// Host name, handed verbatim to the transport.
    pub name: String,
    /// Concurrent dispatch slots (≥ 1).
    pub slots: usize,
}

impl HostSpec {
    /// Renders the `name*slots` form used in the campaign manifest.
    #[must_use]
    pub fn render(&self) -> String {
        format!("{}*{}", self.name, self.slots)
    }
}

/// Parses the `--hosts` grammar: comma-separated `name[*slots]` entries,
/// slots defaulting to 1. Names must be unique and non-empty, slots ≥ 1.
///
/// # Errors
///
/// Reports empty specs, duplicate names, and malformed slot counts.
pub fn parse_hosts(spec: &str) -> Result<Vec<HostSpec>, String> {
    let mut hosts: Vec<HostSpec> = Vec::new();
    for entry in spec.split(',') {
        let entry = entry.trim();
        if entry.is_empty() {
            return Err(format!("empty host entry in {spec:?}"));
        }
        let (name, slots) = match entry.split_once('*') {
            Some((name, slots)) => (
                name,
                slots
                    .parse::<usize>()
                    .map_err(|_| format!("host {name:?}: slot count {slots:?} is not a number"))?,
            ),
            None => (entry, 1),
        };
        if name.is_empty() {
            return Err(format!("host entry {entry:?} has no name"));
        }
        if slots == 0 {
            return Err(format!("host {name:?} needs at least one slot"));
        }
        if hosts.iter().any(|h| h.name == name) {
            return Err(format!("duplicate host {name:?}"));
        }
        hosts.push(HostSpec {
            name: name.to_owned(),
            slots,
        });
    }
    Ok(hosts)
}

/// A host's health state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HostHealth {
    /// Last outcome was a success (or no outcome yet): preferred target.
    Healthy,
    /// Recent failure(s), or on probation after a quarantine: still
    /// dispatchable, but only when no healthy host has a free slot.
    Suspect,
    /// Too many consecutive failures: receives no work until its
    /// probation expires.
    Quarantined,
}

/// Per-host dispatch counters, surfaced in the launch report and the
/// service job notes.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct HostCount {
    /// Host name.
    pub name: String,
    /// Flights dispatched to this host (including ones later discarded).
    pub dispatched: usize,
    /// Flights that returned a valid partial that won its shard.
    pub completed: usize,
    /// Flights that failed (dispatch error, bad exit, torn stream,
    /// watchdog kill).
    pub failed: usize,
    /// Times this host was quarantined.
    pub quarantines: usize,
}

#[derive(Debug)]
struct HostState {
    spec: HostSpec,
    health: HostHealth,
    consecutive_failures: usize,
    inflight: usize,
    /// Set while quarantined: when the sit-out ends.
    until: Option<Instant>,
    counters: HostCount,
}

/// The fleet with its health bookkeeping. All methods are O(hosts); the
/// scheduler owns the pool exclusively, so there is no locking here.
#[derive(Debug)]
pub struct HostPool {
    hosts: Vec<HostState>,
    quarantine_after: usize,
    probation: Duration,
}

impl HostPool {
    /// Builds the pool; every host starts healthy with zero counters.
    ///
    /// # Panics
    ///
    /// Panics when `specs` is empty or `quarantine_after` is zero — both
    /// are rejected at the config boundary before a pool exists.
    #[must_use]
    pub fn new(specs: &[HostSpec], quarantine_after: usize, probation: Duration) -> Self {
        assert!(!specs.is_empty(), "need at least one host");
        assert!(quarantine_after > 0, "quarantine threshold must be >= 1");
        Self {
            hosts: specs
                .iter()
                .map(|spec| HostState {
                    spec: spec.clone(),
                    health: HostHealth::Healthy,
                    consecutive_failures: 0,
                    inflight: 0,
                    until: None,
                    counters: HostCount {
                        name: spec.name.clone(),
                        ..HostCount::default()
                    },
                })
                .collect(),
            quarantine_after,
            probation,
        }
    }

    /// Number of hosts in the fleet.
    #[must_use]
    pub fn len(&self) -> usize {
        self.hosts.len()
    }

    /// True when the fleet is empty (never: `new` rejects it).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.hosts.is_empty()
    }

    /// The host name at `index`.
    #[must_use]
    pub fn name(&self, index: usize) -> &str {
        &self.hosts[index].spec.name
    }

    /// The current health of the host at `index`.
    #[must_use]
    pub fn health(&self, index: usize) -> HostHealth {
        self.hosts[index].health
    }

    /// Moves expired quarantines into probation: the host becomes
    /// [`HostHealth::Suspect`] with its failure streak *retained*, so the
    /// next failure re-quarantines immediately while a success restores
    /// full health.
    fn refresh(&mut self, now: Instant) {
        for host in &mut self.hosts {
            if host.health == HostHealth::Quarantined
                && host.until.is_some_and(|until| now >= until)
            {
                host.health = HostHealth::Suspect;
                host.until = None;
                host.consecutive_failures = self.quarantine_after.saturating_sub(1);
            }
        }
    }

    /// Picks a host with a free slot: healthy before suspect, then least
    /// in-flight, then lowest index (stable, so tests are deterministic).
    /// Quarantined hosts are never picked. `None` when every host is
    /// full or quarantined.
    pub fn pick(&mut self) -> Option<usize> {
        self.pick_filtered(&|_| true)
    }

    /// Like [`HostPool::pick`] but restricted to hosts where
    /// `allowed(index)` holds — the hedging path uses it to place the
    /// duplicate on a *different* host than the straggler.
    pub fn pick_filtered(&mut self, allowed: &dyn Fn(usize) -> bool) -> Option<usize> {
        self.refresh(Instant::now());
        let mut best: Option<usize> = None;
        for (index, host) in self.hosts.iter().enumerate() {
            if host.health == HostHealth::Quarantined
                || host.inflight >= host.spec.slots
                || !allowed(index)
            {
                continue;
            }
            best = match best {
                None => Some(index),
                Some(current) => {
                    let cur = &self.hosts[current];
                    let healthier =
                        (host.health == HostHealth::Healthy) && cur.health != HostHealth::Healthy;
                    let same_health = host.health == cur.health;
                    if healthier || (same_health && host.inflight < cur.inflight) {
                        Some(index)
                    } else {
                        Some(current)
                    }
                }
            };
        }
        best
    }

    /// Records a dispatch to the host at `index`.
    pub fn note_dispatch(&mut self, index: usize) {
        let host = &mut self.hosts[index];
        host.inflight += 1;
        host.counters.dispatched += 1;
    }

    /// Records a flight that returned a valid, winning partial: the host
    /// is fully healthy again.
    pub fn note_success(&mut self, index: usize) {
        let host = &mut self.hosts[index];
        host.inflight = host.inflight.saturating_sub(1);
        host.consecutive_failures = 0;
        host.health = HostHealth::Healthy;
        host.until = None;
        host.counters.completed += 1;
    }

    /// Records a failed flight (or dispatch error): the host turns
    /// suspect, and after `quarantine_after` *consecutive* failures it is
    /// quarantined for the probation duration.
    pub fn note_failure(&mut self, index: usize) {
        let host = &mut self.hosts[index];
        host.inflight = host.inflight.saturating_sub(1);
        host.consecutive_failures += 1;
        host.counters.failed += 1;
        if host.consecutive_failures >= self.quarantine_after {
            host.health = HostHealth::Quarantined;
            host.until = Some(Instant::now() + self.probation);
            host.counters.quarantines += 1;
        } else {
            host.health = HostHealth::Suspect;
        }
    }

    /// Records a discarded flight — a hedge loser cancelled after its
    /// sibling won, or a late result for an already-done shard. Frees the
    /// slot without blaming the host either way.
    pub fn note_discard(&mut self, index: usize) {
        let host = &mut self.hosts[index];
        host.inflight = host.inflight.saturating_sub(1);
    }

    /// The earliest instant a quarantined host re-enters probation, when
    /// *no* host is currently dispatchable — the scheduler sleeps until
    /// then instead of spinning. `None` when some host could still be
    /// picked (or none is quarantined).
    #[must_use]
    pub fn next_available_at(&self) -> Option<Instant> {
        self.hosts
            .iter()
            .filter(|h| h.health == HostHealth::Quarantined)
            .filter_map(|h| h.until)
            .min()
    }

    /// A snapshot of every host's counters, in fleet order.
    #[must_use]
    pub fn counts(&self) -> Vec<HostCount> {
        self.hosts.iter().map(|h| h.counters.clone()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fleet(spec: &str) -> Vec<HostSpec> {
        parse_hosts(spec).expect("valid spec")
    }

    #[test]
    fn hosts_grammar_parses_slots_and_rejects_junk() {
        let hosts = fleet("alpha*2, beta");
        assert_eq!(hosts.len(), 2);
        assert_eq!((hosts[0].name.as_str(), hosts[0].slots), ("alpha", 2));
        assert_eq!((hosts[1].name.as_str(), hosts[1].slots), ("beta", 1));
        assert_eq!(hosts[0].render(), "alpha*2");
        for bad in ["", "a,,b", "a*0", "a*x", "a,a", "*3"] {
            assert!(parse_hosts(bad).is_err(), "{bad:?} must fail");
        }
    }

    #[test]
    fn pick_prefers_healthy_then_least_loaded_then_lowest_index() {
        let mut pool = HostPool::new(&fleet("a*2,b*3"), 3, Duration::from_secs(30));
        assert_eq!(pool.pick(), Some(0), "tie: lowest index");
        pool.note_dispatch(0);
        assert_eq!(pool.pick(), Some(1), "least in-flight");
        pool.note_dispatch(1);
        assert_eq!(pool.pick(), Some(0), "tie again at 1 in-flight each");
        // One failure makes `a` suspect: healthy `b` wins despite load.
        pool.note_failure(0);
        pool.note_dispatch(1);
        assert_eq!(pool.pick(), Some(1), "healthy beats suspect");
        pool.note_dispatch(1);
        // `b` is now full: the suspect host is still dispatchable.
        assert_eq!(pool.pick(), Some(0), "suspect used when healthy is full");
    }

    #[test]
    fn consecutive_failures_quarantine_and_success_resets_the_streak() {
        let mut pool = HostPool::new(&fleet("a,b*3"), 2, Duration::from_secs(60));
        pool.note_dispatch(0);
        pool.note_failure(0);
        assert_eq!(pool.health(0), HostHealth::Suspect);
        // A success wipes the streak: two more failures are needed.
        pool.note_dispatch(0);
        pool.note_success(0);
        assert_eq!(pool.health(0), HostHealth::Healthy);
        pool.note_dispatch(0);
        pool.note_failure(0);
        pool.note_dispatch(0);
        pool.note_failure(0);
        assert_eq!(pool.health(0), HostHealth::Quarantined);
        assert_eq!(pool.counts()[0].quarantines, 1);
        // A quarantined host is never picked.
        for _ in 0..3 {
            assert_eq!(pool.pick(), Some(1));
            pool.note_dispatch(1);
        }
        assert_eq!(pool.pick(), None, "b is full, a is quarantined");
        assert!(pool.next_available_at().is_some());
    }

    #[test]
    fn probation_expiry_releases_as_suspect_with_one_strike_left() {
        let mut pool = HostPool::new(&fleet("a"), 2, Duration::from_millis(30));
        pool.note_dispatch(0);
        pool.note_failure(0);
        pool.note_dispatch(0);
        pool.note_failure(0);
        assert_eq!(pool.health(0), HostHealth::Quarantined);
        assert_eq!(pool.pick(), None, "sits out during probation");
        std::thread::sleep(Duration::from_millis(40));
        assert_eq!(pool.pick(), Some(0), "probation expired");
        assert_eq!(pool.health(0), HostHealth::Suspect);
        // One more failure re-quarantines immediately (streak retained)…
        pool.note_dispatch(0);
        pool.note_failure(0);
        assert_eq!(pool.health(0), HostHealth::Quarantined);
        assert_eq!(pool.counts()[0].quarantines, 2);
        // …while a success would have restored full health.
        std::thread::sleep(Duration::from_millis(40));
        assert_eq!(pool.pick(), Some(0));
        pool.note_dispatch(0);
        pool.note_success(0);
        assert_eq!(pool.health(0), HostHealth::Healthy);
    }

    #[test]
    fn filtered_pick_and_discard_support_hedging() {
        let mut pool = HostPool::new(&fleet("a,b"), 3, Duration::from_secs(30));
        pool.note_dispatch(0);
        // The hedge must land on a different host than the straggler.
        assert_eq!(pool.pick_filtered(&|i| i != 0), Some(1));
        pool.note_dispatch(1);
        // Discarding the loser frees the slot without blame.
        pool.note_discard(0);
        assert_eq!(pool.health(0), HostHealth::Healthy);
        assert_eq!(pool.counts()[0].dispatched, 1);
        assert_eq!(pool.counts()[0].failed, 0);
        assert_eq!(pool.pick_filtered(&|i| i != 1), Some(0));
    }
}
