//! The dispatch abstraction: "run this worker argv on that host and
//! stream the partial back on stdout".
//!
//! A [`Transport`] starts a [`Flight`] per dispatch; the flight is polled
//! (never blocked on) by the launch scheduler and resolves to the raw
//! bytes the worker wrote to stdout — a complete `xbar-mc-partial/1`
//! document on success, which the scheduler still validates with
//! [`crate::shard::partial::ShardPartial::validate_for`] because a
//! *transport-level* success says nothing about transfer integrity.
//!
//! Two real transports cover the practical space without new
//! dependencies: [`LocalProc`] runs the argv directly (production on one
//! machine, and the loopback test double for multi-host tests), and
//! [`Exec`] substitutes the argv into a user command template (`ssh`,
//! container runners, job-queue shims). [`Faulty`] wraps any transport
//! with deterministic fault injection for tests and CI.

use std::collections::HashMap;
use std::io::Read as _;
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::sync::Mutex;
use std::thread::JoinHandle;

/// The full worker invocation a transport must execute: binary plus every
/// argument (shard flags, `--out -`, injection passthrough). Transports
/// are worker-agnostic — they never interpret the argv, only run it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WorkerJob {
    /// Worker binary path (as visible on the executing host).
    pub binary: PathBuf,
    /// Every argument after the binary, in order.
    pub args: Vec<String>,
}

impl WorkerJob {
    /// The argv as one token list: binary first, then the arguments.
    #[must_use]
    pub fn argv(&self) -> Vec<String> {
        let mut argv = vec![self.binary.to_string_lossy().into_owned()];
        argv.extend(self.args.iter().cloned());
        argv
    }
}

/// One in-progress dispatch. `poll` must never block: it returns `None`
/// while the dispatch is still running, and `Some(result)` exactly once
/// when it finished — `Ok(stdout bytes)` on a zero exit, `Err(message)`
/// otherwise. `cancel` kills the dispatch (hedge losers, watchdog
/// deadlines, fail-fast aborts); a cancelled flight need not resolve.
pub trait Flight: Send {
    /// Non-blocking progress check; `Some` at most once.
    fn poll(&mut self) -> Option<Result<Vec<u8>, String>>;
    /// Kills the dispatch and reaps whatever it can.
    fn cancel(&mut self);
}

/// Runs a [`WorkerJob`] on a named host. Implementations must be cheap to
/// share across the scheduler loop (`Send + Sync`); per-dispatch state
/// lives in the returned [`Flight`].
pub trait Transport: Send + Sync {
    /// Starts the job on `host`.
    ///
    /// # Errors
    ///
    /// An `Err` is a *dispatch* failure (host unreachable, spawn failed)
    /// and counts against the host's health exactly like a failed flight.
    fn dispatch(&self, host: &str, job: &WorkerJob) -> Result<Box<dyn Flight>, String>;
}

impl Transport for Box<dyn Transport> {
    fn dispatch(&self, host: &str, job: &WorkerJob) -> Result<Box<dyn Flight>, String> {
        self.as_ref().dispatch(host, job)
    }
}

/// A flight backed by a local child process with piped stdout/stderr.
/// Each pipe is drained by its own reader thread so a worker writing more
/// than a pipe buffer of output can never deadlock against a scheduler
/// that only polls.
struct ProcFlight {
    child: Child,
    stdout: Option<JoinHandle<Vec<u8>>>,
    stderr: Option<JoinHandle<String>>,
    done: bool,
}

impl ProcFlight {
    fn spawn(program: &str, args: &[String]) -> Result<Self, String> {
        let mut child = Command::new(program)
            .args(args)
            .stdin(Stdio::null())
            .stdout(Stdio::piped())
            .stderr(Stdio::piped())
            .spawn()
            .map_err(|e| format!("cannot spawn {program}: {e}"))?;
        let mut out_pipe = child.stdout.take().expect("piped stdout");
        let stdout = std::thread::spawn(move || {
            let mut bytes = Vec::new();
            let _ = out_pipe.read_to_end(&mut bytes);
            bytes
        });
        let mut err_pipe = child.stderr.take().expect("piped stderr");
        let stderr = std::thread::spawn(move || {
            let mut text = String::new();
            let _ = err_pipe.read_to_string(&mut text);
            text
        });
        Ok(Self {
            child,
            stdout: Some(stdout),
            stderr: Some(stderr),
            done: false,
        })
    }

    fn join_stdout(&mut self) -> Vec<u8> {
        self.stdout
            .take()
            .and_then(|h| h.join().ok())
            .unwrap_or_default()
    }

    fn join_stderr_tail(&mut self) -> String {
        let text = self
            .stderr
            .take()
            .and_then(|h| h.join().ok())
            .unwrap_or_default();
        let lines: Vec<&str> = text.lines().collect();
        lines[lines.len().saturating_sub(3)..].join(" | ")
    }
}

impl Flight for ProcFlight {
    fn poll(&mut self) -> Option<Result<Vec<u8>, String>> {
        if self.done {
            return None;
        }
        match self.child.try_wait() {
            Ok(Some(status)) => {
                self.done = true;
                if status.success() {
                    Some(Ok(self.join_stdout()))
                } else {
                    let tail = self.join_stderr_tail();
                    Some(Err(format!("worker exited with {status}: {tail}")))
                }
            }
            Ok(None) => None,
            Err(e) => {
                self.done = true;
                self.cancel_child();
                Some(Err(format!("wait failed: {e}")))
            }
        }
    }

    fn cancel(&mut self) {
        self.done = true;
        self.cancel_child();
    }
}

impl ProcFlight {
    fn cancel_child(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
        // Killing closed the pipes, so the reader threads terminate; join
        // them to avoid leaking threads across a long campaign.
        let _ = self.stdout.take().map(JoinHandle::join);
        let _ = self.stderr.take().map(JoinHandle::join);
    }
}

impl Drop for ProcFlight {
    fn drop(&mut self) {
        if !self.done {
            self.cancel_child();
        }
    }
}

/// The subprocess transport: runs the worker argv directly on this
/// machine, ignoring the host name beyond bookkeeping. Production for a
/// single node — and, with a fleet of named "hosts", the loopback test
/// double every multi-host test and the CI smoke run on.
#[derive(Debug, Clone, Copy, Default)]
pub struct LocalProc;

impl Transport for LocalProc {
    fn dispatch(&self, _host: &str, job: &WorkerJob) -> Result<Box<dyn Flight>, String> {
        let program = job.binary.to_string_lossy().into_owned();
        Ok(Box::new(ProcFlight::spawn(&program, &job.args)?))
    }
}

/// Quotes one token for `sh`: single quotes with the `'\''` escape, safe
/// for any byte sequence but a NUL.
fn sh_quote(token: &str) -> String {
    format!("'{}'", token.replace('\'', "'\\''"))
}

/// The command-template transport: each dispatch substitutes the worker
/// argv and host name into a user-supplied token list and runs the
/// result locally. This covers `ssh` (and any other remote runner)
/// without new dependencies:
///
/// ```text
/// --exec-arg ssh --exec-arg {host} --exec-arg {worker:sh}
/// ```
///
/// Substitution rules, per template token:
///
/// * a token exactly `{worker}` splices the argv as separate tokens;
/// * a token exactly `{worker:sh}` becomes one shell-quoted string
///   (`exec`-prefixed so the remote shell is replaced, not wrapped —
///   `cancel` then reaches the worker itself);
/// * `{host}` anywhere in a token is replaced by the host name.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Exec {
    template: Vec<String>,
}

impl Exec {
    /// Builds the transport from a command template.
    ///
    /// # Errors
    ///
    /// The template must be non-empty and contain `{worker}` or
    /// `{worker:sh}` exactly once — a template that never mentions the
    /// worker would run the same command for every shard.
    pub fn new(template: Vec<String>) -> Result<Self, String> {
        if template.is_empty() {
            return Err("exec template is empty".to_owned());
        }
        let placeholders = template
            .iter()
            .filter(|t| t.as_str() == "{worker}" || t.as_str() == "{worker:sh}")
            .count();
        if placeholders != 1 {
            return Err(format!(
                "exec template must contain `{{worker}}` or `{{worker:sh}}` exactly once \
                 (found {placeholders})"
            ));
        }
        Ok(Self { template })
    }

    /// The concrete argv a dispatch of `job` on `host` would run.
    #[must_use]
    pub fn render(&self, host: &str, job: &WorkerJob) -> Vec<String> {
        let mut argv = Vec::with_capacity(self.template.len() + job.args.len());
        for token in &self.template {
            match token.as_str() {
                "{worker}" => argv.extend(job.argv()),
                "{worker:sh}" => {
                    let quoted: Vec<String> = job.argv().iter().map(|t| sh_quote(t)).collect();
                    argv.push(format!("exec {}", quoted.join(" ")));
                }
                other => argv.push(other.replace("{host}", host)),
            }
        }
        argv
    }
}

impl Transport for Exec {
    fn dispatch(&self, host: &str, job: &WorkerJob) -> Result<Box<dyn Flight>, String> {
        let argv = self.render(host, job);
        Ok(Box::new(ProcFlight::spawn(&argv[0], &argv[1..])?))
    }
}

/// What an injected fault does to the matched dispatch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// The dispatch itself fails (host unreachable).
    Drop,
    /// The flight starts but never completes (link stall / hung worker) —
    /// only a watchdog deadline or a hedged duplicate resolves the shard.
    Stall,
    /// The flight succeeds but returns only a prefix of the stream (torn
    /// transfer); partial validation must reject it.
    Truncate,
    /// The host dies: this dispatch and every later one on the host fail
    /// instantly (process death mid-campaign).
    Die,
}

impl FaultKind {
    fn parse(text: &str) -> Result<Self, String> {
        match text {
            "drop" => Ok(Self::Drop),
            "stall" => Ok(Self::Stall),
            "truncate" => Ok(Self::Truncate),
            "die" => Ok(Self::Die),
            other => Err(format!(
                "unknown fault kind {other:?} (drop|stall|truncate|die)"
            )),
        }
    }
}

/// One injected fault: on host `host`, the dispatch with per-host ordinal
/// `at` (0-based) is hit by `kind` — and for [`FaultKind::Die`], every
/// later dispatch too.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultPlan {
    /// Host the fault targets.
    pub host: String,
    /// What happens.
    pub kind: FaultKind,
    /// Per-host dispatch ordinal the fault fires at (0-based).
    pub at: usize,
}

impl FaultPlan {
    /// Parses the CLI grammar `host=kind[@ordinal]` (ordinal defaults
    /// to 0), e.g. `beta=die@1` or `alpha=truncate`.
    ///
    /// # Errors
    ///
    /// Reports a missing `=`, an unknown kind, or a malformed ordinal.
    pub fn parse(text: &str) -> Result<Self, String> {
        let (host, rest) = text
            .split_once('=')
            .ok_or_else(|| format!("fault spec {text:?} missing `=` (host=kind[@ordinal])"))?;
        if host.is_empty() {
            return Err(format!("fault spec {text:?} names no host"));
        }
        let (kind, at) = match rest.split_once('@') {
            Some((kind, ordinal)) => (
                FaultKind::parse(kind)?,
                ordinal
                    .parse()
                    .map_err(|_| format!("fault ordinal {ordinal:?} is not a number"))?,
            ),
            None => (FaultKind::parse(rest)?, 0),
        };
        Ok(Self {
            host: host.to_owned(),
            kind,
            at,
        })
    }
}

/// A flight that never completes until cancelled (the injected stall).
#[derive(Debug)]
struct StallFlight;

impl Flight for StallFlight {
    fn poll(&mut self) -> Option<Result<Vec<u8>, String>> {
        None
    }
    fn cancel(&mut self) {}
}

/// Wraps an inner flight and chops its success bytes in half (a torn
/// stream: the connection dropped mid-transfer).
struct TruncateFlight {
    inner: Box<dyn Flight>,
}

impl Flight for TruncateFlight {
    fn poll(&mut self) -> Option<Result<Vec<u8>, String>> {
        match self.inner.poll() {
            Some(Ok(mut bytes)) => {
                bytes.truncate(bytes.len() / 2);
                Some(Ok(bytes))
            }
            other => other,
        }
    }
    fn cancel(&mut self) {
        self.inner.cancel();
    }
}

/// A fault-injecting transport wrapper: counts dispatches per host and
/// applies any matching [`FaultPlan`]; unmatched dispatches pass through
/// to the inner transport untouched. Deterministic — the ordinal counter
/// makes fault placement reproducible for a fixed dispatch order.
#[derive(Debug)]
pub struct Faulty<T> {
    inner: T,
    plans: Vec<FaultPlan>,
    counts: Mutex<HashMap<String, usize>>,
}

impl<T: Transport> Faulty<T> {
    /// Wraps `inner` with the given fault plans.
    #[must_use]
    pub fn new(inner: T, plans: Vec<FaultPlan>) -> Self {
        Self {
            inner,
            plans,
            counts: Mutex::new(HashMap::new()),
        }
    }
}

impl<T: Transport> Transport for Faulty<T> {
    fn dispatch(&self, host: &str, job: &WorkerJob) -> Result<Box<dyn Flight>, String> {
        let ordinal = {
            let mut counts = self.counts.lock().expect("fault counter lock");
            let slot = counts.entry(host.to_owned()).or_insert(0);
            let ordinal = *slot;
            *slot += 1;
            ordinal
        };
        let hit = self.plans.iter().find(|plan| {
            plan.host == host
                && match plan.kind {
                    FaultKind::Die => ordinal >= plan.at,
                    _ => ordinal == plan.at,
                }
        });
        match hit.map(|plan| plan.kind) {
            Some(FaultKind::Drop) => Err(format!(
                "injected drop: dispatch {ordinal} to {host} never started"
            )),
            Some(FaultKind::Die) => Err(format!(
                "injected host death: {host} is gone (dispatch {ordinal})"
            )),
            Some(FaultKind::Stall) => Ok(Box::new(StallFlight)),
            Some(FaultKind::Truncate) => {
                let inner = self.inner.dispatch(host, job)?;
                Ok(Box::new(TruncateFlight { inner }))
            }
            None => self.inner.dispatch(host, job),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn job(args: &[&str]) -> WorkerJob {
        WorkerJob {
            binary: PathBuf::from("/bin/echo"),
            args: args.iter().map(|s| (*s).to_owned()).collect(),
        }
    }

    #[test]
    fn local_proc_streams_stdout_and_reports_failures() {
        let transport = LocalProc;
        let mut flight = transport
            .dispatch("anywhere", &job(&["hello"]))
            .expect("ok");
        let result = loop {
            if let Some(result) = flight.poll() {
                break result;
            }
            std::thread::sleep(std::time::Duration::from_millis(2));
        };
        assert_eq!(result.expect("succeeds"), b"hello\n");

        let fail = WorkerJob {
            binary: PathBuf::from("/bin/sh"),
            args: vec!["-c".to_owned(), "echo doomed >&2; exit 3".to_owned()],
        };
        let mut flight = transport.dispatch("anywhere", &fail).expect("spawns");
        let result = loop {
            if let Some(result) = flight.poll() {
                break result;
            }
            std::thread::sleep(std::time::Duration::from_millis(2));
        };
        let err = result.expect_err("non-zero exit is a flight failure");
        assert!(err.contains("doomed"), "stderr tail surfaces: {err}");
    }

    #[test]
    fn exec_template_substitutes_host_and_worker() {
        let exec = Exec::new(
            ["ssh", "-p", "22", "{host}", "{worker:sh}"]
                .iter()
                .map(|s| (*s).to_owned())
                .collect(),
        )
        .expect("valid");
        let argv = exec.render("db-3", &job(&["--out", "-", "it's"]));
        assert_eq!(argv[..4], ["ssh", "-p", "22", "db-3"]);
        assert_eq!(argv[4], "exec '/bin/echo' '--out' '-' 'it'\\''s'");

        let spliced = Exec::new(vec!["{worker}".to_owned()]).expect("valid");
        assert_eq!(
            spliced.render("h", &job(&["a", "b"])),
            ["/bin/echo", "a", "b"]
        );

        assert!(Exec::new(vec![]).is_err(), "empty template");
        assert!(
            Exec::new(vec!["ssh".to_owned(), "{host}".to_owned()]).is_err(),
            "template without a worker placeholder"
        );
        assert!(
            Exec::new(vec!["{worker}".to_owned(), "{worker:sh}".to_owned()]).is_err(),
            "two worker placeholders"
        );
    }

    #[test]
    fn fault_plans_parse_the_cli_grammar() {
        assert_eq!(
            FaultPlan::parse("beta=die@1").expect("parses"),
            FaultPlan {
                host: "beta".to_owned(),
                kind: FaultKind::Die,
                at: 1
            }
        );
        assert_eq!(
            FaultPlan::parse("alpha=truncate").expect("parses").at,
            0,
            "ordinal defaults to 0"
        );
        for bad in ["beta", "=die", "beta=melt", "beta=die@soon"] {
            assert!(FaultPlan::parse(bad).is_err(), "{bad:?} must fail");
        }
    }

    #[test]
    fn faulty_wrapper_hits_the_right_ordinals() {
        let plans = vec![
            FaultPlan::parse("a=drop@1").expect("parses"),
            FaultPlan::parse("b=die@1").expect("parses"),
        ];
        let faulty = Faulty::new(LocalProc, plans);
        // a: ordinal 0 passes, 1 drops, 2 passes again.
        assert!(faulty.dispatch("a", &job(&["x"])).is_ok());
        let err = faulty.dispatch("a", &job(&["x"])).err().expect("drop");
        assert!(err.contains("injected drop"), "{err}");
        assert!(faulty.dispatch("a", &job(&["x"])).is_ok());
        // b: ordinal 0 passes, then the host is dead for good.
        assert!(faulty.dispatch("b", &job(&["x"])).is_ok());
        for _ in 0..3 {
            let err = faulty.dispatch("b", &job(&["x"])).err().expect("dead");
            assert!(err.contains("host death"), "{err}");
        }
    }

    #[test]
    fn truncate_fault_halves_the_stream_and_stall_never_resolves() {
        let faulty = Faulty::new(
            LocalProc,
            vec![
                FaultPlan::parse("t=truncate@0").expect("parses"),
                FaultPlan::parse("s=stall@0").expect("parses"),
            ],
        );
        let mut flight = faulty
            .dispatch("t", &job(&["0123456789"]))
            .expect("dispatches");
        let bytes = loop {
            if let Some(result) = flight.poll() {
                break result.expect("flight succeeds");
            }
            std::thread::sleep(std::time::Duration::from_millis(2));
        };
        assert_eq!(bytes, b"01234", "11 bytes with newline -> half = 5");

        let mut stalled = faulty.dispatch("s", &job(&["x"])).expect("dispatches");
        for _ in 0..5 {
            assert!(stalled.poll().is_none(), "a stall never completes");
        }
        stalled.cancel();
    }
}
