//! `xbar mc launch`: the multi-host CLI over the launch scheduler.
//!
//! Parsing follows the `mc coordinate` conventions (usage problems print
//! help to stderr and return exit code 2) and reuses the shared
//! [`CampaignFlags`], so a launch describes its campaign with exactly the
//! coordinator's vocabulary plus the fleet flags.

use super::pool::{parse_hosts, DEFAULT_QUARANTINE_AFTER};
use super::scheduler::{run_launch_with_report, LaunchConfig, LaunchReport};
use super::transport::{Exec, FaultPlan, Faulty, LocalProc, Transport};
use crate::experiment::{find_experiment, Params};
use crate::experiments::table2::table2_artifact_from_accums;
use crate::shard::coordinator::{
    default_work_dir, default_worker, render_stats_json, render_timing_table, Worker,
    DEFAULT_RETRY_BASE,
};
use crate::shard::{CampaignFlags, McConfig, CAMPAIGN_FLAGS_USAGE};
use std::path::PathBuf;
use std::time::Duration;

struct LaunchArgs {
    campaign: CampaignFlags,
    shards: usize,
    hosts: String,
    max_attempts: usize,
    shard_timeout: Option<Duration>,
    hedge_after: Option<Duration>,
    quarantine_after: usize,
    probation: Duration,
    resume: bool,
    keep_partials: bool,
    work_dir: Option<PathBuf>,
    worker: Option<PathBuf>,
    worker_args: Vec<String>,
    out: PathBuf,
    artifact: Option<PathBuf>,
    exec_args: Vec<String>,
    faults: Vec<FaultPlan>,
}

impl Default for LaunchArgs {
    fn default() -> Self {
        Self {
            campaign: CampaignFlags::default(),
            shards: 3,
            hosts: String::new(),
            max_attempts: 3,
            shard_timeout: None,
            hedge_after: None,
            quarantine_after: DEFAULT_QUARANTINE_AFTER,
            probation: super::pool::DEFAULT_PROBATION,
            resume: false,
            keep_partials: false,
            work_dir: None,
            worker: None,
            worker_args: Vec::new(),
            out: PathBuf::from("MC_merged.json"),
            artifact: None,
            exec_args: Vec::new(),
            faults: Vec::new(),
        }
    }
}

fn launch_usage() -> String {
    format!(
        "xbar mc launch: fault-tolerant multi-host Monte Carlo dispatch\n\n\
         Shards the campaign over a fleet, streams partials back over a\n\
         transport, and merges through a per-host tree. The merged output is\n\
         byte-identical to a monolithic run under every tolerated fault.\n\nflags:\n\
         {CAMPAIGN_FLAGS_USAGE}\n  \
         --hosts SPEC       the fleet (required): comma-separated `name[*slots]`\n                     \
         entries, e.g. `alpha*4,beta*2,gamma` (slots default 1)\n  \
         --shards N         sample-range shards (default 3)\n  \
         --max-attempts N   attempts per shard before giving up (default 3)\n  \
         --shard-timeout S  kill a flight still running after S seconds and retry\n                     \
         (fractional ok; default: no watchdog, wait forever)\n  \
         --hedge-after S    re-dispatch a straggling flight onto another host\n                     \
         after S seconds; first valid partial wins (default: off)\n  \
         --quarantine-after N  quarantine a host after N consecutive failures\n                     \
         (default {DEFAULT_QUARANTINE_AFTER})\n  \
         --probation S      quarantine sit-out before a host may be retried\n                     \
         (default 30)\n  \
         --resume           reuse valid partials already in the run directory\n  \
         --out PATH         merged stats artifact (default MC_merged.json)\n  \
         --artifact PATH    also write the canonical experiment artifact\n                     \
         (byte-identical to `xbar run table2 --json`)\n  \
         --work-dir PATH    parent of the per-campaign run directory (shared with\n                     \
         `mc coordinate`: same checkpoints, same lock)\n  \
         --worker PATH      worker binary for every dispatch (default: the xbar\n                     \
         binary next to this one, via `mc shard`)\n  \
         --worker-arg ARG   extra argument appended to every worker invocation\n                     \
         (repeatable)\n  \
         --keep-partials    keep partial files after the merge\n  \
         --exec-arg TOKEN   remote command template token (repeatable). When\n                     \
         present, dispatch runs the rendered template instead of a local\n                     \
         subprocess: `{{host}}` expands to the host name, `{{worker}}` splices\n                     \
         the worker argv, `{{worker:sh}}` substitutes one shell-quoted\n                     \
         command string. E.g. `--exec-arg ssh --exec-arg {{host}}\n                     \
         --exec-arg {{worker:sh}}` dispatches over ssh.\n\n\
         test-only fault injection:\n  \
         --inject-host-fault SPEC  wrap the transport with an injected fault:\n                     \
         `host=drop|stall|truncate|die[@ordinal]` (repeatable)"
    )
}

fn parse_launch_args(args: Vec<String>) -> Result<Option<LaunchArgs>, String> {
    let mut out = LaunchArgs::default();
    let mut it = args.into_iter();
    let value = |flag: &str, it: &mut dyn Iterator<Item = String>| {
        it.next().ok_or_else(|| format!("{flag} needs a value"))
    };
    let num = |flag: &str, text: String| -> Result<usize, String> {
        text.parse()
            .map_err(|_| format!("{flag}: expected a number, got {text:?}"))
    };
    let secs = |flag: &str, text: String| -> Result<Duration, String> {
        let secs: f64 = text
            .parse()
            .map_err(|_| format!("{flag}: expected seconds, got {text:?}"))?;
        Duration::try_from_secs_f64(secs)
            .map_err(|_| format!("{flag}: {secs} is not a representable duration"))
    };
    while let Some(flag) = it.next() {
        if out.campaign.consume(&flag, &mut it)? {
            continue;
        }
        match flag.as_str() {
            "--hosts" => out.hosts = value(&flag, &mut it)?,
            "--shards" => out.shards = num(&flag, value(&flag, &mut it)?)?,
            "--max-attempts" => out.max_attempts = num(&flag, value(&flag, &mut it)?)?,
            "--shard-timeout" => {
                let timeout = secs(&flag, value(&flag, &mut it)?)?;
                if timeout.is_zero() {
                    return Err(format!("{flag} must be positive"));
                }
                out.shard_timeout = Some(timeout);
            }
            "--hedge-after" => {
                let after = secs(&flag, value(&flag, &mut it)?)?;
                if after.is_zero() {
                    return Err(format!("{flag} must be positive"));
                }
                out.hedge_after = Some(after);
            }
            "--quarantine-after" => {
                let n = num(&flag, value(&flag, &mut it)?)?;
                if n == 0 {
                    return Err(format!("{flag} must be at least 1"));
                }
                out.quarantine_after = n;
            }
            "--probation" => out.probation = secs(&flag, value(&flag, &mut it)?)?,
            "--resume" => out.resume = true,
            "--keep-partials" => out.keep_partials = true,
            "--out" => out.out = PathBuf::from(value(&flag, &mut it)?),
            "--artifact" => out.artifact = Some(PathBuf::from(value(&flag, &mut it)?)),
            "--work-dir" => out.work_dir = Some(PathBuf::from(value(&flag, &mut it)?)),
            "--worker" => out.worker = Some(PathBuf::from(value(&flag, &mut it)?)),
            "--worker-arg" => out.worker_args.push(value(&flag, &mut it)?),
            "--exec-arg" => out.exec_args.push(value(&flag, &mut it)?),
            "--inject-host-fault" => out.faults.push(FaultPlan::parse(&value(&flag, &mut it)?)?),
            "--help" | "-h" => return Ok(None),
            other => return Err(format!("unknown flag {other:?}; try --help")),
        }
    }
    if out.hosts.is_empty() {
        return Err("--hosts is required (e.g. --hosts alpha*2,beta)".to_owned());
    }
    Ok(Some(out))
}

/// The scheduling summary after a successful launch — on stdout, outside
/// the byte-compared artifacts, in the coordinator report's spirit so
/// scripts can assert how the campaign actually executed.
fn print_report(report: &LaunchReport) {
    println!(
        "launcher: dispatched {} flight(s), reused {} partial(s), {} retrie(s), \
         {} timeout(s), {} hedge(s), {} discard(s)",
        report.base.spawned,
        report.base.reused,
        report.base.retries,
        report.base.timeouts,
        report.hedges,
        report.discards
    );
    for host in &report.hosts {
        println!(
            "launcher: host {}: {} dispatched, {} ok, {} failed, {} quarantine(s)",
            host.name, host.dispatched, host.completed, host.failed, host.quarantines
        );
    }
}

/// The `xbar run table2`-equivalent argv for this campaign, so the
/// canonical artifact is rebuilt against the exact [`Params`] a
/// monolithic run of the same flags would parse.
fn table2_argv(flags: &CampaignFlags) -> Vec<String> {
    let mut argv = vec![
        "--samples".to_owned(),
        flags.samples.to_string(),
        "--seed".to_owned(),
        flags.seed.to_string(),
        "--defect-rate".to_owned(),
        // Shortest-round-trip text: parses back to the exact bits.
        format!("{:?}", flags.defect_rate),
        "--rng-stream".to_owned(),
        flags.stream.as_str().to_owned(),
    ];
    if flags.model_kind != xbar_core::DefectModelKind::Iid {
        argv.push("--defect-model".to_owned());
        argv.push(flags.model_kind.as_str().to_owned());
        argv.push("--cluster-size".to_owned());
        argv.push(format!("{:?}", flags.cluster_size));
        argv.push("--line-rate".to_owned());
        argv.push(format!("{:?}", flags.line_rate));
    }
    if let Some(circuits) = &flags.circuits {
        argv.push("--circuits".to_owned());
        argv.push(circuits.join(","));
    }
    argv
}

/// Rebuilds and writes the canonical `xbar-artifact/1` document for the
/// campaign, byte-identical to `xbar run table2 --json` with the same
/// flags (the merge is integer-exact, the rebuild path is shared with the
/// serving daemon).
fn write_canonical_artifact(
    path: &std::path::Path,
    flags: &CampaignFlags,
    merged: &crate::shard::coordinator::MergedResult,
) -> Result<(), String> {
    let exp = find_experiment("table2").ok_or("table2 vanished from the registry")?;
    let params = Params::parse(exp.extra_params(), table2_argv(flags))
        .map_err(|e| format!("rebuilding table2 parameters: {e}"))?;
    let artifact = table2_artifact_from_accums(&merged.circuits, merged.config.seed, exp, &params)?;
    crate::atomic::write_atomic(path, artifact.as_bytes())
        .map_err(|e| format!("cannot write {}: {e}", path.display()))
}

/// `xbar mc launch`: shards a campaign over a fleet of hosts, merges the
/// streamed partials through the two-level tree, and writes the merged
/// stats artifact (plus, with `--artifact`, the canonical experiment
/// document). Returns the process exit code.
#[must_use]
pub fn launch_main(argv: Vec<String>) -> i32 {
    let args = match parse_launch_args(argv) {
        Ok(Some(args)) => args,
        Ok(None) => {
            println!("{}", launch_usage());
            return 0;
        }
        Err(e) => {
            eprintln!("mc launch: {e}\n\n{}", launch_usage());
            return 2;
        }
    };
    let hosts = match parse_hosts(&args.hosts) {
        Ok(hosts) => hosts,
        Err(e) => {
            eprintln!("mc launch: --hosts: {e}");
            return 2;
        }
    };
    let config: McConfig = args.campaign.clone().into_config();
    if let Err(e) = config.validate() {
        eprintln!("mc launch: {e}");
        return 2;
    }
    let worker = match args
        .worker
        .clone()
        .map_or_else(default_worker, |path| Ok(Worker::standalone(path)))
    {
        Ok(worker) => worker,
        Err(e) => {
            eprintln!("mc launch: {e}");
            return 2;
        }
    };
    let cfg = LaunchConfig {
        config: config.clone(),
        shards: args.shards,
        max_attempts: args.max_attempts,
        worker,
        work_dir: args.work_dir.clone().unwrap_or_else(default_work_dir),
        extra_worker_args: args.worker_args.clone(),
        keep_partials: args.keep_partials,
        shard_timeout: args.shard_timeout,
        hedge_after: args.hedge_after,
        resume: args.resume,
        retry_base: DEFAULT_RETRY_BASE,
        hosts,
        quarantine_after: args.quarantine_after,
        probation: args.probation,
    };
    let transport: Box<dyn Transport> = if args.exec_args.is_empty() {
        Box::new(LocalProc)
    } else {
        match Exec::new(args.exec_args.clone()) {
            Ok(exec) => Box::new(exec),
            Err(e) => {
                eprintln!("mc launch: --exec-arg: {e}");
                return 2;
            }
        }
    };
    let transport: Box<dyn Transport> = if args.faults.is_empty() {
        transport
    } else {
        Box::new(Faulty::new(transport, args.faults.clone()))
    };

    println!(
        "launching {} samples as {} shard(s) over {} host(s) (seed {}, {:.0}% defects)",
        config.samples,
        cfg.shards,
        cfg.hosts.len(),
        config.seed,
        config.defect_rate * 100.0
    );
    let (merged, report) = match run_launch_with_report(&cfg, transport.as_ref()) {
        Ok(done) => done,
        Err(e) => {
            eprintln!("mc launch: {e}");
            return 1;
        }
    };
    print_report(&report);
    print!("{}", render_timing_table(&merged));
    if let Err(e) = crate::atomic::write_atomic(&args.out, render_stats_json(&merged).as_bytes()) {
        eprintln!("mc launch: cannot write {}: {e}", args.out.display());
        return 1;
    }
    println!("wrote {}", args.out.display());
    if let Some(path) = &args.artifact {
        if let Err(e) = write_canonical_artifact(path, &args.campaign, &merged) {
            eprintln!("mc launch: {e}");
            return 1;
        }
        println!("wrote {}", path.display());
    }
    0
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(words: &[&str]) -> Vec<String> {
        words.iter().map(|s| (*s).to_owned()).collect()
    }

    #[test]
    fn launch_args_parse_the_fleet_and_policy_flags() {
        let args = parse_launch_args(argv(&[
            "--hosts",
            "alpha*2,beta",
            "--shards",
            "5",
            "--hedge-after",
            "0.5",
            "--quarantine-after",
            "2",
            "--probation",
            "1.5",
            "--exec-arg",
            "ssh",
            "--exec-arg",
            "{host}",
            "--exec-arg",
            "{worker:sh}",
            "--inject-host-fault",
            "beta=die@1",
        ]))
        .expect("parses")
        .expect("not help");
        assert_eq!(args.hosts, "alpha*2,beta");
        assert_eq!(args.shards, 5);
        assert_eq!(args.hedge_after, Some(Duration::from_millis(500)));
        assert_eq!(args.quarantine_after, 2);
        assert_eq!(args.probation, Duration::from_millis(1500));
        assert_eq!(args.exec_args, ["ssh", "{host}", "{worker:sh}"]);
        assert_eq!(args.faults.len(), 1);

        assert!(parse_launch_args(argv(&["--help"])).expect("ok").is_none());
    }

    #[test]
    fn launch_args_require_hosts_and_reject_degenerate_values() {
        for words in [
            &[][..],
            &["--shards", "3"][..],
            &["--hosts", "a", "--quarantine-after", "0"][..],
            &["--hosts", "a", "--hedge-after", "0"][..],
            &["--hosts", "a", "--shard-timeout", "soon"][..],
            &["--hosts", "a", "--inject-host-fault", "a=explode"][..],
            &["--hosts", "a", "--what"][..],
        ] {
            assert!(parse_launch_args(argv(words)).is_err(), "{words:?}");
        }
    }

    #[test]
    fn table2_argv_round_trips_campaign_flags_into_params() {
        let flags = CampaignFlags {
            samples: 30,
            seed: 7,
            circuits: Some(vec!["rd53".to_owned()]),
            ..Default::default()
        };
        let exp = find_experiment("table2").expect("registered");
        let params = Params::parse(exp.extra_params(), table2_argv(&flags)).expect("parses");
        assert_eq!(params.samples, 30);
        assert_eq!(params.seed, 7);
        assert_eq!(params.list("circuits"), ["rd53"]);
        // The synthesized params resolve to exactly the launch's config.
        let config = flags.clone().into_config();
        assert_eq!(params.sample_stream(), config.stream);
        assert_eq!(params.defect_model(), config.model);
        assert!((params.defect_rate - config.defect_rate).abs() < f64::EPSILON);
    }
}
