//! The two-level merge tree: per-host pre-merge, then a root merge over
//! the host groups.
//!
//! Very wide fan-outs should not pay one flat O(shards) merge walk at the
//! root for validation *and* accumulation: each host's partials are
//! pre-merged into one accumulator set first, and the root merges one
//! entry per host. The result is byte-identical to the flat
//! [`merge_partials`] merge — success counters are integers (order
//! irrelevant) and wall-clock moments never enter compared bytes; the
//! equivalence is pinned by a proptest in `tests/launch.rs`, leaning on
//! the PR 3 two-level property that accumulators re-merge merged
//! partials exactly.
//!
//! Validation is *shared code*, not a re-implementation: every partial
//! passes the same per-partial checks as the flat merge
//! ([`validate_partial_for_merge`]) and the union of all slices must
//! tile the campaign range exactly ([`check_exact_tiling`]) — which is
//! precisely the backstop that discards a hedge loser's duplicate
//! partial: two partials for one slice can never tile.

use crate::experiments::table2::CircuitAccum;
use crate::shard::coordinator::{
    check_exact_tiling, merge_partials, validate_partial_for_merge, MergedResult,
};
use crate::shard::partial::ShardPartial;
use crate::shard::McConfig;

/// Merges `(winning host, partial)` pairs through the two-level tree.
///
/// Host groups are ordered by their minimal sample start and each group's
/// partials by start, so the merge is deterministic for a fixed
/// assignment; the merged integer statistics are identical for *every*
/// assignment.
///
/// # Errors
///
/// Exactly the flat-merge failures: configuration mismatches, torn or
/// foreign partials, and slices that do not tile the campaign range
/// (duplicates included).
pub fn merge_host_groups(
    config: &McConfig,
    assigned: &[(String, ShardPartial)],
) -> Result<MergedResult, String> {
    // Degenerate fan-in: a single host's group IS the flat merge.
    if assigned.len() <= 1 {
        let partials: Vec<ShardPartial> = assigned.iter().map(|(_, p)| p.clone()).collect();
        return merge_partials(config, &partials);
    }

    let mut ordered: Vec<&ShardPartial> = assigned.iter().map(|(_, p)| p).collect();
    ordered.sort_by_key(|p| p.spec.start);
    for partial in &ordered {
        validate_partial_for_merge(config, partial)?;
    }
    check_exact_tiling(config.samples, &ordered)?;

    // Group by host, preserving per-host start order; order the groups by
    // their minimal start so the root merge is deterministic.
    let mut groups: Vec<(&str, Vec<&ShardPartial>)> = Vec::new();
    for (host, partial) in assigned {
        match groups.iter_mut().find(|(name, _)| *name == host.as_str()) {
            Some((_, members)) => members.push(partial),
            None => groups.push((host.as_str(), vec![partial])),
        }
    }
    for (_, members) in &mut groups {
        members.sort_by_key(|p| p.spec.start);
    }
    groups.sort_by_key(|(_, members)| members[0].spec.start);

    // Level 1: one merged accumulator set per host.
    let mut host_level: Vec<Vec<CircuitAccum>> = Vec::with_capacity(groups.len());
    for (_, members) in &groups {
        let mut accums: Vec<CircuitAccum> = config
            .circuits
            .iter()
            .map(|_| CircuitAccum::new())
            .collect();
        for partial in members {
            for (merged, (_, piece)) in accums.iter_mut().zip(&partial.circuits) {
                merged.merge(piece);
            }
        }
        host_level.push(accums);
    }

    // Level 2: the root folds the host groups.
    let mut circuits: Vec<(String, CircuitAccum)> = config
        .circuits
        .iter()
        .map(|name| (name.clone(), CircuitAccum::new()))
        .collect();
    for accums in &host_level {
        for ((_, merged), piece) in circuits.iter_mut().zip(accums) {
            merged.merge(piece);
        }
    }
    Ok(MergedResult {
        config: config.clone(),
        circuits,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::shard::coordinator::render_stats_json;
    use crate::shard::{run_shard, ShardSpec};
    use xbar_core::{DefectModelSpec, SampleStream};

    fn config() -> McConfig {
        McConfig {
            samples: 24,
            seed: 9,
            defect_rate: 0.1,
            stream: SampleStream::V1,
            model: DefectModelSpec::default(),
            circuits: vec!["rd53".to_owned()],
        }
    }

    fn partials(config: &McConfig, shards: usize) -> Vec<ShardPartial> {
        ShardSpec::partition(config.samples, shards)
            .iter()
            .map(|spec| run_shard(config, spec))
            .collect()
    }

    #[test]
    fn two_level_merge_is_byte_identical_to_the_flat_merge() {
        let config = config();
        let parts = partials(&config, 5);
        let flat = merge_partials(&config, &parts).expect("flat merges");
        // Interleaved host assignment: groups are non-contiguous slices.
        let hosts = ["alpha", "beta", "gamma"];
        let assigned: Vec<(String, ShardPartial)> = parts
            .iter()
            .enumerate()
            .map(|(i, p)| (hosts[i % hosts.len()].to_owned(), p.clone()))
            .collect();
        let tree = merge_host_groups(&config, &assigned).expect("tree merges");
        assert_eq!(render_stats_json(&tree), render_stats_json(&flat));
    }

    #[test]
    fn duplicate_partial_from_a_hedge_loser_is_rejected_by_tiling() {
        let config = config();
        let parts = partials(&config, 3);
        let mut assigned: Vec<(String, ShardPartial)> = parts
            .iter()
            .map(|p| ("alpha".to_owned(), p.clone()))
            .collect();
        // The hedge loser's copy arrives under another host.
        assigned.push(("beta".to_owned(), parts[1].clone()));
        let err = merge_host_groups(&config, &assigned).expect_err("must fail");
        assert!(err.contains("not tiled"), "{err}");
    }

    #[test]
    fn missing_shard_and_config_mismatch_fail_like_the_flat_merge() {
        let config = config();
        let mut parts = partials(&config, 3);
        parts.remove(1);
        let assigned: Vec<(String, ShardPartial)> = parts
            .iter()
            .enumerate()
            .map(|(i, p)| (format!("h{i}"), p.clone()))
            .collect();
        let err = merge_host_groups(&config, &assigned).expect_err("gap");
        assert!(err.contains("not tiled"), "{err}");

        let mut parts = partials(&config, 3);
        parts[2].config.seed ^= 1;
        let assigned: Vec<(String, ShardPartial)> = parts
            .iter()
            .enumerate()
            .map(|(i, p)| (format!("h{i}"), p.clone()))
            .collect();
        let err = merge_host_groups(&config, &assigned).expect_err("echo");
        assert!(err.contains("seed"), "{err}");
    }
}
