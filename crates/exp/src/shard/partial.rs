//! Self-describing partial-result files: what an `mc_shard` worker writes
//! and the coordinator merges.
//!
//! The document embeds the full experiment configuration and the shard's
//! slice, so a partial is verifiable on its own — the coordinator rejects
//! any partial whose configuration does not match the campaign before
//! merging. All accumulator fields round-trip **bit-exactly**: integers
//! are written as decimal `u64`s and floating-point state with Rust's
//! shortest-round-trip representation (the parser keeps number tokens as
//! raw text precisely so this holds; see [`super::json`]).

use super::json::{escape, Json};
use super::{McConfig, ShardSpec};
use crate::experiments::table2::CircuitAccum;
use std::fmt::Write as _;
use xbar_core::stats::{Moments, SuccessCount};
use xbar_core::{DefectModelKind, DefectModelSpec, SampleStream};

/// Schema tag written into (and required from) every partial file.
pub const PARTIAL_SCHEMA: &str = "xbar-mc-partial/1";

/// The result of one shard: configuration echo, slice, and one accumulator
/// per circuit (in configuration order).
#[derive(Debug, Clone, PartialEq)]
pub struct ShardPartial {
    /// The campaign configuration this shard ran under.
    pub config: McConfig,
    /// The slice this shard owns.
    pub spec: ShardSpec,
    /// `(circuit name, accumulator)` in `config.circuits` order.
    pub circuits: Vec<(String, CircuitAccum)>,
}

/// Writes an `f64` in shortest-round-trip form, guarding the NaN-free
/// invariant of the accumulators (JSON has no NaN/Infinity literal).
fn fmt_f64(value: f64) -> String {
    assert!(value.is_finite(), "accumulators must stay NaN/Inf-free");
    format!("{value:?}")
}

fn write_moments(out: &mut String, key: &str, m: &Moments) {
    let _ = write!(
        out,
        "\"{key}\": {{\"count\": {}, \"mean\": {}, \"m2\": {}}}",
        m.count,
        fmt_f64(m.mean),
        fmt_f64(m.m2)
    );
}

fn parse_moments(value: &Json, context: &str) -> Result<Moments, String> {
    let field = |key: &str| {
        value
            .get(key)
            .ok_or_else(|| format!("{context}: missing `{key}`"))
    };
    Ok(Moments {
        count: field("count")?
            .as_u64()
            .ok_or_else(|| format!("{context}: `count` is not a u64"))?,
        mean: field("mean")?
            .as_f64()
            .ok_or_else(|| format!("{context}: `mean` is not a number"))?,
        m2: field("m2")?
            .as_f64()
            .ok_or_else(|| format!("{context}: `m2` is not a number"))?,
    })
}

impl ShardPartial {
    /// Checks this partial's embedded configuration echo against a
    /// campaign — the shared gate the coordinator applies before a
    /// partial may contribute to a merge.
    ///
    /// # Errors
    ///
    /// Names the first disagreeing field.
    pub fn validate_config_echo(&self, config: &McConfig) -> Result<(), String> {
        if self.config.samples != config.samples {
            return Err(format!(
                "samples {} != campaign {}",
                self.config.samples, config.samples
            ));
        }
        if self.config.seed != config.seed {
            return Err(format!(
                "seed {} != campaign {}",
                self.config.seed, config.seed
            ));
        }
        if self.config.defect_rate.to_bits() != config.defect_rate.to_bits() {
            return Err(format!(
                "defect_rate {} != campaign {}",
                self.config.defect_rate, config.defect_rate
            ));
        }
        if self.config.stream != config.stream {
            return Err(format!(
                "rng stream {} != campaign {} (a shard sampled under a \
                 different stream cannot merge into this campaign)",
                self.config.stream, config.stream
            ));
        }
        if self.config.model != config.model {
            return Err(format!(
                "defect model {} != campaign {} (a shard sampled under a \
                 different spatial model cannot merge into this campaign)",
                self.config.model, config.model
            ));
        }
        if self.config.circuits != config.circuits {
            return Err(format!(
                "circuit list {:?} != campaign {:?}",
                self.config.circuits, config.circuits
            ));
        }
        if self.circuits.len() != config.circuits.len() {
            return Err(format!(
                "{} circuit entries, campaign has {}",
                self.circuits.len(),
                config.circuits.len()
            ));
        }
        Ok(())
    }

    /// Full per-file validation: the configuration echo, the exact slice
    /// the coordinator expected this file to hold, and per-circuit folded
    /// sample counts. Applied both to a worker's fresh output and to
    /// checkpoint files found by `--resume` — a stale, foreign, or torn
    /// partial can never be merged.
    ///
    /// # Errors
    ///
    /// Describes the first mismatch.
    pub fn validate_for(&self, config: &McConfig, spec: &ShardSpec) -> Result<(), String> {
        if self.spec != *spec {
            return Err(format!(
                "partial describes shard {:?}, expected {:?}",
                self.spec, spec
            ));
        }
        self.validate_config_echo(config)?;
        let expected: u64 = spec.len() as u64;
        for ((name, accum), campaign_name) in self.circuits.iter().zip(&config.circuits) {
            if name != campaign_name {
                return Err(format!(
                    "circuit entry {name:?} out of order (expected {campaign_name:?})"
                ));
            }
            if accum.samples() != expected {
                return Err(format!(
                    "circuit {name:?} folded {} samples, range holds {expected}",
                    accum.samples()
                ));
            }
        }
        Ok(())
    }

    /// Renders the partial as a JSON document.
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        let _ = writeln!(out, "  \"schema\": \"{PARTIAL_SCHEMA}\",");
        let _ = writeln!(out, "  \"experiment\": \"table2\",");
        let _ = writeln!(out, "  \"seed\": {},", self.config.seed);
        let _ = writeln!(
            out,
            "  \"defect_rate\": {},",
            fmt_f64(self.config.defect_rate)
        );
        let _ = writeln!(out, "  \"samples\": {},", self.config.samples);
        // Echoed only for non-default streams: V1 partials keep the exact
        // bytes they had before stream versioning existed.
        if self.config.stream != SampleStream::V1 {
            let _ = writeln!(out, "  \"rng_stream\": \"{}\",", self.config.stream);
        }
        // Same freeze rule for the spatial model: default (i.i.d.) partials
        // keep their pre-model bytes; non-default models declare their kind
        // and whichever parameters that kind consumes.
        if !self.config.model.is_default() {
            let _ = writeln!(
                out,
                "  \"defect_model\": \"{}\",",
                self.config.model.kind().as_str()
            );
            if self.config.model.uses_cluster() {
                let _ = writeln!(
                    out,
                    "  \"cluster_size\": {},",
                    fmt_f64(self.config.model.cluster_size())
                );
            }
            if self.config.model.uses_lines() {
                let _ = writeln!(
                    out,
                    "  \"line_rate\": {},",
                    fmt_f64(self.config.model.line_rate())
                );
            }
        }
        let _ = writeln!(
            out,
            "  \"shard\": {{\"index\": {}, \"num_shards\": {}, \"start\": {}, \"end\": {}}},",
            self.spec.index, self.spec.num_shards, self.spec.start, self.spec.end
        );
        let _ = writeln!(out, "  \"circuits\": [");
        for (idx, (name, accum)) in self.circuits.iter().enumerate() {
            let comma = if idx + 1 < self.circuits.len() {
                ","
            } else {
                ""
            };
            let _ = write!(
                out,
                "    {{\"name\": \"{}\", \"samples\": {}, \"hba_successes\": {}, \
                 \"ea_successes\": {}, ",
                escape(name),
                accum.samples(),
                accum.hba.successes,
                accum.ea.successes
            );
            write_moments(&mut out, "hba_time", &accum.hba_time);
            out.push_str(", ");
            write_moments(&mut out, "ea_time", &accum.ea_time);
            let _ = writeln!(out, "}}{comma}");
        }
        out.push_str("  ],\n");
        // Written last: a truncated file cannot carry it, and the parser
        // requires it, so torn writes are always detected.
        out.push_str("  \"complete\": true\n}\n");
        out
    }

    /// Parses and validates a partial-result document.
    ///
    /// # Errors
    ///
    /// Reports malformed JSON, a wrong schema tag, a missing `complete`
    /// marker (torn write), or missing/mistyped fields.
    pub fn from_json(text: &str) -> Result<Self, String> {
        let doc = Json::parse(text).map_err(|e| format!("malformed partial: {e}"))?;
        let schema = doc
            .get("schema")
            .and_then(Json::as_str)
            .ok_or("partial missing `schema`")?;
        if schema != PARTIAL_SCHEMA {
            return Err(format!(
                "schema mismatch: got {schema:?}, expected {PARTIAL_SCHEMA:?}"
            ));
        }
        if doc.get("complete").and_then(Json::as_bool) != Some(true) {
            return Err("partial not marked complete (torn write?)".to_owned());
        }
        let u64_field = |key: &str| {
            doc.get(key)
                .and_then(Json::as_u64)
                .ok_or_else(|| format!("partial missing u64 `{key}`"))
        };
        let shard = doc.get("shard").ok_or("partial missing `shard`")?;
        let shard_field = |key: &str| {
            shard
                .get(key)
                .and_then(Json::as_usize)
                .ok_or_else(|| format!("shard missing usize `{key}`"))
        };
        let spec = ShardSpec {
            index: shard_field("index")?,
            num_shards: shard_field("num_shards")?,
            start: shard_field("start")?,
            end: shard_field("end")?,
        };
        if spec.start > spec.end {
            return Err(format!(
                "shard range inverted: start {} > end {}",
                spec.start, spec.end
            ));
        }
        if spec.index >= spec.num_shards {
            return Err(format!(
                "shard index {} out of range for num_shards {}",
                spec.index, spec.num_shards
            ));
        }
        let circuit_values = doc
            .get("circuits")
            .and_then(Json::as_arr)
            .ok_or("partial missing `circuits` array")?;
        let mut circuits = Vec::with_capacity(circuit_values.len());
        for value in circuit_values {
            let name = value
                .get("name")
                .and_then(Json::as_str)
                .ok_or("circuit missing `name`")?
                .to_owned();
            let context = format!("circuit {name:?}");
            let count = |key: &str| {
                value
                    .get(key)
                    .and_then(Json::as_u64)
                    .ok_or_else(|| format!("{context}: missing u64 `{key}`"))
            };
            let samples = count("samples")?;
            let accum = CircuitAccum {
                hba: SuccessCount {
                    samples,
                    successes: count("hba_successes")?,
                },
                ea: SuccessCount {
                    samples,
                    successes: count("ea_successes")?,
                },
                hba_time: parse_moments(
                    value
                        .get("hba_time")
                        .ok_or_else(|| format!("{context}: missing `hba_time`"))?,
                    &context,
                )?,
                ea_time: parse_moments(
                    value
                        .get("ea_time")
                        .ok_or_else(|| format!("{context}: missing `ea_time`"))?,
                    &context,
                )?,
            };
            circuits.push((name, accum));
        }
        // Absent in files written before spatial models existed (and by
        // default-model workers today): both mean i.i.d. sampling.
        let model_kind = match doc.get("defect_model").map(Json::as_str) {
            None => DefectModelKind::Iid,
            Some(Some(name)) => DefectModelKind::parse(name)?,
            Some(None) => return Err("`defect_model` is not a string".to_owned()),
        };
        let f64_opt = |key: &str, default: f64| match doc.get(key).map(Json::as_f64) {
            None => Ok(default),
            Some(Some(v)) => Ok(v),
            Some(None) => Err(format!("`{key}` is not a number")),
        };
        let model = DefectModelSpec::new(
            model_kind,
            f64_opt("cluster_size", DefectModelSpec::DEFAULT_CLUSTER_SIZE)?,
            f64_opt("line_rate", DefectModelSpec::DEFAULT_LINE_RATE)?,
        )?;
        Ok(ShardPartial {
            config: McConfig {
                samples: u64_field("samples")?
                    .try_into()
                    .map_err(|_| "samples exceeds usize".to_owned())?,
                seed: u64_field("seed")?,
                defect_rate: doc
                    .get("defect_rate")
                    .and_then(Json::as_f64)
                    .ok_or("partial missing f64 `defect_rate`")?,
                // Absent in files written before stream versioning (and by
                // V1 workers today): both mean the frozen V1 stream.
                stream: match doc.get("rng_stream").map(Json::as_str) {
                    None => SampleStream::V1,
                    Some(Some(name)) => SampleStream::parse(name)?,
                    Some(None) => return Err("`rng_stream` is not a string".to_owned()),
                },
                model,
                circuits: circuits.iter().map(|(name, _)| name.clone()).collect(),
            },
            spec,
            circuits,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_partial() -> ShardPartial {
        let mut accum = CircuitAccum::new();
        accum.push(true, 1.25e-5, true, 3.5e-4);
        accum.push(false, 2.5e-5, true, 1.0 / 3.0);
        accum.push(false, 0.125, false, 7.7e-7);
        let mut other = CircuitAccum::new();
        other.push(true, 0.5, true, 0.25);
        ShardPartial {
            config: McConfig {
                samples: 100,
                seed: u64::MAX - 41, // above 2^53: must survive the file
                defect_rate: 0.1,
                stream: SampleStream::V1,
                model: DefectModelSpec::default(),
                circuits: vec!["rd53".to_owned(), "misex1".to_owned()],
            },
            spec: ShardSpec {
                index: 1,
                num_shards: 3,
                start: 34,
                end: 67,
            },
            circuits: vec![("rd53".to_owned(), accum), ("misex1".to_owned(), other)],
        }
    }

    #[test]
    fn roundtrips_every_field_bitwise() {
        let partial = sample_partial();
        let json = partial.to_json();
        let back = ShardPartial::from_json(&json).expect("parses");
        assert_eq!(back, partial);
        // f64 state must be bit-identical, not just PartialEq-equal.
        let (_, a) = &partial.circuits[0];
        let (_, b) = &back.circuits[0];
        assert_eq!(a.hba_time.mean.to_bits(), b.hba_time.mean.to_bits());
        assert_eq!(a.hba_time.m2.to_bits(), b.hba_time.m2.to_bits());
        assert_eq!(a.ea_time.mean.to_bits(), b.ea_time.mean.to_bits());
        assert_eq!(a.ea_time.m2.to_bits(), b.ea_time.m2.to_bits());
        // Writing again produces the identical document.
        assert_eq!(back.to_json(), json);
    }

    #[test]
    fn v1_partials_never_mention_the_stream_and_v2_partials_roundtrip() {
        // V1 files must keep their pre-versioning bytes (the sharded
        // byte-identity guarantee reaches into the partial format), while
        // V2 files must declare their stream and round-trip it.
        let v1 = sample_partial();
        assert!(!v1.to_json().contains("rng_stream"));

        let mut v2 = sample_partial();
        v2.config.stream = SampleStream::V2;
        let json = v2.to_json();
        assert!(json.contains("\"rng_stream\": \"v2\""), "{json}");
        let back = ShardPartial::from_json(&json).expect("parses");
        assert_eq!(back, v2);
        assert_eq!(back.config.stream, SampleStream::V2);
        assert_eq!(back.to_json(), json);
    }

    #[test]
    fn default_model_partials_never_mention_the_model_and_others_roundtrip() {
        // The byte-freeze rule extends to spatial models: default (i.i.d.)
        // partials carry no model keys at all, each non-default kind
        // declares itself plus exactly the parameters it consumes.
        let iid = sample_partial();
        let json = iid.to_json();
        for key in ["defect_model", "cluster_size", "line_rate"] {
            assert!(!json.contains(key), "{key} leaked into a default partial");
        }

        let mut clustered = sample_partial();
        clustered.config.model =
            DefectModelSpec::new(DefectModelKind::Clustered, 6.5, 0.5).expect("valid");
        let json = clustered.to_json();
        assert!(json.contains("\"defect_model\": \"clustered\""), "{json}");
        assert!(json.contains("\"cluster_size\": 6.5"), "{json}");
        assert!(!json.contains("line_rate"), "clustered ignores line_rate");
        let back = ShardPartial::from_json(&json).expect("parses");
        assert_eq!(back, clustered);
        assert_eq!(back.to_json(), json);

        let mut composite = sample_partial();
        composite.config.model =
            DefectModelSpec::new(DefectModelKind::Composite, 2.0, 0.125).expect("valid");
        let json = composite.to_json();
        assert!(json.contains("\"cluster_size\": 2.0"), "{json}");
        assert!(json.contains("\"line_rate\": 0.125"), "{json}");
        let back = ShardPartial::from_json(&json).expect("parses");
        assert_eq!(back, composite);
        assert_eq!(back.to_json(), json);
    }

    #[test]
    fn unknown_defect_model_is_rejected() {
        let mut lines = sample_partial();
        lines.config.model =
            DefectModelSpec::new(DefectModelKind::Lines, 1.0, 0.25).expect("valid");
        let json = lines.to_json().replace("\"lines\"", "\"blobs\"");
        let err = ShardPartial::from_json(&json).expect_err("must fail");
        assert!(err.contains("blobs"), "{err}");
    }

    #[test]
    fn model_mismatch_is_rejected_by_the_config_echo() {
        let partial = sample_partial();
        let mut other = partial.config.clone();
        other.model = DefectModelSpec::new(DefectModelKind::Lines, 1.0, 0.02).expect("valid");
        let err = partial.validate_config_echo(&other).expect_err("must fail");
        assert!(err.contains("defect model"), "{err}");
    }

    #[test]
    fn unknown_rng_stream_is_rejected() {
        let mut v2 = sample_partial();
        v2.config.stream = SampleStream::V2;
        let json = v2.to_json().replace("\"v2\"", "\"v9\"");
        let err = ShardPartial::from_json(&json).expect_err("must fail");
        assert!(err.contains("v9"), "{err}");
    }

    #[test]
    fn zero_sample_shard_roundtrips_nan_free() {
        let partial = ShardPartial {
            config: McConfig {
                samples: 2,
                seed: 7,
                defect_rate: 0.1,
                stream: SampleStream::V1,
                model: DefectModelSpec::default(),
                circuits: vec!["rd53".to_owned()],
            },
            spec: ShardSpec {
                index: 4,
                num_shards: 5,
                start: 2,
                end: 2,
            },
            circuits: vec![("rd53".to_owned(), CircuitAccum::new())],
        };
        let back = ShardPartial::from_json(&partial.to_json()).expect("parses");
        assert_eq!(back, partial);
        let (_, accum) = &back.circuits[0];
        assert_eq!(accum.hba.rate(), 0.0);
        assert_eq!(accum.hba_time.mean(), 0.0);
        assert_eq!(accum.hba_time.variance(), 0.0);
    }

    #[test]
    fn all_failure_shard_roundtrips() {
        let mut accum = CircuitAccum::new();
        for _ in 0..5 {
            accum.push(false, 1e-6, false, 2e-6);
        }
        let mut partial = sample_partial();
        partial.circuits = vec![("rd53".to_owned(), accum)];
        partial.config.circuits = vec!["rd53".to_owned()];
        let back = ShardPartial::from_json(&partial.to_json()).expect("parses");
        assert_eq!(back, partial);
        assert_eq!(back.circuits[0].1.hba.successes, 0);
        assert_eq!(back.circuits[0].1.hba.rate(), 0.0);
    }

    #[test]
    fn validate_for_accepts_the_matching_slice_and_rejects_everything_else() {
        // A real shard: 33 samples folded into each circuit accumulator.
        let config = McConfig {
            samples: 100,
            seed: 9,
            defect_rate: 0.1,
            stream: SampleStream::V1,
            model: DefectModelSpec::default(),
            circuits: vec!["rd53".to_owned()],
        };
        let spec = ShardSpec {
            index: 1,
            num_shards: 3,
            start: 34,
            end: 67,
        };
        let mut accum = CircuitAccum::new();
        for _ in 0..33 {
            accum.push(true, 1e-6, false, 2e-6);
        }
        let partial = ShardPartial {
            config: config.clone(),
            spec,
            circuits: vec![("rd53".to_owned(), accum)],
        };
        partial.validate_for(&config, &spec).expect("valid");

        let other_spec = ShardSpec { index: 0, ..spec };
        let err = partial
            .validate_for(&config, &other_spec)
            .expect_err("spec");
        assert!(err.contains("expected"), "{err}");

        let mut other_config = config.clone();
        other_config.seed = 10;
        let err = partial
            .validate_for(&other_config, &spec)
            .expect_err("seed");
        assert!(err.contains("seed"), "{err}");

        let mut other_config = config.clone();
        other_config.stream = SampleStream::V2;
        let err = partial
            .validate_for(&other_config, &spec)
            .expect_err("stream");
        assert!(err.contains("rng stream"), "{err}");

        let mut short = partial.clone();
        short.circuits[0].1 = CircuitAccum::new();
        let err = short.validate_for(&config, &spec).expect_err("samples");
        assert!(err.contains("folded"), "{err}");
    }

    #[test]
    fn truncated_file_is_rejected() {
        let json = sample_partial().to_json();
        for cut in [10, json.len() / 2, json.len() - 3] {
            let truncated = &json[..cut];
            assert!(
                ShardPartial::from_json(truncated).is_err(),
                "cut at {cut} must fail"
            );
        }
    }

    #[test]
    fn inconsistent_shard_ranges_are_rejected() {
        let inverted = sample_partial()
            .to_json()
            .replace("\"start\": 34, \"end\": 67", "\"start\": 67, \"end\": 34");
        let err = ShardPartial::from_json(&inverted).expect_err("must fail");
        assert!(err.contains("inverted"), "{err}");

        let bad_index = sample_partial().to_json().replace(
            "\"index\": 1, \"num_shards\": 3",
            "\"index\": 3, \"num_shards\": 3",
        );
        let err = ShardPartial::from_json(&bad_index).expect_err("must fail");
        assert!(err.contains("out of range"), "{err}");
    }

    #[test]
    fn wrong_schema_is_rejected() {
        let json = sample_partial()
            .to_json()
            .replace(PARTIAL_SCHEMA, "other/9");
        let err = ShardPartial::from_json(&json).expect_err("must fail");
        assert!(err.contains("schema"), "{err}");
    }

    #[test]
    fn incomplete_marker_is_rejected() {
        let json = sample_partial()
            .to_json()
            .replace("\"complete\": true", "\"complete\": false");
        let err = ShardPartial::from_json(&json).expect_err("must fail");
        assert!(err.contains("complete"), "{err}");
    }
}
