//! CLI entry points for the sharded Monte Carlo subsystem, shared by
//! `xbar mc shard` / `xbar mc coordinate` and the deprecated standalone
//! `mc_shard` / `mc_coordinator` shims. Parsing is `Result`-based: usage
//! problems print help to stderr and return exit code 2.

use super::coordinator::{
    default_work_dir, default_worker, render_stats_json, render_timing_table, run_coordinator,
    run_monolithic, CoordinatorConfig, Worker,
};
use super::{partial::ShardPartial, run_shard, CampaignFlags, ShardSpec, CAMPAIGN_FLAGS_USAGE};
use std::path::PathBuf;

struct ShardArgs {
    campaign: CampaignFlags,
    shard_index: usize,
    num_shards: usize,
    out: PathBuf,
    inject_fail_once: Option<PathBuf>,
    inject_fail_always: bool,
    inject_truncate_once: Option<PathBuf>,
}

impl Default for ShardArgs {
    fn default() -> Self {
        Self {
            campaign: CampaignFlags::default(),
            shard_index: 0,
            num_shards: 1,
            out: PathBuf::from("partial-0.json"),
            inject_fail_once: None,
            inject_fail_always: false,
            inject_truncate_once: None,
        }
    }
}

fn shard_usage() -> String {
    format!(
        "xbar mc shard: run one shard of a sharded Monte Carlo campaign\n\nflags:\n\
         {CAMPAIGN_FLAGS_USAGE}\n  \
         --shard-index I    this shard's index (default 0)\n  \
         --num-shards N     shards in the campaign (default 1)\n  \
         --out PATH         partial-result output path (default partial-0.json)\n\n\
         test-only failure injection:\n  \
         --inject-fail-once MARKER      exit 3 unless MARKER exists (created on the way out)\n  \
         --inject-fail-always           always exit 4\n  \
         --inject-truncate-once MARKER  write a torn partial once, then behave"
    )
}

fn parse_shard_args(args: Vec<String>) -> Result<Option<ShardArgs>, String> {
    let mut out = ShardArgs::default();
    let mut it = args.into_iter();
    let value = |flag: &str, it: &mut dyn Iterator<Item = String>| {
        it.next().ok_or_else(|| format!("{flag} needs a value"))
    };
    let num = |flag: &str, text: String| -> Result<usize, String> {
        text.parse()
            .map_err(|_| format!("{flag}: expected a number, got {text:?}"))
    };
    while let Some(flag) = it.next() {
        if out.campaign.consume(&flag, &mut it)? {
            continue;
        }
        match flag.as_str() {
            "--shard-index" => out.shard_index = num(&flag, value(&flag, &mut it)?)?,
            "--num-shards" => out.num_shards = num(&flag, value(&flag, &mut it)?)?,
            "--out" => out.out = PathBuf::from(value(&flag, &mut it)?),
            "--inject-fail-once" => {
                out.inject_fail_once = Some(PathBuf::from(value(&flag, &mut it)?));
            }
            "--inject-fail-always" => out.inject_fail_always = true,
            "--inject-truncate-once" => {
                out.inject_truncate_once = Some(PathBuf::from(value(&flag, &mut it)?));
            }
            "--help" | "-h" => return Ok(None),
            other => return Err(format!("unknown flag {other:?}; try --help")),
        }
    }
    Ok(Some(out))
}

/// Returns true exactly once per marker path (creates the marker).
fn first_time(marker: &PathBuf) -> bool {
    if marker.exists() {
        false
    } else {
        std::fs::write(marker, b"injected\n").expect("write marker");
        true
    }
}

/// `xbar mc shard` / legacy `mc_shard`: runs one contiguous slice of a
/// campaign and writes a self-describing partial file. Returns the
/// process exit code.
#[must_use]
pub fn shard_main(argv: Vec<String>) -> i32 {
    let args = match parse_shard_args(argv) {
        Ok(Some(args)) => args,
        Ok(None) => {
            println!("{}", shard_usage());
            return 0;
        }
        Err(e) => {
            eprintln!("mc shard: {e}\n\n{}", shard_usage());
            return 2;
        }
    };
    if args.inject_fail_always {
        eprintln!("mc shard: injected permanent failure");
        return 4;
    }
    if let Some(marker) = &args.inject_fail_once {
        if first_time(marker) {
            eprintln!("mc shard: injected one-shot failure");
            return 3;
        }
    }

    let config = args.campaign.clone().into_config();
    if let Err(e) = config.validate() {
        eprintln!("mc shard: {e}");
        return 2;
    }
    if args.shard_index >= args.num_shards {
        eprintln!(
            "mc shard: --shard-index {} out of range for --num-shards {}",
            args.shard_index, args.num_shards
        );
        return 2;
    }
    let spec = ShardSpec::partition(config.samples, args.num_shards)[args.shard_index];

    if let Some(marker) = &args.inject_truncate_once {
        if first_time(marker) {
            // A torn write: valid JSON prefix, no `complete` marker.
            if let Err(e) =
                std::fs::write(&args.out, "{\n  \"schema\": \"xbar-mc-partial/1\", \"trunc")
            {
                eprintln!("mc shard: cannot write torn partial: {e}");
                return 1;
            }
            eprintln!("mc shard: injected torn partial");
            return 0;
        }
    }

    let partial: ShardPartial = run_shard(&config, &spec);
    if let Err(e) = std::fs::write(&args.out, partial.to_json()) {
        eprintln!("mc shard: cannot write {}: {e}", args.out.display());
        return 1;
    }
    println!(
        "mc shard: shard {}/{} samples [{}, {}) -> {}",
        spec.index,
        spec.num_shards,
        spec.start,
        spec.end,
        args.out.display()
    );
    0
}

struct CoordinateArgs {
    campaign: CampaignFlags,
    shards: usize,
    max_attempts: usize,
    out: PathBuf,
    work_dir: Option<PathBuf>,
    worker: Option<PathBuf>,
    keep_partials: bool,
    in_process: bool,
}

impl Default for CoordinateArgs {
    fn default() -> Self {
        Self {
            campaign: CampaignFlags::default(),
            shards: 3,
            max_attempts: 3,
            out: PathBuf::from("MC_merged.json"),
            work_dir: None,
            worker: None,
            keep_partials: false,
            in_process: false,
        }
    }
}

fn coordinate_usage() -> String {
    format!(
        "xbar mc coordinate: sharded Monte Carlo over worker processes\n\nflags:\n\
         {CAMPAIGN_FLAGS_USAGE}\n  \
         --shards N         worker processes / sample-range shards (default 3)\n  \
         --max-attempts N   attempts per shard before giving up (default 3)\n  \
         --out PATH         merged stats artifact (default MC_merged.json)\n  \
         --work-dir PATH    partial-file directory (default: temp dir)\n  \
         --worker PATH      worker binary, spawned with the shard flags directly\n                     \
         (default: the xbar binary next to this one, via `mc shard`)\n  \
         --keep-partials    keep partial files after the merge\n  \
         --in-process       run monolithically (no processes) through the same\n                     \
         accumulators; output is byte-identical to a sharded run"
    )
}

fn parse_coordinate_args(args: Vec<String>) -> Result<Option<CoordinateArgs>, String> {
    let mut out = CoordinateArgs::default();
    let mut it = args.into_iter();
    let value = |flag: &str, it: &mut dyn Iterator<Item = String>| {
        it.next().ok_or_else(|| format!("{flag} needs a value"))
    };
    let num = |flag: &str, text: String| -> Result<usize, String> {
        text.parse()
            .map_err(|_| format!("{flag}: expected a number, got {text:?}"))
    };
    while let Some(flag) = it.next() {
        if out.campaign.consume(&flag, &mut it)? {
            continue;
        }
        match flag.as_str() {
            "--shards" => out.shards = num(&flag, value(&flag, &mut it)?)?,
            "--max-attempts" => out.max_attempts = num(&flag, value(&flag, &mut it)?)?,
            "--out" => out.out = PathBuf::from(value(&flag, &mut it)?),
            "--work-dir" => out.work_dir = Some(PathBuf::from(value(&flag, &mut it)?)),
            "--worker" => out.worker = Some(PathBuf::from(value(&flag, &mut it)?)),
            "--keep-partials" => out.keep_partials = true,
            "--in-process" => out.in_process = true,
            "--help" | "-h" => return Ok(None),
            other => return Err(format!("unknown flag {other:?}; try --help")),
        }
    }
    Ok(Some(out))
}

/// `xbar mc coordinate` / legacy `mc_coordinator`: partitions a campaign
/// across worker processes (or runs it monolithically with
/// `--in-process`), merges partials, and writes the deterministic merged
/// stats artifact. Returns the process exit code.
#[must_use]
pub fn coordinate_main(argv: Vec<String>) -> i32 {
    let args = match parse_coordinate_args(argv) {
        Ok(Some(args)) => args,
        Ok(None) => {
            println!("{}", coordinate_usage());
            return 0;
        }
        Err(e) => {
            eprintln!("mc coordinate: {e}\n\n{}", coordinate_usage());
            return 2;
        }
    };
    let config = args.campaign.clone().into_config();
    if let Err(e) = config.validate() {
        eprintln!("mc coordinate: {e}");
        return 2;
    }

    let merged = if args.in_process {
        println!(
            "running {} samples monolithically (same accumulators as sharded mode)",
            config.samples
        );
        run_monolithic(&config)
    } else {
        let worker = match args
            .worker
            .clone()
            .map_or_else(default_worker, |path| Ok(Worker::standalone(path)))
        {
            Ok(worker) => worker,
            Err(e) => {
                eprintln!("mc coordinate: {e}");
                return 2;
            }
        };
        let coordinator = CoordinatorConfig {
            config: config.clone(),
            shards: args.shards,
            max_attempts: args.max_attempts,
            worker,
            work_dir: args.work_dir.clone().unwrap_or_else(default_work_dir),
            extra_worker_args: Vec::new(),
            keep_partials: args.keep_partials,
        };
        println!(
            "running {} samples across {} worker process(es) (seed {}, {:.0}% defects)",
            config.samples,
            coordinator.shards,
            config.seed,
            config.defect_rate * 100.0
        );
        match run_coordinator(&coordinator) {
            Ok(merged) => merged,
            Err(e) => {
                eprintln!("mc coordinate: {e}");
                return 1;
            }
        }
    };

    print!("{}", render_timing_table(&merged));
    if let Err(e) = std::fs::write(&args.out, render_stats_json(&merged)) {
        eprintln!("mc coordinate: cannot write {}: {e}", args.out.display());
        return 1;
    }
    println!("wrote {}", args.out.display());
    0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shard_args_reject_malformed_flags_without_panicking() {
        for words in [
            &["--shard-index"][..],
            &["--shard-index", "x"][..],
            &["--samples", "nope"][..],
            &["--what"][..],
        ] {
            let argv = words.iter().map(|s| (*s).to_owned()).collect();
            assert!(parse_shard_args(argv).is_err(), "{words:?} must fail");
        }
    }

    #[test]
    fn coordinate_args_parse_and_help_short_circuits() {
        let argv = ["--shards", "5", "--in-process", "--seed", "7"]
            .iter()
            .map(|s| (*s).to_owned())
            .collect();
        let args = parse_coordinate_args(argv)
            .expect("parses")
            .expect("not help");
        assert_eq!(args.shards, 5);
        assert!(args.in_process);
        assert_eq!(args.campaign.seed, 7);

        let help = parse_coordinate_args(vec!["--help".to_owned()]).expect("ok");
        assert!(help.is_none(), "--help short-circuits");
    }

    #[test]
    fn out_of_range_shard_index_is_exit_2() {
        let code = shard_main(
            ["--shard-index", "4", "--num-shards", "2"]
                .iter()
                .map(|s| (*s).to_owned())
                .collect(),
        );
        assert_eq!(code, 2);
    }
}
