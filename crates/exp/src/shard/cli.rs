//! CLI entry points for the sharded Monte Carlo subsystem, shared by
//! `xbar mc shard` / `xbar mc coordinate` and the deprecated standalone
//! `mc_shard` / `mc_coordinator` shims. Parsing is `Result`-based: usage
//! problems print help to stderr and return exit code 2.

use super::coordinator::{
    default_work_dir, default_worker, render_stats_json, render_timing_table,
    run_coordinator_with_report, run_monolithic, CoordinatorConfig, RunReport, Worker,
    DEFAULT_RETRY_BASE,
};
use super::{partial::ShardPartial, run_shard, CampaignFlags, ShardSpec, CAMPAIGN_FLAGS_USAGE};
use std::path::PathBuf;
use std::time::Duration;

struct ShardArgs {
    campaign: CampaignFlags,
    shard_index: usize,
    num_shards: usize,
    out: PathBuf,
    inject_fail_once: Option<PathBuf>,
    inject_fail_always: bool,
    inject_truncate_once: Option<PathBuf>,
    inject_hang_once: Option<PathBuf>,
    inject_slow_ms: u64,
    inject_concurrency_dir: Option<PathBuf>,
}

impl Default for ShardArgs {
    fn default() -> Self {
        Self {
            campaign: CampaignFlags::default(),
            shard_index: 0,
            num_shards: 1,
            out: PathBuf::from("partial-0.json"),
            inject_fail_once: None,
            inject_fail_always: false,
            inject_truncate_once: None,
            inject_hang_once: None,
            inject_slow_ms: 0,
            inject_concurrency_dir: None,
        }
    }
}

fn shard_usage() -> String {
    format!(
        "xbar mc shard: run one shard of a sharded Monte Carlo campaign\n\nflags:\n\
         {CAMPAIGN_FLAGS_USAGE}\n  \
         --shard-index I    this shard's index (default 0)\n  \
         --num-shards N     shards in the campaign (default 1)\n  \
         --out PATH         partial-result output path (default partial-0.json);\n                     \
         `-` streams the partial to stdout (remote launch)\n\n\
         test-only failure injection:\n  \
         --inject-fail-once MARKER      exit 3 unless MARKER exists (created on the way out)\n  \
         --inject-fail-always           always exit 4\n  \
         --inject-truncate-once MARKER  write a torn partial once, then behave\n  \
         --inject-hang-once MARKER      hang forever unless MARKER exists (watchdog bait)\n  \
         --inject-slow-ms N             sleep N ms before running the shard\n  \
         --inject-concurrency-dir DIR   record live-worker counts into DIR/observed.txt"
    )
}

fn parse_shard_args(args: Vec<String>) -> Result<Option<ShardArgs>, String> {
    let mut out = ShardArgs::default();
    let mut it = args.into_iter();
    let value = |flag: &str, it: &mut dyn Iterator<Item = String>| {
        it.next().ok_or_else(|| format!("{flag} needs a value"))
    };
    let num = |flag: &str, text: String| -> Result<usize, String> {
        text.parse()
            .map_err(|_| format!("{flag}: expected a number, got {text:?}"))
    };
    while let Some(flag) = it.next() {
        if out.campaign.consume(&flag, &mut it)? {
            continue;
        }
        match flag.as_str() {
            "--shard-index" => out.shard_index = num(&flag, value(&flag, &mut it)?)?,
            "--num-shards" => out.num_shards = num(&flag, value(&flag, &mut it)?)?,
            "--out" => out.out = PathBuf::from(value(&flag, &mut it)?),
            "--inject-fail-once" => {
                out.inject_fail_once = Some(PathBuf::from(value(&flag, &mut it)?));
            }
            "--inject-fail-always" => out.inject_fail_always = true,
            "--inject-truncate-once" => {
                out.inject_truncate_once = Some(PathBuf::from(value(&flag, &mut it)?));
            }
            "--inject-hang-once" => {
                out.inject_hang_once = Some(PathBuf::from(value(&flag, &mut it)?));
            }
            "--inject-slow-ms" => {
                let text = value(&flag, &mut it)?;
                out.inject_slow_ms = text
                    .parse()
                    .map_err(|_| format!("{flag}: expected a number, got {text:?}"))?;
            }
            "--inject-concurrency-dir" => {
                out.inject_concurrency_dir = Some(PathBuf::from(value(&flag, &mut it)?));
            }
            "--help" | "-h" => return Ok(None),
            other => return Err(format!("unknown flag {other:?}; try --help")),
        }
    }
    Ok(Some(out))
}

/// Returns true exactly once per marker path (creates the marker).
fn first_time(marker: &PathBuf) -> bool {
    if marker.exists() {
        false
    } else {
        std::fs::write(marker, b"injected\n").expect("write marker");
        true
    }
}

/// `xbar mc shard` / legacy `mc_shard`: runs one contiguous slice of a
/// campaign and writes a self-describing partial file. Returns the
/// process exit code.
#[must_use]
pub fn shard_main(argv: Vec<String>) -> i32 {
    let args = match parse_shard_args(argv) {
        Ok(Some(args)) => args,
        Ok(None) => {
            println!("{}", shard_usage());
            return 0;
        }
        Err(e) => {
            eprintln!("mc shard: {e}\n\n{}", shard_usage());
            return 2;
        }
    };
    if args.inject_fail_always {
        eprintln!("mc shard: injected permanent failure");
        return 4;
    }
    if let Some(marker) = &args.inject_fail_once {
        if first_time(marker) {
            eprintln!("mc shard: injected one-shot failure");
            return 3;
        }
    }
    if let Some(marker) = &args.inject_hang_once {
        if first_time(marker) {
            // A worker that never exits: the coordinator's watchdog must
            // kill it at --shard-timeout (there is nothing else to stop it).
            eprintln!("mc shard: injected hang (waiting to be killed)");
            loop {
                std::thread::sleep(Duration::from_secs(3600));
            }
        }
    }

    let config = args.campaign.clone().into_config();
    if let Err(e) = config.validate() {
        eprintln!("mc shard: {e}");
        return 2;
    }
    if args.shard_index >= args.num_shards {
        eprintln!(
            "mc shard: --shard-index {} out of range for --num-shards {}",
            args.shard_index, args.num_shards
        );
        return 2;
    }
    let spec = ShardSpec::partition(config.samples, args.num_shards)[args.shard_index];

    // Concurrency probe: hold a live-marker for the worker's lifetime and
    // record how many live markers exist, so a process-level test can
    // assert the coordinator's --max-inflight bound from *inside* the
    // worker fleet. O_APPEND keeps the short count lines atomic.
    let live_marker = args.inject_concurrency_dir.as_ref().map(|dir| {
        let _ = std::fs::create_dir_all(dir);
        let marker = dir.join(format!("live-{}", std::process::id()));
        let _ = std::fs::write(&marker, b"live\n");
        marker
    });
    if args.inject_slow_ms > 0 {
        std::thread::sleep(Duration::from_millis(args.inject_slow_ms));
    }
    if let Some(dir) = &args.inject_concurrency_dir {
        let live = std::fs::read_dir(dir)
            .map(|entries| {
                entries
                    .flatten()
                    .filter(|e| e.file_name().to_string_lossy().starts_with("live-"))
                    .count()
            })
            .unwrap_or(0);
        use std::io::Write as _;
        if let Ok(mut file) = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(dir.join("observed.txt"))
        {
            let _ = writeln!(file, "{live}");
        }
    }

    let code = run_shard_to_file(&args, &config, spec);
    if let Some(marker) = live_marker {
        let _ = std::fs::remove_file(marker);
    }
    code
}

/// The worker's payload after all injection preambles: optionally write a
/// torn partial, otherwise fold the slice and write the real one. With
/// `--out -` the partial streams to stdout instead — the remote-launch
/// transport contract — so stdout carries *only* partial bytes (the
/// progress note is suppressed; the torn injection prints its truncated
/// prefix to stdout, exercising the receiver's torn-transfer detection).
fn run_shard_to_file(args: &ShardArgs, config: &super::McConfig, spec: ShardSpec) -> i32 {
    let stream_stdout = args.out.as_os_str() == "-";
    if let Some(marker) = &args.inject_truncate_once {
        if first_time(marker) {
            // A torn write: valid JSON prefix, no `complete` marker.
            let torn = "{\n  \"schema\": \"xbar-mc-partial/1\", \"trunc";
            if stream_stdout {
                print!("{torn}");
            } else if let Err(e) = std::fs::write(&args.out, torn) {
                eprintln!("mc shard: cannot write torn partial: {e}");
                return 1;
            }
            eprintln!("mc shard: injected torn partial");
            return 0;
        }
    }

    let partial: ShardPartial = run_shard(config, &spec);
    if stream_stdout {
        use std::io::Write as _;
        let mut stdout = std::io::stdout().lock();
        if let Err(e) = stdout
            .write_all(partial.to_json().as_bytes())
            .and_then(|()| stdout.flush())
        {
            eprintln!("mc shard: cannot stream partial to stdout: {e}");
            return 1;
        }
        eprintln!(
            "mc shard: shard {}/{} samples [{}, {}) -> stdout",
            spec.index, spec.num_shards, spec.start, spec.end
        );
        return 0;
    }
    // Atomic: the coordinator treats any file at this path as a checkpoint
    // candidate, so it must never observe a half-written partial (the
    // injected torn write above stays a plain write on purpose).
    if let Err(e) = crate::atomic::write_atomic(&args.out, partial.to_json().as_bytes()) {
        eprintln!("mc shard: cannot write {}: {e}", args.out.display());
        return 1;
    }
    println!(
        "mc shard: shard {}/{} samples [{}, {}) -> {}",
        spec.index,
        spec.num_shards,
        spec.start,
        spec.end,
        args.out.display()
    );
    0
}

struct CoordinateArgs {
    campaign: CampaignFlags,
    shards: usize,
    max_attempts: usize,
    out: PathBuf,
    work_dir: Option<PathBuf>,
    worker: Option<PathBuf>,
    keep_partials: bool,
    in_process: bool,
    shard_timeout: Option<Duration>,
    max_inflight: Option<usize>,
    resume: bool,
    worker_args: Vec<String>,
}

impl Default for CoordinateArgs {
    fn default() -> Self {
        Self {
            campaign: CampaignFlags::default(),
            shards: 3,
            max_attempts: 3,
            out: PathBuf::from("MC_merged.json"),
            work_dir: None,
            worker: None,
            keep_partials: false,
            in_process: false,
            shard_timeout: None,
            max_inflight: None,
            resume: false,
            worker_args: Vec::new(),
        }
    }
}

fn coordinate_usage() -> String {
    format!(
        "xbar mc coordinate: fault-tolerant sharded Monte Carlo over worker processes\n\nflags:\n\
         {CAMPAIGN_FLAGS_USAGE}\n  \
         --shards N         worker processes / sample-range shards (default 3)\n  \
         --max-attempts N   attempts per shard before giving up (default 3)\n  \
         --shard-timeout S  kill a worker still running after S seconds and retry\n                     \
         (fractional ok; default: no watchdog, wait forever)\n  \
         --max-inflight N   live workers at once (default: available parallelism)\n  \
         --resume           reuse valid partials already in the run directory and\n                     \
         schedule only missing or corrupt shards\n  \
         --out PATH         merged stats artifact (default MC_merged.json)\n  \
         --work-dir PATH    parent of the per-campaign run directory\n                     \
         (default: <temp>/xbar-mc; partials live in\n                     \
         <work-dir>/run-seed<seed>-n<samples>-k<shards>-<stream>[-<model>])\n  \
         --worker PATH      worker binary, spawned with the shard flags directly\n                     \
         (default: the xbar binary next to this one, via `mc shard`)\n  \
         --worker-arg ARG   extra argument appended to every worker invocation\n                     \
         (repeatable; used by fault-injection tests and CI)\n  \
         --keep-partials    keep partial files after the merge\n  \
         --in-process       run monolithically (no processes) through the same\n                     \
         accumulators; output is byte-identical to a sharded run"
    )
}

fn parse_coordinate_args(args: Vec<String>) -> Result<Option<CoordinateArgs>, String> {
    let mut out = CoordinateArgs::default();
    let mut it = args.into_iter();
    let value = |flag: &str, it: &mut dyn Iterator<Item = String>| {
        it.next().ok_or_else(|| format!("{flag} needs a value"))
    };
    let num = |flag: &str, text: String| -> Result<usize, String> {
        text.parse()
            .map_err(|_| format!("{flag}: expected a number, got {text:?}"))
    };
    while let Some(flag) = it.next() {
        if out.campaign.consume(&flag, &mut it)? {
            continue;
        }
        match flag.as_str() {
            "--shards" => out.shards = num(&flag, value(&flag, &mut it)?)?,
            "--max-attempts" => out.max_attempts = num(&flag, value(&flag, &mut it)?)?,
            "--shard-timeout" => {
                let text = value(&flag, &mut it)?;
                let secs: f64 = text
                    .parse()
                    .map_err(|_| format!("{flag}: expected seconds, got {text:?}"))?;
                let timeout = Duration::try_from_secs_f64(secs)
                    .map_err(|_| format!("{flag}: {secs} is not a representable duration"))?;
                if timeout.is_zero() {
                    return Err(format!("{flag} must be positive"));
                }
                out.shard_timeout = Some(timeout);
            }
            "--max-inflight" => {
                let inflight = num(&flag, value(&flag, &mut it)?)?;
                if inflight == 0 {
                    return Err(format!("{flag} must be at least 1"));
                }
                out.max_inflight = Some(inflight);
            }
            "--resume" => out.resume = true,
            "--out" => out.out = PathBuf::from(value(&flag, &mut it)?),
            "--work-dir" => out.work_dir = Some(PathBuf::from(value(&flag, &mut it)?)),
            "--worker" => out.worker = Some(PathBuf::from(value(&flag, &mut it)?)),
            "--worker-arg" => out.worker_args.push(value(&flag, &mut it)?),
            "--keep-partials" => out.keep_partials = true,
            "--in-process" => out.in_process = true,
            "--help" | "-h" => return Ok(None),
            other => return Err(format!("unknown flag {other:?}; try --help")),
        }
    }
    Ok(Some(out))
}

/// One line of scheduling facts after a successful sharded run —
/// deliberately on stdout (not in the byte-compared artifact) so scripts
/// and CI can check how the campaign executed (e.g. that `--resume`
/// actually reused checkpoints).
fn print_report(report: &RunReport) {
    println!(
        "coordinator: spawned {} worker(s), reused {} partial(s), {} retrie(s), \
         {} timeout(s), peak {} in flight",
        report.spawned,
        report.reused,
        report.retries,
        report.timeouts,
        report.max_inflight_observed
    );
}

/// `xbar mc coordinate` / legacy `mc_coordinator`: partitions a campaign
/// across worker processes (or runs it monolithically with
/// `--in-process`), merges partials, and writes the deterministic merged
/// stats artifact. Returns the process exit code.
#[must_use]
pub fn coordinate_main(argv: Vec<String>) -> i32 {
    let args = match parse_coordinate_args(argv) {
        Ok(Some(args)) => args,
        Ok(None) => {
            println!("{}", coordinate_usage());
            return 0;
        }
        Err(e) => {
            eprintln!("mc coordinate: {e}\n\n{}", coordinate_usage());
            return 2;
        }
    };
    let config = args.campaign.clone().into_config();
    if let Err(e) = config.validate() {
        eprintln!("mc coordinate: {e}");
        return 2;
    }

    let merged = if args.in_process {
        println!(
            "running {} samples monolithically (same accumulators as sharded mode)",
            config.samples
        );
        run_monolithic(&config)
    } else {
        let worker = match args
            .worker
            .clone()
            .map_or_else(default_worker, |path| Ok(Worker::standalone(path)))
        {
            Ok(worker) => worker,
            Err(e) => {
                eprintln!("mc coordinate: {e}");
                return 2;
            }
        };
        let coordinator = CoordinatorConfig {
            config: config.clone(),
            shards: args.shards,
            max_attempts: args.max_attempts,
            worker,
            work_dir: args.work_dir.clone().unwrap_or_else(default_work_dir),
            extra_worker_args: args.worker_args.clone(),
            keep_partials: args.keep_partials,
            shard_timeout: args.shard_timeout,
            max_inflight: args.max_inflight,
            resume: args.resume,
            retry_base: DEFAULT_RETRY_BASE,
        };
        println!(
            "running {} samples across {} worker process(es) (seed {}, {:.0}% defects)",
            config.samples,
            coordinator.shards,
            config.seed,
            config.defect_rate * 100.0
        );
        match run_coordinator_with_report(&coordinator) {
            Ok((merged, report)) => {
                print_report(&report);
                merged
            }
            Err(e) => {
                eprintln!("mc coordinate: {e}");
                return 1;
            }
        }
    };

    print!("{}", render_timing_table(&merged));
    if let Err(e) = crate::atomic::write_atomic(&args.out, render_stats_json(&merged).as_bytes()) {
        eprintln!("mc coordinate: cannot write {}: {e}", args.out.display());
        return 1;
    }
    println!("wrote {}", args.out.display());
    0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shard_args_reject_malformed_flags_without_panicking() {
        for words in [
            &["--shard-index"][..],
            &["--shard-index", "x"][..],
            &["--samples", "nope"][..],
            &["--what"][..],
        ] {
            let argv = words.iter().map(|s| (*s).to_owned()).collect();
            assert!(parse_shard_args(argv).is_err(), "{words:?} must fail");
        }
    }

    #[test]
    fn coordinate_args_parse_and_help_short_circuits() {
        let argv = ["--shards", "5", "--in-process", "--seed", "7"]
            .iter()
            .map(|s| (*s).to_owned())
            .collect();
        let args = parse_coordinate_args(argv)
            .expect("parses")
            .expect("not help");
        assert_eq!(args.shards, 5);
        assert!(args.in_process);
        assert_eq!(args.campaign.seed, 7);
        assert_eq!(args.shard_timeout, None, "watchdog defaults off");
        assert_eq!(args.max_inflight, None, "inflight defaults to auto");
        assert!(!args.resume);

        let help = parse_coordinate_args(vec!["--help".to_owned()]).expect("ok");
        assert!(help.is_none(), "--help short-circuits");
    }

    #[test]
    fn coordinate_args_parse_the_fault_tolerance_flags() {
        let argv = [
            "--shard-timeout",
            "2.5",
            "--max-inflight",
            "4",
            "--resume",
            "--worker-arg",
            "--inject-fail-once",
            "--worker-arg",
            "/tmp/marker",
        ]
        .iter()
        .map(|s| (*s).to_owned())
        .collect();
        let args = parse_coordinate_args(argv)
            .expect("parses")
            .expect("not help");
        assert_eq!(args.shard_timeout, Some(Duration::from_millis(2500)));
        assert_eq!(args.max_inflight, Some(4));
        assert!(args.resume);
        assert_eq!(args.worker_args, ["--inject-fail-once", "/tmp/marker"]);
    }

    #[test]
    fn coordinate_args_reject_degenerate_fault_tolerance_values() {
        for words in [
            &["--shard-timeout", "0"][..],
            &["--shard-timeout", "-1"][..],
            &["--shard-timeout", "NaN"][..],
            &["--shard-timeout", "soon"][..],
            &["--max-inflight", "0"][..],
            &["--max-inflight", "lots"][..],
            &["--worker-arg"][..],
        ] {
            let argv = words.iter().map(|s| (*s).to_owned()).collect();
            assert!(parse_coordinate_args(argv).is_err(), "{words:?} must fail");
        }
    }

    #[test]
    fn shard_args_parse_the_new_injection_hooks() {
        let argv = [
            "--inject-hang-once",
            "/tmp/hang",
            "--inject-slow-ms",
            "250",
            "--inject-concurrency-dir",
            "/tmp/conc",
        ]
        .iter()
        .map(|s| (*s).to_owned())
        .collect();
        let args = parse_shard_args(argv).expect("parses").expect("not help");
        assert_eq!(args.inject_hang_once, Some(PathBuf::from("/tmp/hang")));
        assert_eq!(args.inject_slow_ms, 250);
        assert_eq!(
            args.inject_concurrency_dir,
            Some(PathBuf::from("/tmp/conc"))
        );
        let bad = vec!["--inject-slow-ms".to_owned(), "soon".to_owned()];
        assert!(parse_shard_args(bad).is_err());
    }

    #[test]
    fn campaign_model_flags_parse_on_both_entry_points() {
        let argv: Vec<String> = ["--defect-model", "clustered", "--cluster-size", "6"]
            .iter()
            .map(|s| (*s).to_owned())
            .collect();
        let shard = parse_shard_args(argv.clone())
            .expect("parses")
            .expect("not help");
        let config = shard.campaign.into_config();
        assert_eq!(config.model.kind(), xbar_core::DefectModelKind::Clustered);
        assert_eq!(config.model.cluster_size(), 6.0);
        let coord = parse_coordinate_args(argv)
            .expect("parses")
            .expect("not help");
        assert_eq!(
            coord.campaign.model_kind,
            xbar_core::DefectModelKind::Clustered
        );

        for words in [
            &["--defect-model", "blobs"][..],
            &["--cluster-size", "0.5"][..],
            &["--cluster-size", "NaN"][..],
            &["--line-rate", "1.5"][..],
            &["--line-rate", "-0.1"][..],
        ] {
            let argv = words.iter().map(|s| (*s).to_owned()).collect();
            assert!(parse_shard_args(argv).is_err(), "{words:?} must fail");
        }
    }

    #[test]
    fn out_of_range_shard_index_is_exit_2() {
        let code = shard_main(
            ["--shard-index", "4", "--num-shards", "2"]
                .iter()
                .map(|s| (*s).to_owned())
                .collect(),
        );
        assert_eq!(code, 2);
    }
}
