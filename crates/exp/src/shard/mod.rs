//! Process-sharded Monte Carlo: split a sample range across worker
//! processes (or hosts) without changing a single statistic.
//!
//! Per-sample seeds depend only on `(experiment_seed, sample_index)`
//! ([`crate::sample_seed`]), so a contiguous slice of the sample range can
//! be reproduced by any process that knows the experiment configuration
//! and its [`ShardSpec`]. Each worker folds its slice into the mergeable
//! accumulators of [`xbar_core::stats`] and writes a self-describing
//! partial-result file ([`partial::ShardPartial`], hand-rolled JSON via
//! [`json`]); the [`coordinator`] is a fault-tolerant campaign runner —
//! bounded event-driven scheduling, watchdog timeouts for hung workers,
//! per-shard deterministic backoff retry, and checkpoint/resume over a
//! per-campaign run directory — that merges partials into output
//! **byte-identical** to a monolithic run for every integer-derived
//! statistic, whatever failures occurred along the way.
//!
//! Reproducibility contract (also documented in the README):
//!
//! * sample `i` is simulated from `sample_seed(mc_seed, i)` regardless of
//!   which process runs it;
//! * success counters are integers, so any shard layout merges to the
//!   exact monolithic counts and the stats artifact compares equal byte
//!   for byte across layouts;
//! * runtime moments (Welford) merge deterministically for a fixed layout
//!   but are wall-clock measurements, so they stay out of byte-compared
//!   artifacts.

pub mod cli;
pub mod coordinator;
pub mod json;
pub mod partial;

use crate::cli::ExpArgs;
use crate::experiments::table2::{run_circuit_range, table2_circuit_names, CircuitAccum};
use std::ops::Range;
use xbar_core::{DefectModelKind, DefectModelSpec, SampleStream};
use xbar_logic::bench_reg::find;

/// One contiguous slice of a Monte Carlo sample range.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardSpec {
    /// Shard index in `0..num_shards`.
    pub index: usize,
    /// Total shard count of the partition this spec belongs to.
    pub num_shards: usize,
    /// First global sample index (inclusive).
    pub start: usize,
    /// Past-the-end global sample index.
    pub end: usize,
}

impl ShardSpec {
    /// Splits `0..samples` into `num_shards` contiguous shards; the first
    /// `samples % num_shards` shards carry one extra sample (the same
    /// chunking rule [`crate::monte_carlo`] uses for threads).
    ///
    /// # Panics
    ///
    /// Panics when `num_shards == 0`.
    #[must_use]
    pub fn partition(samples: usize, num_shards: usize) -> Vec<ShardSpec> {
        assert!(num_shards > 0, "need at least one shard");
        let base = samples / num_shards;
        let extra = samples % num_shards;
        (0..num_shards)
            .map(|index| {
                let start = index * base + index.min(extra);
                let end = start + base + usize::from(index < extra);
                ShardSpec {
                    index,
                    num_shards,
                    start,
                    end,
                }
            })
            .collect()
    }

    /// The global sample range this shard owns.
    #[must_use]
    pub fn range(&self) -> Range<usize> {
        self.start..self.end
    }

    /// Samples in this shard.
    #[must_use]
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// True when the shard owns no samples (more shards than samples).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }
}

/// The experiment configuration every shard of a campaign must agree on.
#[derive(Debug, Clone, PartialEq)]
pub struct McConfig {
    /// Total Monte Carlo samples across all shards.
    pub samples: usize,
    /// Experiment seed (Table II derives its MC stream seed from this).
    pub seed: u64,
    /// Per-crosspoint stuck-open defect probability.
    pub defect_rate: f64,
    /// Defect sampling stream version. Every shard of a campaign must
    /// sample under the same stream or the merged statistics would mix
    /// two different defect distributions; the coordinator rejects
    /// partials whose echoed stream disagrees with the campaign spec.
    pub stream: SampleStream,
    /// Spatial defect model. Campaign identity exactly like `stream`: every
    /// shard must sample under the same model (and model parameters) or the
    /// merged statistics would mix defect distributions; the coordinator
    /// rejects partials whose echoed model disagrees with the campaign spec.
    pub model: DefectModelSpec,
    /// Registry circuits to simulate, in output order.
    pub circuits: Vec<String>,
}

impl McConfig {
    /// Configuration with the default Table II circuit set (V1 stream).
    #[must_use]
    pub fn with_default_circuits(samples: usize, seed: u64, defect_rate: f64) -> Self {
        Self {
            samples,
            seed,
            defect_rate,
            stream: SampleStream::V1,
            model: DefectModelSpec::default(),
            circuits: table2_circuit_names(),
        }
    }

    /// Checks every circuit name against the benchmark registry.
    ///
    /// # Errors
    ///
    /// Names the first unknown circuit.
    pub fn validate(&self) -> Result<(), String> {
        for name in &self.circuits {
            if find(name).is_err() {
                return Err(format!("unknown circuit {name:?} (not in the registry)"));
            }
        }
        if self.circuits.is_empty() {
            return Err("no circuits selected".to_owned());
        }
        Ok(())
    }

    /// The equivalent single-process experiment arguments.
    #[must_use]
    pub fn exp_args(&self) -> ExpArgs {
        ExpArgs {
            samples: self.samples,
            seed: self.seed,
            defect_rate: self.defect_rate,
            stream: self.stream,
            model: self.model,
            csv: None,
        }
    }
}

/// Campaign-level CLI flags shared by the `mc_shard` and `mc_coordinator`
/// binaries, so the two cannot drift apart on how a campaign is described.
#[derive(Debug, Clone, PartialEq)]
pub struct CampaignFlags {
    /// Total Monte Carlo samples (`--samples`, default 200).
    pub samples: usize,
    /// Experiment seed (`--seed`, default 2018).
    pub seed: u64,
    /// Stuck-open probability (`--defect-rate`, default 0.10).
    pub defect_rate: f64,
    /// Defect sampling stream (`--rng-stream`, default `v1`).
    pub stream: SampleStream,
    /// Spatial defect model kind (`--defect-model`, default `iid`).
    pub model_kind: DefectModelKind,
    /// Mean defect cluster size (`--cluster-size`, default 4).
    pub cluster_size: f64,
    /// Broken-line probability (`--line-rate`, default 0.02).
    pub line_rate: f64,
    /// Explicit circuit list (`--circuits`); `None` = the Table II set.
    pub circuits: Option<Vec<String>>,
}

impl Default for CampaignFlags {
    fn default() -> Self {
        Self {
            samples: 200,
            seed: 2018,
            defect_rate: 0.10,
            stream: SampleStream::V1,
            model_kind: DefectModelKind::Iid,
            cluster_size: DefectModelSpec::DEFAULT_CLUSTER_SIZE,
            line_rate: DefectModelSpec::DEFAULT_LINE_RATE,
            circuits: None,
        }
    }
}

/// The usage lines for the flags [`CampaignFlags::consume`] accepts.
pub const CAMPAIGN_FLAGS_USAGE: &str =
    "  --samples N        total campaign samples (default 200)\n  \
--seed N           experiment seed (default 2018)\n  \
--defect-rate F    stuck-open probability (default 0.10)\n  \
--rng-stream v1|v2 defect sampling stream (default v1)\n  \
--defect-model M   iid|clustered|lines|composite (default iid)\n  \
--cluster-size F   mean defect cluster size, >= 1 (default 4)\n  \
--line-rate F      broken-line probability in [0, 1] (default 0.02)\n  \
--circuits a,b     registry circuits (default: the Table II set)";

impl CampaignFlags {
    /// Tries to consume one campaign flag (plus its value from `it`);
    /// `Ok(false)` when `flag` is not a campaign flag.
    ///
    /// # Errors
    ///
    /// Reports a missing or malformed value (the CLI prints it with usage
    /// text and exits with code 2 — never a panic/backtrace).
    pub fn consume(
        &mut self,
        flag: &str,
        it: &mut dyn Iterator<Item = String>,
    ) -> Result<bool, String> {
        let value = |it: &mut dyn Iterator<Item = String>| {
            it.next().ok_or_else(|| format!("{flag} needs a value"))
        };
        let num = |flag: &str, text: String| -> Result<u64, String> {
            text.parse()
                .map_err(|_| format!("{flag}: expected a number, got {text:?}"))
        };
        match flag {
            "--samples" => {
                self.samples = usize::try_from(num(flag, value(it)?)?)
                    .map_err(|_| format!("{flag}: value exceeds usize"))?;
            }
            "--seed" => self.seed = num(flag, value(it)?)?,
            "--defect-rate" => {
                let text = value(it)?;
                let rate: f64 = text
                    .parse()
                    .map_err(|_| format!("{flag}: expected a float, got {text:?}"))?;
                if !rate.is_finite() {
                    return Err(format!("{flag} must be finite"));
                }
                self.defect_rate = rate;
            }
            "--rng-stream" => {
                self.stream = SampleStream::parse(&value(it)?)?;
            }
            "--defect-model" => {
                self.model_kind = DefectModelKind::parse(&value(it)?)?;
            }
            "--cluster-size" => {
                let text = value(it)?;
                let size: f64 = text
                    .parse()
                    .map_err(|_| format!("{flag}: expected a float, got {text:?}"))?;
                if !size.is_finite() || size < 1.0 {
                    return Err(format!("{flag} must be at least 1"));
                }
                self.cluster_size = size;
            }
            "--line-rate" => {
                let text = value(it)?;
                let rate: f64 = text
                    .parse()
                    .map_err(|_| format!("{flag}: expected a float, got {text:?}"))?;
                if !rate.is_finite() || !(0.0..=1.0).contains(&rate) {
                    return Err(format!("{flag} must be a probability in [0, 1]"));
                }
                self.line_rate = rate;
            }
            "--circuits" => {
                self.circuits = Some(value(it)?.split(',').map(str::to_owned).collect());
            }
            _ => return Ok(false),
        }
        Ok(true)
    }

    /// Resolves into a campaign configuration (defaulting the circuit
    /// list to the Table II set).
    #[must_use]
    pub fn into_config(self) -> McConfig {
        let model = DefectModelSpec::new(self.model_kind, self.cluster_size, self.line_rate)
            .expect("consume() range-checked the model parameters");
        McConfig {
            samples: self.samples,
            seed: self.seed,
            defect_rate: self.defect_rate,
            stream: self.stream,
            model,
            circuits: self.circuits.unwrap_or_else(table2_circuit_names),
        }
    }
}

/// Runs one shard of the Table II workload in-process: folds the shard's
/// sample slice for every configured circuit.
///
/// # Panics
///
/// Panics when a circuit name is not registered (call
/// [`McConfig::validate`] first at process boundaries).
#[must_use]
pub fn run_shard(config: &McConfig, spec: &ShardSpec) -> partial::ShardPartial {
    let args = config.exp_args();
    let circuits = config
        .circuits
        .iter()
        .map(|name| {
            let info = find(name).expect("validated circuit name");
            (name.clone(), run_circuit_range(info, &args, spec.range()))
        })
        .collect::<Vec<(String, CircuitAccum)>>();
    partial::ShardPartial {
        config: config.clone(),
        spec: *spec,
        circuits,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn partition_tiles_the_range_exactly() {
        for (samples, shards) in [(0, 1), (0, 3), (1, 1), (10, 3), (10, 7), (10, 10), (3, 7)] {
            let parts = ShardSpec::partition(samples, shards);
            assert_eq!(parts.len(), shards);
            assert_eq!(parts[0].start, 0);
            for pair in parts.windows(2) {
                assert_eq!(pair[0].end, pair[1].start, "{samples}/{shards}");
            }
            assert_eq!(parts.last().unwrap().end, samples);
            let lens: Vec<usize> = parts.iter().map(ShardSpec::len).collect();
            let max = lens.iter().max().unwrap();
            let min = lens.iter().min().unwrap();
            assert!(max - min <= 1, "balanced: {lens:?}");
        }
    }

    #[test]
    fn partition_matches_monte_carlo_thread_chunking_shape() {
        // 101 samples, 4 shards: first 101 % 4 = 1 shard gets the extra.
        let parts = ShardSpec::partition(101, 4);
        assert_eq!(
            parts.iter().map(ShardSpec::len).collect::<Vec<_>>(),
            [26, 25, 25, 25]
        );
    }

    #[test]
    #[should_panic(expected = "at least one shard")]
    fn zero_shards_panics() {
        let _ = ShardSpec::partition(10, 0);
    }

    #[test]
    fn more_shards_than_samples_yields_empty_tails() {
        let parts = ShardSpec::partition(2, 5);
        assert_eq!(parts.iter().filter(|s| !s.is_empty()).count(), 2);
        assert_eq!(parts.iter().map(ShardSpec::len).sum::<usize>(), 2);
    }

    #[test]
    fn campaign_flags_consume_shared_flags_and_resolve_defaults() {
        let mut flags = CampaignFlags::default();
        let words = [
            "--samples",
            "50",
            "--seed",
            "9",
            "--defect-rate",
            "0.25",
            "--circuits",
            "rd53,bw",
        ];
        let mut it = words.iter().map(|s| (*s).to_owned());
        while let Some(flag) = it.next() {
            assert_eq!(
                flags.consume(&flag, &mut it),
                Ok(true),
                "{flag} must be consumed"
            );
        }
        let mut other = ["--shards".to_owned()].into_iter();
        assert_eq!(
            flags.consume("--shards", &mut other),
            Ok(false),
            "non-campaign flags are left for the caller"
        );
        let mut empty = std::iter::empty();
        let err = flags
            .consume("--samples", &mut empty)
            .expect_err("missing value is an error, not a panic");
        assert!(err.contains("needs a value"), "{err}");
        let mut bad = ["many".to_owned()].into_iter();
        let err = flags.consume("--samples", &mut bad).expect_err("must fail");
        assert!(err.contains("expected a number"), "{err}");
        let config = flags.into_config();
        assert_eq!(config.samples, 50);
        assert_eq!(config.seed, 9);
        assert_eq!(config.circuits, ["rd53", "bw"]);

        let defaulted = CampaignFlags::default().into_config();
        assert_eq!(defaulted.circuits, table2_circuit_names());
    }

    #[test]
    fn config_validation_names_the_bad_circuit() {
        let mut config = McConfig::with_default_circuits(10, 1, 0.1);
        assert!(config.validate().is_ok());
        config.circuits.push("no-such-circuit".to_owned());
        let err = config.validate().expect_err("must fail");
        assert!(err.contains("no-such-circuit"), "{err}");
    }
}
