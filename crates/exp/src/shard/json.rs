//! Minimal hand-rolled JSON reader for shard partial-result files (the
//! workspace deliberately carries no serde).
//!
//! Numbers are kept as **raw source slices** and converted on access:
//! routing a `u64` seed through `f64` would corrupt values above 2^53, and
//! `f64`s written with Rust's shortest-round-trip `Display` parse back to
//! the identical bits only when the text is handed to `str::parse::<f64>`
//! untouched.

use std::collections::BTreeMap;
use std::fmt;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number, kept as its raw text.
    Num(String),
    /// A string (escapes decoded).
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object. Keys are unique; insertion order is not preserved
    /// (sorted), which is fine for a data document.
    Obj(BTreeMap<String, Json>),
}

/// Parse error: message plus byte offset into the input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// What went wrong.
    pub message: String,
    /// Byte offset where it went wrong.
    pub offset: usize,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} at byte {}", self.message, self.offset)
    }
}

impl std::error::Error for JsonError {}

impl Json {
    /// Parses a complete JSON document (trailing whitespace allowed,
    /// trailing garbage rejected).
    ///
    /// # Errors
    ///
    /// Returns a [`JsonError`] with the byte offset of the first problem.
    pub fn parse(text: &str) -> Result<Self, JsonError> {
        let bytes = text.as_bytes();
        let mut pos = 0usize;
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(err("trailing garbage after document", pos));
        }
        Ok(value)
    }

    /// Object field lookup.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(map) => map.get(key),
            _ => None,
        }
    }

    /// The value as `&str`, when it is a string.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a `u64`, when it is an unsigned integer number.
    #[must_use]
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(raw) => raw.parse().ok(),
            _ => None,
        }
    }

    /// The value as a `usize`, when it is an unsigned integer number.
    #[must_use]
    pub fn as_usize(&self) -> Option<usize> {
        match self {
            Json::Num(raw) => raw.parse().ok(),
            _ => None,
        }
    }

    /// The value as an `f64`, when it is a number. Bit-exact for numbers
    /// written with Rust's `Display`/`Debug` shortest representation.
    #[must_use]
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(raw) => raw.parse().ok(),
            _ => None,
        }
    }

    /// The value as a bool.
    #[must_use]
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as an array slice.
    #[must_use]
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }
}

/// An insertion-ordered JSON document under construction — the writing
/// counterpart of [`Json`]. Numbers are stored as **raw text** (the same
/// discipline the parser keeps): integers in decimal, floats in Rust's
/// shortest-round-trip representation, so a rendered document re-parses to
/// bit-identical values on any host. Object fields render in insertion
/// order, which keeps rendered artifacts byte-stable and human-readable
/// (`schema` first, payload last).
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number as raw text (use [`JsonValue::u64`] / [`JsonValue::f64`]).
    Num(String),
    /// A string (escaped on render).
    Str(String),
    /// An array.
    Arr(Vec<JsonValue>),
    /// An object with insertion-ordered fields.
    Obj(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// A `u64` number (decimal raw text; lossless above 2^53).
    #[must_use]
    pub fn u64(value: u64) -> Self {
        JsonValue::Num(value.to_string())
    }

    /// A `usize` number.
    #[must_use]
    pub fn usize(value: usize) -> Self {
        JsonValue::Num(value.to_string())
    }

    /// An `f64` number in shortest-round-trip form.
    ///
    /// # Panics
    ///
    /// Panics on NaN/Infinity — JSON has no literal for them, and every
    /// value that reaches an artifact must stay finite.
    #[must_use]
    pub fn f64(value: f64) -> Self {
        assert!(value.is_finite(), "artifact numbers must stay NaN/Inf-free");
        JsonValue::Num(format!("{value:?}"))
    }

    /// A string value.
    #[must_use]
    pub fn str(value: impl Into<String>) -> Self {
        JsonValue::Str(value.into())
    }

    /// An object from `(key, value)` pairs, preserving their order.
    ///
    /// # Panics
    ///
    /// Panics on duplicate keys — a duplicate silently shadowing a field
    /// is exactly the kind of schema bug the canonical artifact must not
    /// carry (the parser rejects duplicates too).
    #[must_use]
    pub fn obj<K: Into<String>>(fields: impl IntoIterator<Item = (K, JsonValue)>) -> Self {
        let fields: Vec<(String, JsonValue)> =
            fields.into_iter().map(|(k, v)| (k.into(), v)).collect();
        for (i, (key, _)) in fields.iter().enumerate() {
            assert!(
                !fields[..i].iter().any(|(k, _)| k == key),
                "duplicate object key {key:?}"
            );
        }
        JsonValue::Obj(fields)
    }

    /// An array from values.
    #[must_use]
    pub fn arr(items: impl IntoIterator<Item = JsonValue>) -> Self {
        JsonValue::Arr(items.into_iter().collect())
    }

    /// Renders the document as fully-expanded pretty JSON (2-space
    /// indentation, one field/element per line, no trailing newline).
    /// The output is deterministic: the same value tree always renders to
    /// the same bytes.
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out, 0);
        out
    }

    /// Renders the document as a single line (no newlines; `": "` after
    /// keys and `", "` between fields/elements). This is the wire form of
    /// the `xbar-svc/1` protocol: one message per line, still readable
    /// enough that smoke tests can grep for `"cache_hits": 1` verbatim.
    /// Deterministic like [`JsonValue::render`].
    #[must_use]
    pub fn render_compact(&self) -> String {
        let mut out = String::new();
        self.render_compact_into(&mut out);
        out
    }

    fn render_compact_into(&self, out: &mut String) {
        match self {
            JsonValue::Null => out.push_str("null"),
            JsonValue::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            JsonValue::Num(raw) => out.push_str(raw),
            JsonValue::Str(s) => {
                out.push('"');
                out.push_str(&escape(s));
                out.push('"');
            }
            JsonValue::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push_str(", ");
                    }
                    item.render_compact_into(out);
                }
                out.push(']');
            }
            JsonValue::Obj(fields) => {
                out.push('{');
                for (i, (key, value)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push_str(", ");
                    }
                    out.push('"');
                    out.push_str(&escape(key));
                    out.push_str("\": ");
                    value.render_compact_into(out);
                }
                out.push('}');
            }
        }
    }

    fn render_into(&self, out: &mut String, indent: usize) {
        let pad = "  ".repeat(indent + 1);
        let close_pad = "  ".repeat(indent);
        match self {
            JsonValue::Null => out.push_str("null"),
            JsonValue::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            JsonValue::Num(raw) => out.push_str(raw),
            JsonValue::Str(s) => {
                out.push('"');
                out.push_str(&escape(s));
                out.push('"');
            }
            JsonValue::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push_str("[\n");
                for (i, item) in items.iter().enumerate() {
                    out.push_str(&pad);
                    item.render_into(out, indent + 1);
                    out.push_str(if i + 1 < items.len() { ",\n" } else { "\n" });
                }
                out.push_str(&close_pad);
                out.push(']');
            }
            JsonValue::Obj(fields) => {
                if fields.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push_str("{\n");
                for (i, (key, value)) in fields.iter().enumerate() {
                    out.push_str(&pad);
                    out.push('"');
                    out.push_str(&escape(key));
                    out.push_str("\": ");
                    value.render_into(out, indent + 1);
                    out.push_str(if i + 1 < fields.len() { ",\n" } else { "\n" });
                }
                out.push_str(&close_pad);
                out.push('}');
            }
        }
    }
}

/// Escapes a string for embedding in a JSON document (used by the
/// hand-rolled writers; covers the control characters JSON requires).
#[must_use]
pub fn escape(text: &str) -> String {
    let mut out = String::with_capacity(text.len());
    for c in text.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out
}

fn err(message: &str, offset: usize) -> JsonError {
    JsonError {
        message: message.to_owned(),
        offset,
    }
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, byte: u8) -> Result<(), JsonError> {
    if *pos < bytes.len() && bytes[*pos] == byte {
        *pos += 1;
        Ok(())
    } else {
        Err(err(&format!("expected {:?}", byte as char), *pos))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json, JsonError> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err(err("unexpected end of input", *pos)),
        Some(b'{') => parse_object(bytes, pos),
        Some(b'[') => parse_array(bytes, pos),
        Some(b'"') => Ok(Json::Str(parse_string(bytes, pos)?)),
        Some(b't') => parse_literal(bytes, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_literal(bytes, pos, "false", Json::Bool(false)),
        Some(b'n') => parse_literal(bytes, pos, "null", Json::Null),
        Some(c) if c.is_ascii_digit() || *c == b'-' => parse_number(bytes, pos),
        Some(_) => Err(err("unexpected character", *pos)),
    }
}

fn parse_literal(
    bytes: &[u8],
    pos: &mut usize,
    word: &str,
    value: Json,
) -> Result<Json, JsonError> {
    if bytes[*pos..].starts_with(word.as_bytes()) {
        *pos += word.len();
        Ok(value)
    } else {
        Err(err(&format!("expected `{word}`"), *pos))
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Json, JsonError> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    let digits_start = *pos;
    while *pos < bytes.len() && bytes[*pos].is_ascii_digit() {
        *pos += 1;
    }
    if *pos == digits_start {
        return Err(err("expected digits", *pos));
    }
    if bytes.get(*pos) == Some(&b'.') {
        *pos += 1;
        let frac_start = *pos;
        while *pos < bytes.len() && bytes[*pos].is_ascii_digit() {
            *pos += 1;
        }
        if *pos == frac_start {
            return Err(err("expected fraction digits", *pos));
        }
    }
    if matches!(bytes.get(*pos), Some(b'e' | b'E')) {
        *pos += 1;
        if matches!(bytes.get(*pos), Some(b'+' | b'-')) {
            *pos += 1;
        }
        let exp_start = *pos;
        while *pos < bytes.len() && bytes[*pos].is_ascii_digit() {
            *pos += 1;
        }
        if *pos == exp_start {
            return Err(err("expected exponent digits", *pos));
        }
    }
    let raw = std::str::from_utf8(&bytes[start..*pos]).expect("ascii number");
    Ok(Json::Num(raw.to_owned()))
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, JsonError> {
    expect(bytes, pos, b'"')?;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err(err("unterminated string", *pos)),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'b') => out.push('\u{0008}'),
                    Some(b'f') => out.push('\u{000C}'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .ok_or_else(|| err("truncated \\u escape", *pos))?;
                        let hex = std::str::from_utf8(hex)
                            .map_err(|_| err("non-ascii \\u escape", *pos))?;
                        let code = u32::from_str_radix(hex, 16)
                            .map_err(|_| err("bad \\u escape", *pos))?;
                        let c = char::from_u32(code)
                            .ok_or_else(|| err("surrogate \\u escape unsupported", *pos))?;
                        out.push(c);
                        *pos += 4;
                    }
                    _ => return Err(err("bad escape", *pos)),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 character (input is a &str, so the
                // byte stream is valid UTF-8 by construction).
                let rest = std::str::from_utf8(&bytes[*pos..]).expect("valid utf8");
                let c = rest.chars().next().expect("non-empty");
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_array(bytes: &[u8], pos: &mut usize) -> Result<Json, JsonError> {
    expect(bytes, pos, b'[')?;
    let mut items = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Json::Arr(items));
    }
    loop {
        items.push(parse_value(bytes, pos)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => {
                *pos += 1;
            }
            Some(b']') => {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            _ => return Err(err("expected `,` or `]`", *pos)),
        }
    }
}

fn parse_object(bytes: &[u8], pos: &mut usize) -> Result<Json, JsonError> {
    expect(bytes, pos, b'{')?;
    let mut map = BTreeMap::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Json::Obj(map));
    }
    loop {
        skip_ws(bytes, pos);
        let key = parse_string(bytes, pos)?;
        skip_ws(bytes, pos);
        expect(bytes, pos, b':')?;
        let value = parse_value(bytes, pos)?;
        if map.insert(key, value).is_some() {
            return Err(err("duplicate object key", *pos));
        }
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => {
                *pos += 1;
            }
            Some(b'}') => {
                *pos += 1;
                return Ok(Json::Obj(map));
            }
            _ => return Err(err("expected `,` or `}`", *pos)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_document() {
        let doc = r#"{"a": [1, 2.5, -3e-2], "b": {"c": "x\ny"}, "d": true, "e": null}"#;
        let v = Json::parse(doc).expect("parses");
        assert_eq!(v.get("a").unwrap().as_arr().unwrap().len(), 3);
        assert_eq!(v.get("b").unwrap().get("c").unwrap().as_str(), Some("x\ny"));
        assert_eq!(v.get("d").unwrap().as_bool(), Some(true));
        assert_eq!(v.get("e"), Some(&Json::Null));
    }

    #[test]
    fn u64_seeds_above_2_pow_53_survive() {
        let seed = u64::MAX - 7;
        let doc = format!("{{\"seed\": {seed}}}");
        let v = Json::parse(&doc).expect("parses");
        assert_eq!(v.get("seed").unwrap().as_u64(), Some(seed));
    }

    #[test]
    fn f64_shortest_repr_roundtrips_bitwise() {
        for x in [
            0.1_f64,
            -0.0,
            1.0 / 3.0,
            f64::MIN_POSITIVE,
            1.797_693_134_862_315_7e308,
            2.2e-308,
            123_456_789.123_456_78,
        ] {
            let doc = format!("{{\"x\": {x}}}");
            let v = Json::parse(&doc).expect("parses");
            let back = v.get("x").unwrap().as_f64().expect("number");
            assert_eq!(back.to_bits(), x.to_bits(), "value {x}");
        }
    }

    #[test]
    fn truncated_document_reports_an_error() {
        for doc in ["{\"a\": [1, 2", "{\"a\"", "[1,", "\"abc", "{\"a\": 1} x"] {
            assert!(Json::parse(doc).is_err(), "{doc:?} should fail");
        }
    }

    #[test]
    fn duplicate_keys_are_rejected() {
        assert!(Json::parse(r#"{"a": 1, "a": 2}"#).is_err());
    }

    #[test]
    fn writer_renders_deterministic_insertion_ordered_documents() {
        let doc = JsonValue::obj([
            ("schema", JsonValue::str("demo/1")),
            ("seed", JsonValue::u64(u64::MAX - 7)),
            ("rate", JsonValue::f64(0.1)),
            (
                "items",
                JsonValue::arr([JsonValue::usize(3), JsonValue::Bool(true), JsonValue::Null]),
            ),
            ("empty_obj", JsonValue::obj::<String>([])),
            ("empty_arr", JsonValue::arr([])),
        ]);
        let text = doc.render();
        // Insertion order preserved: schema renders first.
        assert!(text.starts_with("{\n  \"schema\": \"demo/1\",\n"));
        assert!(text.contains("\"empty_obj\": {}"));
        assert!(text.contains("\"empty_arr\": []"));
        // Round-trips through the raw-text-preserving parser.
        let back = Json::parse(&text).expect("rendered document parses");
        assert_eq!(back.get("seed").unwrap().as_u64(), Some(u64::MAX - 7));
        assert_eq!(
            back.get("rate").unwrap().as_f64().unwrap().to_bits(),
            0.1f64.to_bits()
        );
        // Deterministic: rendering twice yields identical bytes.
        assert_eq!(doc.render(), text);
    }

    #[test]
    fn writer_numbers_roundtrip_bitwise() {
        for x in [0.1_f64, -0.0, 1.0 / 3.0, f64::MIN_POSITIVE, 2.2e-308] {
            let text = JsonValue::obj([("x", JsonValue::f64(x))]).render();
            let back = Json::parse(&text).expect("parses");
            assert_eq!(
                back.get("x").unwrap().as_f64().unwrap().to_bits(),
                x.to_bits()
            );
        }
    }

    #[test]
    fn compact_rendering_is_single_line_and_reparses() {
        let doc = JsonValue::obj([
            ("svc", JsonValue::str("xbar-svc/1")),
            ("type", JsonValue::str("stats")),
            ("cache_hits", JsonValue::u64(1)),
            (
                "jobs",
                JsonValue::arr([JsonValue::usize(1), JsonValue::usize(2)]),
            ),
            ("empty_obj", JsonValue::obj::<String>([])),
            ("note", JsonValue::str("line\nbreak")),
        ]);
        let line = doc.render_compact();
        assert!(!line.contains('\n'), "wire form must stay on one line");
        assert!(line.contains("\"cache_hits\": 1"), "greppable stats field");
        assert!(line.contains("\"jobs\": [1, 2]"));
        assert!(line.contains("\"empty_obj\": {}"));
        let back = Json::parse(&line).expect("compact form reparses");
        assert_eq!(back.get("cache_hits").unwrap().as_u64(), Some(1));
        assert_eq!(back.get("note").unwrap().as_str(), Some("line\nbreak"));
        // Pretty and compact forms agree on content.
        assert_eq!(Json::parse(&doc.render()).unwrap(), back);
    }

    #[test]
    #[should_panic(expected = "duplicate object key")]
    fn writer_rejects_duplicate_keys() {
        let _ = JsonValue::obj([("a", JsonValue::Null), ("a", JsonValue::Null)]);
    }

    #[test]
    #[should_panic(expected = "NaN/Inf-free")]
    fn writer_rejects_nan() {
        let _ = JsonValue::f64(f64::NAN);
    }

    #[test]
    fn escape_covers_quotes_and_controls() {
        assert_eq!(escape("a\"b\\c\n"), "a\\\"b\\\\c\\n");
        assert_eq!(escape("\u{1}"), "\\u0001");
        let doc = format!("{{\"s\": \"{}\"}}", escape("a\"b\\c\n\u{1}"));
        let v = Json::parse(&doc).expect("parses");
        assert_eq!(v.get("s").unwrap().as_str(), Some("a\"b\\c\n\u{1}"));
    }
}
