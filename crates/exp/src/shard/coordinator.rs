//! The shard coordinator: spawns one `mc_shard` worker process per shard,
//! detects failed or corrupt shards, re-runs them, and merges the partial
//! results into the campaign's merged statistics.
//!
//! The merged **stats artifact** ([`render_stats_json`]) contains only
//! integer-derived statistics, so it is byte-identical across shard
//! layouts — `--shards 7` and a monolithic in-process run produce the
//! same file. Wall-clock runtime moments are merged too (deterministically
//! for a fixed layout) but reported separately ([`render_timing_table`]).

use super::partial::ShardPartial;
use super::{run_shard, McConfig, ShardSpec};
use crate::experiments::table2::CircuitAccum;
use crate::table::{pct, secs, Table};
use std::fmt::Write as _;
use std::fs;
use std::path::{Path, PathBuf};
use std::process::{Command, Stdio};
use xbar_core::SampleStream;

/// Schema tag of the merged stats artifact.
pub const MERGED_SCHEMA: &str = "xbar-mc-merged/1";

/// The worker process a coordinator spawns per shard: a binary path plus
/// the argument prefix selecting its shard entry point — empty for the
/// legacy standalone `mc_shard` binary, `["mc", "shard"]` for the unified
/// `xbar` binary (which is its own worker).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Worker {
    /// Worker binary path.
    pub binary: PathBuf,
    /// Arguments prepended before the shard flags.
    pub prefix_args: Vec<String>,
}

impl Worker {
    /// A standalone shard binary (no prefix arguments).
    #[must_use]
    pub fn standalone(binary: PathBuf) -> Self {
        Self {
            binary,
            prefix_args: Vec::new(),
        }
    }

    /// An `xbar` multiplexer binary driven through `mc shard`.
    #[must_use]
    pub fn xbar(binary: PathBuf) -> Self {
        Self {
            binary,
            prefix_args: vec!["mc".to_owned(), "shard".to_owned()],
        }
    }
}

/// Coordinator configuration.
#[derive(Debug, Clone)]
pub struct CoordinatorConfig {
    /// The campaign every shard must agree on.
    pub config: McConfig,
    /// Number of worker processes / sample-range shards.
    pub shards: usize,
    /// Attempts per shard (first run + retries) before giving up.
    pub max_attempts: usize,
    /// The worker process spawned per shard.
    pub worker: Worker,
    /// Directory for partial-result files (created if missing).
    pub work_dir: PathBuf,
    /// Extra arguments appended to every worker invocation (used by the
    /// failure-injection tests; empty in production).
    pub extra_worker_args: Vec<String>,
    /// Keep partial files after a successful merge.
    pub keep_partials: bool,
}

impl CoordinatorConfig {
    /// A coordinator with defaults: worker binary next to the current
    /// executable, partials under a process-unique temp directory, three
    /// attempts per shard.
    ///
    /// # Errors
    ///
    /// Fails when no worker binary can be located.
    pub fn new(config: McConfig, shards: usize) -> Result<Self, String> {
        Ok(Self {
            config,
            shards,
            max_attempts: 3,
            worker: default_worker()?,
            work_dir: default_work_dir(),
            extra_worker_args: Vec::new(),
            keep_partials: false,
        })
    }
}

/// The default partial-file directory: process-unique under the system
/// temp dir.
#[must_use]
pub fn default_work_dir() -> PathBuf {
    std::env::temp_dir().join(format!("mc-shard-{}", std::process::id()))
}

/// The merged campaign result: the configuration plus one merged
/// accumulator per circuit.
#[derive(Debug, Clone, PartialEq)]
pub struct MergedResult {
    /// Campaign configuration.
    pub config: McConfig,
    /// `(circuit, merged accumulator)` in configuration order.
    pub circuits: Vec<(String, CircuitAccum)>,
}

/// Locates the default worker next to the currently running executable
/// (all experiment binaries live in the same Cargo target directory):
/// prefers the unified `xbar` binary (spawned as `xbar mc shard`, so when
/// the current executable *is* `xbar` the coordinator is self-contained),
/// falling back to the legacy standalone `mc_shard` binary.
///
/// # Errors
///
/// Reports both paths it looked at when neither binary exists.
pub fn default_worker() -> Result<Worker, String> {
    let exe = std::env::current_exe().map_err(|e| format!("cannot locate current exe: {e}"))?;
    let dir = exe
        .parent()
        .ok_or_else(|| "current exe has no parent directory".to_owned())?;
    let xbar = dir.join(format!("xbar{}", std::env::consts::EXE_SUFFIX));
    if xbar.is_file() {
        return Ok(Worker::xbar(xbar));
    }
    let standalone = dir.join(format!("mc_shard{}", std::env::consts::EXE_SUFFIX));
    if standalone.is_file() {
        return Ok(Worker::standalone(standalone));
    }
    Err(format!(
        "no worker binary found: neither {} nor {} exists (build them with \
         `cargo build --release -p xbar-exp --bins`)",
        xbar.display(),
        standalone.display()
    ))
}

/// Runs the whole campaign in-process (no worker processes) through the
/// same fold-and-merge code path the sharded run uses.
#[must_use]
pub fn run_monolithic(config: &McConfig) -> MergedResult {
    let whole = ShardSpec {
        index: 0,
        num_shards: 1,
        start: 0,
        end: config.samples,
    };
    let partial = run_shard(config, &whole);
    MergedResult {
        config: config.clone(),
        circuits: partial.circuits,
    }
}

/// Merges shard partials after validating that they belong to `config`
/// and tile its sample range exactly.
///
/// Partials are merged in ascending `start` order, so the merge is
/// deterministic for a given shard layout.
///
/// # Errors
///
/// Rejects configuration mismatches, overlapping or missing sample
/// ranges, and circuit-list disagreements.
pub fn merge_partials(
    config: &McConfig,
    partials: &[ShardPartial],
) -> Result<MergedResult, String> {
    let mut ordered: Vec<&ShardPartial> = partials.iter().collect();
    ordered.sort_by_key(|p| p.spec.start);

    for partial in &ordered {
        let id = format!("shard {}", partial.spec.index);
        if partial.config.samples != config.samples {
            return Err(format!(
                "{id}: samples {} != campaign {}",
                partial.config.samples, config.samples
            ));
        }
        if partial.config.seed != config.seed {
            return Err(format!(
                "{id}: seed {} != campaign {}",
                partial.config.seed, config.seed
            ));
        }
        if partial.config.defect_rate.to_bits() != config.defect_rate.to_bits() {
            return Err(format!(
                "{id}: defect_rate {} != campaign {}",
                partial.config.defect_rate, config.defect_rate
            ));
        }
        if partial.config.stream != config.stream {
            return Err(format!(
                "{id}: rng stream {} != campaign {} (a shard sampled under a \
                 different stream cannot merge into this campaign)",
                partial.config.stream, config.stream
            ));
        }
        if partial.config.circuits != config.circuits {
            return Err(format!(
                "{id}: circuit list {:?} != campaign {:?}",
                partial.config.circuits, config.circuits
            ));
        }
        if partial.circuits.len() != config.circuits.len() {
            return Err(format!(
                "{id}: {} circuit entries, campaign has {}",
                partial.circuits.len(),
                config.circuits.len()
            ));
        }
        let expected: u64 = partial.spec.len() as u64;
        for ((name, accum), campaign_name) in partial.circuits.iter().zip(&config.circuits) {
            if name != campaign_name {
                return Err(format!(
                    "{id}: circuit entry {name:?} out of order (expected {campaign_name:?})"
                ));
            }
            if accum.samples() != expected {
                return Err(format!(
                    "{id}: circuit {name:?} folded {} samples, range holds {expected}",
                    accum.samples()
                ));
            }
        }
    }

    let mut cursor = 0usize;
    for partial in &ordered {
        if partial.spec.start != cursor {
            return Err(format!(
                "sample range not tiled: expected a shard starting at {cursor}, \
                 found shard {} starting at {}",
                partial.spec.index, partial.spec.start
            ));
        }
        cursor = partial.spec.end;
    }
    if cursor != config.samples {
        return Err(format!(
            "sample range not covered: shards end at {cursor}, campaign has {} samples",
            config.samples
        ));
    }

    let mut circuits: Vec<(String, CircuitAccum)> = config
        .circuits
        .iter()
        .map(|name| (name.clone(), CircuitAccum::new()))
        .collect();
    for partial in &ordered {
        for ((_, merged), (_, piece)) in circuits.iter_mut().zip(&partial.circuits) {
            merged.merge(piece);
        }
    }
    Ok(MergedResult {
        config: config.clone(),
        circuits,
    })
}

fn partial_path(work_dir: &Path, index: usize) -> PathBuf {
    work_dir.join(format!("partial-{index}.json"))
}

fn spawn_worker(
    cfg: &CoordinatorConfig,
    spec: &ShardSpec,
    out: &Path,
) -> std::io::Result<std::process::Child> {
    Command::new(&cfg.worker.binary)
        .args(&cfg.worker.prefix_args)
        .arg("--samples")
        .arg(cfg.config.samples.to_string())
        .arg("--seed")
        .arg(cfg.config.seed.to_string())
        .arg("--defect-rate")
        // Shortest-round-trip text: the worker parses back the exact bits.
        .arg(format!("{:?}", cfg.config.defect_rate))
        .arg("--rng-stream")
        .arg(cfg.config.stream.as_str())
        .arg("--circuits")
        .arg(cfg.config.circuits.join(","))
        .arg("--shard-index")
        .arg(spec.index.to_string())
        .arg("--num-shards")
        .arg(spec.num_shards.to_string())
        .arg("--out")
        .arg(out)
        .args(&cfg.extra_worker_args)
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
}

fn collect_worker(
    cfg: &CoordinatorConfig,
    spec: &ShardSpec,
    child: std::io::Result<std::process::Child>,
) -> Result<ShardPartial, String> {
    let child = child.map_err(|e| format!("spawn failed: {e}"))?;
    let output = child
        .wait_with_output()
        .map_err(|e| format!("wait failed: {e}"))?;
    if !output.status.success() {
        let stderr = String::from_utf8_lossy(&output.stderr);
        let lines: Vec<&str> = stderr.lines().collect();
        let tail = lines[lines.len().saturating_sub(3)..].join(" | ");
        return Err(format!("worker exited with {}: {tail}", output.status));
    }
    let path = partial_path(&cfg.work_dir, spec.index);
    let text = fs::read_to_string(&path)
        .map_err(|e| format!("cannot read partial {}: {e}", path.display()))?;
    let partial = ShardPartial::from_json(&text)?;
    if partial.spec != *spec {
        return Err(format!(
            "partial describes shard {:?}, expected {:?}",
            partial.spec, spec
        ));
    }
    Ok(partial)
}

/// Runs the sharded campaign: spawns all shards as concurrent worker
/// processes, retries any shard whose process failed or whose partial
/// file is missing/corrupt, and merges the partials.
///
/// A shard that keeps failing surfaces as an error after
/// `max_attempts` attempts — the coordinator never hangs on it.
///
/// # Errors
///
/// Reports configuration problems, unwritable work directories, and
/// permanently failing shards (with the last per-shard error).
pub fn run_coordinator(cfg: &CoordinatorConfig) -> Result<MergedResult, String> {
    if cfg.shards == 0 {
        return Err("need at least one shard".to_owned());
    }
    if cfg.max_attempts == 0 {
        return Err("need at least one attempt per shard".to_owned());
    }
    cfg.config.validate()?;
    fs::create_dir_all(&cfg.work_dir)
        .map_err(|e| format!("cannot create work dir {}: {e}", cfg.work_dir.display()))?;

    let specs = ShardSpec::partition(cfg.config.samples, cfg.shards);
    let mut partials: Vec<Option<ShardPartial>> = vec![None; specs.len()];
    // Empty shards (more shards than samples) need no process: their
    // partial is the empty accumulator, synthesized here instead of paying
    // a worker spawn plus per-circuit cover minimization for zero samples.
    let mut pending: Vec<ShardSpec> = Vec::with_capacity(specs.len());
    for spec in specs {
        if spec.is_empty() {
            partials[spec.index] = Some(ShardPartial {
                config: cfg.config.clone(),
                spec,
                circuits: cfg
                    .config
                    .circuits
                    .iter()
                    .map(|name| (name.clone(), CircuitAccum::new()))
                    .collect(),
            });
        } else {
            pending.push(spec);
        }
    }
    let mut last_error = String::new();

    for attempt in 1..=cfg.max_attempts {
        if pending.is_empty() {
            break;
        }
        let children: Vec<(ShardSpec, std::io::Result<std::process::Child>)> = pending
            .iter()
            .map(|spec| {
                let out = partial_path(&cfg.work_dir, spec.index);
                (*spec, spawn_worker(cfg, spec, &out))
            })
            .collect();
        let mut failed = Vec::new();
        for (spec, child) in children {
            match collect_worker(cfg, &spec, child) {
                Ok(partial) => partials[spec.index] = Some(partial),
                Err(e) => {
                    last_error = format!("shard {} (attempt {attempt}): {e}", spec.index);
                    eprintln!("mc_coordinator: {last_error}");
                    failed.push(spec);
                }
            }
        }
        pending = failed;
    }

    if !pending.is_empty() {
        let indices: Vec<String> = pending.iter().map(|s| s.index.to_string()).collect();
        return Err(format!(
            "shard(s) {} failed permanently after {} attempt(s); last error: {}",
            indices.join(", "),
            cfg.max_attempts,
            last_error
        ));
    }

    let collected: Vec<ShardPartial> = partials.into_iter().map(Option::unwrap).collect();
    let merged = merge_partials(&cfg.config, &collected)?;
    if !cfg.keep_partials {
        for index in 0..cfg.shards {
            let _ = fs::remove_file(partial_path(&cfg.work_dir, index));
        }
        let _ = fs::remove_dir(&cfg.work_dir);
    }
    Ok(merged)
}

/// Renders the deterministic merged-stats artifact: **only**
/// integer-derived statistics, so the document is byte-identical for any
/// shard layout of the same campaign (the CI smoke job and the
/// equivalence proptest compare these bytes directly).
#[must_use]
pub fn render_stats_json(merged: &MergedResult) -> String {
    let mut out = String::from("{\n");
    let _ = writeln!(out, "  \"schema\": \"{MERGED_SCHEMA}\",");
    let _ = writeln!(out, "  \"experiment\": \"table2\",");
    let _ = writeln!(out, "  \"seed\": {},", merged.config.seed);
    let _ = writeln!(out, "  \"defect_rate\": {:?},", merged.config.defect_rate);
    let _ = writeln!(out, "  \"samples\": {},", merged.config.samples);
    // V1 artifacts keep their pre-versioning bytes; V2 campaigns declare
    // the stream they were sampled under.
    if merged.config.stream != SampleStream::V1 {
        let _ = writeln!(out, "  \"rng_stream\": \"{}\",", merged.config.stream);
    }
    let _ = writeln!(out, "  \"circuits\": [");
    for (idx, (name, accum)) in merged.circuits.iter().enumerate() {
        let comma = if idx + 1 < merged.circuits.len() {
            ","
        } else {
            ""
        };
        let _ = writeln!(
            out,
            "    {{\"name\": \"{}\", \"samples\": {}, \"hba_successes\": {}, \
             \"hba_success_rate\": {:?}, \"ea_successes\": {}, \"ea_success_rate\": {:?}}}{comma}",
            super::json::escape(name),
            accum.samples(),
            accum.hba.successes,
            accum.hba.rate(),
            accum.ea.successes,
            accum.ea.rate(),
        );
    }
    out.push_str("  ]\n}\n");
    out
}

/// Renders the informational runtime summary (means/standard deviations
/// from the merged Welford moments) — wall-clock data, deliberately not
/// part of the byte-compared stats artifact.
#[must_use]
pub fn render_timing_table(merged: &MergedResult) -> String {
    let mut table = Table::new(
        "Merged Monte Carlo statistics (timing is wall-clock, informational)",
        &[
            "name",
            "samples",
            "HBA succ%",
            "EA succ%",
            "HBA mean s",
            "HBA std s",
            "EA mean s",
            "EA std s",
        ],
    );
    for (name, accum) in &merged.circuits {
        table.row([
            name.clone(),
            accum.samples().to_string(),
            pct(accum.hba.rate()),
            pct(accum.ea.rate()),
            secs(accum.hba_time.mean()),
            secs(accum.hba_time.std_dev()),
            secs(accum.ea_time.mean()),
            secs(accum.ea_time.std_dev()),
        ]);
    }
    table.to_ascii()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn config() -> McConfig {
        McConfig {
            samples: 20,
            seed: 5,
            defect_rate: 0.1,
            stream: SampleStream::V1,
            circuits: vec!["rd53".to_owned()],
        }
    }

    fn partials_for(config: &McConfig, shards: usize) -> Vec<ShardPartial> {
        ShardSpec::partition(config.samples, shards)
            .iter()
            .map(|spec| run_shard(config, spec))
            .collect()
    }

    #[test]
    fn merged_shards_match_the_monolithic_stats_artifact() {
        let config = config();
        let mono = render_stats_json(&run_monolithic(&config));
        for shards in [1usize, 2, 3, 7] {
            let merged = merge_partials(&config, &partials_for(&config, shards)).expect("merges");
            assert_eq!(
                render_stats_json(&merged),
                mono,
                "{shards} shards must be byte-identical"
            );
        }
    }

    #[test]
    fn merge_rejects_a_missing_shard() {
        let config = config();
        let mut partials = partials_for(&config, 3);
        partials.remove(1);
        let err = merge_partials(&config, &partials).expect_err("gap must fail");
        assert!(err.contains("not tiled"), "{err}");
    }

    #[test]
    fn merge_rejects_a_duplicated_shard() {
        let config = config();
        let mut partials = partials_for(&config, 3);
        let dup = partials[0].clone();
        partials.push(dup);
        assert!(merge_partials(&config, &partials).is_err());
    }

    #[test]
    fn merge_rejects_seed_mismatch() {
        let config = config();
        let mut partials = partials_for(&config, 2);
        partials[1].config.seed ^= 1;
        let err = merge_partials(&config, &partials).expect_err("must fail");
        assert!(err.contains("seed"), "{err}");
    }

    #[test]
    fn merge_rejects_rng_stream_mismatch() {
        // A shard sampled under V2 holds statistics over different defect
        // maps; merging it into a V1 campaign would corrupt the artifact
        // silently, so the coordinator must refuse.
        let config = config();
        let mut partials = partials_for(&config, 2);
        partials[1].config.stream = SampleStream::V2;
        let err = merge_partials(&config, &partials).expect_err("must fail");
        assert!(err.contains("rng stream"), "{err}");
    }

    #[test]
    fn v2_merge_matches_v2_monolithic_and_declares_its_stream() {
        let config = McConfig {
            stream: SampleStream::V2,
            ..self::config()
        };
        let mono = render_stats_json(&run_monolithic(&config));
        assert!(mono.contains("\"rng_stream\": \"v2\""), "{mono}");
        let merged = merge_partials(&config, &partials_for(&config, 3)).expect("merges");
        assert_eq!(render_stats_json(&merged), mono);
    }

    #[test]
    fn merge_rejects_out_of_order_circuit_entries() {
        let config = McConfig {
            circuits: vec!["rd53".to_owned(), "misex1".to_owned()],
            ..self::config()
        };
        let mut partials = partials_for(&config, 2);
        partials[0].circuits.swap(0, 1);
        let err = merge_partials(&config, &partials).expect_err("must fail");
        assert!(err.contains("out of order"), "{err}");
    }

    #[test]
    fn merge_rejects_a_missing_circuit_entry() {
        let config = McConfig {
            circuits: vec!["rd53".to_owned(), "misex1".to_owned()],
            ..self::config()
        };
        let mut partials = partials_for(&config, 2);
        partials[1].circuits.pop();
        let err = merge_partials(&config, &partials).expect_err("must fail");
        assert!(err.contains("circuit entries"), "{err}");
    }

    #[test]
    fn merge_rejects_sample_count_lies() {
        let config = config();
        let mut partials = partials_for(&config, 2);
        partials[0].circuits[0].1.hba.samples += 1;
        partials[0].circuits[0].1.ea.samples += 1;
        let err = merge_partials(&config, &partials).expect_err("must fail");
        assert!(err.contains("folded"), "{err}");
    }

    #[test]
    fn empty_shards_merge_cleanly() {
        // More shards than samples: trailing shards are empty.
        let config = McConfig {
            samples: 2,
            ..self::config()
        };
        let merged = merge_partials(&config, &partials_for(&config, 5)).expect("merges");
        assert_eq!(merged.circuits[0].1.samples(), 2);
    }

    #[test]
    fn stats_json_is_parseable_and_has_rates() {
        let merged = run_monolithic(&config());
        let json = render_stats_json(&merged);
        let doc = super::super::json::Json::parse(&json).expect("valid json");
        assert_eq!(
            doc.get("schema").and_then(|s| s.as_str()),
            Some(MERGED_SCHEMA)
        );
        let circuits = doc.get("circuits").and_then(|c| c.as_arr()).expect("arr");
        assert_eq!(circuits.len(), 1);
        assert!(circuits[0].get("hba_success_rate").is_some());
        let timing = render_timing_table(&merged);
        assert!(timing.contains("rd53"));
    }
}
