//! The fault-tolerant campaign runner: schedules `mc_shard` worker
//! processes over a bounded work queue, enforces per-shard watchdog
//! deadlines, retries failed shards with deterministic exponential
//! backoff, and checkpoints progress so a killed coordinator can
//! `--resume` instead of restarting.
//!
//! Process supervision, in order of defense:
//!
//! * **Bounded, event-driven scheduling** — at most
//!   [`CoordinatorConfig::max_inflight`] workers are ever live; a work
//!   queue feeds free slots as children exit, so one slow shard never
//!   serializes the campaign behind a lockstep retry round.
//! * **Watchdog timeouts** — with [`CoordinatorConfig::shard_timeout`]
//!   set, a worker that outlives its wall-clock deadline is killed and
//!   reaped, turning a hang into an ordinary retriable failure (without a
//!   timeout the coordinator waits indefinitely, the historical
//!   behaviour).
//! * **Backoff retry** — each shard retries independently up to
//!   [`CoordinatorConfig::max_attempts`] times, delayed by
//!   [`backoff_delay`]: exponential growth plus jitter that is a pure
//!   function of `(seed, shard, attempt)`, so retry schedules are
//!   reproducible — no wall-clock RNG.
//! * **Checkpoint/resume** — every campaign owns a run directory derived
//!   from its identity ([`campaign_run_dir`]) with a `campaign.json`
//!   manifest; a directory holding a *different* campaign is rejected
//!   with a clear error instead of clobbered. With
//!   [`CoordinatorConfig::resume`], valid partials found there are reused
//!   and only missing or corrupt shards are scheduled.
//!
//! The merged **stats artifact** ([`render_stats_json`]) contains only
//! integer-derived statistics, so it is byte-identical across shard
//! layouts, failure histories, and resumes — `--shards 7` with injected
//! crashes and a monolithic in-process run produce the same file.
//! Wall-clock runtime moments are merged too (deterministically for a
//! fixed layout) but reported separately ([`render_timing_table`]).

use super::partial::ShardPartial;
use super::{run_shard, McConfig, ShardSpec};
use crate::experiments::table2::CircuitAccum;
use crate::table::{pct, secs, Table};
use std::collections::VecDeque;
use std::fmt::Write as _;
use std::fs;
use std::io::Read as _;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};
use xbar_core::{DefectModelKind, DefectModelSpec, SampleStream};

/// Schema tag of the merged stats artifact.
pub const MERGED_SCHEMA: &str = "xbar-mc-merged/1";

/// Schema tag of the `campaign.json` manifest a run directory carries.
pub const CAMPAIGN_SCHEMA: &str = "xbar-mc-campaign/1";

/// Default base delay of the exponential retry backoff.
pub const DEFAULT_RETRY_BASE: Duration = Duration::from_millis(100);

/// How often the scheduler polls children when nothing has changed.
const POLL_INTERVAL: Duration = Duration::from_millis(4);

/// The worker process a coordinator spawns per shard: a binary path plus
/// the argument prefix selecting its shard entry point — empty for the
/// legacy standalone `mc_shard` binary, `["mc", "shard"]` for the unified
/// `xbar` binary (which is its own worker).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Worker {
    /// Worker binary path.
    pub binary: PathBuf,
    /// Arguments prepended before the shard flags.
    pub prefix_args: Vec<String>,
}

impl Worker {
    /// A standalone shard binary (no prefix arguments).
    #[must_use]
    pub fn standalone(binary: PathBuf) -> Self {
        Self {
            binary,
            prefix_args: Vec::new(),
        }
    }

    /// An `xbar` multiplexer binary driven through `mc shard`.
    #[must_use]
    pub fn xbar(binary: PathBuf) -> Self {
        Self {
            binary,
            prefix_args: vec!["mc".to_owned(), "shard".to_owned()],
        }
    }
}

/// Coordinator configuration.
#[derive(Debug, Clone)]
pub struct CoordinatorConfig {
    /// The campaign every shard must agree on.
    pub config: McConfig,
    /// Number of worker processes / sample-range shards.
    pub shards: usize,
    /// Attempts per shard (first run + retries) before giving up.
    pub max_attempts: usize,
    /// The worker process spawned per shard.
    pub worker: Worker,
    /// Parent directory for run directories (created if missing); the
    /// campaign's partials live in [`campaign_run_dir`] beneath it.
    pub work_dir: PathBuf,
    /// Extra arguments appended to every worker invocation (used by the
    /// failure-injection tests and CI smoke; empty in production).
    pub extra_worker_args: Vec<String>,
    /// Keep partial files (and the run directory) after a successful
    /// merge.
    pub keep_partials: bool,
    /// Per-attempt wall-clock deadline: a worker still running after this
    /// long is killed, reaped, and retried. `None` (the default) disables
    /// the watchdog — the historical wait-forever behaviour.
    pub shard_timeout: Option<Duration>,
    /// Maximum live workers at any instant; `None` = the machine's
    /// available parallelism.
    pub max_inflight: Option<usize>,
    /// Reuse valid partials already present in the run directory and
    /// schedule only the missing or corrupt shards.
    pub resume: bool,
    /// Base delay of the exponential retry backoff (see
    /// [`backoff_delay`]).
    pub retry_base: Duration,
}

impl CoordinatorConfig {
    /// A coordinator with defaults: worker binary next to the current
    /// executable, partials under the default work dir, three attempts
    /// per shard, no watchdog, inflight bound = available parallelism.
    ///
    /// # Errors
    ///
    /// Fails when no worker binary can be located.
    pub fn new(config: McConfig, shards: usize) -> Result<Self, String> {
        Ok(Self {
            config,
            shards,
            max_attempts: 3,
            worker: default_worker()?,
            work_dir: default_work_dir(),
            extra_worker_args: Vec::new(),
            keep_partials: false,
            shard_timeout: None,
            max_inflight: None,
            resume: false,
            retry_base: DEFAULT_RETRY_BASE,
        })
    }
}

/// The default parent directory for run directories. Deliberately stable
/// across processes (unlike the old pid-derived path) so `--resume` after
/// a coordinator crash finds the previous run's partials; per-campaign
/// isolation comes from [`campaign_run_dir`] beneath it.
#[must_use]
pub fn default_work_dir() -> PathBuf {
    std::env::temp_dir().join("xbar-mc")
}

/// The run directory a campaign owns beneath `work_dir`, derived from the
/// campaign identity `(seed, samples, shards, stream[, model kind])` — two
/// coordinators running *different* campaigns against the same
/// `--work-dir` can no longer clobber each other's `partial-N.json` files.
/// Default-model campaigns keep the exact pre-model directory name (CI's
/// resume smoke hardcodes it); a non-default spatial model appends its
/// kind. Parameters that don't fit in a path (defect rate, circuit list,
/// model parameters) are covered by the `campaign.json` manifest check
/// inside the directory.
#[must_use]
pub fn campaign_run_dir(work_dir: &Path, config: &McConfig, shards: usize) -> PathBuf {
    let mut name = format!(
        "run-seed{}-n{}-k{}-{}",
        config.seed, config.samples, shards, config.stream
    );
    if !config.model.is_default() {
        let _ = write!(name, "-{}", config.model.kind().as_str());
    }
    work_dir.join(name)
}

/// Per-run counters reported by [`run_coordinator_with_report`]:
/// scheduling facts (how the campaign was executed), deliberately
/// separate from the byte-compared stats artifact.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RunReport {
    /// Worker processes spawned (all attempts).
    pub spawned: usize,
    /// Shards satisfied from existing partials (`--resume`).
    pub reused: usize,
    /// Retry attempts scheduled after a failure.
    pub retries: usize,
    /// Workers killed at the watchdog deadline.
    pub timeouts: usize,
    /// Peak number of simultaneously live workers.
    pub max_inflight_observed: usize,
}

/// The merged campaign result: the configuration plus one merged
/// accumulator per circuit.
#[derive(Debug, Clone, PartialEq)]
pub struct MergedResult {
    /// Campaign configuration.
    pub config: McConfig,
    /// `(circuit, merged accumulator)` in configuration order.
    pub circuits: Vec<(String, CircuitAccum)>,
}

/// Locates the default worker next to the currently running executable
/// (all experiment binaries live in the same Cargo target directory):
/// prefers the unified `xbar` binary (spawned as `xbar mc shard`, so when
/// the current executable *is* `xbar` the coordinator is self-contained),
/// falling back to the legacy standalone `mc_shard` binary.
///
/// # Errors
///
/// Reports both paths it looked at when neither binary exists.
pub fn default_worker() -> Result<Worker, String> {
    let exe = std::env::current_exe().map_err(|e| format!("cannot locate current exe: {e}"))?;
    let dir = exe
        .parent()
        .ok_or_else(|| "current exe has no parent directory".to_owned())?;
    let xbar = dir.join(format!("xbar{}", std::env::consts::EXE_SUFFIX));
    if xbar.is_file() {
        return Ok(Worker::xbar(xbar));
    }
    let standalone = dir.join(format!("mc_shard{}", std::env::consts::EXE_SUFFIX));
    if standalone.is_file() {
        return Ok(Worker::standalone(standalone));
    }
    Err(format!(
        "no worker binary found: neither {} nor {} exists (build them with \
         `cargo build --release -p xbar-exp --bins`)",
        xbar.display(),
        standalone.display()
    ))
}

/// Runs the whole campaign in-process (no worker processes) through the
/// same fold-and-merge code path the sharded run uses.
#[must_use]
pub fn run_monolithic(config: &McConfig) -> MergedResult {
    let whole = ShardSpec {
        index: 0,
        num_shards: 1,
        start: 0,
        end: config.samples,
    };
    let partial = run_shard(config, &whole);
    MergedResult {
        config: config.clone(),
        circuits: partial.circuits,
    }
}

/// Merges shard partials after validating that they belong to `config`
/// and tile its sample range exactly.
///
/// Partials are merged in ascending `start` order, so the merge is
/// deterministic for a given shard layout.
///
/// # Errors
///
/// Rejects configuration mismatches, overlapping or missing sample
/// ranges, and circuit-list disagreements.
pub fn merge_partials(
    config: &McConfig,
    partials: &[ShardPartial],
) -> Result<MergedResult, String> {
    let mut ordered: Vec<&ShardPartial> = partials.iter().collect();
    ordered.sort_by_key(|p| p.spec.start);

    for partial in &ordered {
        validate_partial_for_merge(config, partial)?;
    }
    check_exact_tiling(config.samples, &ordered)?;

    let mut circuits: Vec<(String, CircuitAccum)> = config
        .circuits
        .iter()
        .map(|name| (name.clone(), CircuitAccum::new()))
        .collect();
    for partial in &ordered {
        for ((_, merged), (_, piece)) in circuits.iter_mut().zip(&partial.circuits) {
            merged.merge(piece);
        }
    }
    Ok(MergedResult {
        config: config.clone(),
        circuits,
    })
}

/// Validates one partial against the campaign it claims to belong to:
/// configuration echo, circuit-name order, and folded sample counts equal
/// to the claimed slice. Shared between the flat [`merge_partials`] merge
/// and the launcher's two-level per-host merge tree, so both reject torn
/// or foreign partials with identical messages.
pub(crate) fn validate_partial_for_merge(
    config: &McConfig,
    partial: &ShardPartial,
) -> Result<(), String> {
    let id = format!("shard {}", partial.spec.index);
    partial
        .validate_config_echo(config)
        .map_err(|e| format!("{id}: {e}"))?;
    let expected: u64 = partial.spec.len() as u64;
    for ((name, accum), campaign_name) in partial.circuits.iter().zip(&config.circuits) {
        if name != campaign_name {
            return Err(format!(
                "{id}: circuit entry {name:?} out of order (expected {campaign_name:?})"
            ));
        }
        if accum.samples() != expected {
            return Err(format!(
                "{id}: circuit {name:?} folded {} samples, range holds {expected}",
                accum.samples()
            ));
        }
    }
    Ok(())
}

/// Checks that `ordered` (ascending by `start`) tiles `0..samples`
/// exactly: no gap, no overlap, full coverage. A duplicated shard (a
/// hedge loser whose partial leaked into the merge input) fails here.
pub(crate) fn check_exact_tiling(samples: usize, ordered: &[&ShardPartial]) -> Result<(), String> {
    let mut cursor = 0usize;
    for partial in ordered {
        if partial.spec.start != cursor {
            return Err(format!(
                "sample range not tiled: expected a shard starting at {cursor}, \
                 found shard {} starting at {}",
                partial.spec.index, partial.spec.start
            ));
        }
        cursor = partial.spec.end;
    }
    if cursor != samples {
        return Err(format!(
            "sample range not covered: shards end at {cursor}, campaign has {samples} samples"
        ));
    }
    Ok(())
}

pub(crate) fn partial_path(run_dir: &Path, index: usize) -> PathBuf {
    run_dir.join(format!("partial-{index}.json"))
}

// ---------------------------------------------------------------------------
// Deterministic retry backoff
// ---------------------------------------------------------------------------

fn splitmix64(seed: u64) -> u64 {
    let mut z = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The delay before retrying `shard` after its `attempt`-th failed
/// attempt (1-based): `base · 2^(attempt-1)` (exponent capped at 6) plus
/// jitter in `[0, 100%)` of that step. The jitter is a pure function of
/// `(seed, shard, attempt)` — no wall-clock RNG — so a campaign's retry
/// schedule is reproducible while concurrent retries still de-correlate.
#[must_use]
pub fn backoff_delay(seed: u64, shard: usize, attempt: usize, base: Duration) -> Duration {
    let exponent = u32::try_from(attempt.saturating_sub(1).min(6)).expect("capped exponent");
    let step = base.saturating_mul(1 << exponent);
    let hash = splitmix64(
        seed ^ (shard as u64).rotate_left(32)
            ^ (attempt as u64).wrapping_mul(0xD6E8_FEB8_6659_FD93),
    );
    // 53 high bits -> a fraction in [0, 1).
    let frac = (hash >> 11) as f64 / (1u64 << 53) as f64;
    step.mul_f64(1.0 + frac)
}

// ---------------------------------------------------------------------------
// Campaign manifest: what a run directory belongs to
// ---------------------------------------------------------------------------

/// Renders the `campaign.json` manifest. `hosts` is the launcher's host
/// attribution (`"name*slots"` per entry) — informational provenance for
/// a resumed launch, rendered only when non-empty so coordinator-written
/// manifests keep their exact pre-launcher bytes. It deliberately does
/// NOT participate in [`campaign_mismatch`]: the same campaign may be
/// resumed with a different host fleet.
pub(crate) fn render_campaign_manifest(
    config: &McConfig,
    shards: usize,
    hosts: &[String],
) -> String {
    let mut out = String::from("{\n");
    let _ = writeln!(out, "  \"schema\": \"{CAMPAIGN_SCHEMA}\",");
    let _ = writeln!(out, "  \"seed\": {},", config.seed);
    let _ = writeln!(out, "  \"defect_rate\": {:?},", config.defect_rate);
    let _ = writeln!(out, "  \"samples\": {},", config.samples);
    let _ = writeln!(out, "  \"shards\": {shards},");
    let _ = writeln!(out, "  \"rng_stream\": \"{}\",", config.stream);
    if !hosts.is_empty() {
        let entries: Vec<String> = hosts
            .iter()
            .map(|host| format!("\"{}\"", super::json::escape(host)))
            .collect();
        let _ = writeln!(out, "  \"hosts\": [{}],", entries.join(", "));
    }
    // Default-model manifests keep their pre-model bytes (so `--resume`
    // against a run dir written before spatial models existed still
    // validates); non-default models declare their kind plus exactly the
    // parameters that kind consumes.
    if !config.model.is_default() {
        let _ = writeln!(
            out,
            "  \"defect_model\": \"{}\",",
            config.model.kind().as_str()
        );
        if config.model.uses_cluster() {
            let _ = writeln!(
                out,
                "  \"cluster_size\": {:?},",
                config.model.cluster_size()
            );
        }
        if config.model.uses_lines() {
            let _ = writeln!(out, "  \"line_rate\": {:?},", config.model.line_rate());
        }
    }
    let names: Vec<String> = config
        .circuits
        .iter()
        .map(|name| format!("\"{}\"", super::json::escape(name)))
        .collect();
    let _ = writeln!(out, "  \"circuits\": [{}]", names.join(", "));
    out.push_str("}\n");
    out
}

/// Every key a `xbar-mc-campaign/1` manifest may carry. The parser
/// rejects anything else: a manifest written by a newer tool describes
/// campaign identity this coordinator cannot check, and silently ignoring
/// the extra field could merge partials from a different campaign.
const CAMPAIGN_MANIFEST_KEYS: [&str; 11] = [
    "schema",
    "seed",
    "defect_rate",
    "samples",
    "shards",
    "rng_stream",
    "defect_model",
    "cluster_size",
    "line_rate",
    "circuits",
    // Launcher host attribution: provenance, not campaign identity — a
    // resume may use a different fleet, so the parser tolerates the key
    // and the mismatch check ignores it.
    "hosts",
];

fn parse_campaign_manifest(text: &str) -> Result<(McConfig, usize), String> {
    let doc = super::json::Json::parse(text).map_err(|e| format!("malformed manifest: {e}"))?;
    let schema = doc
        .get("schema")
        .and_then(super::json::Json::as_str)
        .ok_or("manifest missing `schema`")?;
    if schema != CAMPAIGN_SCHEMA {
        return Err(format!(
            "manifest schema mismatch: got {schema:?}, expected {CAMPAIGN_SCHEMA:?}"
        ));
    }
    if let super::json::Json::Obj(map) = &doc {
        if let Some(unknown) = map
            .keys()
            .find(|key| !CAMPAIGN_MANIFEST_KEYS.contains(&key.as_str()))
        {
            return Err(format!(
                "manifest carries unknown key `{unknown}` (written by a newer tool?); \
                 refusing to resume a campaign whose identity cannot be fully checked"
            ));
        }
    }
    let u64_field = |key: &str| {
        doc.get(key)
            .and_then(super::json::Json::as_u64)
            .ok_or_else(|| format!("manifest missing u64 `{key}`"))
    };
    let circuits = doc
        .get("circuits")
        .and_then(super::json::Json::as_arr)
        .ok_or("manifest missing `circuits` array")?
        .iter()
        .map(|value| {
            value
                .as_str()
                .map(str::to_owned)
                .ok_or_else(|| "manifest circuit entry is not a string".to_owned())
        })
        .collect::<Result<Vec<String>, String>>()?;
    let config = McConfig {
        samples: usize::try_from(u64_field("samples")?)
            .map_err(|_| "manifest samples exceeds usize".to_owned())?,
        seed: u64_field("seed")?,
        defect_rate: doc
            .get("defect_rate")
            .and_then(super::json::Json::as_f64)
            .ok_or("manifest missing f64 `defect_rate`")?,
        stream: SampleStream::parse(
            doc.get("rng_stream")
                .and_then(super::json::Json::as_str)
                .ok_or("manifest missing `rng_stream`")?,
        )?,
        // Absent in manifests written before spatial models existed (and
        // for default-model campaigns today): both mean i.i.d. sampling.
        model: {
            let kind = match doc.get("defect_model").map(super::json::Json::as_str) {
                None => DefectModelKind::Iid,
                Some(Some(name)) => DefectModelKind::parse(name)?,
                Some(None) => return Err("manifest `defect_model` is not a string".to_owned()),
            };
            let f64_opt =
                |key: &str, default: f64| match doc.get(key).map(super::json::Json::as_f64) {
                    None => Ok(default),
                    Some(Some(v)) => Ok(v),
                    Some(None) => Err(format!("manifest `{key}` is not a number")),
                };
            DefectModelSpec::new(
                kind,
                f64_opt("cluster_size", DefectModelSpec::DEFAULT_CLUSTER_SIZE)?,
                f64_opt("line_rate", DefectModelSpec::DEFAULT_LINE_RATE)?,
            )?
        },
        circuits,
    };
    let shards = usize::try_from(u64_field("shards")?)
        .map_err(|_| "manifest shards exceeds usize".to_owned())?;
    Ok((config, shards))
}

/// Describes how `found` differs from the campaign `expected`; `None`
/// when they describe the same campaign.
fn campaign_mismatch(
    expected: &McConfig,
    expected_shards: usize,
    found: &McConfig,
    found_shards: usize,
) -> Option<String> {
    let mut diffs = Vec::new();
    if found.seed != expected.seed {
        diffs.push(format!("seed {} != {}", found.seed, expected.seed));
    }
    if found.samples != expected.samples {
        diffs.push(format!("samples {} != {}", found.samples, expected.samples));
    }
    if found.defect_rate.to_bits() != expected.defect_rate.to_bits() {
        diffs.push(format!(
            "defect_rate {} != {}",
            found.defect_rate, expected.defect_rate
        ));
    }
    if found.stream != expected.stream {
        diffs.push(format!(
            "rng stream {} != {}",
            found.stream, expected.stream
        ));
    }
    if found.model != expected.model {
        diffs.push(format!(
            "defect_model {} != {}",
            found.model, expected.model
        ));
    }
    if found.circuits != expected.circuits {
        diffs.push(format!(
            "circuits {:?} != {:?}",
            found.circuits, expected.circuits
        ));
    }
    if found_shards != expected_shards {
        diffs.push(format!("shards {found_shards} != {expected_shards}"));
    }
    if diffs.is_empty() {
        None
    } else {
        Some(diffs.join(", "))
    }
}

/// An exclusive claim on a campaign run directory, held for the
/// coordinator's lifetime. Backed by a `coordinator.lock` file created
/// with `O_EXCL` semantics ([`fs::OpenOptions::create_new`]) and holding
/// the owner's `pid starttime` incarnation; dropped (removed) when the
/// coordinator finishes, and reclaimed by incarnation-liveness check when
/// a previous coordinator was killed without cleanup (the CI resume smoke
/// and the service restart test do exactly that).
#[derive(Debug)]
pub(crate) struct RunDirLock {
    path: PathBuf,
}

impl Drop for RunDirLock {
    fn drop(&mut self) {
        let _ = fs::remove_file(&self.path);
    }
}

/// The kernel `starttime` (clock ticks since boot at process start) of a
/// live process: field 22 of `/proc/<pid>/stat`. The pair (pid,
/// starttime) identifies a process *incarnation* — after pid reuse the
/// recycled pid carries a different starttime. `None` when the process is
/// gone or `/proc` is unavailable (non-Linux).
fn proc_starttime(pid: u32) -> Option<u64> {
    let stat = fs::read_to_string(format!("/proc/{pid}/stat")).ok()?;
    // Field 2 (comm) may itself contain spaces and parentheses, so fields
    // can only be counted from the *last* `)`; the remainder starts at
    // field 3 and starttime is field 22, i.e. index 19 of the remainder.
    let rest = stat.rsplit_once(')')?.1;
    rest.split_whitespace().nth(19)?.parse().ok()
}

/// True when the owner recorded in a lock file still names a live process
/// incarnation. The lock holds `pid starttime`; both must match the
/// current `/proc` state, because a bare pid can be recycled by the
/// kernel and misidentify an unrelated process as a live owner (the lock
/// would then block the campaign forever). Locks written before the
/// starttime field existed carry only a pid and degrade to the pid-only
/// check. An unreadable or malformed lock counts as stale: the owner can
/// no longer be identified, and the atomic re-create below still
/// guarantees a single winner. Our own pid counts as alive — in-process
/// coordinators (library callers) racing for one campaign must exclude
/// each other just like separate processes do.
fn lock_owner_alive(path: &Path) -> bool {
    let Ok(text) = fs::read_to_string(path) else {
        return false;
    };
    let mut fields = text.split_whitespace();
    let Some(Ok(pid)) = fields.next().map(str::parse::<u32>) else {
        return false;
    };
    if pid == std::process::id() {
        return true;
    }
    // Without a /proc to consult (non-Linux), liveness cannot be checked;
    // treating the lock as stale keeps crashed coordinators from blocking
    // a campaign forever, which is the failure mode that actually occurs.
    if !Path::new("/proc").is_dir() {
        return false;
    }
    match fields.next() {
        // pid + starttime: alive only if that exact incarnation persists.
        Some(recorded) => match recorded.parse::<u64>() {
            Ok(starttime) => proc_starttime(pid) == Some(starttime),
            Err(_) => false,
        },
        // Legacy pid-only lock: best effort, pid liveness alone.
        None => Path::new(&format!("/proc/{pid}")).is_dir(),
    }
}

/// Atomically claims `run_dir` for this coordinator process.
///
/// # Errors
///
/// Reports a live concurrent coordinator ("campaign already running") or
/// an I/O failure creating the lock.
fn acquire_run_dir_lock(run_dir: &Path) -> Result<RunDirLock, String> {
    use std::io::Write as _;
    let path = run_dir.join("coordinator.lock");
    // Two passes: the second handles the stale-lock case where the first
    // observed a leftover file from a killed coordinator and removed it.
    for _ in 0..2 {
        match fs::OpenOptions::new()
            .write(true)
            .create_new(true)
            .open(&path)
        {
            Ok(mut file) => {
                // Record the incarnation, not just the pid, so a future
                // coordinator can distinguish "owner still running" from
                // "pid recycled by an unrelated process".
                let pid = std::process::id();
                match proc_starttime(pid) {
                    Some(starttime) => {
                        let _ = writeln!(file, "{pid} {starttime}");
                    }
                    None => {
                        let _ = writeln!(file, "{pid}");
                    }
                }
                return Ok(RunDirLock { path });
            }
            Err(e) if e.kind() == std::io::ErrorKind::AlreadyExists => {
                if lock_owner_alive(&path) {
                    return Err(format!(
                        "campaign already running: another coordinator holds {} \
                         (pid {}); wait for it to finish or remove the lock if it is stale",
                        path.display(),
                        fs::read_to_string(&path).unwrap_or_default().trim()
                    ));
                }
                // Stale lock from a killed coordinator: remove and retry
                // the atomic create (a racing coordinator may win it).
                let _ = fs::remove_file(&path);
            }
            Err(e) => return Err(format!("cannot create lock {}: {e}", path.display())),
        }
    }
    Err(format!(
        "campaign already running: could not win {} (another coordinator claimed it)",
        path.display()
    ))
}

/// Prepares the run directory: creates it, claims it with an exclusive
/// lifetime lock (a second coordinator on the same live campaign fails
/// fast instead of racing on `campaign.json` and the partials), and
/// either validates an existing `campaign.json` manifest against this
/// campaign or writes a fresh one. A directory claimed by a *different*
/// campaign — or holding partials with no manifest at all — is rejected
/// with a clear error instead of silently clobbered.
pub(crate) fn preflight_run_dir(
    config: &McConfig,
    shards: usize,
    hosts: &[String],
    run_dir: &Path,
) -> Result<RunDirLock, String> {
    fs::create_dir_all(run_dir)
        .map_err(|e| format!("cannot create run dir {}: {e}", run_dir.display()))?;
    let lock = acquire_run_dir_lock(run_dir)?;
    let manifest_path = run_dir.join("campaign.json");
    match fs::read_to_string(&manifest_path) {
        Ok(text) => {
            let (found, found_shards) = parse_campaign_manifest(&text).map_err(|e| {
                format!(
                    "{}: {e}; remove the directory (or pick another --work-dir) to proceed",
                    manifest_path.display()
                )
            })?;
            if let Some(diff) = campaign_mismatch(config, shards, &found, found_shards) {
                return Err(format!(
                    "run dir {} belongs to a different campaign ({diff}); refusing to \
                     clobber its partials — remove the directory or pick another --work-dir",
                    run_dir.display()
                ));
            }
            Ok(lock)
        }
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
            // No manifest: a partial here was written by something we
            // cannot identify (a pre-manifest run or a foreign tool) —
            // refuse rather than mix campaigns.
            if let Some(index) = (0..shards).find(|i| partial_path(run_dir, *i).exists()) {
                return Err(format!(
                    "run dir {} holds {} but no campaign manifest; refusing to \
                     clobber — remove the directory or pick another --work-dir",
                    run_dir.display(),
                    partial_path(run_dir, index).display()
                ));
            }
            fs::write(
                &manifest_path,
                render_campaign_manifest(config, shards, hosts),
            )
            .map_err(|e| format!("cannot write {}: {e}", manifest_path.display()))?;
            Ok(lock)
        }
        Err(e) => Err(format!("cannot read {}: {e}", manifest_path.display())),
    }
}

// ---------------------------------------------------------------------------
// The event-driven scheduler
// ---------------------------------------------------------------------------

/// The shard-describing worker flags every dispatch shares: campaign
/// identity plus the shard slice, exactly as [`spawn_worker`] has always
/// passed them (model flags only for non-default models, so default
/// campaigns keep the exact pre-model argv). Excludes `--out` — the
/// local coordinator points it at the partial file while the launcher
/// streams over stdout (`--out -`).
pub(crate) fn worker_shard_args(config: &McConfig, spec: &ShardSpec) -> Vec<String> {
    let mut args = vec![
        "--samples".to_owned(),
        config.samples.to_string(),
        "--seed".to_owned(),
        config.seed.to_string(),
        "--defect-rate".to_owned(),
        // Shortest-round-trip text: the worker parses back the exact bits.
        format!("{:?}", config.defect_rate),
        "--rng-stream".to_owned(),
        config.stream.as_str().to_owned(),
    ];
    if !config.model.is_default() {
        args.push("--defect-model".to_owned());
        args.push(config.model.kind().as_str().to_owned());
        if config.model.uses_cluster() {
            args.push("--cluster-size".to_owned());
            args.push(format!("{:?}", config.model.cluster_size()));
        }
        if config.model.uses_lines() {
            args.push("--line-rate".to_owned());
            args.push(format!("{:?}", config.model.line_rate()));
        }
    }
    args.push("--circuits".to_owned());
    args.push(config.circuits.join(","));
    args.push("--shard-index".to_owned());
    args.push(spec.index.to_string());
    args.push("--num-shards".to_owned());
    args.push(spec.num_shards.to_string());
    args
}

fn spawn_worker(cfg: &CoordinatorConfig, spec: &ShardSpec, out: &Path) -> std::io::Result<Child> {
    let mut command = Command::new(&cfg.worker.binary);
    command
        .args(&cfg.worker.prefix_args)
        .args(worker_shard_args(&cfg.config, spec))
        .arg("--out")
        .arg(out)
        .args(&cfg.extra_worker_args)
        // stdout is the worker's one-line progress note — discard it; a
        // full pipe must never be able to block a child the scheduler is
        // only polling.
        .stdout(Stdio::null())
        .stderr(Stdio::piped())
        .spawn()
}

/// Reads whatever the exited child wrote to stderr and keeps the tail.
fn stderr_tail(child: &mut Child) -> String {
    let mut text = String::new();
    if let Some(stderr) = child.stderr.as_mut() {
        let _ = stderr.read_to_string(&mut text);
    }
    let lines: Vec<&str> = text.lines().collect();
    lines[lines.len().saturating_sub(3)..].join(" | ")
}

/// A shard waiting (or backing off) for a worker slot.
#[derive(Debug, Clone, Copy)]
struct QueueItem {
    spec: ShardSpec,
    /// 1-based attempt number this spawn would be.
    attempt: usize,
    /// Earliest instant the attempt may start (backoff delay).
    ready_at: Instant,
}

/// A live worker process.
struct Inflight {
    spec: ShardSpec,
    attempt: usize,
    deadline: Option<Instant>,
    child: Child,
}

struct Scheduler<'a> {
    cfg: &'a CoordinatorConfig,
    run_dir: PathBuf,
    max_inflight: usize,
    queue: VecDeque<QueueItem>,
    inflight: Vec<Inflight>,
    partials: Vec<Option<ShardPartial>>,
    report: RunReport,
    /// Indices of shards that exhausted their attempts.
    permanent: Vec<usize>,
    last_error: String,
}

impl Scheduler<'_> {
    /// Records a failed attempt: schedules a backoff retry while attempts
    /// remain, otherwise marks the shard permanently failed.
    fn note_failure(&mut self, spec: ShardSpec, attempt: usize, error: &str) {
        self.last_error = format!("shard {} (attempt {attempt}): {error}", spec.index);
        eprintln!("mc coordinate: {}", self.last_error);
        if attempt < self.cfg.max_attempts {
            self.report.retries += 1;
            let delay = backoff_delay(
                self.cfg.config.seed,
                spec.index,
                attempt,
                self.cfg.retry_base,
            );
            self.queue.push_back(QueueItem {
                spec,
                attempt: attempt + 1,
                ready_at: Instant::now() + delay,
            });
        } else {
            self.permanent.push(spec.index);
        }
    }

    /// Validates the partial a successfully exited worker left behind.
    fn collect_exited(&self, spec: &ShardSpec) -> Result<ShardPartial, String> {
        let path = partial_path(&self.run_dir, spec.index);
        let text = fs::read_to_string(&path)
            .map_err(|e| format!("cannot read partial {}: {e}", path.display()))?;
        let partial = ShardPartial::from_json(&text)?;
        partial.validate_for(&self.cfg.config, spec)?;
        Ok(partial)
    }

    /// Spawns due queue items into free worker slots; true when at least
    /// one child was spawned (or a spawn failure was recorded).
    fn fill_slots(&mut self) -> bool {
        let mut progressed = false;
        while self.inflight.len() < self.max_inflight {
            let now = Instant::now();
            let Some(pos) = self.queue.iter().position(|item| item.ready_at <= now) else {
                break;
            };
            let item = self.queue.remove(pos).expect("position is in range");
            let out = partial_path(&self.run_dir, item.spec.index);
            progressed = true;
            match spawn_worker(self.cfg, &item.spec, &out) {
                Ok(child) => {
                    self.report.spawned += 1;
                    self.inflight.push(Inflight {
                        spec: item.spec,
                        attempt: item.attempt,
                        deadline: self.cfg.shard_timeout.map(|t| now + t),
                        child,
                    });
                }
                Err(e) => {
                    self.note_failure(item.spec, item.attempt, &format!("spawn failed: {e}"));
                }
            }
        }
        self.report.max_inflight_observed =
            self.report.max_inflight_observed.max(self.inflight.len());
        progressed
    }

    /// Polls every live worker once: collects exits, kills and reaps
    /// children past their watchdog deadline. True when anything changed.
    fn reap(&mut self) -> bool {
        let mut progressed = false;
        let mut index = 0;
        while index < self.inflight.len() {
            match self.inflight[index].child.try_wait() {
                Ok(Some(status)) => {
                    let mut slot = self.inflight.swap_remove(index);
                    progressed = true;
                    if status.success() {
                        match self.collect_exited(&slot.spec) {
                            Ok(partial) => self.partials[slot.spec.index] = Some(partial),
                            Err(e) => self.note_failure(slot.spec, slot.attempt, &e),
                        }
                    } else {
                        let tail = stderr_tail(&mut slot.child);
                        self.note_failure(
                            slot.spec,
                            slot.attempt,
                            &format!("worker exited with {status}: {tail}"),
                        );
                    }
                }
                Ok(None) => {
                    let overdue = self.inflight[index]
                        .deadline
                        .is_some_and(|deadline| Instant::now() >= deadline);
                    if overdue {
                        let mut slot = self.inflight.swap_remove(index);
                        progressed = true;
                        self.report.timeouts += 1;
                        let _ = slot.child.kill();
                        let _ = slot.child.wait();
                        let timeout = self
                            .cfg
                            .shard_timeout
                            .expect("a deadline implies a configured timeout");
                        self.note_failure(
                            slot.spec,
                            slot.attempt,
                            &format!("hit the {timeout:?} watchdog deadline; worker killed"),
                        );
                    } else {
                        index += 1;
                    }
                }
                Err(e) => {
                    let mut slot = self.inflight.swap_remove(index);
                    progressed = true;
                    let _ = slot.child.kill();
                    let _ = slot.child.wait();
                    self.note_failure(slot.spec, slot.attempt, &format!("wait failed: {e}"));
                }
            }
        }
        progressed
    }

    /// Kills and reaps every still-running worker (fail-fast path; their
    /// partial files stay on disk for a later `--resume`).
    fn abort_inflight(&mut self) {
        for slot in &mut self.inflight {
            let _ = slot.child.kill();
            let _ = slot.child.wait();
        }
        self.inflight.clear();
    }
}

/// Turns the scheduler's `Option`-slotted partials into the merge input,
/// surfacing a coordinator bug as an error (exit 1 with a message at the
/// CLI) instead of an unwrap panic.
fn take_collected(partials: Vec<Option<ShardPartial>>) -> Result<Vec<ShardPartial>, String> {
    partials
        .into_iter()
        .enumerate()
        .map(|(index, partial)| {
            partial.ok_or_else(|| {
                format!(
                    "internal coordinator invariant violated: shard {index} has no partial \
                     although scheduling reported the campaign complete — please report this bug"
                )
            })
        })
        .collect()
}

/// Runs the sharded campaign and returns the merged result (see
/// [`run_coordinator_with_report`] for the full contract).
///
/// # Errors
///
/// Reports configuration problems, unwritable work directories, run
/// directories owned by a different campaign, and permanently failing
/// shards (with the last per-shard error).
pub fn run_coordinator(cfg: &CoordinatorConfig) -> Result<MergedResult, String> {
    run_coordinator_with_report(cfg).map(|(merged, _)| merged)
}

/// Runs the sharded campaign through the fault-tolerant scheduler:
/// at most `max_inflight` workers live at once, each shard retried
/// independently with deterministic backoff, hung workers killed at the
/// watchdog deadline, and (with `resume`) valid partials from a previous
/// run reused instead of recomputed. With a `shard_timeout` configured
/// the coordinator can never hang on a stuck worker; a shard that keeps
/// failing surfaces as an error after `max_attempts` attempts.
///
/// # Errors
///
/// See [`run_coordinator`].
pub fn run_coordinator_with_report(
    cfg: &CoordinatorConfig,
) -> Result<(MergedResult, RunReport), String> {
    if cfg.shards == 0 {
        return Err("need at least one shard".to_owned());
    }
    if cfg.max_attempts == 0 {
        return Err("need at least one attempt per shard".to_owned());
    }
    if cfg.max_inflight == Some(0) {
        return Err("need at least one in-flight worker slot".to_owned());
    }
    cfg.config.validate()?;
    fs::create_dir_all(&cfg.work_dir)
        .map_err(|e| format!("cannot create work dir {}: {e}", cfg.work_dir.display()))?;
    let run_dir = campaign_run_dir(&cfg.work_dir, &cfg.config, cfg.shards);
    // Held until this function returns: a second coordinator on the same
    // live campaign fails fast instead of racing on the run directory.
    let _lock = preflight_run_dir(&cfg.config, cfg.shards, &[], &run_dir)?;

    let max_inflight = cfg.max_inflight.unwrap_or_else(|| {
        std::thread::available_parallelism().map_or(4, std::num::NonZeroUsize::get)
    });
    let specs = ShardSpec::partition(cfg.config.samples, cfg.shards);
    let mut scheduler = Scheduler {
        cfg,
        run_dir: run_dir.clone(),
        max_inflight,
        queue: VecDeque::with_capacity(specs.len()),
        inflight: Vec::new(),
        partials: vec![None; specs.len()],
        report: RunReport::default(),
        permanent: Vec::new(),
        last_error: String::new(),
    };

    let start = Instant::now();
    for spec in specs {
        if spec.is_empty() {
            // Empty shards (more shards than samples) need no process:
            // their partial is the empty accumulator, synthesized here
            // instead of paying a worker spawn for zero samples.
            scheduler.partials[spec.index] = Some(ShardPartial {
                config: cfg.config.clone(),
                spec,
                circuits: cfg
                    .config
                    .circuits
                    .iter()
                    .map(|name| (name.clone(), CircuitAccum::new()))
                    .collect(),
            });
        } else {
            // With --resume, a valid checkpoint from a previous (killed
            // or partial) run is reused; only missing/corrupt shards get
            // scheduled.
            if cfg.resume {
                if let Ok(partial) = scheduler.collect_exited(&spec) {
                    scheduler.partials[spec.index] = Some(partial);
                    scheduler.report.reused += 1;
                    continue;
                }
            }
            scheduler.queue.push_back(QueueItem {
                spec,
                attempt: 1,
                ready_at: start,
            });
        }
    }

    // The event loop: fill free slots with due work, poll children, and
    // sleep briefly only when nothing moved. Terminates because every
    // shard either completes or runs out of attempts.
    while scheduler.permanent.is_empty()
        && (!scheduler.queue.is_empty() || !scheduler.inflight.is_empty())
    {
        let spawned = scheduler.fill_slots();
        let reaped = scheduler.reap();
        if !spawned && !reaped {
            std::thread::sleep(POLL_INTERVAL);
        }
    }

    if !scheduler.permanent.is_empty() {
        // Fail fast: kill the rest (their partials stay for --resume) and
        // surface the first permanent failure.
        scheduler.abort_inflight();
        scheduler.permanent.sort_unstable();
        scheduler.permanent.dedup();
        let indices: Vec<String> = scheduler
            .permanent
            .iter()
            .map(ToString::to_string)
            .collect();
        return Err(format!(
            "shard(s) {} failed permanently after {} attempt(s); last error: {}",
            indices.join(", "),
            cfg.max_attempts,
            scheduler.last_error
        ));
    }

    let report = scheduler.report;
    let collected = take_collected(scheduler.partials)?;
    let merged = merge_partials(&cfg.config, &collected)?;
    if !cfg.keep_partials {
        for index in 0..cfg.shards {
            let _ = fs::remove_file(partial_path(&run_dir, index));
        }
        let _ = fs::remove_file(run_dir.join("campaign.json"));
        // The lock guard removes its file on drop, but that runs after
        // this cleanup — remove it now so the directory removal succeeds.
        let _ = fs::remove_file(run_dir.join("coordinator.lock"));
        let _ = fs::remove_dir(&run_dir);
        let _ = fs::remove_dir(&cfg.work_dir);
    }
    Ok((merged, report))
}

/// Renders the deterministic merged-stats artifact: **only**
/// integer-derived statistics, so the document is byte-identical for any
/// shard layout of the same campaign (the CI smoke job and the
/// equivalence proptest compare these bytes directly).
#[must_use]
pub fn render_stats_json(merged: &MergedResult) -> String {
    let mut out = String::from("{\n");
    let _ = writeln!(out, "  \"schema\": \"{MERGED_SCHEMA}\",");
    let _ = writeln!(out, "  \"experiment\": \"table2\",");
    let _ = writeln!(out, "  \"seed\": {},", merged.config.seed);
    let _ = writeln!(out, "  \"defect_rate\": {:?},", merged.config.defect_rate);
    let _ = writeln!(out, "  \"samples\": {},", merged.config.samples);
    // V1 artifacts keep their pre-versioning bytes; V2 campaigns declare
    // the stream they were sampled under.
    if merged.config.stream != SampleStream::V1 {
        let _ = writeln!(out, "  \"rng_stream\": \"{}\",", merged.config.stream);
    }
    // Same freeze rule for the spatial model: default (i.i.d.) artifacts
    // keep their pre-model bytes.
    if !merged.config.model.is_default() {
        let _ = writeln!(
            out,
            "  \"defect_model\": \"{}\",",
            merged.config.model.kind().as_str()
        );
        if merged.config.model.uses_cluster() {
            let _ = writeln!(
                out,
                "  \"cluster_size\": {:?},",
                merged.config.model.cluster_size()
            );
        }
        if merged.config.model.uses_lines() {
            let _ = writeln!(
                out,
                "  \"line_rate\": {:?},",
                merged.config.model.line_rate()
            );
        }
    }
    let _ = writeln!(out, "  \"circuits\": [");
    for (idx, (name, accum)) in merged.circuits.iter().enumerate() {
        let comma = if idx + 1 < merged.circuits.len() {
            ","
        } else {
            ""
        };
        let _ = writeln!(
            out,
            "    {{\"name\": \"{}\", \"samples\": {}, \"hba_successes\": {}, \
             \"hba_success_rate\": {:?}, \"ea_successes\": {}, \"ea_success_rate\": {:?}}}{comma}",
            super::json::escape(name),
            accum.samples(),
            accum.hba.successes,
            accum.hba.rate(),
            accum.ea.successes,
            accum.ea.rate(),
        );
    }
    out.push_str("  ]\n}\n");
    out
}

/// Renders the informational runtime summary (means/standard deviations
/// from the merged Welford moments) — wall-clock data, deliberately not
/// part of the byte-compared stats artifact.
#[must_use]
pub fn render_timing_table(merged: &MergedResult) -> String {
    let mut table = Table::new(
        "Merged Monte Carlo statistics (timing is wall-clock, informational)",
        &[
            "name",
            "samples",
            "HBA succ%",
            "EA succ%",
            "HBA mean s",
            "HBA std s",
            "EA mean s",
            "EA std s",
        ],
    );
    for (name, accum) in &merged.circuits {
        table.row([
            name.clone(),
            accum.samples().to_string(),
            pct(accum.hba.rate()),
            pct(accum.ea.rate()),
            secs(accum.hba_time.mean()),
            secs(accum.hba_time.std_dev()),
            secs(accum.ea_time.mean()),
            secs(accum.ea_time.std_dev()),
        ]);
    }
    table.to_ascii()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn config() -> McConfig {
        McConfig {
            samples: 20,
            seed: 5,
            defect_rate: 0.1,
            stream: SampleStream::V1,
            model: DefectModelSpec::default(),
            circuits: vec!["rd53".to_owned()],
        }
    }

    fn clustered_model() -> DefectModelSpec {
        DefectModelSpec::new(DefectModelKind::Clustered, 3.0, 0.02).expect("valid")
    }

    fn partials_for(config: &McConfig, shards: usize) -> Vec<ShardPartial> {
        ShardSpec::partition(config.samples, shards)
            .iter()
            .map(|spec| run_shard(config, spec))
            .collect()
    }

    #[test]
    fn merged_shards_match_the_monolithic_stats_artifact() {
        let config = config();
        let mono = render_stats_json(&run_monolithic(&config));
        for shards in [1usize, 2, 3, 7] {
            let merged = merge_partials(&config, &partials_for(&config, shards)).expect("merges");
            assert_eq!(
                render_stats_json(&merged),
                mono,
                "{shards} shards must be byte-identical"
            );
        }
    }

    #[test]
    fn merge_rejects_a_missing_shard() {
        let config = config();
        let mut partials = partials_for(&config, 3);
        partials.remove(1);
        let err = merge_partials(&config, &partials).expect_err("gap must fail");
        assert!(err.contains("not tiled"), "{err}");
    }

    #[test]
    fn merge_rejects_a_duplicated_shard() {
        let config = config();
        let mut partials = partials_for(&config, 3);
        let dup = partials[0].clone();
        partials.push(dup);
        assert!(merge_partials(&config, &partials).is_err());
    }

    #[test]
    fn merge_rejects_seed_mismatch() {
        let config = config();
        let mut partials = partials_for(&config, 2);
        partials[1].config.seed ^= 1;
        let err = merge_partials(&config, &partials).expect_err("must fail");
        assert!(err.contains("seed"), "{err}");
    }

    #[test]
    fn merge_rejects_rng_stream_mismatch() {
        // A shard sampled under V2 holds statistics over different defect
        // maps; merging it into a V1 campaign would corrupt the artifact
        // silently, so the coordinator must refuse.
        let config = config();
        let mut partials = partials_for(&config, 2);
        partials[1].config.stream = SampleStream::V2;
        let err = merge_partials(&config, &partials).expect_err("must fail");
        assert!(err.contains("rng stream"), "{err}");
    }

    #[test]
    fn v2_merge_matches_v2_monolithic_and_declares_its_stream() {
        let config = McConfig {
            stream: SampleStream::V2,
            ..self::config()
        };
        let mono = render_stats_json(&run_monolithic(&config));
        assert!(mono.contains("\"rng_stream\": \"v2\""), "{mono}");
        let merged = merge_partials(&config, &partials_for(&config, 3)).expect("merges");
        assert_eq!(render_stats_json(&merged), mono);
    }

    #[test]
    fn merge_rejects_defect_model_mismatch() {
        // A shard sampled under a clustered model holds statistics over a
        // different spatial defect distribution; merging it into an i.i.d.
        // campaign would corrupt the artifact silently.
        let config = config();
        let mut partials = partials_for(&config, 2);
        partials[1].config.model = clustered_model();
        let err = merge_partials(&config, &partials).expect_err("must fail");
        assert!(err.contains("defect model"), "{err}");
    }

    #[test]
    fn modeled_merge_matches_modeled_monolithic_and_declares_its_model() {
        let config = McConfig {
            model: clustered_model(),
            ..self::config()
        };
        let mono = render_stats_json(&run_monolithic(&config));
        assert!(mono.contains("\"defect_model\": \"clustered\""), "{mono}");
        assert!(mono.contains("\"cluster_size\": 3.0"), "{mono}");
        assert!(!mono.contains("line_rate"), "clustered ignores line_rate");
        let merged = merge_partials(&config, &partials_for(&config, 3)).expect("merges");
        assert_eq!(render_stats_json(&merged), mono);
        // The default-model artifact never mentions the model at all.
        let default_json = render_stats_json(&run_monolithic(&self::config()));
        assert!(!default_json.contains("defect_model"), "{default_json}");
    }

    #[test]
    fn merge_rejects_out_of_order_circuit_entries() {
        let config = McConfig {
            circuits: vec!["rd53".to_owned(), "misex1".to_owned()],
            ..self::config()
        };
        let mut partials = partials_for(&config, 2);
        partials[0].circuits.swap(0, 1);
        let err = merge_partials(&config, &partials).expect_err("must fail");
        assert!(err.contains("out of order"), "{err}");
    }

    #[test]
    fn merge_rejects_a_missing_circuit_entry() {
        let config = McConfig {
            circuits: vec!["rd53".to_owned(), "misex1".to_owned()],
            ..self::config()
        };
        let mut partials = partials_for(&config, 2);
        partials[1].circuits.pop();
        let err = merge_partials(&config, &partials).expect_err("must fail");
        assert!(err.contains("circuit entries"), "{err}");
    }

    #[test]
    fn merge_rejects_sample_count_lies() {
        let config = config();
        let mut partials = partials_for(&config, 2);
        partials[0].circuits[0].1.hba.samples += 1;
        partials[0].circuits[0].1.ea.samples += 1;
        let err = merge_partials(&config, &partials).expect_err("must fail");
        assert!(err.contains("folded"), "{err}");
    }

    #[test]
    fn empty_shards_merge_cleanly() {
        // More shards than samples: trailing shards are empty.
        let config = McConfig {
            samples: 2,
            ..self::config()
        };
        let merged = merge_partials(&config, &partials_for(&config, 5)).expect("merges");
        assert_eq!(merged.circuits[0].1.samples(), 2);
    }

    #[test]
    fn stats_json_is_parseable_and_has_rates() {
        let merged = run_monolithic(&config());
        let json = render_stats_json(&merged);
        let doc = super::super::json::Json::parse(&json).expect("valid json");
        assert_eq!(
            doc.get("schema").and_then(|s| s.as_str()),
            Some(MERGED_SCHEMA)
        );
        let circuits = doc.get("circuits").and_then(|c| c.as_arr()).expect("arr");
        assert_eq!(circuits.len(), 1);
        assert!(circuits[0].get("hba_success_rate").is_some());
        let timing = render_timing_table(&merged);
        assert!(timing.contains("rd53"));
    }

    #[test]
    fn backoff_is_a_pure_function_of_seed_shard_and_attempt() {
        let base = Duration::from_millis(100);
        let delay = backoff_delay(7, 3, 1, base);
        assert_eq!(delay, backoff_delay(7, 3, 1, base), "deterministic");
        assert_ne!(delay, backoff_delay(7, 4, 1, base), "per-shard jitter");
        assert_ne!(delay, backoff_delay(8, 3, 1, base), "per-seed jitter");
    }

    #[test]
    fn backoff_grows_exponentially_with_bounded_jitter() {
        let base = Duration::from_millis(100);
        for attempt in 1..=6 {
            let step = base * (1 << (attempt - 1));
            for (seed, shard) in [(0u64, 0usize), (2018, 5), (u64::MAX, 31)] {
                let delay = backoff_delay(seed, shard, attempt, base);
                assert!(
                    delay >= step && delay < step * 2,
                    "attempt {attempt}: {delay:?} outside [{step:?}, {:?})",
                    step * 2
                );
            }
        }
        // The exponent is capped: huge attempt counts cannot overflow.
        assert!(backoff_delay(7, 3, 10_000, base) < base * 128);
    }

    #[test]
    fn campaign_manifest_roundtrips_and_detects_mismatches() {
        let config = config();
        let text = render_campaign_manifest(&config, 3, &[]);
        let (back, shards) = parse_campaign_manifest(&text).expect("parses");
        assert_eq!(back, config);
        assert_eq!(shards, 3);
        assert!(campaign_mismatch(&config, 3, &back, shards).is_none());

        let mut other = config.clone();
        other.defect_rate = 0.25;
        let diff = campaign_mismatch(&config, 3, &other, 3).expect("must differ");
        assert!(diff.contains("defect_rate"), "{diff}");
        let diff = campaign_mismatch(&config, 3, &config, 5).expect("must differ");
        assert!(diff.contains("shards"), "{diff}");

        let mut other = config.clone();
        other.model = clustered_model();
        let diff = campaign_mismatch(&config, 3, &other, 3).expect("must differ");
        assert!(diff.contains("defect_model"), "{diff}");
    }

    #[test]
    fn modeled_manifest_roundtrips_and_default_manifest_stays_model_free() {
        let default_text = render_campaign_manifest(&config(), 3, &[]);
        assert!(!default_text.contains("defect_model"), "{default_text}");

        let config = McConfig {
            model: DefectModelSpec::new(DefectModelKind::Composite, 2.5, 0.125).expect("valid"),
            ..self::config()
        };
        let text = render_campaign_manifest(&config, 3, &[]);
        assert!(text.contains("\"defect_model\": \"composite\""), "{text}");
        assert!(text.contains("\"cluster_size\": 2.5"), "{text}");
        assert!(text.contains("\"line_rate\": 0.125"), "{text}");
        let (back, shards) = parse_campaign_manifest(&text).expect("parses");
        assert_eq!(back, config);
        assert_eq!(shards, 3);
    }

    #[test]
    fn manifest_with_an_unknown_key_is_rejected_not_ignored() {
        // A future tool that extends campaign identity must not have its
        // manifests silently reinterpreted by this coordinator.
        let text = render_campaign_manifest(&config(), 3, &[]).replace(
            "\"rng_stream\": \"v1\",",
            "\"rng_stream\": \"v1\",\n  \"voltage_drift\": 0.3,",
        );
        let err = parse_campaign_manifest(&text).expect_err("must fail");
        assert!(err.contains("voltage_drift"), "{err}");
        assert!(err.contains("unknown key"), "{err}");
    }

    #[test]
    fn manifest_host_attribution_roundtrips_and_stays_out_of_identity() {
        // A launcher-written manifest records its fleet; the key parses
        // back cleanly (it is in CAMPAIGN_MANIFEST_KEYS) and never feeds
        // campaign_mismatch — the same campaign may resume on different
        // hosts. Coordinator-written manifests stay byte-free of it.
        let config = config();
        let hosts = vec!["alpha*2".to_owned(), "beta".to_owned()];
        let text = render_campaign_manifest(&config, 3, &hosts);
        assert!(
            text.contains("\"hosts\": [\"alpha*2\", \"beta\"]"),
            "{text}"
        );
        let (back, shards) = parse_campaign_manifest(&text).expect("hosts key tolerated");
        assert_eq!(back, config);
        assert_eq!(shards, 3);
        assert!(campaign_mismatch(&config, 3, &back, shards).is_none());
        assert!(
            !render_campaign_manifest(&config, 3, &[]).contains("hosts"),
            "hostless manifests keep their pre-launcher bytes"
        );
    }

    #[test]
    fn run_dir_name_derives_from_campaign_identity() {
        let config = config();
        let dir = campaign_run_dir(Path::new("/w"), &config, 4);
        assert_eq!(dir, PathBuf::from("/w/run-seed5-n20-k4-v1"));
        let v2 = McConfig {
            stream: SampleStream::V2,
            ..self::config()
        };
        assert_ne!(campaign_run_dir(Path::new("/w"), &v2, 4), dir);
        // Non-default models get their own directory; the default keeps
        // the exact pre-model name (CI's resume smoke hardcodes it).
        let clustered = McConfig {
            model: clustered_model(),
            ..self::config()
        };
        assert_eq!(
            campaign_run_dir(Path::new("/w"), &clustered, 4),
            PathBuf::from("/w/run-seed5-n20-k4-v1-clustered")
        );
    }

    #[test]
    fn run_dir_lock_is_exclusive_reclaims_stale_owners_and_releases_on_drop() {
        let dir = std::env::temp_dir().join(format!("xbar-lock-test-{}", std::process::id()));
        fs::create_dir_all(&dir).expect("create");
        let lock = acquire_run_dir_lock(&dir).expect("first claim wins");
        let path = dir.join("coordinator.lock");
        assert!(path.is_file());

        // A second claim while the owner (this process) is alive fails
        // fast with the contractual message.
        let err = acquire_run_dir_lock(&dir).expect_err("second claim must fail");
        assert!(err.contains("campaign already running"), "{err}");

        // A lock left by a dead process is reclaimed, not fatal. Pid 1 is
        // init (alive), so fake staleness with an impossible pid instead.
        drop(lock);
        fs::write(&path, "4294967294\n").expect("plant stale lock");
        let lock = acquire_run_dir_lock(&dir).expect("stale lock is reclaimed");
        drop(lock);
        assert!(!path.exists(), "drop releases the lock");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn lock_records_and_checks_the_owner_incarnation_not_just_the_pid() {
        let dir = std::env::temp_dir().join(format!("xbar-lock-inc-test-{}", std::process::id()));
        fs::create_dir_all(&dir).expect("create");
        let path = dir.join("coordinator.lock");

        // A fresh lock records `pid starttime` for this process, and that
        // starttime agrees with /proc.
        let own = std::process::id();
        let lock = acquire_run_dir_lock(&dir).expect("claim");
        let text = fs::read_to_string(&path).expect("read lock");
        let mut fields = text.split_whitespace();
        assert_eq!(fields.next().unwrap().parse::<u32>().ok(), Some(own));
        let recorded: u64 = fields.next().expect("starttime field").parse().unwrap();
        assert_eq!(proc_starttime(own), Some(recorded));
        drop(lock);

        // Pid 1 is init — alive forever — but a lock naming pid 1 with a
        // *wrong* starttime describes a dead incarnation whose pid was
        // recycled: it must be reclaimed, not treated as a live owner.
        fs::write(&path, format!("1 {}\n", u64::MAX)).expect("plant recycled-pid lock");
        let lock = acquire_run_dir_lock(&dir).expect("recycled pid reclaimed");
        drop(lock);

        // The same pid with its *true* starttime is a live owner.
        if let Some(start) = proc_starttime(1) {
            fs::write(&path, format!("1 {start}\n")).expect("plant live lock");
            let err = acquire_run_dir_lock(&dir).expect_err("live incarnation must block");
            assert!(err.contains("campaign already running"), "{err}");
            fs::remove_file(&path).expect("clear planted lock");
        }

        // Legacy pid-only locks still work: a live pid blocks, garbage is
        // stale.
        fs::write(&path, "1\n").expect("plant legacy lock");
        assert!(lock_owner_alive(&path), "legacy pid-only lock, pid alive");
        fs::write(&path, "1 not-a-number\n").expect("plant malformed lock");
        assert!(!lock_owner_alive(&path), "malformed starttime is stale");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn proc_starttime_reads_this_process_and_tolerates_absence() {
        // On Linux (the CI and dev environment) our own stat line parses.
        if Path::new("/proc/self/stat").is_file() {
            assert!(proc_starttime(std::process::id()).is_some());
        }
        // A pid that cannot exist yields None, not a panic.
        assert_eq!(proc_starttime(u32::MAX - 1), None);
    }

    #[test]
    fn missing_partial_after_scheduling_is_an_invariant_error_not_a_panic() {
        let err = take_collected(vec![None]).expect_err("must be an error");
        assert!(err.contains("invariant"), "{err}");
        assert!(err.contains("shard 0"), "{err}");
    }
}
