//! # xbar-exp
//!
//! Experiment harness reproducing every table and figure of Tunali &
//! Altun (DATE 2018). Heavy experiments live here as library functions
//! (tested); the `src/bin/*` drivers are thin wrappers that print the
//! paper's rows next to our measurements.
//!
//! | Experiment | binary |
//! |---|---|
//! | Fig. 1 (device I-V) | `fig1_iv_curve` |
//! | Fig. 2/4 (state machines) | `fig2_fig4_state_traces` |
//! | Fig. 3 (two-level example) | `fig3_twolevel_example` |
//! | Fig. 5 (multi-level example) | `fig5_multilevel_example` |
//! | Fig. 6 (area Monte Carlo) | `fig6_area_comparison` |
//! | Fig. 7 (defect mapping example) | `fig7_defect_mapping` |
//! | Fig. 8 (matching matrices) | `fig8_matching_demo` |
//! | Table I (benchmark areas) | `table1_benchmark_area` |
//! | Table II (HBA vs EA) | `table2_defect_tolerance` |
//! | Ext-A (yield vs redundancy) | `ext_yield_redundancy` |
//! | Ext-B (multi-level defects) | `ext_multilevel_defects` |
//! | Ext-C (HBA ablations) | `ext_ablation_hba` |
//! | Ext-D (analog validation) | `ext_analog_validation` |
//! | Sharded MC worker (one sample slice) | `mc_shard` |
//! | Sharded MC coordinator (spawn/retry/merge) | `mc_coordinator` |

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod cli;
pub mod experiments;
mod mc;
pub mod shard;
mod table;

pub use cli::ExpArgs;
pub use mc::{
    mean, monte_carlo, monte_carlo_range, monte_carlo_range_with, monte_carlo_with, sample_seed,
};
pub use shard::{McConfig, ShardSpec};
pub use table::{pct, secs, Table};
