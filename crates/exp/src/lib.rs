//! # xbar-exp
//!
//! Experiment harness reproducing every table and figure of Tunali &
//! Altun (DATE 2018), unified behind the typed [`experiment::Experiment`]
//! API and the single `xbar` binary:
//!
//! * `xbar list` / `xbar describe <exp>` — the registry;
//! * `xbar run <exp> [--samples N --seed N --defect-rate F --quick
//!   --json --out DIR]` — any experiment, with a canonical
//!   machine-readable artifact;
//! * `xbar mc shard|coordinate` — fault-tolerant process-sharded Monte
//!   Carlo (watchdog timeouts, bounded concurrency, backoff retry,
//!   checkpoint/resume — see [`shard::coordinator`]);
//! * `xbar mc launch` — multi-host dispatch over the same engine: a
//!   pluggable transport (local subprocesses or an `ssh`-style command
//!   template), per-host health tracking with quarantine, hedged
//!   re-dispatch of stragglers, and a two-level merge tree — see
//!   [`launch`];
//! * `xbar serve` / `xbar submit` — the yield-oracle service: a queued,
//!   batching, cache-fronted daemon over the sharded engine, speaking
//!   newline-delimited JSON (`xbar-svc/1`) on a TCP socket — see
//!   [`service`].
//!
//! | Experiment | `xbar run …` |
//! |---|---|
//! | Table I (benchmark areas) | `table1` |
//! | Table II (HBA vs EA) | `table2` |
//! | Fig. 1 (device I-V) | `fig1` |
//! | Fig. 2/4 (state machines) | `fig2_fig4` |
//! | Fig. 3 (two-level example) | `fig3` |
//! | Fig. 5 (multi-level example) | `fig5` |
//! | Fig. 6 (area Monte Carlo) | `fig6` |
//! | Fig. 7 (defect mapping example) | `fig7` |
//! | Fig. 8 (matching matrices) | `fig8` |
//! | Ext-A (yield vs redundancy) | `ext_yield_redundancy` |
//! | Ext-B (multi-level defects) | `ext_multilevel_defects` |
//! | Ext-C (HBA ablations) | `ext_ablation_hba` |
//! | Ext-D (analog validation) | `ext_analog_validation` |
//! | Ext-E (column redundancy) | `ext_column_redundancy` |
//! | Ext-F (defect-map extraction) | `ext_defect_scan` |
//! | Yield estimation building block | `estimate_yield` |
//!
//! The 17 pre-redesign binaries still build as deprecation shims that
//! delegate into the registry with their old flags.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod atomic;
mod cli;
pub mod experiment;
pub mod experiments;
pub mod launch;
mod mc;
pub mod service;
pub mod shard;
mod table;

pub use cli::{legacy_mc_shim, legacy_shim, run_cli, ExpArgs};
pub use experiment::{
    find_experiment, registry, Artifact, ExpError, Experiment, ParamKind, ParamSpec, Params,
    Reporter,
};
pub use mc::{
    mean, monte_carlo, monte_carlo_range, monte_carlo_range_with, monte_carlo_with, sample_seed,
};
pub use shard::{McConfig, ShardSpec};
pub use table::{pct, secs, Table};
