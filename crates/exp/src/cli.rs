//! Minimal flag parsing shared by all experiment binaries (no external
//! dependency).
//!
//! Supported flags: `--samples N`, `--seed N`, `--defect-rate F`,
//! `--csv PATH`, `--quick` (divides samples by 10 for smoke runs), and
//! `--help`.

use std::path::PathBuf;

/// Common experiment parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct ExpArgs {
    /// Monte Carlo sample count (paper default: 200).
    pub samples: usize,
    /// Experiment seed.
    pub seed: u64,
    /// Per-crosspoint defect probability (paper default: 0.10).
    pub defect_rate: f64,
    /// Optional CSV output path.
    pub csv: Option<PathBuf>,
}

impl Default for ExpArgs {
    fn default() -> Self {
        Self {
            samples: 200,
            seed: 2018,
            defect_rate: 0.10,
            csv: None,
        }
    }
}

impl ExpArgs {
    /// Parses `std::env::args`, exiting with usage text on `--help` or a
    /// malformed flag.
    #[must_use]
    pub fn parse(description: &str) -> Self {
        Self::parse_from(description, std::env::args().skip(1))
    }

    /// Parses an explicit iterator (testable).
    ///
    /// # Panics
    ///
    /// Panics on malformed flags (binaries surface this as a process
    /// abort with a readable message, which is acceptable for an
    /// experiment driver).
    #[must_use]
    pub fn parse_from(description: &str, args: impl Iterator<Item = String>) -> Self {
        let mut out = Self::default();
        let mut it = args.peekable();
        while let Some(flag) = it.next() {
            match flag.as_str() {
                "--samples" => {
                    out.samples = it
                        .next()
                        .and_then(|v| v.parse().ok())
                        .unwrap_or_else(|| panic!("--samples needs a number"));
                }
                "--seed" => {
                    out.seed = it
                        .next()
                        .and_then(|v| v.parse().ok())
                        .unwrap_or_else(|| panic!("--seed needs a number"));
                }
                "--defect-rate" => {
                    out.defect_rate = it
                        .next()
                        .and_then(|v| v.parse().ok())
                        .unwrap_or_else(|| panic!("--defect-rate needs a float"));
                }
                "--csv" => {
                    out.csv = Some(PathBuf::from(
                        it.next().unwrap_or_else(|| panic!("--csv needs a path")),
                    ));
                }
                "--quick" => {
                    out.samples = (out.samples / 10).max(10);
                }
                "--help" | "-h" => {
                    println!(
                        "{description}\n\nflags:\n  --samples N       Monte Carlo samples (default 200)\n  --seed N          experiment seed (default 2018)\n  --defect-rate F   defect probability (default 0.10)\n  --csv PATH        also write CSV output\n  --quick           1/10th of the samples (smoke run)"
                    );
                    std::process::exit(0);
                }
                other => panic!("unknown flag {other:?}; try --help"),
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(words: &[&str]) -> ExpArgs {
        ExpArgs::parse_from("test", words.iter().map(|s| (*s).to_owned()))
    }

    #[test]
    fn defaults_match_the_paper() {
        let args = parse(&[]);
        assert_eq!(args.samples, 200);
        assert!((args.defect_rate - 0.10).abs() < 1e-12);
    }

    #[test]
    fn flags_override() {
        let args = parse(&["--samples", "50", "--seed", "9", "--defect-rate", "0.2"]);
        assert_eq!(args.samples, 50);
        assert_eq!(args.seed, 9);
        assert!((args.defect_rate - 0.2).abs() < 1e-12);
    }

    #[test]
    fn quick_divides_samples() {
        let args = parse(&["--quick"]);
        assert_eq!(args.samples, 20);
    }

    #[test]
    #[should_panic(expected = "unknown flag")]
    fn unknown_flag_panics() {
        let _ = parse(&["--frobnicate"]);
    }
}
