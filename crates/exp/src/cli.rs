//! The `xbar` command-line driver: one binary, every experiment.
//!
//! * `xbar list` — all registered experiments;
//! * `xbar describe <exp>` — description plus auto-generated flag help;
//! * `xbar run <exp> [flags]` — run through the typed [`Experiment`] API,
//!   with `--json` printing the canonical artifact and `--out DIR`
//!   writing it to disk;
//! * `xbar mc shard|coordinate` — the sharded Monte Carlo entry points;
//! * `xbar serve` / `xbar submit` — the yield-oracle daemon and its
//!   client (see [`crate::service`]).
//!
//! All parsing is `Result`-based: usage problems print the relevant help
//! to stderr and exit with code **2**, runtime failures exit with **1** —
//! never a panic/backtrace. The 17 pre-redesign binaries survive as
//! shims over [`legacy_shim`] / [`legacy_mc_shim`].

use crate::experiment::{find_experiment, registry, ExpError, Params, Reporter};
use crate::shard;
use std::path::PathBuf;

/// Common experiment parameters (the pre-registry surface, kept as the
/// bridge type experiment library code receives via
/// [`Params::exp_args`]).
#[derive(Debug, Clone, PartialEq)]
pub struct ExpArgs {
    /// Monte Carlo sample count (paper default: 200).
    pub samples: usize,
    /// Experiment seed.
    pub seed: u64,
    /// Per-crosspoint defect probability (paper default: 0.10).
    pub defect_rate: f64,
    /// Defect sampling stream version (`--rng-stream`, default V1).
    pub stream: xbar_core::SampleStream,
    /// Spatial defect model (`--defect-model` family, default i.i.d.).
    pub model: xbar_core::DefectModelSpec,
    /// Optional CSV output path.
    pub csv: Option<PathBuf>,
}

impl Default for ExpArgs {
    fn default() -> Self {
        Self {
            samples: 200,
            seed: 2018,
            defect_rate: 0.10,
            stream: xbar_core::SampleStream::V1,
            model: xbar_core::DefectModelSpec::default(),
            csv: None,
        }
    }
}

impl ExpArgs {
    /// Parses the common flag set from an explicit iterator.
    ///
    /// # Errors
    ///
    /// Returns a [`crate::experiment::UsageError`] on unknown flags or
    /// malformed values — the panicking `parse_from` of the pre-registry
    /// CLI is gone.
    pub fn try_parse_from(
        args: impl IntoIterator<Item = String>,
    ) -> Result<Self, crate::experiment::UsageError> {
        Params::parse(&[], args).map(|p| p.exp_args())
    }
}

const TOP_USAGE: &str = "xbar — unified driver for every experiment in the \
Tunali & Altun (DATE 2018) reproduction

usage:
  xbar list                      list registered experiments
  xbar describe <experiment>     one experiment's description and flags
  xbar run <experiment> [flags]  run an experiment
  xbar mc shard [flags]          run one shard of a sharded MC campaign
  xbar mc coordinate [flags]     coordinate worker processes and merge
  xbar mc launch [flags]         dispatch shards across a fleet of hosts
  xbar serve [flags]             queued, cache-fronted experiment daemon
  xbar submit <experiment> [...] submit to a running daemon

common run flags (see `xbar describe <experiment>` for per-experiment ones):
  --samples N --seed N --defect-rate F --quick --json --out DIR --csv PATH

exit codes: 0 success, 1 runtime failure, 2 usage error";

/// Runs the `xbar` CLI on an argument stream (program name already
/// stripped); returns the process exit code.
pub fn run_cli(args: impl IntoIterator<Item = String>) -> i32 {
    let mut args = args.into_iter();
    let Some(command) = args.next() else {
        eprintln!("{TOP_USAGE}");
        return 2;
    };
    match command.as_str() {
        "list" => {
            list_experiments();
            0
        }
        "describe" => match args.next() {
            Some(name) => describe_experiment(&name),
            None => {
                eprintln!("xbar describe: which experiment? (see `xbar list`)");
                2
            }
        },
        "run" => match args.next() {
            Some(name) => run_experiment(&name, args.collect()),
            None => {
                eprintln!("xbar run: which experiment? (see `xbar list`)");
                2
            }
        },
        "mc" => match args.next().as_deref() {
            Some("shard") => shard::cli::shard_main(args.collect()),
            Some("coordinate") => shard::cli::coordinate_main(args.collect()),
            Some("launch") => crate::launch::cli::launch_main(args.collect()),
            Some(other) => {
                eprintln!("xbar mc: unknown subcommand {other:?} (shard | coordinate | launch)");
                2
            }
            None => {
                eprintln!("xbar mc: which subcommand? (shard | coordinate | launch)");
                2
            }
        },
        "serve" => crate::service::serve_main(args.collect()),
        "submit" => crate::service::submit_main(args.collect()),
        "--help" | "-h" | "help" => {
            println!("{TOP_USAGE}");
            0
        }
        other => {
            eprintln!("xbar: unknown command {other:?}\n\n{TOP_USAGE}");
            2
        }
    }
}

fn list_experiments() {
    let width = registry().iter().map(|e| e.name().len()).max().unwrap_or(0);
    for exp in registry() {
        println!("{:<width$}  {}", exp.name(), exp.description());
    }
}

fn describe_experiment(name: &str) -> i32 {
    match find_experiment(name) {
        Some(exp) => {
            println!(
                "{}",
                Params::usage(exp.name(), exp.description(), exp.extra_params())
            );
            0
        }
        None => {
            eprintln!("xbar: unknown experiment {name:?} (see `xbar list`)");
            2
        }
    }
}

fn run_experiment(name: &str, rest: Vec<String>) -> i32 {
    let Some(exp) = find_experiment(name) else {
        eprintln!("xbar: unknown experiment {name:?} (see `xbar list`)");
        return 2;
    };
    if rest.iter().any(|a| a == "--help" || a == "-h") {
        println!(
            "{}",
            Params::usage(exp.name(), exp.description(), exp.extra_params())
        );
        return 0;
    }
    let params = match Params::parse(exp.extra_params(), rest) {
        Ok(p) => p,
        Err(e) => {
            eprintln!(
                "xbar run {name}: {e}\n\n{}",
                Params::usage(exp.name(), exp.description(), exp.extra_params())
            );
            return 2;
        }
    };
    let mut reporter = if params.json {
        Reporter::quiet()
    } else {
        Reporter::stdout()
    };
    match exp.run(&params, &mut reporter) {
        Ok(artifact) => {
            let document = artifact.render(exp, &params);
            if params.json {
                print!("{document}");
            }
            if let Some(dir) = &params.out {
                if let Err(e) = std::fs::create_dir_all(dir) {
                    eprintln!("xbar: cannot create {}: {e}", dir.display());
                    return 1;
                }
                let path = dir.join(format!("{name}.json"));
                // Atomic so a crash mid-write never leaves a torn artifact
                // where a previous good one stood.
                if let Err(e) = crate::atomic::write_atomic(&path, document.as_bytes()) {
                    eprintln!("xbar: cannot write {}: {e}", path.display());
                    return 1;
                }
                if !params.json {
                    println!("wrote artifact to {}", path.display());
                }
            }
            0
        }
        Err(ExpError::Usage(msg)) => {
            eprintln!(
                "xbar run {name}: {msg}\n\n{}",
                Params::usage(exp.name(), exp.description(), exp.extra_params())
            );
            2
        }
        Err(ExpError::Failed(msg)) => {
            eprintln!("xbar run {name}: {msg}");
            1
        }
    }
}

/// Entry point for the pre-redesign experiment binaries: prints a
/// deprecation note to stderr, then delegates to `xbar run <experiment>`
/// with the process's own flags (they are a subset of the experiment's
/// flags, so old invocations keep working unchanged).
pub fn legacy_shim(old_name: &str, experiment: &str) -> ! {
    eprintln!(
        "note: `{old_name}` is deprecated; use `xbar run {experiment}` \
         (same flags, plus --json/--out)."
    );
    let mut args = vec!["run".to_owned(), experiment.to_owned()];
    args.extend(std::env::args().skip(1));
    std::process::exit(run_cli(args));
}

/// Entry point for the pre-redesign `mc_shard` / `mc_coordinator`
/// binaries: deprecation note, then `xbar mc <subcommand>` with the same
/// flags.
pub fn legacy_mc_shim(old_name: &str, subcommand: &str) -> ! {
    eprintln!("note: `{old_name}` is deprecated; use `xbar mc {subcommand}` (same flags).");
    let mut args = vec!["mc".to_owned(), subcommand.to_owned()];
    args.extend(std::env::args().skip(1));
    std::process::exit(run_cli(args));
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(words: &[&str]) -> Result<ExpArgs, crate::experiment::UsageError> {
        ExpArgs::try_parse_from(words.iter().map(|s| (*s).to_owned()))
    }

    #[test]
    fn defaults_match_the_paper() {
        let args = parse(&[]).expect("defaults parse");
        assert_eq!(args.samples, 200);
        assert!((args.defect_rate - 0.10).abs() < 1e-12);
    }

    #[test]
    fn flags_override() {
        let args =
            parse(&["--samples", "50", "--seed", "9", "--defect-rate", "0.2"]).expect("parses");
        assert_eq!(args.samples, 50);
        assert_eq!(args.seed, 9);
        assert!((args.defect_rate - 0.2).abs() < 1e-12);
    }

    #[test]
    fn quick_divides_samples() {
        assert_eq!(parse(&["--quick"]).expect("parses").samples, 20);
    }

    #[test]
    fn unknown_flag_is_an_error_not_a_panic() {
        let err = parse(&["--frobnicate"]).expect_err("must fail");
        assert!(err.0.contains("unknown flag"), "{err}");
        let err = parse(&["--samples"]).expect_err("must fail");
        assert!(err.0.contains("needs a value"), "{err}");
        let err = parse(&["--samples", "many"]).expect_err("must fail");
        assert!(err.0.contains("expected a number"), "{err}");
    }
}
