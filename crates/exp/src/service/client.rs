//! The `xbar submit` client for a running `xbar serve` daemon.
//!
//! One invocation sends one `xbar-svc/1` request and renders the reply.
//! For a waited submit, progress events go to stderr and the artifact —
//! exactly the bytes `xbar run <exp> --json` would print — goes to
//! stdout (or, with `--out`, is written atomically to a file), so the
//! client composes with pipes and `cmp` the same way `xbar run` does.

use crate::atomic::write_atomic;
use crate::service::protocol::{Request, PROTOCOL};
use crate::shard::json::Json;
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::path::PathBuf;

/// What one `xbar submit` invocation asks the daemon to do.
#[derive(Debug, Clone, PartialEq, Eq)]
enum Mode {
    Submit {
        experiment: String,
        args: Vec<String>,
    },
    Status(u64),
    ResultOf(u64),
    Cancel(u64),
    Stats,
    Shutdown,
}

#[derive(Debug)]
struct SubmitArgs {
    connect: String,
    wait: bool,
    out: Option<PathBuf>,
    mode: Mode,
}

fn submit_usage() -> String {
    "xbar submit: client for a running `xbar serve` daemon\n\n\
     usage:\n  \
     xbar submit <experiment> [experiment flags...] [--wait] [--out FILE]\n  \
     xbar submit --status JOB | --result JOB | --cancel JOB | --stats | --shutdown\n\n\
     The experiment name comes first; every flag the client does not\n\
     recognize is forwarded verbatim to the daemon, exactly as `xbar run`\n\
     would take it. Output-routing flags (--json/--out/--csv) stay on the\n\
     client side.\n\nclient flags:\n  \
     --connect ADDR   daemon address (default 127.0.0.1:7878)\n  \
     --wait           stream progress (stderr) and print the finished\n                   \
     artifact to stdout, byte-identical to `xbar run --json`\n  \
     --out FILE       with --wait: write the artifact atomically to FILE\n                   \
     instead of stdout\n  \
     --status JOB     report a job's state\n  \
     --result JOB     print a finished job's artifact to stdout\n  \
     --cancel JOB     cancel a queued job\n  \
     --stats          print the daemon's counters (one JSON line)\n  \
     --shutdown       drain and stop the daemon"
        .to_owned()
}

fn parse_submit_args(argv: Vec<String>) -> Result<Option<SubmitArgs>, String> {
    let mut connect = "127.0.0.1:7878".to_owned();
    let mut wait = false;
    let mut out = None;
    let mut mode: Option<Mode> = None;
    let mut experiment: Option<String> = None;
    let mut forwarded: Vec<String> = Vec::new();
    let mut it = argv.into_iter();
    let value = |flag: &str, it: &mut dyn Iterator<Item = String>| {
        it.next().ok_or_else(|| format!("{flag} needs a value"))
    };
    let job = |flag: &str, text: String| -> Result<u64, String> {
        text.parse()
            .map_err(|_| format!("{flag}: expected a job id, got {text:?}"))
    };
    let mut set_mode = |m: Mode| -> Result<(), String> {
        match &mode {
            None => {
                mode = Some(m);
                Ok(())
            }
            Some(prior) => Err(format!("conflicting modes: {prior:?} and {m:?}")),
        }
    };
    while let Some(token) = it.next() {
        match token.as_str() {
            "--connect" => connect = value(&token, &mut it)?,
            "--wait" => wait = true,
            "--out" => out = Some(PathBuf::from(value(&token, &mut it)?)),
            "--status" => set_mode(Mode::Status(job(&token, value(&token, &mut it)?)?))?,
            "--result" => set_mode(Mode::ResultOf(job(&token, value(&token, &mut it)?)?))?,
            "--cancel" => set_mode(Mode::Cancel(job(&token, value(&token, &mut it)?)?))?,
            "--stats" => set_mode(Mode::Stats)?,
            "--shutdown" => set_mode(Mode::Shutdown)?,
            "--help" | "-h" => return Ok(None),
            _ if experiment.is_none() && !token.starts_with('-') => experiment = Some(token),
            _ if experiment.is_some() => forwarded.push(token),
            other => {
                return Err(format!(
                    "the experiment name must come before its flags (got {other:?} first); \
                     try --help"
                ))
            }
        }
    }
    let mode = match (mode, experiment) {
        (Some(mode), None) => {
            if !forwarded.is_empty() {
                return Err(format!("{:?} does not take experiment flags", mode));
            }
            mode
        }
        (Some(mode), Some(exp)) => {
            return Err(format!("conflicting modes: {mode:?} and submit {exp:?}"))
        }
        (None, Some(experiment)) => Mode::Submit {
            experiment,
            args: forwarded,
        },
        (None, None) => return Err("need an experiment name (or a query flag); try --help".into()),
    };
    Ok(Some(SubmitArgs {
        connect,
        wait,
        out,
        mode,
    }))
}

/// One parsed response line (keeps the raw line for verbatim reprinting).
struct Reply {
    kind: String,
    doc: Json,
    line: String,
}

fn read_reply(lines: &mut impl Iterator<Item = std::io::Result<String>>) -> Result<Reply, String> {
    let line = lines
        .next()
        .ok_or("connection closed by the daemon")?
        .map_err(|e| format!("cannot read from the daemon: {e}"))?;
    let doc = Json::parse(&line).map_err(|e| format!("unparseable response {line:?}: {e}"))?;
    match doc.get("svc").and_then(Json::as_str) {
        Some(PROTOCOL) => {}
        _ => return Err(format!("not an {PROTOCOL} response: {line}")),
    }
    let kind = doc
        .get("type")
        .and_then(Json::as_str)
        .ok_or_else(|| format!("response without a type: {line}"))?
        .to_owned();
    if kind == "error" {
        let message = doc
            .get("message")
            .and_then(Json::as_str)
            .unwrap_or("unspecified error");
        return Err(message.to_owned());
    }
    Ok(Reply { kind, doc, line })
}

/// Routes a finished artifact: atomically to `--out`, else raw to stdout.
fn deliver_artifact(reply: &Reply, out: Option<&PathBuf>) -> Result<(), String> {
    let artifact = reply
        .doc
        .get("artifact")
        .and_then(Json::as_str)
        .ok_or("result response carries no artifact")?;
    match out {
        Some(path) => {
            write_atomic(path, artifact.as_bytes())
                .map_err(|e| format!("cannot write {}: {e}", path.display()))?;
            eprintln!("xbar submit: wrote {}", path.display());
        }
        None => {
            print!("{artifact}");
            let _ = std::io::stdout().flush();
        }
    }
    Ok(())
}

/// The stderr completion note. Keeps the coordinator counters visible so
/// scripts (and the resume smoke test) can see *how* the job ran — e.g.
/// that a resubmit after a daemon crash actually reused checkpoints.
fn describe_result(reply: &Reply) -> String {
    let cache = reply
        .doc
        .get("cache")
        .and_then(Json::as_str)
        .unwrap_or("unknown");
    let counter = |name: &str| reply.doc.get(name).and_then(Json::as_u64);
    match (counter("spawned"), counter("reused")) {
        (Some(spawned), Some(reused)) => format!(
            "cache {cache}; spawned {spawned}, reused {reused}, retries {}, timeouts {}",
            counter("retries").unwrap_or(0),
            counter("timeouts").unwrap_or(0)
        ),
        _ => format!("cache {cache}"),
    }
}

fn run_submit(args: &SubmitArgs) -> Result<(), String> {
    let stream = TcpStream::connect(&args.connect)
        .map_err(|e| format!("cannot connect to {}: {e}", args.connect))?;
    let mut writer = stream
        .try_clone()
        .map_err(|e| format!("cannot split the connection: {e}"))?;
    let mut lines = BufReader::new(stream).lines();
    let send = |writer: &mut TcpStream, request: &Request| -> Result<(), String> {
        writeln!(writer, "{}", request.render())
            .and_then(|()| writer.flush())
            .map_err(|e| format!("cannot send to the daemon: {e}"))
    };

    match &args.mode {
        Mode::Submit {
            experiment,
            args: exp_args,
        } => {
            send(
                &mut writer,
                &Request::Submit {
                    experiment: experiment.clone(),
                    args: exp_args.clone(),
                    wait: args.wait,
                },
            )?;
            let submitted = read_reply(&mut lines)?;
            let job = submitted.doc.get("job").and_then(Json::as_u64);
            let cache = submitted
                .doc
                .get("cache")
                .and_then(Json::as_str)
                .unwrap_or("unknown");
            eprintln!(
                "xbar submit: job {} (cache {cache})",
                job.map_or_else(|| "?".to_owned(), |j| j.to_string())
            );
            if !args.wait {
                return Ok(());
            }
            loop {
                let reply = read_reply(&mut lines)?;
                match reply.kind.as_str() {
                    "progress" => {
                        let field =
                            |name: &str| reply.doc.get(name).and_then(Json::as_u64).unwrap_or(0);
                        eprintln!(
                            "xbar submit: job {} {} ({}/{} shards, {:.1}s)",
                            field("job"),
                            reply.doc.get("state").and_then(Json::as_str).unwrap_or("?"),
                            field("shards_done"),
                            field("shards"),
                            field("elapsed_ms") as f64 / 1000.0
                        );
                    }
                    "result" => {
                        deliver_artifact(&reply, args.out.as_ref())?;
                        eprintln!("xbar submit: result ({})", describe_result(&reply));
                        return Ok(());
                    }
                    other => return Err(format!("unexpected {other:?} response while waiting")),
                }
            }
        }
        Mode::ResultOf(id) => {
            send(&mut writer, &Request::ResultOf { job: *id })?;
            let reply = read_reply(&mut lines)?;
            deliver_artifact(&reply, args.out.as_ref())?;
            eprintln!("xbar submit: result ({})", describe_result(&reply));
            Ok(())
        }
        Mode::Status(id) => {
            send(&mut writer, &Request::Status { job: *id })?;
            print_reply_line(&read_reply(&mut lines)?)
        }
        Mode::Cancel(id) => {
            send(&mut writer, &Request::Cancel { job: *id })?;
            let _ = read_reply(&mut lines)?;
            eprintln!("xbar submit: cancelled job {id}");
            Ok(())
        }
        Mode::Stats => {
            send(&mut writer, &Request::Stats)?;
            print_reply_line(&read_reply(&mut lines)?)
        }
        Mode::Shutdown => {
            send(&mut writer, &Request::Shutdown)?;
            let _ = read_reply(&mut lines)?;
            eprintln!("xbar submit: daemon is draining");
            Ok(())
        }
    }
}

/// Reprints a reply verbatim (one compact JSON line) on stdout, so
/// `--stats` / `--status` compose with grep and jq-alikes.
fn print_reply_line(reply: &Reply) -> Result<(), String> {
    println!("{}", reply.line);
    Ok(())
}

/// `xbar submit`: parses flags, performs one request against the daemon,
/// and returns the process exit code (0 ok, 1 runtime/daemon error,
/// 2 usage).
#[must_use]
pub fn submit_main(argv: Vec<String>) -> i32 {
    let args = match parse_submit_args(argv) {
        Ok(Some(args)) => args,
        Ok(None) => {
            println!("{}", submit_usage());
            return 0;
        }
        Err(e) => {
            eprintln!("xbar submit: {e}\n\n{}", submit_usage());
            return 2;
        }
    };
    match run_submit(&args) {
        Ok(()) => 0,
        Err(e) => {
            eprintln!("xbar submit: {e}");
            1
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(words: &[&str]) -> Result<Option<SubmitArgs>, String> {
        parse_submit_args(words.iter().map(|s| (*s).to_owned()).collect())
    }

    #[test]
    fn experiment_flags_forward_verbatim_and_client_flags_do_not() {
        let args = parse(&[
            "table2",
            "--quick",
            "--seed",
            "9",
            "--connect",
            "127.0.0.1:9999",
            "--wait",
            "--circuits",
            "rd53",
            "--out",
            "/tmp/a.json",
        ])
        .expect("parses")
        .expect("not help");
        assert_eq!(args.connect, "127.0.0.1:9999");
        assert!(args.wait);
        assert_eq!(args.out, Some(PathBuf::from("/tmp/a.json")));
        let Mode::Submit {
            experiment,
            args: forwarded,
        } = args.mode
        else {
            panic!("submit mode");
        };
        assert_eq!(experiment, "table2");
        assert_eq!(
            forwarded,
            ["--quick", "--seed", "9", "--circuits", "rd53"],
            "client flags consumed, experiment flags untouched"
        );
    }

    #[test]
    fn query_modes_parse_and_conflicts_are_usage_errors() {
        assert_eq!(
            parse(&["--stats"]).expect("ok").expect("args").mode,
            Mode::Stats
        );
        assert_eq!(
            parse(&["--status", "7"]).expect("ok").expect("args").mode,
            Mode::Status(7)
        );
        assert_eq!(
            parse(&["--result", "7"]).expect("ok").expect("args").mode,
            Mode::ResultOf(7)
        );
        assert_eq!(
            parse(&["--cancel", "0"]).expect("ok").expect("args").mode,
            Mode::Cancel(0)
        );
        assert!(parse(&["--help"]).expect("ok").is_none());
        for words in [
            &[][..],
            &["--stats", "--shutdown"][..],
            &["--stats", "table2"][..],
            &["--status", "soon"][..],
            &["--quick", "table2"][..],
            &["--connect"][..],
        ] {
            assert!(parse(words).is_err(), "{words:?} must fail");
        }
    }

    #[test]
    fn connecting_to_a_dead_daemon_is_a_runtime_error() {
        // Port 1 on localhost is essentially never listening; the client
        // must fail cleanly (CI uses this as its readiness probe).
        let code = submit_main(
            ["--stats", "--connect", "127.0.0.1:1"]
                .iter()
                .map(|s| (*s).to_owned())
                .collect(),
        );
        assert_eq!(code, 1);
    }
}
