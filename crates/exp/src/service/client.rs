//! The `xbar submit` client for a running `xbar serve` daemon.
//!
//! One invocation sends one `xbar-svc/1` request and renders the reply.
//! For a waited submit, progress events go to stderr and the artifact —
//! exactly the bytes `xbar run <exp> --json` would print — goes to
//! stdout (or, with `--out`, is written atomically to a file), so the
//! client composes with pipes and `cmp` the same way `xbar run` does.

use crate::atomic::write_atomic;
use crate::service::protocol::{Request, PROTOCOL};
use crate::shard::json::Json;
use std::io::{BufRead, BufReader, Lines, Write};
use std::net::TcpStream;
use std::path::PathBuf;
use std::time::Duration;

/// How many consecutive failed reconnect attempts a waited submit
/// tolerates before giving up. The counter resets every time the daemon
/// answers, so a long job behind a brief daemon bounce still completes;
/// 40 × 250 ms bounds a *continuous* outage at ~10 s.
const RECONNECT_ATTEMPTS: u32 = 40;
/// Pause between reconnect attempts.
const RECONNECT_DELAY: Duration = Duration::from_millis(250);
/// How many times a vanished job (daemon restarted with fresh queue
/// state) is resubmitted before the client gives up. Checkpoints in a
/// shared `--work-dir` make each resubmit a resume, not a restart.
const MAX_RESUBMITS: u32 = 3;

/// What one `xbar submit` invocation asks the daemon to do.
#[derive(Debug, Clone, PartialEq, Eq)]
enum Mode {
    Submit {
        experiment: String,
        args: Vec<String>,
    },
    Status(u64),
    ResultOf(u64),
    Cancel(u64),
    Stats,
    Shutdown,
}

#[derive(Debug)]
struct SubmitArgs {
    connect: String,
    wait: bool,
    out: Option<PathBuf>,
    mode: Mode,
}

fn submit_usage() -> String {
    "xbar submit: client for a running `xbar serve` daemon\n\n\
     usage:\n  \
     xbar submit <experiment> [experiment flags...] [--wait] [--out FILE]\n  \
     xbar submit --status JOB | --result JOB | --cancel JOB | --stats | --shutdown\n\n\
     The experiment name comes first; every flag the client does not\n\
     recognize is forwarded verbatim to the daemon, exactly as `xbar run`\n\
     would take it. Output-routing flags (--json/--out/--csv) stay on the\n\
     client side.\n\nclient flags:\n  \
     --connect ADDR   daemon address (default 127.0.0.1:7878)\n  \
     --wait           stream progress (stderr) and print the finished\n                   \
     artifact to stdout, byte-identical to `xbar run --json`\n  \
     --out FILE       with --wait: write the artifact atomically to FILE\n                   \
     instead of stdout\n  \
     --status JOB     report a job's state\n  \
     --result JOB     print a finished job's artifact to stdout\n  \
     --cancel JOB     cancel a queued job\n  \
     --stats          print the daemon's counters (one JSON line)\n  \
     --shutdown       drain and stop the daemon"
        .to_owned()
}

fn parse_submit_args(argv: Vec<String>) -> Result<Option<SubmitArgs>, String> {
    let mut connect = "127.0.0.1:7878".to_owned();
    let mut wait = false;
    let mut out = None;
    let mut mode: Option<Mode> = None;
    let mut experiment: Option<String> = None;
    let mut forwarded: Vec<String> = Vec::new();
    let mut it = argv.into_iter();
    let value = |flag: &str, it: &mut dyn Iterator<Item = String>| {
        it.next().ok_or_else(|| format!("{flag} needs a value"))
    };
    let job = |flag: &str, text: String| -> Result<u64, String> {
        text.parse()
            .map_err(|_| format!("{flag}: expected a job id, got {text:?}"))
    };
    let mut set_mode = |m: Mode| -> Result<(), String> {
        match &mode {
            None => {
                mode = Some(m);
                Ok(())
            }
            Some(prior) => Err(format!("conflicting modes: {prior:?} and {m:?}")),
        }
    };
    while let Some(token) = it.next() {
        match token.as_str() {
            "--connect" => connect = value(&token, &mut it)?,
            "--wait" => wait = true,
            "--out" => out = Some(PathBuf::from(value(&token, &mut it)?)),
            "--status" => set_mode(Mode::Status(job(&token, value(&token, &mut it)?)?))?,
            "--result" => set_mode(Mode::ResultOf(job(&token, value(&token, &mut it)?)?))?,
            "--cancel" => set_mode(Mode::Cancel(job(&token, value(&token, &mut it)?)?))?,
            "--stats" => set_mode(Mode::Stats)?,
            "--shutdown" => set_mode(Mode::Shutdown)?,
            "--help" | "-h" => return Ok(None),
            _ if experiment.is_none() && !token.starts_with('-') => experiment = Some(token),
            _ if experiment.is_some() => forwarded.push(token),
            other => {
                return Err(format!(
                    "the experiment name must come before its flags (got {other:?} first); \
                     try --help"
                ))
            }
        }
    }
    let mode = match (mode, experiment) {
        (Some(mode), None) => {
            if !forwarded.is_empty() {
                return Err(format!("{:?} does not take experiment flags", mode));
            }
            mode
        }
        (Some(mode), Some(exp)) => {
            return Err(format!("conflicting modes: {mode:?} and submit {exp:?}"))
        }
        (None, Some(experiment)) => Mode::Submit {
            experiment,
            args: forwarded,
        },
        (None, None) => return Err("need an experiment name (or a query flag); try --help".into()),
    };
    Ok(Some(SubmitArgs {
        connect,
        wait,
        out,
        mode,
    }))
}

/// One parsed response line (keeps the raw line for verbatim reprinting).
struct Reply {
    kind: String,
    doc: Json,
    line: String,
}

/// Why a reply could not be produced. The split matters for `--wait`
/// hardening: an [`ReadError::Io`] failure means the *connection* died
/// (the daemon may be bouncing — reconnect and keep following the job),
/// while a [`ReadError::Daemon`] error is the daemon answering clearly —
/// retrying the same request would loop forever on the same answer.
enum ReadError {
    /// The connection broke (closed, reset, unparseable stream).
    Io(String),
    /// The daemon replied with an `error` line.
    Daemon(String),
}

fn read_reply_raw(
    lines: &mut impl Iterator<Item = std::io::Result<String>>,
) -> Result<Reply, ReadError> {
    let line = lines
        .next()
        .ok_or_else(|| ReadError::Io("connection closed by the daemon".to_owned()))?
        .map_err(|e| ReadError::Io(format!("cannot read from the daemon: {e}")))?;
    let doc = Json::parse(&line)
        .map_err(|e| ReadError::Io(format!("unparseable response {line:?}: {e}")))?;
    match doc.get("svc").and_then(Json::as_str) {
        Some(PROTOCOL) => {}
        _ => return Err(ReadError::Io(format!("not an {PROTOCOL} response: {line}"))),
    }
    let kind = doc
        .get("type")
        .and_then(Json::as_str)
        .ok_or_else(|| ReadError::Io(format!("response without a type: {line}")))?
        .to_owned();
    if kind == "error" {
        let message = doc
            .get("message")
            .and_then(Json::as_str)
            .unwrap_or("unspecified error");
        return Err(ReadError::Daemon(message.to_owned()));
    }
    Ok(Reply { kind, doc, line })
}

fn read_reply(lines: &mut impl Iterator<Item = std::io::Result<String>>) -> Result<Reply, String> {
    read_reply_raw(lines).map_err(|e| match e {
        ReadError::Io(m) | ReadError::Daemon(m) => m,
    })
}

/// Routes a finished artifact: atomically to `--out`, else raw to stdout.
fn deliver_artifact(reply: &Reply, out: Option<&PathBuf>) -> Result<(), String> {
    let artifact = reply
        .doc
        .get("artifact")
        .and_then(Json::as_str)
        .ok_or("result response carries no artifact")?;
    match out {
        Some(path) => {
            write_atomic(path, artifact.as_bytes())
                .map_err(|e| format!("cannot write {}: {e}", path.display()))?;
            eprintln!("xbar submit: wrote {}", path.display());
        }
        None => {
            print!("{artifact}");
            let _ = std::io::stdout().flush();
        }
    }
    Ok(())
}

/// The stderr completion note. Keeps the coordinator counters visible so
/// scripts (and the resume smoke test) can see *how* the job ran — e.g.
/// that a resubmit after a daemon crash actually reused checkpoints.
fn describe_result(reply: &Reply) -> String {
    let cache = reply
        .doc
        .get("cache")
        .and_then(Json::as_str)
        .unwrap_or("unknown");
    let counter = |name: &str| reply.doc.get(name).and_then(Json::as_u64);
    let mut text = match (counter("spawned"), counter("reused")) {
        (Some(spawned), Some(reused)) => format!(
            "cache {cache}; spawned {spawned}, reused {reused}, retries {}, timeouts {}",
            counter("retries").unwrap_or(0),
            counter("timeouts").unwrap_or(0)
        ),
        _ => format!("cache {cache}"),
    };
    // Per-host dispatch attribution, when the job ran through the
    // multi-host launcher.
    if let Some(hosts) = reply.doc.get("hosts").and_then(Json::as_arr) {
        let parts: Vec<String> = hosts
            .iter()
            .filter_map(|h| {
                let name = h.get("host").and_then(Json::as_str)?;
                let dispatched = h.get("dispatched").and_then(Json::as_u64).unwrap_or(0);
                Some(format!("{name}:{dispatched}"))
            })
            .collect();
        if !parts.is_empty() {
            text.push_str("; hosts ");
            text.push_str(&parts.join(" "));
        }
    }
    text
}

/// Opens a connection to the daemon, returning the write half and a line
/// iterator over the read half.
fn connect(addr: &str) -> Result<(TcpStream, Lines<BufReader<TcpStream>>), String> {
    let stream = TcpStream::connect(addr).map_err(|e| format!("cannot connect to {addr}: {e}"))?;
    let writer = stream
        .try_clone()
        .map_err(|e| format!("cannot split the connection: {e}"))?;
    Ok((writer, BufReader::new(stream).lines()))
}

fn send_request(writer: &mut TcpStream, request: &Request) -> Result<(), String> {
    writeln!(writer, "{}", request.render())
        .and_then(|()| writer.flush())
        .map_err(|e| format!("cannot send to the daemon: {e}"))
}

/// Prints one progress/status line for a waited job to stderr.
fn print_progress(job: u64, reply: &Reply) {
    let field = |name: &str| reply.doc.get(name).and_then(Json::as_u64).unwrap_or(0);
    eprintln!(
        "xbar submit: job {job} {} ({}/{} shards, {:.1}s)",
        reply.doc.get("state").and_then(Json::as_str).unwrap_or("?"),
        field("shards_done"),
        field("shards"),
        field("elapsed_ms") as f64 / 1000.0
    );
}

fn run_submit(args: &SubmitArgs) -> Result<(), String> {
    let (mut writer, mut lines) = connect(&args.connect)?;
    let send = send_request;

    match &args.mode {
        Mode::Submit {
            experiment,
            args: exp_args,
        } => {
            send(
                &mut writer,
                &Request::Submit {
                    experiment: experiment.clone(),
                    args: exp_args.clone(),
                    wait: args.wait,
                },
            )?;
            let submitted = read_reply(&mut lines)?;
            let job = submitted.doc.get("job").and_then(Json::as_u64);
            let cache = submitted
                .doc
                .get("cache")
                .and_then(Json::as_str)
                .unwrap_or("unknown");
            eprintln!(
                "xbar submit: job {} (cache {cache})",
                job.map_or_else(|| "?".to_owned(), |j| j.to_string())
            );
            if !args.wait {
                return Ok(());
            }
            loop {
                match read_reply_raw(&mut lines) {
                    Ok(reply) => match reply.kind.as_str() {
                        "progress" => {
                            print_progress(
                                reply.doc.get("job").and_then(Json::as_u64).unwrap_or(0),
                                &reply,
                            );
                        }
                        "result" => {
                            deliver_artifact(&reply, args.out.as_ref())?;
                            eprintln!("xbar submit: result ({})", describe_result(&reply));
                            return Ok(());
                        }
                        other => {
                            return Err(format!("unexpected {other:?} response while waiting"))
                        }
                    },
                    // A daemon error is an answer; retrying would get the
                    // same one.
                    Err(ReadError::Daemon(e)) => return Err(e),
                    // A broken connection is not: the job keeps running
                    // (or resumes from checkpoints after a daemon bounce),
                    // so reconnect and keep following it.
                    Err(ReadError::Io(io)) => {
                        let Some(id) = job else { return Err(io) };
                        eprintln!(
                            "xbar submit: lost the daemon ({io}); reconnecting to follow job {id}"
                        );
                        return resume_wait(args, experiment, exp_args, id);
                    }
                }
            }
        }
        Mode::ResultOf(id) => {
            send(&mut writer, &Request::ResultOf { job: *id })?;
            let reply = read_reply(&mut lines)?;
            deliver_artifact(&reply, args.out.as_ref())?;
            eprintln!("xbar submit: result ({})", describe_result(&reply));
            Ok(())
        }
        Mode::Status(id) => {
            send(&mut writer, &Request::Status { job: *id })?;
            print_reply_line(&read_reply(&mut lines)?)
        }
        Mode::Cancel(id) => {
            send(&mut writer, &Request::Cancel { job: *id })?;
            let _ = read_reply(&mut lines)?;
            eprintln!("xbar submit: cancelled job {id}");
            Ok(())
        }
        Mode::Stats => {
            send(&mut writer, &Request::Stats)?;
            print_reply_line(&read_reply(&mut lines)?)
        }
        Mode::Shutdown => {
            send(&mut writer, &Request::Shutdown)?;
            let _ = read_reply(&mut lines)?;
            eprintln!("xbar submit: daemon is draining");
            Ok(())
        }
    }
}

/// Follows a job across daemon outages: reconnect (bounded consecutive
/// attempts), poll `status`, fetch the artifact with `result` once done.
/// If the daemon comes back with fresh queue state ("no such job" — it
/// was restarted, not just unreachable), the original submit is resent
/// up to [`MAX_RESUBMITS`] times; shard checkpoints in a shared work dir
/// turn each resubmit into a resume. The delivered bytes are the same
/// cached artifact an uninterrupted `--wait` would have printed.
fn resume_wait(
    args: &SubmitArgs,
    experiment: &str,
    exp_args: &[String],
    mut job: u64,
) -> Result<(), String> {
    let mut failures: u32 = 0;
    let mut resubmits: u32 = 0;
    let mut polls: u32 = 0;
    loop {
        failures += 1;
        if failures > RECONNECT_ATTEMPTS {
            return Err(format!(
                "gave up on job {job} after {RECONNECT_ATTEMPTS} consecutive failed \
                 reconnect attempts"
            ));
        }
        std::thread::sleep(RECONNECT_DELAY);
        let Ok((mut writer, mut lines)) = connect(&args.connect) else {
            continue;
        };
        if send_request(&mut writer, &Request::Status { job }).is_err() {
            continue;
        }
        match read_reply_raw(&mut lines) {
            Err(ReadError::Io(_)) => continue,
            Err(ReadError::Daemon(e)) if e.contains("no such job") => {
                // The daemon restarted with a fresh queue. Resubmit the
                // original request; a shared work dir resumes from the
                // dead job's checkpoints, and a cached artifact is an
                // instant hit either way.
                resubmits += 1;
                if resubmits > MAX_RESUBMITS {
                    return Err(format!(
                        "job {job} vanished and {MAX_RESUBMITS} resubmit(s) did not settle"
                    ));
                }
                let request = Request::Submit {
                    experiment: experiment.to_owned(),
                    args: exp_args.to_vec(),
                    wait: false,
                };
                if send_request(&mut writer, &request).is_err() {
                    continue;
                }
                match read_reply_raw(&mut lines) {
                    Ok(reply) => {
                        if let Some(new_id) = reply.doc.get("job").and_then(Json::as_u64) {
                            eprintln!(
                                "xbar submit: daemon lost job {job}; resubmitted as job {new_id}"
                            );
                            job = new_id;
                            failures = 0;
                        }
                    }
                    Err(ReadError::Daemon(e)) => return Err(e),
                    Err(ReadError::Io(_)) => {}
                }
            }
            Err(ReadError::Daemon(e)) => return Err(e),
            Ok(status) => {
                // The daemon answered: whatever happens next, this was
                // not a failed attempt.
                failures = 0;
                match status.doc.get("state").and_then(Json::as_str) {
                    Some("done") => {
                        if send_request(&mut writer, &Request::ResultOf { job }).is_err() {
                            continue;
                        }
                        match read_reply_raw(&mut lines) {
                            Ok(result) => {
                                deliver_artifact(&result, args.out.as_ref())?;
                                eprintln!("xbar submit: result ({})", describe_result(&result));
                                return Ok(());
                            }
                            Err(ReadError::Daemon(e)) => return Err(e),
                            Err(ReadError::Io(_)) => continue,
                        }
                    }
                    Some(state @ ("failed" | "cancelled")) => {
                        return Err(format!(
                            "job {job} {state}: {}",
                            status
                                .doc
                                .get("error")
                                .and_then(Json::as_str)
                                .unwrap_or("no details")
                        ));
                    }
                    _ => {
                        // Throttle to roughly the daemon's own progress
                        // cadence instead of one line per 250 ms poll.
                        if polls % 4 == 0 {
                            print_progress(job, &status);
                        }
                        polls = polls.wrapping_add(1);
                    }
                }
            }
        }
    }
}

/// Reprints a reply verbatim (one compact JSON line) on stdout, so
/// `--stats` / `--status` compose with grep and jq-alikes.
fn print_reply_line(reply: &Reply) -> Result<(), String> {
    println!("{}", reply.line);
    Ok(())
}

/// `xbar submit`: parses flags, performs one request against the daemon,
/// and returns the process exit code (0 ok, 1 runtime/daemon error,
/// 2 usage).
#[must_use]
pub fn submit_main(argv: Vec<String>) -> i32 {
    let args = match parse_submit_args(argv) {
        Ok(Some(args)) => args,
        Ok(None) => {
            println!("{}", submit_usage());
            return 0;
        }
        Err(e) => {
            eprintln!("xbar submit: {e}\n\n{}", submit_usage());
            return 2;
        }
    };
    match run_submit(&args) {
        Ok(()) => 0,
        Err(e) => {
            eprintln!("xbar submit: {e}");
            1
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(words: &[&str]) -> Result<Option<SubmitArgs>, String> {
        parse_submit_args(words.iter().map(|s| (*s).to_owned()).collect())
    }

    #[test]
    fn experiment_flags_forward_verbatim_and_client_flags_do_not() {
        let args = parse(&[
            "table2",
            "--quick",
            "--seed",
            "9",
            "--connect",
            "127.0.0.1:9999",
            "--wait",
            "--circuits",
            "rd53",
            "--out",
            "/tmp/a.json",
        ])
        .expect("parses")
        .expect("not help");
        assert_eq!(args.connect, "127.0.0.1:9999");
        assert!(args.wait);
        assert_eq!(args.out, Some(PathBuf::from("/tmp/a.json")));
        let Mode::Submit {
            experiment,
            args: forwarded,
        } = args.mode
        else {
            panic!("submit mode");
        };
        assert_eq!(experiment, "table2");
        assert_eq!(
            forwarded,
            ["--quick", "--seed", "9", "--circuits", "rd53"],
            "client flags consumed, experiment flags untouched"
        );
    }

    #[test]
    fn query_modes_parse_and_conflicts_are_usage_errors() {
        assert_eq!(
            parse(&["--stats"]).expect("ok").expect("args").mode,
            Mode::Stats
        );
        assert_eq!(
            parse(&["--status", "7"]).expect("ok").expect("args").mode,
            Mode::Status(7)
        );
        assert_eq!(
            parse(&["--result", "7"]).expect("ok").expect("args").mode,
            Mode::ResultOf(7)
        );
        assert_eq!(
            parse(&["--cancel", "0"]).expect("ok").expect("args").mode,
            Mode::Cancel(0)
        );
        assert!(parse(&["--help"]).expect("ok").is_none());
        for words in [
            &[][..],
            &["--stats", "--shutdown"][..],
            &["--stats", "table2"][..],
            &["--status", "soon"][..],
            &["--quick", "table2"][..],
            &["--connect"][..],
        ] {
            assert!(parse(words).is_err(), "{words:?} must fail");
        }
    }

    #[test]
    fn connecting_to_a_dead_daemon_is_a_runtime_error() {
        // Port 1 on localhost is essentially never listening; the client
        // must fail cleanly (CI uses this as its readiness probe).
        let code = submit_main(
            ["--stats", "--connect", "127.0.0.1:1"]
                .iter()
                .map(|s| (*s).to_owned())
                .collect(),
        );
        assert_eq!(code, 1);
    }
}
