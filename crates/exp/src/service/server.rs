//! The `xbar serve` daemon: accept loop, worker pool, and job execution.
//!
//! Architecture: one nonblocking accept thread spawns a thread per
//! connection (requests are line-oriented and short-lived; a waiting
//! `submit` ties its connection up only with sleeps, not CPU), and a
//! fixed pool of `--max-inflight` worker threads pulls jobs from the
//! shared [`JobQueue`] — the pool size *is* the concurrency bound.
//!
//! Execution reuses the existing machinery end to end. `table2` (the
//! flagship Monte Carlo workload) runs through the sharded
//! [`coordinator`](crate::shard::coordinator) with a per-job run
//! directory under `<work-dir>/jobs/<cache-key>/` — the same
//! `coordinator.lock`, watchdog, retry, and resume semantics as
//! `xbar mc coordinate` — and the artifact is rebuilt from the merged
//! accumulators via [`table2_artifact_data`], byte-identical to a
//! monolithic `xbar run` because the merge is integer-exact. Every other
//! experiment (and everything when `--in-process-jobs` is set) runs
//! in-process through [`Experiment::run`], which is the `xbar run` code
//! path itself. Either way the rendered artifact lands in the
//! [`ArtifactCache`] before the job is reported done.
//!
//! Failure semantics: a daemon killed mid-job (SIGKILL, SIGTERM, power)
//! leaves shard checkpoints and a reclaimable `coordinator.lock` in the
//! job's run directory; restarting the daemon on the same `--work-dir`
//! and resubmitting resumes from those checkpoints. A client that
//! disconnects mid-wait detaches from the job, which keeps running and
//! caches its artifact — resubmitting later is a cache hit.

use crate::experiment::{find_experiment, Experiment, Params, Reporter};
use crate::experiments::table2::{resolve_circuit_subset, table2_artifact_from_accums};
use crate::launch::{
    parse_hosts, run_launch_with_report, FaultPlan, Faulty, HostCount, HostSpec, LaunchConfig,
    LocalProc, Transport,
};
use crate::service::cache::{cache_key, ArtifactCache, CacheKey};
use crate::service::protocol::{error_line, response, Request};
use crate::service::queue::{JobQueue, JobSnapshot, JobSpec, JobState};
use crate::shard::coordinator::{
    campaign_run_dir, default_worker, run_coordinator_with_report, CoordinatorConfig, RunReport,
    Worker, DEFAULT_RETRY_BASE,
};
use crate::shard::json::JsonValue;
use crate::shard::McConfig;
use std::fs;
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// How often the accept loop polls for the shutdown flag. This is also
/// the worst-case latency before a new connection is accepted — a cache
/// hit's whole response time is dominated by it — so it is kept small;
/// 200 idle wakeups/s cost nothing measurable.
const ACCEPT_POLL: Duration = Duration::from_millis(5);
/// How often a waiting connection polls its job.
const WAIT_POLL: Duration = Duration::from_millis(100);
/// Progress event cadence, in wait-poll ticks (~every 500 ms).
const PROGRESS_EVERY: u32 = 5;

/// `xbar serve` configuration.
#[derive(Debug, Clone)]
pub struct ServeOptions {
    /// Listen address (`--listen`, default `127.0.0.1:7878`; port 0 binds
    /// an ephemeral port, reported on stdout and via
    /// [`ServiceHandle::addr`]).
    pub listen: String,
    /// Service state root (`--work-dir`): the artifact cache lives in
    /// `cache/`, per-job coordinator run dirs in `jobs/`. Reusing a work
    /// dir across restarts keeps the cache and resumes interrupted jobs.
    pub work_dir: PathBuf,
    /// Worker slots — jobs executing simultaneously (`--max-inflight`,
    /// default: available parallelism).
    pub max_inflight: usize,
    /// Shards per coordinator-backed job (`--job-shards`, default 4).
    pub job_shards: usize,
    /// Worker-process cap *within* one job's coordinator
    /// (`--job-max-inflight`, default: the coordinator's own default).
    pub job_max_inflight: Option<usize>,
    /// Per-shard watchdog deadline (`--shard-timeout`, seconds).
    pub shard_timeout: Option<Duration>,
    /// Run every job in-process through the registry instead of spawning
    /// shard workers (`--in-process-jobs`) — no worker binary needed.
    pub in_process_jobs: bool,
    /// Extra arguments forwarded to every shard worker (`--worker-arg`,
    /// repeatable; the failure-injection smoke hooks live here).
    pub worker_args: Vec<String>,
    /// Route sharded jobs through the multi-host launcher instead of the
    /// single-host coordinator (`--launcher SPEC`, same `name[*slots]`
    /// grammar as `xbar mc launch --hosts`). Nothing above the job
    /// executor changes; artifacts stay byte-identical.
    pub launcher_hosts: Option<Vec<HostSpec>>,
    /// Fault plans injected into the launcher transport
    /// (`--launcher-fault host=kind[@ordinal]`, repeatable; exists for
    /// the failure-injection smoke tests).
    pub launcher_faults: Vec<FaultPlan>,
}

impl Default for ServeOptions {
    fn default() -> Self {
        Self {
            listen: "127.0.0.1:7878".to_owned(),
            work_dir: std::env::temp_dir().join("xbar-svc"),
            max_inflight: std::thread::available_parallelism()
                .map_or(4, std::num::NonZeroUsize::get),
            job_shards: 4,
            job_max_inflight: None,
            shard_timeout: None,
            in_process_jobs: false,
            worker_args: Vec::new(),
            launcher_hosts: None,
            launcher_faults: Vec::new(),
        }
    }
}

/// Shared daemon state.
#[derive(Debug)]
struct ServiceState {
    options: ServeOptions,
    queue: JobQueue,
    cache: ArtifactCache,
    jobs_dir: PathBuf,
    started: Instant,
    shutdown: AtomicBool,
}

/// A running service: bound address plus the handles needed to wait for
/// or force its shutdown. Dropping the handle does **not** stop the
/// daemon (threads are detached from the handle's lifetime until joined).
#[derive(Debug)]
pub struct ServiceHandle {
    addr: SocketAddr,
    state: Arc<ServiceState>,
    workers: Vec<JoinHandle<()>>,
    acceptor: JoinHandle<()>,
}

impl ServiceHandle {
    /// The bound listen address (resolves `--listen 127.0.0.1:0`).
    #[must_use]
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Blocks until a `shutdown` request arrives, then drains: running
    /// jobs finish (their artifacts land in the cache), queued jobs are
    /// cancelled, worker threads and the accept loop exit.
    pub fn wait(self) {
        while !self.state.shutdown.load(Ordering::SeqCst) {
            std::thread::sleep(ACCEPT_POLL);
        }
        self.join_after_shutdown();
    }

    /// Requests shutdown (as if a `shutdown` message arrived) and drains.
    pub fn shutdown_and_wait(self) {
        self.state.shutdown.store(true, Ordering::SeqCst);
        self.state.queue.drain("service shutting down");
        self.join_after_shutdown();
    }

    fn join_after_shutdown(self) {
        for worker in self.workers {
            let _ = worker.join();
        }
        let _ = self.acceptor.join();
        // Connection threads are detached; give clients waiting on a job
        // that settled during the drain a beat to read its final line.
        std::thread::sleep(Duration::from_millis(200));
    }
}

/// Binds the listener and starts the daemon threads.
///
/// # Errors
///
/// Reports an unusable listen address or work directory.
pub fn start(options: ServeOptions) -> Result<ServiceHandle, String> {
    if options.max_inflight == 0 {
        return Err("need at least one worker slot".to_owned());
    }
    if options.job_shards == 0 {
        return Err("need at least one shard per job".to_owned());
    }
    fs::create_dir_all(&options.work_dir)
        .map_err(|e| format!("cannot create work dir {}: {e}", options.work_dir.display()))?;
    let cache = ArtifactCache::open(&options.work_dir.join("cache"))?;
    let jobs_dir = options.work_dir.join("jobs");
    fs::create_dir_all(&jobs_dir)
        .map_err(|e| format!("cannot create jobs dir {}: {e}", jobs_dir.display()))?;
    let listener = TcpListener::bind(&options.listen)
        .map_err(|e| format!("cannot bind {}: {e}", options.listen))?;
    let addr = listener
        .local_addr()
        .map_err(|e| format!("cannot read bound address: {e}"))?;
    listener
        .set_nonblocking(true)
        .map_err(|e| format!("cannot set listener nonblocking: {e}"))?;

    let state = Arc::new(ServiceState {
        options,
        queue: JobQueue::new(),
        cache,
        jobs_dir,
        started: Instant::now(),
        shutdown: AtomicBool::new(false),
    });

    let workers = (0..state.options.max_inflight)
        .map(|_| {
            let state = Arc::clone(&state);
            std::thread::spawn(move || worker_loop(&state))
        })
        .collect();
    let acceptor = {
        let state = Arc::clone(&state);
        std::thread::spawn(move || accept_loop(&state, &listener))
    };
    Ok(ServiceHandle {
        addr,
        state,
        workers,
        acceptor,
    })
}

fn accept_loop(state: &Arc<ServiceState>, listener: &TcpListener) {
    loop {
        if state.shutdown.load(Ordering::SeqCst) {
            return;
        }
        match listener.accept() {
            Ok((stream, _)) => {
                let state = Arc::clone(state);
                std::thread::spawn(move || handle_connection(&state, stream));
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(ACCEPT_POLL);
            }
            Err(e) => {
                eprintln!("xbar serve: accept error: {e}");
                std::thread::sleep(ACCEPT_POLL);
            }
        }
    }
}

fn worker_loop(state: &Arc<ServiceState>) {
    let mut last_batch: Option<String> = None;
    while let Some(spec) = state.queue.next_job(last_batch.as_deref()) {
        last_batch = Some(spec.batch.clone());
        execute_job(state, &spec);
    }
}

fn handle_connection(state: &Arc<ServiceState>, stream: TcpStream) {
    let _ = stream.set_nodelay(true);
    let Ok(read_half) = stream.try_clone() else {
        return;
    };
    let mut writer = stream;
    for line in BufReader::new(read_half).lines() {
        let Ok(line) = line else {
            return; // client disconnected mid-line
        };
        if line.trim().is_empty() {
            continue;
        }
        let reply_ok = match Request::parse(&line) {
            Err(e) => send(&mut writer, &error_line(&e)),
            Ok(request) => {
                let stop_after = matches!(request, Request::Shutdown);
                let ok = handle_request(state, &mut writer, request);
                if stop_after {
                    return;
                }
                ok
            }
        };
        if !reply_ok {
            return; // client disconnected; detach from any job
        }
    }
}

/// Writes one response line; false when the client is gone.
fn send(writer: &mut TcpStream, line: &str) -> bool {
    writeln!(writer, "{line}").is_ok() && writer.flush().is_ok()
}

fn handle_request(state: &Arc<ServiceState>, writer: &mut TcpStream, request: Request) -> bool {
    match request {
        Request::Submit {
            experiment,
            args,
            wait,
        } => handle_submit(state, writer, &experiment, args, wait),
        Request::Status { job } => {
            let line = match state.queue.snapshot(job) {
                None => error_line(&format!("no such job {job}")),
                Some(snap) => response("status", status_fields(&snap)),
            };
            send(writer, &line)
        }
        Request::ResultOf { job } => {
            let line = match state.queue.snapshot(job) {
                None => error_line(&format!("no such job {job}")),
                Some(snap) => result_or_error_line(&snap),
            };
            send(writer, &line)
        }
        Request::Cancel { job } => {
            let line = match state.queue.cancel(job) {
                Ok(()) => response("ok", vec![("job".to_owned(), JsonValue::u64(job))]),
                Err(e) => error_line(&e),
            };
            send(writer, &line)
        }
        Request::Stats => send(writer, &stats_line(state)),
        Request::Shutdown => {
            state.shutdown.store(true, Ordering::SeqCst);
            state.queue.drain("service shutting down");
            send(writer, &response("ok", Vec::new()))
        }
    }
}

fn handle_submit(
    state: &Arc<ServiceState>,
    writer: &mut TcpStream,
    experiment: &str,
    args: Vec<String>,
    wait: bool,
) -> bool {
    let Some(exp) = find_experiment(experiment) else {
        return send(
            writer,
            &error_line(&format!(
                "unknown experiment {experiment:?} (see `xbar list`)"
            )),
        );
    };
    // Output routing is the client's business: the daemon produces one
    // canonical artifact per request, cached and served as bytes.
    if let Some(flag) = args
        .iter()
        .find(|a| ["--json", "--out", "--csv"].contains(&a.as_str()))
    {
        return send(
            writer,
            &error_line(&format!(
                "{flag} is not accepted by the service: output routing is client-side \
                 (use `xbar submit --wait` / `--out`)"
            )),
        );
    }
    let params = match Params::parse(exp.extra_params(), args.iter().cloned()) {
        Ok(params) => params,
        Err(e) => return send(writer, &error_line(&format!("bad parameters: {e}"))),
    };
    let key = cache_key(exp, &params);

    if let Some(artifact) = state.cache.lookup(&key) {
        let artifact = Arc::new(artifact);
        let id = state
            .queue
            .record_cache_hit(exp.name(), Arc::clone(&artifact));
        let submitted = response(
            "submitted",
            vec![
                ("job".to_owned(), JsonValue::u64(id)),
                ("cache".to_owned(), JsonValue::str("hit")),
                ("state".to_owned(), JsonValue::str("done")),
            ],
        );
        if !send(writer, &submitted) {
            return false;
        }
        if wait {
            let snap = state.queue.snapshot(id).expect("job just recorded");
            return send(writer, &result_or_error_line(&snap));
        }
        return true;
    }

    if state.shutdown.load(Ordering::SeqCst) {
        return send(writer, &error_line("service is shutting down"));
    }
    let (id, disposition) = state.queue.submit(
        exp.name(),
        args,
        &key.name,
        &key.document,
        batch_key(exp, &params),
    );
    let submitted = response(
        "submitted",
        vec![
            ("job".to_owned(), JsonValue::u64(id)),
            ("cache".to_owned(), JsonValue::str(disposition.as_str())),
            (
                "state".to_owned(),
                JsonValue::str(
                    state
                        .queue
                        .snapshot(id)
                        .map_or("queued", |s| s.state.as_str()),
                ),
            ),
        ],
    );
    if !send(writer, &submitted) {
        return false;
    }
    if wait {
        return stream_until_settled(state, writer, id);
    }
    true
}

/// Polls a job until it settles, streaming periodic `progress` events and
/// the final `result`/`error` line. Progress counts the shard partials
/// already checkpointed in the job's coordinator run directory — the same
/// numbers [`RunReport`] summarizes at the end.
fn stream_until_settled(state: &Arc<ServiceState>, writer: &mut TcpStream, id: u64) -> bool {
    let mut tick: u32 = 0;
    loop {
        let Some(snap) = state.queue.snapshot(id) else {
            return send(writer, &error_line(&format!("job {id} vanished")));
        };
        if snap.state.is_terminal() {
            return send(writer, &result_or_error_line(&snap));
        }
        if tick % PROGRESS_EVERY == 0 {
            let (done, total) = shard_progress(&snap);
            let progress = response(
                "progress",
                vec![
                    ("job".to_owned(), JsonValue::u64(id)),
                    ("state".to_owned(), JsonValue::str(snap.state.as_str())),
                    ("shards_done".to_owned(), JsonValue::usize(done)),
                    ("shards".to_owned(), JsonValue::usize(total)),
                    ("elapsed_ms".to_owned(), JsonValue::u64(snap.elapsed_ms)),
                ],
            );
            if !send(writer, &progress) {
                return false; // client gone; the job keeps running
            }
        }
        tick = tick.wrapping_add(1);
        std::thread::sleep(WAIT_POLL);
    }
}

/// Counts checkpointed shard partials for a running coordinator job.
fn shard_progress(snap: &JobSnapshot) -> (usize, usize) {
    let Some(run_dir) = &snap.run_dir else {
        return (0, snap.shards);
    };
    let done = fs::read_dir(run_dir).map_or(0, |entries| {
        entries
            .filter_map(Result::ok)
            .filter(|e| {
                let name = e.file_name();
                let name = name.to_string_lossy();
                name.starts_with("partial-") && name.ends_with(".json")
            })
            .count()
    });
    (done, snap.shards)
}

/// The final line for a settled job: `result` with the artifact (plus the
/// coordinator counters when it ran sharded), or `error`.
fn result_or_error_line(snap: &JobSnapshot) -> String {
    match snap.state {
        JobState::Done => {
            let artifact = snap.artifact.as_deref().map_or("", String::as_str);
            let mut fields = vec![
                ("job".to_owned(), JsonValue::u64(snap.id)),
                ("cache".to_owned(), JsonValue::str(snap.cache.as_str())),
            ];
            if let Some(report) = &snap.report {
                fields.extend(report_fields(report));
            }
            if !snap.hosts.is_empty() {
                fields.push(("hosts".to_owned(), hosts_field(&snap.hosts)));
            }
            fields.push(("artifact".to_owned(), JsonValue::str(artifact)));
            response("result", fields)
        }
        JobState::Failed | JobState::Cancelled => error_line(&format!(
            "job {} {}: {}",
            snap.id,
            snap.state.as_str(),
            snap.error.as_deref().unwrap_or("no details")
        )),
        JobState::Queued | JobState::Running => error_line(&format!(
            "job {} is still {} (use status, or submit with wait)",
            snap.id,
            snap.state.as_str()
        )),
    }
}

fn status_fields(snap: &JobSnapshot) -> Vec<(String, JsonValue)> {
    let (done, total) = shard_progress(snap);
    let mut fields = vec![
        ("job".to_owned(), JsonValue::u64(snap.id)),
        (
            "experiment".to_owned(),
            JsonValue::str(snap.experiment.clone()),
        ),
        ("state".to_owned(), JsonValue::str(snap.state.as_str())),
        ("cache".to_owned(), JsonValue::str(snap.cache.as_str())),
        ("shards_done".to_owned(), JsonValue::usize(done)),
        ("shards".to_owned(), JsonValue::usize(total)),
        ("elapsed_ms".to_owned(), JsonValue::u64(snap.elapsed_ms)),
    ];
    if let Some(report) = &snap.report {
        fields.extend(report_fields(report));
    }
    if !snap.hosts.is_empty() {
        fields.push(("hosts".to_owned(), hosts_field(&snap.hosts)));
    }
    if let Some(error) = &snap.error {
        fields.push(("error".to_owned(), JsonValue::str(error.clone())));
    }
    fields
}

fn report_fields(report: &RunReport) -> Vec<(String, JsonValue)> {
    vec![
        ("spawned".to_owned(), JsonValue::usize(report.spawned)),
        ("reused".to_owned(), JsonValue::usize(report.reused)),
        ("retries".to_owned(), JsonValue::usize(report.retries)),
        ("timeouts".to_owned(), JsonValue::usize(report.timeouts)),
    ]
}

/// Per-host dispatch attribution (from the launcher's [`HostCount`]s) as
/// a JSON array field on `result` and `status` responses.
fn hosts_field(hosts: &[HostCount]) -> JsonValue {
    JsonValue::arr(hosts.iter().map(|h| {
        JsonValue::obj([
            ("host", JsonValue::str(h.name.clone())),
            ("dispatched", JsonValue::usize(h.dispatched)),
            ("completed", JsonValue::usize(h.completed)),
            ("failed", JsonValue::usize(h.failed)),
            ("quarantines", JsonValue::usize(h.quarantines)),
        ])
    }))
}

fn stats_line(state: &Arc<ServiceState>) -> String {
    let stats = state.queue.stats();
    let uptime = u64::try_from(state.started.elapsed().as_millis()).unwrap_or(u64::MAX);
    response(
        "stats",
        vec![
            ("submitted".to_owned(), JsonValue::u64(stats.submitted)),
            ("completed".to_owned(), JsonValue::u64(stats.completed)),
            ("failed".to_owned(), JsonValue::u64(stats.failed)),
            ("cancelled".to_owned(), JsonValue::u64(stats.cancelled)),
            ("cache_hits".to_owned(), JsonValue::u64(stats.cache_hits)),
            ("coalesced".to_owned(), JsonValue::u64(stats.coalesced)),
            ("running".to_owned(), JsonValue::usize(stats.running)),
            ("queued".to_owned(), JsonValue::usize(stats.queued)),
            (
                "max_running_observed".to_owned(),
                JsonValue::usize(stats.max_running_observed),
            ),
            (
                "shard_spawned".to_owned(),
                JsonValue::u64(stats.shard_spawned),
            ),
            (
                "shard_reused".to_owned(),
                JsonValue::u64(stats.shard_reused),
            ),
            (
                "shard_retries".to_owned(),
                JsonValue::u64(stats.shard_retries),
            ),
            (
                "shard_timeouts".to_owned(),
                JsonValue::u64(stats.shard_timeouts),
            ),
            (
                "worker_slots".to_owned(),
                JsonValue::usize(state.options.max_inflight),
            ),
            (
                "cache_entries".to_owned(),
                JsonValue::usize(state.cache.len()),
            ),
            ("uptime_ms".to_owned(), JsonValue::u64(uptime)),
        ],
    )
}

/// The batch-affinity key: jobs agreeing on experiment, seed, and circuit
/// selection re-minimize the same covers and prepare the same FM
/// structures, so running them back-to-back on one worker amortizes that
/// setup across requests.
fn batch_key(exp: &dyn Experiment, params: &Params) -> String {
    let circuits = params
        .opt_list("circuits")
        .map(|list| list.join(","))
        .or_else(|| params.opt_str("circuit").map(str::to_owned))
        .unwrap_or_else(|| "-".to_owned());
    format!("{}|{}|{}", exp.name(), params.seed, circuits)
}

fn execute_job(state: &Arc<ServiceState>, spec: &JobSpec) {
    match run_job(state, spec) {
        Ok((artifact, report, hosts)) => {
            state
                .queue
                .finish(spec.id, Arc::new(artifact), report, hosts);
        }
        Err(e) => state.queue.fail(spec.id, e),
    }
}

fn run_job(
    state: &Arc<ServiceState>,
    spec: &JobSpec,
) -> Result<(String, Option<RunReport>, Vec<HostCount>), String> {
    let exp = find_experiment(&spec.experiment).ok_or_else(|| {
        format!(
            "experiment {:?} vanished from the registry",
            spec.experiment
        )
    })?;
    let params = Params::parse(exp.extra_params(), spec.args.iter().cloned())
        .map_err(|e| format!("bad parameters: {e}"))?;
    let key = cache_key(exp, &params);

    // `table2` runs through the sharded coordinator (checkpoints, retry,
    // resume) unless the daemon was told to stay in-process; with
    // `--launcher` the same shards are instead dispatched over the host
    // fleet by the multi-host launcher. Every other experiment runs
    // through the registry directly — the exact `xbar run` code path, so
    // the artifact is byte-identical by construction. A missing worker
    // binary degrades to in-process too, so a daemon started from an
    // unusual location still serves.
    let sharded = !state.options.in_process_jobs && spec.experiment == "table2";
    let (artifact, report, hosts) = if sharded {
        match default_worker() {
            Ok(worker) => match &state.options.launcher_hosts {
                Some(hosts) => {
                    run_launched_table2(state, spec.id, exp, &params, &key, worker, hosts)?
                }
                None => {
                    let (artifact, report) =
                        run_coordinated_table2(state, spec.id, exp, &params, &key, worker)?;
                    (artifact, report, Vec::new())
                }
            },
            Err(e) => {
                eprintln!(
                    "xbar serve: no shard worker ({e}); running job {} in-process",
                    spec.id
                );
                (run_in_process(exp, &params)?, None, Vec::new())
            }
        }
    } else {
        (run_in_process(exp, &params)?, None, Vec::new())
    };

    // Cache before reporting done: once a client can observe "done", a
    // repeated submit must hit.
    state.cache.store(&key, &artifact)?;
    Ok((artifact, report, hosts))
}

fn run_in_process(exp: &dyn Experiment, params: &Params) -> Result<String, String> {
    let artifact = exp
        .run(params, &mut Reporter::quiet())
        .map_err(|e| match e {
            crate::experiment::ExpError::Usage(m) => format!("bad parameters: {m}"),
            crate::experiment::ExpError::Failed(m) => m,
        })?;
    Ok(artifact.render(exp, params))
}

/// Runs a `table2` job through the fault-tolerant sharded coordinator and
/// rebuilds the canonical artifact from the merged accumulators. The
/// job's run directory persists (`keep_partials`) until the artifact is
/// safely cached, so a daemon killed mid-job resumes instead of
/// restarting from sample zero.
fn table2_mc_config(params: &Params) -> Result<McConfig, String> {
    let circuits = resolve_circuit_subset(params.list("circuits")).map_err(|e| match e {
        crate::experiment::ExpError::Usage(m) | crate::experiment::ExpError::Failed(m) => m,
    })?;
    Ok(McConfig {
        samples: params.samples,
        seed: params.seed,
        defect_rate: params.defect_rate,
        stream: params.sample_stream(),
        model: params.defect_model(),
        circuits,
    })
}

fn run_coordinated_table2(
    state: &Arc<ServiceState>,
    id: u64,
    exp: &dyn Experiment,
    params: &Params,
    key: &CacheKey,
    worker: Worker,
) -> Result<(String, Option<RunReport>), String> {
    let config = table2_mc_config(params)?;
    let job_dir = state.jobs_dir.join(&key.name);
    let cfg = CoordinatorConfig {
        shards: state.options.job_shards,
        max_attempts: 3,
        worker,
        work_dir: job_dir.clone(),
        extra_worker_args: state.options.worker_args.clone(),
        keep_partials: true,
        shard_timeout: state.options.shard_timeout,
        max_inflight: state.options.job_max_inflight,
        resume: true,
        retry_base: DEFAULT_RETRY_BASE,
        config,
    };
    state.queue.set_run_dir(
        id,
        campaign_run_dir(&cfg.work_dir, &cfg.config, cfg.shards),
        cfg.shards,
    );
    let (merged, report) = run_coordinator_with_report(&cfg)?;
    let artifact = table2_artifact_from_accums(&merged.circuits, cfg.config.seed, exp, params)?;

    // The checkpoints have served their purpose once the artifact exists;
    // the caller caches it before reporting done, and the cache — not the
    // run dir — is the durable record.
    let _ = fs::remove_dir_all(&job_dir);
    Ok((artifact, Some(report)))
}

/// Runs a `table2` job through the multi-host launcher (`--launcher`):
/// the same shard partition, checkpoint format, and integer-exact merge
/// as the coordinator path, but dispatched across the configured fleet
/// with per-host health tracking and hedged stragglers. Nothing above
/// this executor changes, and the artifact stays byte-identical.
fn run_launched_table2(
    state: &Arc<ServiceState>,
    id: u64,
    exp: &dyn Experiment,
    params: &Params,
    key: &CacheKey,
    worker: Worker,
    hosts: &[HostSpec],
) -> Result<(String, Option<RunReport>, Vec<HostCount>), String> {
    let config = table2_mc_config(params)?;
    let job_dir = state.jobs_dir.join(&key.name);
    let mut cfg = LaunchConfig::new(config, state.options.job_shards, hosts.to_vec())?;
    cfg.worker = worker;
    cfg.work_dir = job_dir.clone();
    cfg.extra_worker_args = state.options.worker_args.clone();
    cfg.keep_partials = true;
    cfg.shard_timeout = state.options.shard_timeout;
    cfg.resume = true;
    state.queue.set_run_dir(
        id,
        campaign_run_dir(&cfg.work_dir, &cfg.config, cfg.shards),
        cfg.shards,
    );
    let transport: Box<dyn Transport> = if state.options.launcher_faults.is_empty() {
        Box::new(LocalProc)
    } else {
        Box::new(Faulty::new(
            LocalProc,
            state.options.launcher_faults.clone(),
        ))
    };
    let (merged, report) = run_launch_with_report(&cfg, &transport)?;
    let artifact = table2_artifact_from_accums(&merged.circuits, cfg.config.seed, exp, params)?;
    let _ = fs::remove_dir_all(&job_dir);
    Ok((artifact, Some(report.base), report.hosts))
}

fn serve_usage() -> String {
    "xbar serve: yield-oracle daemon over the sharded Monte Carlo engine\n\n\
     Speaks newline-delimited JSON (schema xbar-svc/1) on a TCP socket; use\n\
     `xbar submit` as the client. Artifacts are cached content-addressed in\n\
     the work dir, so repeated submissions are answered byte-identical\n\
     without re-running anything.\n\nflags:\n  \
     --listen ADDR        listen address (default 127.0.0.1:7878; port 0 picks\n                       \
     a free port, reported on stdout)\n  \
     --work-dir PATH      service state root: artifact cache + per-job run\n                       \
     dirs (default <temp>/xbar-svc; reuse it across\n                       \
     restarts to keep the cache and resume interrupted jobs)\n  \
     --max-inflight N     jobs executing at once (default: available\n                       \
     parallelism)\n  \
     --job-shards N       worker processes per coordinator-backed job (default 4)\n  \
     --job-max-inflight N live shard workers within one job (default: the\n                       \
     coordinator's choice)\n  \
     --shard-timeout S    per-shard watchdog seconds, fractional ok (default:\n                       \
     no watchdog)\n  \
     --in-process-jobs    run jobs in-process instead of spawning shard workers\n  \
     --worker-arg ARG     extra argument for every shard worker (repeatable;\n                       \
     used by fault-injection tests)\n  \
     --launcher SPEC      dispatch sharded jobs over a host fleet via the\n                       \
     multi-host launcher (same `name[*slots],...` grammar\n                       \
     as `xbar mc launch --hosts`); artifacts stay\n                       \
     byte-identical to the coordinator path\n  \
     --launcher-fault P   inject a transport fault `host=kind[@ordinal]`\n                       \
     (repeatable; used by the failure-injection smokes)"
        .to_owned()
}

fn parse_serve_args(argv: Vec<String>) -> Result<Option<ServeOptions>, String> {
    let mut options = ServeOptions::default();
    let mut it = argv.into_iter();
    let value = |flag: &str, it: &mut dyn Iterator<Item = String>| {
        it.next().ok_or_else(|| format!("{flag} needs a value"))
    };
    let num = |flag: &str, text: String| -> Result<usize, String> {
        text.parse()
            .map_err(|_| format!("{flag}: expected a number, got {text:?}"))
    };
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--listen" => options.listen = value(&flag, &mut it)?,
            "--work-dir" => options.work_dir = PathBuf::from(value(&flag, &mut it)?),
            "--max-inflight" => {
                options.max_inflight = num(&flag, value(&flag, &mut it)?)?;
                if options.max_inflight == 0 {
                    return Err(format!("{flag} must be at least 1"));
                }
            }
            "--job-shards" => {
                options.job_shards = num(&flag, value(&flag, &mut it)?)?;
                if options.job_shards == 0 {
                    return Err(format!("{flag} must be at least 1"));
                }
            }
            "--job-max-inflight" => {
                let n = num(&flag, value(&flag, &mut it)?)?;
                if n == 0 {
                    return Err(format!("{flag} must be at least 1"));
                }
                options.job_max_inflight = Some(n);
            }
            "--shard-timeout" => {
                let text = value(&flag, &mut it)?;
                let secs: f64 = text
                    .parse()
                    .map_err(|_| format!("{flag}: expected seconds, got {text:?}"))?;
                let timeout = Duration::try_from_secs_f64(secs)
                    .map_err(|_| format!("{flag}: {secs} is not a representable duration"))?;
                if timeout.is_zero() {
                    return Err(format!("{flag} must be positive"));
                }
                options.shard_timeout = Some(timeout);
            }
            "--in-process-jobs" => options.in_process_jobs = true,
            "--worker-arg" => options.worker_args.push(value(&flag, &mut it)?),
            "--launcher" => {
                let spec = value(&flag, &mut it)?;
                options.launcher_hosts =
                    Some(parse_hosts(&spec).map_err(|e| format!("{flag}: {e}"))?);
            }
            "--launcher-fault" => {
                let plan = value(&flag, &mut it)?;
                options
                    .launcher_faults
                    .push(FaultPlan::parse(&plan).map_err(|e| format!("{flag}: {e}"))?);
            }
            "--help" | "-h" => return Ok(None),
            other => return Err(format!("unknown flag {other:?}; try --help")),
        }
    }
    Ok(Some(options))
}

/// `xbar serve`: parses flags, starts the daemon, and blocks until a
/// `shutdown` request drains it. Returns the process exit code. The
/// first stdout line reports the bound address (`listening on HOST:PORT`)
/// so scripts driving `--listen 127.0.0.1:0` can discover the port.
#[must_use]
pub fn serve_main(argv: Vec<String>) -> i32 {
    let options = match parse_serve_args(argv) {
        Ok(Some(options)) => options,
        Ok(None) => {
            println!("{}", serve_usage());
            return 0;
        }
        Err(e) => {
            eprintln!("xbar serve: {e}\n\n{}", serve_usage());
            return 2;
        }
    };
    let work_dir = options.work_dir.clone();
    let slots = options.max_inflight;
    let handle = match start(options) {
        Ok(handle) => handle,
        Err(e) => {
            eprintln!("xbar serve: {e}");
            return 1;
        }
    };
    // Ignore stdout write errors: a supervisor that read the address off
    // the first line and closed the pipe must not take the daemon down
    // with an EPIPE panic mid-serve.
    let mut stdout = std::io::stdout();
    let _ = writeln!(stdout, "xbar serve: listening on {}", handle.addr());
    let _ = writeln!(
        stdout,
        "xbar serve: {slots} worker slot(s), state in {}",
        work_dir.display()
    );
    let _ = stdout.flush();
    handle.wait();
    let _ = writeln!(std::io::stdout(), "xbar serve: drained, exiting");
    0
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::service::protocol::PROTOCOL;
    use crate::shard::json::Json;

    #[test]
    fn serve_args_parse_and_reject_degenerate_values() {
        let argv: Vec<String> = [
            "--listen",
            "127.0.0.1:0",
            "--work-dir",
            "/tmp/svc",
            "--max-inflight",
            "2",
            "--job-shards",
            "3",
            "--job-max-inflight",
            "1",
            "--shard-timeout",
            "2.5",
            "--in-process-jobs",
            "--worker-arg",
            "--inject-slow-ms",
            "--worker-arg",
            "50",
            "--launcher",
            "alpha*2,beta",
            "--launcher-fault",
            "beta=die@1",
        ]
        .iter()
        .map(|s| (*s).to_owned())
        .collect();
        let options = parse_serve_args(argv).expect("parses").expect("not help");
        assert_eq!(options.listen, "127.0.0.1:0");
        assert_eq!(options.work_dir, PathBuf::from("/tmp/svc"));
        assert_eq!(options.max_inflight, 2);
        assert_eq!(options.job_shards, 3);
        assert_eq!(options.job_max_inflight, Some(1));
        assert_eq!(options.shard_timeout, Some(Duration::from_millis(2500)));
        assert!(options.in_process_jobs);
        assert_eq!(options.worker_args, ["--inject-slow-ms", "50"]);
        let hosts = options.launcher_hosts.expect("launcher fleet");
        assert_eq!(hosts.len(), 2);
        assert_eq!(hosts[0].name, "alpha");
        assert_eq!(hosts[0].slots, 2);
        assert_eq!(options.launcher_faults.len(), 1);
        assert_eq!(options.launcher_faults[0].host, "beta");

        assert!(parse_serve_args(vec!["--help".to_owned()])
            .expect("ok")
            .is_none());
        for words in [
            &["--max-inflight", "0"][..],
            &["--job-shards", "0"][..],
            &["--job-max-inflight", "0"][..],
            &["--shard-timeout", "0"][..],
            &["--shard-timeout", "soon"][..],
            &["--listen"][..],
            &["--launcher", ""][..],
            &["--launcher", "a*0"][..],
            &["--launcher-fault", "beta"][..],
            &["--launcher-fault", "beta=melt"][..],
            &["--frobnicate"][..],
        ] {
            let argv = words.iter().map(|s| (*s).to_owned()).collect();
            assert!(parse_serve_args(argv).is_err(), "{words:?} must fail");
        }
    }

    fn scratch(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("xbar-serve-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn request_lines(addr: SocketAddr, request: &str, expect: usize) -> Vec<String> {
        let mut stream = TcpStream::connect(addr).expect("connect");
        writeln!(stream, "{request}").expect("send");
        stream.flush().expect("flush");
        let reader = BufReader::new(stream);
        let mut lines = Vec::new();
        for line in reader.lines() {
            lines.push(line.expect("read"));
            if lines.len() == expect {
                break;
            }
        }
        lines
    }

    /// End-to-end over a real socket, in-process jobs: submit runs the
    /// experiment, a repeat submit is a cache hit with identical bytes,
    /// and stats/errors/shutdown behave.
    #[test]
    fn service_round_trip_cache_hit_and_shutdown() {
        let work_dir = scratch("roundtrip");
        let handle = start(ServeOptions {
            listen: "127.0.0.1:0".to_owned(),
            work_dir: work_dir.clone(),
            max_inflight: 1,
            in_process_jobs: true,
            ..ServeOptions::default()
        })
        .expect("starts");
        let addr = handle.addr();

        let submit = Request::Submit {
            experiment: "table2".to_owned(),
            args: ["--quick", "--circuits", "rd53"]
                .iter()
                .map(|s| (*s).to_owned())
                .collect(),
            wait: true,
        }
        .render();
        let assert_type = |line: &str, want: &str| {
            let doc = Json::parse(line).expect("parses");
            assert_eq!(doc.get("svc").and_then(Json::as_str), Some(PROTOCOL));
            assert_eq!(doc.get("type").and_then(Json::as_str), Some(want), "{line}");
        };

        // Cold: submitted (miss) ... progress* ... result.
        let mut stream = TcpStream::connect(addr).expect("connect");
        writeln!(stream, "{submit}").expect("send");
        let mut lines = BufReader::new(stream.try_clone().expect("clone")).lines();
        let submitted = lines.next().expect("line").expect("read");
        assert_type(&submitted, "submitted");
        assert!(submitted.contains("\"cache\": \"miss\""), "{submitted}");
        let cold = loop {
            let line = lines.next().expect("line").expect("read");
            let doc = Json::parse(&line).expect("parses");
            match doc.get("type").and_then(Json::as_str) {
                Some("progress") => {}
                Some("result") => break line,
                other => panic!("unexpected {other:?}: {line}"),
            }
        };
        drop(lines);
        let artifact_of = |result_line: &str| -> String {
            Json::parse(result_line)
                .expect("parses")
                .get("artifact")
                .and_then(Json::as_str)
                .expect("artifact field")
                .to_owned()
        };
        let cold_artifact = artifact_of(&cold);
        assert!(
            cold_artifact.contains("\"schema\": \"xbar-artifact/1\""),
            "served artifact is the canonical envelope"
        );

        // Warm: answered from the cache, byte-identical, no new job run.
        let warm = request_lines(addr, &submit, 2);
        assert_type(&warm[0], "submitted");
        assert!(warm[0].contains("\"cache\": \"hit\""), "{}", warm[0]);
        assert_type(&warm[1], "result");
        assert_eq!(artifact_of(&warm[1]), cold_artifact, "cache serves bytes");

        // Stats reflect exactly one execution and one hit, and the line is
        // compact enough to grep.
        let stats = request_lines(addr, &Request::Stats.render(), 1);
        assert_type(&stats[0], "stats");
        assert!(stats[0].contains("\"cache_hits\": 1"), "{}", stats[0]);
        assert!(stats[0].contains("\"completed\": 1"), "{}", stats[0]);
        assert!(stats[0].contains("\"worker_slots\": 1"), "{}", stats[0]);

        // Unknown experiment and rejected output flags are clean errors.
        let bad = Request::Submit {
            experiment: "nope".to_owned(),
            args: Vec::new(),
            wait: false,
        };
        let err = request_lines(addr, &bad.render(), 1);
        assert_type(&err[0], "error");
        assert!(err[0].contains("unknown experiment"), "{}", err[0]);
        let routed = Request::Submit {
            experiment: "table2".to_owned(),
            args: vec!["--json".to_owned()],
            wait: false,
        };
        let err = request_lines(addr, &routed.render(), 1);
        assert!(err[0].contains("output routing"), "{}", err[0]);

        let ok = request_lines(addr, &Request::Shutdown.render(), 1);
        assert_type(&ok[0], "ok");
        handle.wait();
        let _ = fs::remove_dir_all(&work_dir);
    }

    /// A cold daemon on a work dir whose cache already holds the artifact
    /// answers without running anything — the cache is durable state, not
    /// a per-process memo.
    #[test]
    fn cache_survives_a_daemon_restart() {
        let work_dir = scratch("restart");
        let exp = find_experiment("table2").expect("registered");
        let args = vec![
            "--quick".to_owned(),
            "--circuits".to_owned(),
            "squar5".to_owned(),
        ];
        let params = Params::parse(exp.extra_params(), args.iter().cloned()).expect("parses");
        let key = cache_key(exp, &params);
        let cache = ArtifactCache::open(&work_dir.join("cache")).expect("open");
        cache
            .store(&key, "prior incarnation's artifact\n")
            .expect("store");

        let handle = start(ServeOptions {
            listen: "127.0.0.1:0".to_owned(),
            work_dir: work_dir.clone(),
            max_inflight: 1,
            in_process_jobs: true,
            ..ServeOptions::default()
        })
        .expect("starts");
        let lines = request_lines(
            handle.addr(),
            &Request::Submit {
                experiment: "table2".to_owned(),
                args,
                wait: true,
            }
            .render(),
            2,
        );
        assert!(lines[0].contains("\"cache\": \"hit\""), "{}", lines[0]);
        assert!(
            lines[1].contains("prior incarnation's artifact"),
            "{}",
            lines[1]
        );
        handle.shutdown_and_wait();
        let _ = fs::remove_dir_all(&work_dir);
    }
}
