//! Content-addressed artifact cache.
//!
//! The `xbar-artifact/1` contract makes every artifact a pure function of
//! its canonical `params` echo: the echo is deterministic (declared
//! parameters in declaration order, output-routing flags excluded) and
//! the data payload carries only seed-deterministic statistics. So the
//! cache key is simply `experiment name + rendered echo`, hashed with
//! [`xbar_core::fnv1a_128`] into a filename — a hit returns the stored
//! bytes, guaranteed identical to what a fresh run would produce.
//!
//! Each entry is two files in the cache directory, both written
//! atomically ([`crate::atomic::write_atomic`]):
//!
//! * `<exp>-<hash>.json` — the full artifact document;
//! * `<exp>-<hash>.key` — the key document the hash was computed from.
//!
//! Lookups re-read the `.key` file and compare it byte-for-byte with the
//! requested key document, so even an FNV collision (or a corrupted
//! entry) degrades to a cache miss, never a wrong artifact.

use crate::atomic::write_atomic;
use crate::experiment::{Experiment, Params};
use std::fs;
use std::path::{Path, PathBuf};
use xbar_core::content_key;

/// The cache identity of one (experiment, params) request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CacheKey {
    /// Registry experiment name.
    pub experiment: String,
    /// The key document: experiment name and canonical params echo, the
    /// exact bytes the hash covers (stored beside the artifact and
    /// verified on lookup).
    pub document: String,
    /// Entry name: `<experiment>-<32 hex digits>` — filesystem- and
    /// protocol-safe.
    pub name: String,
}

/// Computes the cache key for running `exp` with `params`. The key
/// document embeds the *rendered* echo — the same bytes that will appear
/// in the artifact's `params` block — so two requests collide exactly
/// when their artifacts are guaranteed byte-identical.
#[must_use]
pub fn cache_key(exp: &dyn Experiment, params: &Params) -> CacheKey {
    let echo = params.to_json(exp.extra_params()).render();
    let document = format!("{}\n{}\n", exp.name(), echo);
    let name = format!("{}-{}", exp.name(), content_key(document.as_bytes()));
    CacheKey {
        experiment: exp.name().to_owned(),
        document,
        name,
    }
}

/// An on-disk artifact cache rooted at one directory.
#[derive(Debug, Clone)]
pub struct ArtifactCache {
    root: PathBuf,
}

impl ArtifactCache {
    /// Opens (creating if needed) a cache rooted at `root`.
    ///
    /// # Errors
    ///
    /// Reports a root that cannot be created.
    pub fn open(root: &Path) -> Result<Self, String> {
        fs::create_dir_all(root)
            .map_err(|e| format!("cannot create cache dir {}: {e}", root.display()))?;
        Ok(Self {
            root: root.to_owned(),
        })
    }

    /// The cache directory.
    #[must_use]
    pub fn root(&self) -> &Path {
        &self.root
    }

    fn artifact_path(&self, key: &CacheKey) -> PathBuf {
        self.root.join(format!("{}.json", key.name))
    }

    fn key_path(&self, key: &CacheKey) -> PathBuf {
        self.root.join(format!("{}.key", key.name))
    }

    /// Returns the cached artifact bytes for `key`, or `None` on a miss.
    /// An entry whose stored key document does not match `key` (hash
    /// collision, torn entry, foreign file) is a miss.
    #[must_use]
    pub fn lookup(&self, key: &CacheKey) -> Option<String> {
        let stored_key = fs::read_to_string(self.key_path(key)).ok()?;
        if stored_key != key.document {
            return None;
        }
        fs::read_to_string(self.artifact_path(key)).ok()
    }

    /// Stores `artifact` under `key`. Both files are written atomically;
    /// concurrent stores of the same key are idempotent (the artifact
    /// bytes are deterministic, so last-writer-wins is harmless).
    ///
    /// # Errors
    ///
    /// Propagates I/O failures (the daemon fails the job rather than
    /// serving an uncached result it could not persist).
    pub fn store(&self, key: &CacheKey, artifact: &str) -> Result<(), String> {
        // Artifact first, key second: a reader trusts an entry only once
        // the key file matches, so a crash between the two writes leaves
        // an invisible (key-less) artifact, not a bogus hit.
        write_atomic(&self.artifact_path(key), artifact.as_bytes())
            .map_err(|e| format!("cannot write cache artifact {}: {e}", key.name))?;
        write_atomic(&self.key_path(key), key.document.as_bytes())
            .map_err(|e| format!("cannot write cache key {}: {e}", key.name))?;
        Ok(())
    }

    /// Entries currently in the cache (artifact files with a key file).
    #[must_use]
    pub fn len(&self) -> usize {
        let Ok(entries) = fs::read_dir(&self.root) else {
            return 0;
        };
        entries
            .filter_map(Result::ok)
            .filter(|e| e.path().extension().is_some_and(|x| x == "json"))
            .filter(|e| e.path().with_extension("key").is_file())
            .count()
    }

    /// True when the cache holds no complete entries.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiment::find_experiment;

    fn scratch(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("xbar-cache-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn key_for(args: &[&str]) -> CacheKey {
        let exp = find_experiment("table2").expect("registered");
        let params = Params::parse(exp.extra_params(), args.iter().map(|s| (*s).to_owned()))
            .expect("parses");
        cache_key(exp, &params)
    }

    #[test]
    fn key_is_deterministic_and_distinguishes_params() {
        let a = key_for(&["--quick", "--seed", "9"]);
        let b = key_for(&["--seed", "9", "--quick"]);
        // Flag order does not matter: the echo is canonical.
        assert_eq!(a, b);
        assert!(a.name.starts_with("table2-"), "{}", a.name);
        let c = key_for(&["--quick", "--seed", "10"]);
        assert_ne!(a.name, c.name, "different campaign, different entry");
        // The key document embeds the rendered echo, so it stays
        // human-auditable on disk.
        assert!(a.document.contains("\"seed\": 9"), "{}", a.document);
    }

    #[test]
    fn store_then_lookup_roundtrips_and_misses_are_none() {
        let root = scratch("roundtrip");
        let cache = ArtifactCache::open(&root).expect("open");
        let key = key_for(&["--quick"]);
        assert!(cache.is_empty());
        assert_eq!(cache.lookup(&key), None, "cold cache misses");
        cache.store(&key, "{\"fake\": 1}\n").expect("store");
        assert_eq!(cache.lookup(&key).as_deref(), Some("{\"fake\": 1}\n"));
        assert_eq!(cache.len(), 1);
        let other = key_for(&["--quick", "--seed", "3"]);
        assert_eq!(cache.lookup(&other), None);
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn mismatched_key_document_degrades_to_a_miss() {
        let root = scratch("collide");
        let cache = ArtifactCache::open(&root).expect("open");
        let key = key_for(&["--quick"]);
        cache.store(&key, "artifact\n").expect("store");
        // Simulate a hash collision / corrupted entry: same file names,
        // different key document.
        fs::write(cache.key_path(&key), "someone-else\n").expect("corrupt");
        assert_eq!(cache.lookup(&key), None, "must not trust the artifact");
        let _ = fs::remove_dir_all(&root);
    }
}
