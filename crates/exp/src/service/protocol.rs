//! The `xbar-svc/1` wire protocol: newline-delimited JSON over TCP.
//!
//! Every message — request or response — is one JSON object on one line
//! (rendered with [`JsonValue::render_compact`], parsed with
//! [`Json::parse`]), tagged with `"svc": "xbar-svc/1"` and a `"type"`
//! discriminator. Requests flow client → daemon; the daemon answers each
//! request with one response line, except `submit` with `"wait": true`,
//! which streams zero or more `progress` lines before the final `result`
//! (or `error`) line.
//!
//! Request types: `submit`, `status`, `result`, `cancel`, `stats`,
//! `shutdown`. Response types: `submitted`, `progress`, `result`,
//! `status`, `stats`, `ok`, `error`. Unknown fields are ignored by both
//! sides, so the schema can grow compatibly within `/1`.

use crate::shard::json::{Json, JsonValue};

/// Protocol schema tag carried by every message.
pub const PROTOCOL: &str = "xbar-svc/1";

/// A client request, parsed from one wire line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Request {
    /// Run (or answer from cache) an experiment with the given CLI-style
    /// argument words; with `wait`, stream progress and the final result
    /// on this connection.
    Submit {
        /// Registry experiment name.
        experiment: String,
        /// Experiment argument words, exactly as `xbar run` would take
        /// them (`--samples 50 --seed 9 ...`). Output-routing flags
        /// (`--json`, `--out`, `--csv`) are rejected by the daemon:
        /// output routing belongs to the client.
        args: Vec<String>,
        /// Stream `progress` events and the final `result` instead of
        /// returning immediately after `submitted`.
        wait: bool,
    },
    /// Report a job's state.
    Status {
        /// Job id from a previous `submitted` response.
        job: u64,
    },
    /// Return a finished job's artifact.
    ResultOf {
        /// Job id.
        job: u64,
    },
    /// Cancel a queued (not yet running) job.
    Cancel {
        /// Job id.
        job: u64,
    },
    /// Report daemon-wide counters.
    Stats,
    /// Gracefully shut the daemon down: stop accepting work, drain
    /// running jobs (their artifacts still land in the cache), cancel
    /// queued ones.
    Shutdown,
}

impl Request {
    /// Renders the request as one wire line (no trailing newline).
    #[must_use]
    pub fn render(&self) -> String {
        let mut fields = vec![
            ("svc".to_owned(), JsonValue::str(PROTOCOL)),
            ("type".to_owned(), JsonValue::str(self.type_name())),
        ];
        match self {
            Request::Submit {
                experiment,
                args,
                wait,
            } => {
                fields.push(("experiment".to_owned(), JsonValue::str(experiment.clone())));
                fields.push((
                    "args".to_owned(),
                    JsonValue::arr(args.iter().map(|a| JsonValue::str(a.clone()))),
                ));
                fields.push(("wait".to_owned(), JsonValue::Bool(*wait)));
            }
            Request::Status { job } | Request::ResultOf { job } | Request::Cancel { job } => {
                fields.push(("job".to_owned(), JsonValue::u64(*job)));
            }
            Request::Stats | Request::Shutdown => {}
        }
        JsonValue::Obj(fields).render_compact()
    }

    fn type_name(&self) -> &'static str {
        match self {
            Request::Submit { .. } => "submit",
            Request::Status { .. } => "status",
            Request::ResultOf { .. } => "result",
            Request::Cancel { .. } => "cancel",
            Request::Stats => "stats",
            Request::Shutdown => "shutdown",
        }
    }

    /// Parses one wire line into a request.
    ///
    /// # Errors
    ///
    /// Reports malformed JSON, a missing/mismatched `svc` tag, an unknown
    /// `type`, or missing required fields — the daemon echoes the message
    /// back in an `error` response.
    pub fn parse(line: &str) -> Result<Self, String> {
        let doc = Json::parse(line).map_err(|e| format!("malformed request: {e}"))?;
        match doc.get("svc").and_then(Json::as_str) {
            Some(PROTOCOL) => {}
            Some(other) => return Err(format!("unsupported protocol {other:?} (want {PROTOCOL})")),
            None => return Err(format!("missing \"svc\" tag (want {PROTOCOL})")),
        }
        let kind = doc
            .get("type")
            .and_then(Json::as_str)
            .ok_or_else(|| "missing \"type\" field".to_owned())?;
        let job = || {
            doc.get("job")
                .and_then(Json::as_u64)
                .ok_or_else(|| format!("{kind} request needs a numeric \"job\" field"))
        };
        match kind {
            "submit" => {
                let experiment = doc
                    .get("experiment")
                    .and_then(Json::as_str)
                    .ok_or_else(|| "submit request needs an \"experiment\" field".to_owned())?
                    .to_owned();
                let args = match doc.get("args") {
                    None => Vec::new(),
                    Some(value) => value
                        .as_arr()
                        .ok_or_else(|| "\"args\" must be an array of strings".to_owned())?
                        .iter()
                        .map(|a| {
                            a.as_str()
                                .map(str::to_owned)
                                .ok_or_else(|| "\"args\" must be an array of strings".to_owned())
                        })
                        .collect::<Result<_, _>>()?,
                };
                let wait = doc.get("wait").and_then(Json::as_bool).unwrap_or(false);
                Ok(Request::Submit {
                    experiment,
                    args,
                    wait,
                })
            }
            "status" => Ok(Request::Status { job: job()? }),
            "result" => Ok(Request::ResultOf { job: job()? }),
            "cancel" => Ok(Request::Cancel { job: job()? }),
            "stats" => Ok(Request::Stats),
            "shutdown" => Ok(Request::Shutdown),
            other => Err(format!("unknown request type {other:?}")),
        }
    }
}

/// Starts a response object: `svc` and `type` first, so every line a
/// client reads leads with the same two discriminators.
#[must_use]
pub fn response(kind: &str, fields: Vec<(String, JsonValue)>) -> String {
    let mut all = vec![
        ("svc".to_owned(), JsonValue::str(PROTOCOL)),
        ("type".to_owned(), JsonValue::str(kind)),
    ];
    all.extend(fields);
    JsonValue::Obj(all).render_compact()
}

/// An `error` response line.
#[must_use]
pub fn error_line(message: &str) -> String {
    response(
        "error",
        vec![("message".to_owned(), JsonValue::str(message))],
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn requests_roundtrip_through_the_wire_form() {
        let requests = [
            Request::Submit {
                experiment: "table2".to_owned(),
                args: vec!["--quick".to_owned(), "--seed".to_owned(), "9".to_owned()],
                wait: true,
            },
            Request::Submit {
                experiment: "fig6".to_owned(),
                args: Vec::new(),
                wait: false,
            },
            Request::Status { job: 3 },
            Request::ResultOf { job: u64::MAX - 1 },
            Request::Cancel { job: 0 },
            Request::Stats,
            Request::Shutdown,
        ];
        for req in requests {
            let line = req.render();
            assert!(!line.contains('\n'), "one request per line: {line}");
            assert!(line.contains("\"svc\": \"xbar-svc/1\""), "{line}");
            assert_eq!(Request::parse(&line).expect("reparses"), req, "{line}");
        }
    }

    #[test]
    fn malformed_requests_report_what_is_wrong() {
        for (line, needle) in [
            ("not json", "malformed request"),
            ("{\"type\": \"stats\"}", "missing \"svc\""),
            (
                "{\"svc\": \"xbar-svc/2\", \"type\": \"stats\"}",
                "unsupported protocol",
            ),
            ("{\"svc\": \"xbar-svc/1\"}", "missing \"type\""),
            (
                "{\"svc\": \"xbar-svc/1\", \"type\": \"frobnicate\"}",
                "unknown request type",
            ),
            (
                "{\"svc\": \"xbar-svc/1\", \"type\": \"submit\"}",
                "needs an \"experiment\"",
            ),
            (
                "{\"svc\": \"xbar-svc/1\", \"type\": \"submit\", \"experiment\": \"t\", \
                 \"args\": [1]}",
                "array of strings",
            ),
            (
                "{\"svc\": \"xbar-svc/1\", \"type\": \"status\"}",
                "numeric \"job\"",
            ),
        ] {
            let err = Request::parse(line).expect_err(line);
            assert!(err.contains(needle), "{line}: {err}");
        }
    }

    #[test]
    fn unknown_fields_are_ignored_for_forward_compatibility() {
        let line = "{\"svc\": \"xbar-svc/1\", \"type\": \"stats\", \"future\": {\"x\": 1}}";
        assert_eq!(Request::parse(line).expect("parses"), Request::Stats);
    }

    #[test]
    fn responses_lead_with_svc_and_type() {
        let line = response(
            "submitted",
            vec![
                ("job".to_owned(), JsonValue::u64(7)),
                ("cache".to_owned(), JsonValue::str("miss")),
            ],
        );
        assert!(line.starts_with("{\"svc\": \"xbar-svc/1\", \"type\": \"submitted\""));
        let doc = Json::parse(&line).expect("parses");
        assert_eq!(doc.get("job").unwrap().as_u64(), Some(7));
        let err = error_line("no such job");
        let doc = Json::parse(&err).expect("parses");
        assert_eq!(doc.get("type").unwrap().as_str(), Some("error"));
        assert_eq!(doc.get("message").unwrap().as_str(), Some("no such job"));
    }
}
