//! The daemon's FIFO job queue with coalescing and batch affinity.
//!
//! One [`JobQueue`] is shared (behind a mutex + condvar) by the accept
//! loop's connection threads (producers) and the bounded pool of worker
//! threads (consumers) — the worker-thread count *is* the slot bound, so
//! concurrency can never exceed `--max-inflight` by construction; the
//! queue just records the running count so the bound is observable in
//! `stats`.
//!
//! Two scheduling refinements on top of plain FIFO:
//!
//! * **Coalescing** — a submit whose cache key matches a job already
//!   queued or running joins that job instead of enqueueing a duplicate:
//!   the deterministic-artifact contract makes the two requests
//!   indistinguishable, so running both would be pure waste.
//! * **Batch affinity** — a worker that just finished a job asks for the
//!   oldest queued job sharing its *batch key* (experiment + seed +
//!   circuit selection) before falling back to the global FIFO head.
//!   Jobs in one batch re-minimize the same covers and prepare the same
//!   function-matrix structures ([`xbar_core::MatchEngine::prepare_fm`]),
//!   all of which are hot in the page cache and CPU caches right after a
//!   batch sibling ran.

use crate::launch::HostCount;
use crate::shard::coordinator::RunReport;
use std::collections::VecDeque;
use std::path::PathBuf;
use std::sync::{Arc, Condvar, Mutex};
use std::time::Instant;

/// Lifecycle of a job.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobState {
    /// Accepted, waiting for a worker slot.
    Queued,
    /// A worker is executing it.
    Running,
    /// Finished; the artifact is available (and cached).
    Done,
    /// Execution failed; see the error message.
    Failed,
    /// Cancelled while queued (explicitly or by shutdown).
    Cancelled,
}

impl JobState {
    /// Wire name of the state.
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            JobState::Queued => "queued",
            JobState::Running => "running",
            JobState::Done => "done",
            JobState::Failed => "failed",
            JobState::Cancelled => "cancelled",
        }
    }

    /// True for states a job can never leave.
    #[must_use]
    pub fn is_terminal(self) -> bool {
        matches!(
            self,
            JobState::Done | JobState::Failed | JobState::Cancelled
        )
    }
}

/// How a submit was answered — recorded per job and echoed on the wire.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheDisposition {
    /// Answered from the artifact cache without any work.
    Hit,
    /// A fresh job was enqueued.
    Miss,
    /// Joined an identical job already queued or running.
    Coalesced,
}

impl CacheDisposition {
    /// Wire name of the disposition.
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            CacheDisposition::Hit => "hit",
            CacheDisposition::Miss => "miss",
            CacheDisposition::Coalesced => "coalesced",
        }
    }
}

/// What a worker thread needs to execute a job.
#[derive(Debug, Clone)]
pub struct JobSpec {
    /// Job id.
    pub id: u64,
    /// Registry experiment name.
    pub experiment: String,
    /// Experiment argument words.
    pub args: Vec<String>,
    /// Batch-affinity key.
    pub batch: String,
}

/// An observable copy of a job's current state.
#[derive(Debug, Clone)]
pub struct JobSnapshot {
    /// Job id.
    pub id: u64,
    /// Registry experiment name.
    pub experiment: String,
    /// Lifecycle state.
    pub state: JobState,
    /// How the submit was answered.
    pub cache: CacheDisposition,
    /// Failure message, for [`JobState::Failed`] / [`JobState::Cancelled`].
    pub error: Option<String>,
    /// The finished artifact document.
    pub artifact: Option<Arc<String>>,
    /// Coordinator run directory, once execution has planned one (lets
    /// progress reporting count shard checkpoints as they land).
    pub run_dir: Option<PathBuf>,
    /// Shard count of the coordinator run (0 for in-process execution).
    pub shards: usize,
    /// Coordinator scheduling counters, once finished.
    pub report: Option<RunReport>,
    /// Per-host dispatch attribution, when the job ran through the
    /// multi-host launcher (empty for in-process and single-host runs).
    pub hosts: Vec<HostCount>,
    /// Milliseconds since the job started running (or was submitted, if
    /// still queued); frozen at completion.
    pub elapsed_ms: u64,
}

/// Daemon-wide counters, served verbatim as the `stats` response.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct QueueStats {
    /// Submits accepted (including cache hits and coalesced joins).
    pub submitted: u64,
    /// Jobs finished successfully.
    pub completed: u64,
    /// Jobs that failed.
    pub failed: u64,
    /// Jobs cancelled while queued.
    pub cancelled: u64,
    /// Submits answered from the artifact cache.
    pub cache_hits: u64,
    /// Submits coalesced onto an identical in-flight job.
    pub coalesced: u64,
    /// Jobs currently executing.
    pub running: usize,
    /// Jobs currently waiting for a slot.
    pub queued: usize,
    /// Peak simultaneous running jobs observed.
    pub max_running_observed: usize,
    /// Shard workers spawned across all sharded jobs.
    pub shard_spawned: u64,
    /// Checkpointed shard partials reused across all sharded jobs.
    pub shard_reused: u64,
    /// Shard retry dispatches across all sharded jobs.
    pub shard_retries: u64,
    /// Shard watchdog timeouts across all sharded jobs.
    pub shard_timeouts: u64,
}

#[derive(Debug)]
struct JobEntry {
    id: u64,
    experiment: String,
    args: Vec<String>,
    key_name: String,
    key_document: String,
    batch: String,
    state: JobState,
    cache: CacheDisposition,
    error: Option<String>,
    artifact: Option<Arc<String>>,
    run_dir: Option<PathBuf>,
    shards: usize,
    report: Option<RunReport>,
    hosts: Vec<HostCount>,
    submitted_at: Instant,
    started_at: Option<Instant>,
    finished_ms: Option<u64>,
}

impl JobEntry {
    fn elapsed_ms(&self) -> u64 {
        if let Some(frozen) = self.finished_ms {
            return frozen;
        }
        let since = self.started_at.unwrap_or(self.submitted_at);
        u64::try_from(since.elapsed().as_millis()).unwrap_or(u64::MAX)
    }

    fn snapshot(&self) -> JobSnapshot {
        JobSnapshot {
            id: self.id,
            experiment: self.experiment.clone(),
            state: self.state,
            cache: self.cache,
            error: self.error.clone(),
            artifact: self.artifact.clone(),
            run_dir: self.run_dir.clone(),
            shards: self.shards,
            report: self.report,
            hosts: self.hosts.clone(),
            elapsed_ms: self.elapsed_ms(),
        }
    }
}

#[derive(Debug, Default)]
struct Inner {
    jobs: Vec<JobEntry>,
    /// Queued job ids in arrival order.
    fifo: VecDeque<u64>,
    next_id: u64,
    draining: bool,
    stats: QueueStats,
}

impl Inner {
    fn entry(&self, id: u64) -> Option<&JobEntry> {
        self.jobs.iter().find(|j| j.id == id)
    }

    fn entry_mut(&mut self, id: u64) -> Option<&mut JobEntry> {
        self.jobs.iter_mut().find(|j| j.id == id)
    }
}

/// The shared job queue. All methods are safe to call from any thread.
#[derive(Debug, Default)]
pub struct JobQueue {
    inner: Mutex<Inner>,
    /// Signalled on submit (work available), drain, and job completion.
    cond: Condvar,
}

impl JobQueue {
    /// An empty queue.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Enqueues a job (or coalesces onto an identical live one). The key
    /// pair identifies the artifact the job will produce; `batch` is the
    /// affinity key for scheduling.
    pub fn submit(
        &self,
        experiment: &str,
        args: Vec<String>,
        key_name: &str,
        key_document: &str,
        batch: String,
    ) -> (u64, CacheDisposition) {
        let mut inner = self.inner.lock().expect("queue lock");
        inner.stats.submitted += 1;
        // Coalesce: an identical request already queued or running will
        // produce this exact artifact; join it. (Both halves of the key
        // must match — the hash alone could collide.)
        if let Some(live) = inner.jobs.iter().find(|j| {
            j.key_name == key_name
                && j.key_document == key_document
                && matches!(j.state, JobState::Queued | JobState::Running)
        }) {
            let id = live.id;
            inner.stats.coalesced += 1;
            return (id, CacheDisposition::Coalesced);
        }
        let id = inner.next_id;
        inner.next_id += 1;
        inner.jobs.push(JobEntry {
            id,
            experiment: experiment.to_owned(),
            args,
            key_name: key_name.to_owned(),
            key_document: key_document.to_owned(),
            batch,
            state: JobState::Queued,
            cache: CacheDisposition::Miss,
            error: None,
            artifact: None,
            run_dir: None,
            shards: 0,
            report: None,
            hosts: Vec::new(),
            submitted_at: Instant::now(),
            started_at: None,
            finished_ms: None,
        });
        inner.fifo.push_back(id);
        inner.stats.queued = inner.fifo.len();
        self.cond.notify_all();
        (id, CacheDisposition::Miss)
    }

    /// Records a submit answered straight from the artifact cache: the
    /// job is born [`JobState::Done`] with the cached artifact attached,
    /// so `status`/`result` work uniformly for it.
    pub fn record_cache_hit(&self, experiment: &str, artifact: Arc<String>) -> u64 {
        let mut inner = self.inner.lock().expect("queue lock");
        inner.stats.submitted += 1;
        inner.stats.cache_hits += 1;
        let id = inner.next_id;
        inner.next_id += 1;
        inner.jobs.push(JobEntry {
            id,
            experiment: experiment.to_owned(),
            args: Vec::new(),
            key_name: String::new(),
            key_document: String::new(),
            batch: String::new(),
            state: JobState::Done,
            cache: CacheDisposition::Hit,
            error: None,
            artifact: Some(artifact),
            run_dir: None,
            shards: 0,
            report: None,
            hosts: Vec::new(),
            submitted_at: Instant::now(),
            started_at: None,
            finished_ms: Some(0),
        });
        id
    }

    /// Blocks until a job is available (returning its spec, now marked
    /// running) or the queue is draining with nothing left to run
    /// (returning `None` — the worker thread should exit). A worker
    /// passes the batch key of the job it just ran; the oldest queued
    /// job of the same batch is preferred over the global FIFO head.
    #[must_use]
    pub fn next_job(&self, last_batch: Option<&str>) -> Option<JobSpec> {
        let mut inner = self.inner.lock().expect("queue lock");
        loop {
            let affine = last_batch.and_then(|batch| {
                inner
                    .fifo
                    .iter()
                    .copied()
                    .find(|&id| inner.entry(id).is_some_and(|j| j.batch == batch))
            });
            if let Some(id) = affine.or_else(|| inner.fifo.front().copied()) {
                return Some(self.claim(&mut inner, id));
            }
            if inner.draining {
                return None;
            }
            inner = self.cond.wait(inner).expect("queue lock");
        }
    }

    fn claim(&self, inner: &mut Inner, id: u64) -> JobSpec {
        inner.fifo.retain(|&q| q != id);
        inner.stats.queued = inner.fifo.len();
        inner.stats.running += 1;
        inner.stats.max_running_observed =
            inner.stats.max_running_observed.max(inner.stats.running);
        let entry = inner.entry_mut(id).expect("queued job exists");
        entry.state = JobState::Running;
        entry.started_at = Some(Instant::now());
        JobSpec {
            id,
            experiment: entry.experiment.clone(),
            args: entry.args.clone(),
            batch: entry.batch.clone(),
        }
    }

    /// Records the coordinator run directory and shard count of a running
    /// job, so progress reporting can count checkpoints on disk.
    pub fn set_run_dir(&self, id: u64, run_dir: PathBuf, shards: usize) {
        let mut inner = self.inner.lock().expect("queue lock");
        if let Some(entry) = inner.entry_mut(id) {
            entry.run_dir = Some(run_dir);
            entry.shards = shards;
        }
    }

    /// Completes a running job with its artifact (and the coordinator's
    /// report plus per-host attribution, when it ran sharded).
    pub fn finish(
        &self,
        id: u64,
        artifact: Arc<String>,
        report: Option<RunReport>,
        hosts: Vec<HostCount>,
    ) {
        self.conclude(id, JobState::Done, Some(artifact), None, report, hosts);
    }

    /// Fails a running job.
    pub fn fail(&self, id: u64, error: String) {
        self.conclude(id, JobState::Failed, None, Some(error), None, Vec::new());
    }

    fn conclude(
        &self,
        id: u64,
        state: JobState,
        artifact: Option<Arc<String>>,
        error: Option<String>,
        report: Option<RunReport>,
        hosts: Vec<HostCount>,
    ) {
        let mut inner = self.inner.lock().expect("queue lock");
        match state {
            JobState::Done => inner.stats.completed += 1,
            JobState::Failed => inner.stats.failed += 1,
            _ => unreachable!("conclude is for terminal execution states"),
        }
        inner.stats.running = inner.stats.running.saturating_sub(1);
        if let Some(report) = &report {
            inner.stats.shard_spawned += report.spawned as u64;
            inner.stats.shard_reused += report.reused as u64;
            inner.stats.shard_retries += report.retries as u64;
            inner.stats.shard_timeouts += report.timeouts as u64;
        }
        if let Some(entry) = inner.entry_mut(id) {
            entry.finished_ms = Some(entry.elapsed_ms());
            entry.state = state;
            entry.artifact = artifact;
            entry.error = error;
            entry.report = report;
            entry.hosts = hosts;
        }
        self.cond.notify_all();
    }

    /// Cancels a queued job. Running jobs are not interruptible (their
    /// worker owns child processes); terminal jobs are already settled.
    ///
    /// # Errors
    ///
    /// Reports an unknown id or a job not in the queued state.
    pub fn cancel(&self, id: u64) -> Result<(), String> {
        let mut inner = self.inner.lock().expect("queue lock");
        let state = inner
            .entry(id)
            .map(|j| j.state)
            .ok_or_else(|| format!("no such job {id}"))?;
        if state != JobState::Queued {
            return Err(format!("job {id} is {}, not queued", state.as_str()));
        }
        inner.fifo.retain(|&q| q != id);
        inner.stats.queued = inner.fifo.len();
        inner.stats.cancelled += 1;
        let entry = inner.entry_mut(id).expect("checked above");
        entry.state = JobState::Cancelled;
        entry.error = Some("cancelled".to_owned());
        entry.finished_ms = Some(entry.elapsed_ms());
        Ok(())
    }

    /// A copy of a job's current state.
    #[must_use]
    pub fn snapshot(&self, id: u64) -> Option<JobSnapshot> {
        let inner = self.inner.lock().expect("queue lock");
        inner.entry(id).map(JobEntry::snapshot)
    }

    /// Current counters.
    #[must_use]
    pub fn stats(&self) -> QueueStats {
        self.inner.lock().expect("queue lock").stats
    }

    /// Starts draining: queued jobs are cancelled (marked with `reason`),
    /// running jobs keep their slots until they finish, and worker
    /// threads observe `None` from [`JobQueue::next_job`] once idle.
    pub fn drain(&self, reason: &str) {
        let mut inner = self.inner.lock().expect("queue lock");
        inner.draining = true;
        while let Some(id) = inner.fifo.pop_front() {
            inner.stats.cancelled += 1;
            if let Some(entry) = inner.entry_mut(id) {
                entry.state = JobState::Cancelled;
                entry.error = Some(reason.to_owned());
                entry.finished_ms = Some(entry.elapsed_ms());
            }
        }
        inner.stats.queued = 0;
        self.cond.notify_all();
    }

    /// Blocks until no job is running (used after [`JobQueue::drain`] to
    /// let inflight work complete before the daemon exits).
    pub fn wait_idle(&self) {
        let mut inner = self.inner.lock().expect("queue lock");
        while inner.stats.running > 0 {
            inner = self.cond.wait(inner).expect("queue lock");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    fn submit_simple(queue: &JobQueue, tag: &str, batch: &str) -> u64 {
        let (id, cache) = queue.submit("table2", vec![], tag, tag, batch.to_owned());
        assert_eq!(cache, CacheDisposition::Miss);
        id
    }

    #[test]
    fn fifo_order_without_affinity() {
        let queue = JobQueue::new();
        let a = submit_simple(&queue, "a", "b1");
        let b = submit_simple(&queue, "b", "b2");
        assert_eq!(queue.next_job(None).unwrap().id, a);
        assert_eq!(queue.next_job(None).unwrap().id, b);
    }

    #[test]
    fn identical_live_requests_coalesce_and_settle_together() {
        let queue = JobQueue::new();
        let id = submit_simple(&queue, "k", "b");
        let (joined, cache) = queue.submit("table2", vec![], "k", "k", "b".to_owned());
        assert_eq!(joined, id);
        assert_eq!(cache, CacheDisposition::Coalesced);
        // Still coalesces while running.
        let spec = queue.next_job(None).expect("job");
        let (joined, _) = queue.submit("table2", vec![], "k", "k", "b".to_owned());
        assert_eq!(joined, id);
        // After completion a new identical submit is a fresh job (the
        // cache layer will answer it before it reaches the queue).
        queue.finish(spec.id, Arc::new("artifact".to_owned()), None, Vec::new());
        let (fresh, cache) = queue.submit("table2", vec![], "k", "k", "b".to_owned());
        assert_ne!(fresh, id);
        assert_eq!(cache, CacheDisposition::Miss);
        let stats = queue.stats();
        assert_eq!(stats.coalesced, 2);
        assert_eq!(stats.submitted, 4);
        assert_eq!(stats.completed, 1);
    }

    #[test]
    fn batch_affinity_outranks_fifo_but_not_starvation() {
        let queue = JobQueue::new();
        let first = submit_simple(&queue, "1", "alpha");
        let second = submit_simple(&queue, "2", "beta");
        let third = submit_simple(&queue, "3", "alpha");
        // A worker fresh off an `alpha` job skips ahead to the queued
        // alpha sibling...
        assert_eq!(queue.next_job(Some("alpha")).unwrap().id, first);
        assert_eq!(queue.next_job(Some("alpha")).unwrap().id, third);
        // ...and falls back to FIFO when its batch has nothing queued.
        assert_eq!(queue.next_job(Some("alpha")).unwrap().id, second);
    }

    #[test]
    fn cancel_only_affects_queued_jobs() {
        let queue = JobQueue::new();
        let id = submit_simple(&queue, "x", "b");
        queue.cancel(id).expect("queued job cancels");
        assert_eq!(queue.snapshot(id).unwrap().state, JobState::Cancelled);
        assert!(queue.cancel(id).is_err(), "already cancelled");
        let running = submit_simple(&queue, "y", "b");
        let _ = queue.next_job(None).expect("job");
        let err = queue.cancel(running).expect_err("running job refuses");
        assert!(err.contains("running"), "{err}");
        assert!(queue.cancel(999).is_err(), "unknown id");
    }

    #[test]
    fn drain_cancels_queued_work_and_releases_idle_workers() {
        let queue = Arc::new(JobQueue::new());
        let running = submit_simple(&queue, "r", "b");
        let queued = submit_simple(&queue, "q", "b");
        let spec = queue.next_job(None).expect("job");
        assert_eq!(spec.id, running);
        queue.drain("service shutting down");
        let snap = queue.snapshot(queued).unwrap();
        assert_eq!(snap.state, JobState::Cancelled);
        assert_eq!(snap.error.as_deref(), Some("service shutting down"));
        // An idle worker sees end-of-work immediately.
        assert!(queue.next_job(None).is_none());
        // wait_idle returns once the running job settles.
        let waiter = {
            let queue = Arc::clone(&queue);
            std::thread::spawn(move || queue.wait_idle())
        };
        std::thread::sleep(Duration::from_millis(30));
        assert!(!waiter.is_finished(), "still one running job");
        queue.finish(running, Arc::new("a".to_owned()), None, Vec::new());
        waiter.join().expect("wait_idle returns");
    }

    #[test]
    fn next_job_blocks_until_work_arrives() {
        let queue = Arc::new(JobQueue::new());
        let worker = {
            let queue = Arc::clone(&queue);
            std::thread::spawn(move || queue.next_job(None).map(|spec| spec.id))
        };
        std::thread::sleep(Duration::from_millis(30));
        assert!(!worker.is_finished(), "no work yet");
        let id = submit_simple(&queue, "late", "b");
        assert_eq!(worker.join().expect("joins"), Some(id));
    }

    #[test]
    fn running_counters_track_claims_and_completions() {
        let queue = JobQueue::new();
        for tag in ["a", "b", "c"] {
            submit_simple(&queue, tag, "b");
        }
        let s1 = queue.next_job(None).unwrap();
        let s2 = queue.next_job(None).unwrap();
        assert_eq!(queue.stats().running, 2);
        assert_eq!(queue.stats().queued, 1);
        let report = RunReport {
            spawned: 3,
            reused: 1,
            retries: 2,
            timeouts: 1,
            max_inflight_observed: 2,
        };
        let hosts = vec![HostCount {
            name: "alpha".to_owned(),
            dispatched: 3,
            completed: 3,
            ..HostCount::default()
        }];
        queue.finish(s1.id, Arc::new("x".to_owned()), Some(report), hosts);
        queue.fail(s2.id, "boom".to_owned());
        let stats = queue.stats();
        assert_eq!(stats.running, 0);
        assert_eq!(stats.max_running_observed, 2);
        assert_eq!(stats.completed, 1);
        assert_eq!(stats.failed, 1);
        assert_eq!(stats.shard_spawned, 3);
        assert_eq!(stats.shard_reused, 1);
        assert_eq!(stats.shard_retries, 2);
        assert_eq!(stats.shard_timeouts, 1);
        let snap = queue.snapshot(s1.id).unwrap();
        assert_eq!(snap.hosts.len(), 1);
        assert_eq!(snap.hosts[0].name, "alpha");
        assert_eq!(
            queue.snapshot(s2.id).unwrap().error.as_deref(),
            Some("boom")
        );
    }

    #[test]
    fn cache_hit_jobs_are_born_done() {
        let queue = JobQueue::new();
        let id = queue.record_cache_hit("table2", Arc::new("cached\n".to_owned()));
        let snap = queue.snapshot(id).unwrap();
        assert_eq!(snap.state, JobState::Done);
        assert_eq!(snap.cache, CacheDisposition::Hit);
        assert_eq!(
            snap.artifact.as_deref().map(String::as_str),
            Some("cached\n")
        );
        assert_eq!(queue.stats().cache_hits, 1);
    }
}
